file(REMOVE_RECURSE
  "CMakeFiles/example_threshold_designer.dir/threshold_designer.cpp.o"
  "CMakeFiles/example_threshold_designer.dir/threshold_designer.cpp.o.d"
  "example_threshold_designer"
  "example_threshold_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_threshold_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
