# Empty compiler generated dependencies file for example_threshold_designer.
# This may be replaced when dependencies are built.
