file(REMOVE_RECURSE
  "CMakeFiles/example_value_of_information.dir/value_of_information.cpp.o"
  "CMakeFiles/example_value_of_information.dir/value_of_information.cpp.o.d"
  "example_value_of_information"
  "example_value_of_information.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_value_of_information.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
