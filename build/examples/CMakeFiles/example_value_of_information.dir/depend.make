# Empty dependencies file for example_value_of_information.
# This may be replaced when dependencies are built.
