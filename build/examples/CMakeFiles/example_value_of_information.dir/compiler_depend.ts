# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_value_of_information.
