# Empty dependencies file for example_communication_patterns.
# This may be replaced when dependencies are built.
