file(REMOVE_RECURSE
  "CMakeFiles/example_communication_patterns.dir/communication_patterns.cpp.o"
  "CMakeFiles/example_communication_patterns.dir/communication_patterns.cpp.o.d"
  "example_communication_patterns"
  "example_communication_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_communication_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
