# Empty compiler generated dependencies file for example_load_balancing_study.
# This may be replaced when dependencies are built.
