file(REMOVE_RECURSE
  "CMakeFiles/example_load_balancing_study.dir/load_balancing_study.cpp.o"
  "CMakeFiles/example_load_balancing_study.dir/load_balancing_study.cpp.o.d"
  "example_load_balancing_study"
  "example_load_balancing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_load_balancing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
