# Empty compiler generated dependencies file for example_heterogeneous_speeds.
# This may be replaced when dependencies are built.
