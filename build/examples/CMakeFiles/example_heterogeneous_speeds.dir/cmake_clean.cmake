file(REMOVE_RECURSE
  "CMakeFiles/example_heterogeneous_speeds.dir/heterogeneous_speeds.cpp.o"
  "CMakeFiles/example_heterogeneous_speeds.dir/heterogeneous_speeds.cpp.o.d"
  "example_heterogeneous_speeds"
  "example_heterogeneous_speeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneous_speeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
