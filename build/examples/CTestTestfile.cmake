# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_runs "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart_runs PROPERTIES  PASS_REGULAR_EXPRESSION "Knowing your own input is worth" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_designer_runs "/root/repo/build/examples/example_threshold_designer" "3" "1" "20")
set_tests_properties(example_designer_runs PROPERTIES  PASS_REGULAR_EXPRESSION "beta\\* = 0.622035526990772" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
