# Empty dependencies file for ddm.
# This may be replaced when dependencies are built.
