
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/combinat/binomial.cpp" "src/CMakeFiles/ddm.dir/combinat/binomial.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/combinat/binomial.cpp.o.d"
  "/root/repo/src/combinat/subsets.cpp" "src/CMakeFiles/ddm.dir/combinat/subsets.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/combinat/subsets.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/CMakeFiles/ddm.dir/core/baselines.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/baselines.cpp.o.d"
  "/root/repo/src/core/communication.cpp" "src/CMakeFiles/ddm.dir/core/communication.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/communication.cpp.o.d"
  "/root/repo/src/core/heterogeneous.cpp" "src/CMakeFiles/ddm.dir/core/heterogeneous.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/heterogeneous.cpp.o.d"
  "/root/repo/src/core/interval_rules.cpp" "src/CMakeFiles/ddm.dir/core/interval_rules.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/interval_rules.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/ddm.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/nonoblivious.cpp" "src/CMakeFiles/ddm.dir/core/nonoblivious.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/nonoblivious.cpp.o.d"
  "/root/repo/src/core/oblivious.cpp" "src/CMakeFiles/ddm.dir/core/oblivious.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/oblivious.cpp.o.d"
  "/root/repo/src/core/optimality.cpp" "src/CMakeFiles/ddm.dir/core/optimality.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/optimality.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/CMakeFiles/ddm.dir/core/protocol.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/protocol.cpp.o.d"
  "/root/repo/src/core/randomized_rules.cpp" "src/CMakeFiles/ddm.dir/core/randomized_rules.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/randomized_rules.cpp.o.d"
  "/root/repo/src/core/symmetric_threshold.cpp" "src/CMakeFiles/ddm.dir/core/symmetric_threshold.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/symmetric_threshold.cpp.o.d"
  "/root/repo/src/core/threshold_optimizer.cpp" "src/CMakeFiles/ddm.dir/core/threshold_optimizer.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/core/threshold_optimizer.cpp.o.d"
  "/root/repo/src/geom/mc_volume.cpp" "src/CMakeFiles/ddm.dir/geom/mc_volume.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/geom/mc_volume.cpp.o.d"
  "/root/repo/src/geom/polytope.cpp" "src/CMakeFiles/ddm.dir/geom/polytope.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/geom/polytope.cpp.o.d"
  "/root/repo/src/geom/volume.cpp" "src/CMakeFiles/ddm.dir/geom/volume.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/geom/volume.cpp.o.d"
  "/root/repo/src/poly/interpolate.cpp" "src/CMakeFiles/ddm.dir/poly/interpolate.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/poly/interpolate.cpp.o.d"
  "/root/repo/src/poly/multilinear.cpp" "src/CMakeFiles/ddm.dir/poly/multilinear.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/poly/multilinear.cpp.o.d"
  "/root/repo/src/poly/piecewise.cpp" "src/CMakeFiles/ddm.dir/poly/piecewise.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/poly/piecewise.cpp.o.d"
  "/root/repo/src/poly/polynomial.cpp" "src/CMakeFiles/ddm.dir/poly/polynomial.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/poly/polynomial.cpp.o.d"
  "/root/repo/src/poly/roots.cpp" "src/CMakeFiles/ddm.dir/poly/roots.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/poly/roots.cpp.o.d"
  "/root/repo/src/poly/sturm.cpp" "src/CMakeFiles/ddm.dir/poly/sturm.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/poly/sturm.cpp.o.d"
  "/root/repo/src/prob/cdf_poly.cpp" "src/CMakeFiles/ddm.dir/prob/cdf_poly.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/prob/cdf_poly.cpp.o.d"
  "/root/repo/src/prob/empirical.cpp" "src/CMakeFiles/ddm.dir/prob/empirical.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/prob/empirical.cpp.o.d"
  "/root/repo/src/prob/rng.cpp" "src/CMakeFiles/ddm.dir/prob/rng.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/prob/rng.cpp.o.d"
  "/root/repo/src/prob/uniform_sum.cpp" "src/CMakeFiles/ddm.dir/prob/uniform_sum.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/prob/uniform_sum.cpp.o.d"
  "/root/repo/src/sim/monte_carlo.cpp" "src/CMakeFiles/ddm.dir/sim/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/sim/monte_carlo.cpp.o.d"
  "/root/repo/src/util/bigint.cpp" "src/CMakeFiles/ddm.dir/util/bigint.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/util/bigint.cpp.o.d"
  "/root/repo/src/util/interval.cpp" "src/CMakeFiles/ddm.dir/util/interval.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/util/interval.cpp.o.d"
  "/root/repo/src/util/rational.cpp" "src/CMakeFiles/ddm.dir/util/rational.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/util/rational.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ddm.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ddm.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
