file(REMOVE_RECURSE
  "libddm.a"
)
