# Empty dependencies file for ext_communication_value.
# This may be replaced when dependencies are built.
