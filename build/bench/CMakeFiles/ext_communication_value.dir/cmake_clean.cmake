file(REMOVE_RECURSE
  "CMakeFiles/ext_communication_value.dir/ext_communication_value.cpp.o"
  "CMakeFiles/ext_communication_value.dir/ext_communication_value.cpp.o.d"
  "ext_communication_value"
  "ext_communication_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_communication_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
