# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for abl_two_interval_rules.
