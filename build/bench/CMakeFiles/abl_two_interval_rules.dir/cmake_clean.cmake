file(REMOVE_RECURSE
  "CMakeFiles/abl_two_interval_rules.dir/abl_two_interval_rules.cpp.o"
  "CMakeFiles/abl_two_interval_rules.dir/abl_two_interval_rules.cpp.o.d"
  "abl_two_interval_rules"
  "abl_two_interval_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_two_interval_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
