# Empty dependencies file for abl_two_interval_rules.
# This may be replaced when dependencies are built.
