file(REMOVE_RECURSE
  "CMakeFiles/ext_asymptotics.dir/ext_asymptotics.cpp.o"
  "CMakeFiles/ext_asymptotics.dir/ext_asymptotics.cpp.o.d"
  "ext_asymptotics"
  "ext_asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
