# Empty compiler generated dependencies file for ext_asymptotics.
# This may be replaced when dependencies are built.
