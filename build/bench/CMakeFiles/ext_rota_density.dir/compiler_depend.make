# Empty compiler generated dependencies file for ext_rota_density.
# This may be replaced when dependencies are built.
