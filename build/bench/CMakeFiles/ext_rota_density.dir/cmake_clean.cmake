file(REMOVE_RECURSE
  "CMakeFiles/ext_rota_density.dir/ext_rota_density.cpp.o"
  "CMakeFiles/ext_rota_density.dir/ext_rota_density.cpp.o.d"
  "ext_rota_density"
  "ext_rota_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rota_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
