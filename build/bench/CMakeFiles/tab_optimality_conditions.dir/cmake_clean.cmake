file(REMOVE_RECURSE
  "CMakeFiles/tab_optimality_conditions.dir/tab_optimality_conditions.cpp.o"
  "CMakeFiles/tab_optimality_conditions.dir/tab_optimality_conditions.cpp.o.d"
  "tab_optimality_conditions"
  "tab_optimality_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_optimality_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
