# Empty dependencies file for tab_optimality_conditions.
# This may be replaced when dependencies are built.
