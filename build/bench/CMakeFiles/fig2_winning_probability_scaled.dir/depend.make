# Empty dependencies file for fig2_winning_probability_scaled.
# This may be replaced when dependencies are built.
