file(REMOVE_RECURSE
  "CMakeFiles/fig2_winning_probability_scaled.dir/fig2_winning_probability_scaled.cpp.o"
  "CMakeFiles/fig2_winning_probability_scaled.dir/fig2_winning_probability_scaled.cpp.o.d"
  "fig2_winning_probability_scaled"
  "fig2_winning_probability_scaled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_winning_probability_scaled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
