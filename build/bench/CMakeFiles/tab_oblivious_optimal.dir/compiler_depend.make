# Empty compiler generated dependencies file for tab_oblivious_optimal.
# This may be replaced when dependencies are built.
