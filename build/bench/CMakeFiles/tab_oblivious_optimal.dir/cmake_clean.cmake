file(REMOVE_RECURSE
  "CMakeFiles/tab_oblivious_optimal.dir/tab_oblivious_optimal.cpp.o"
  "CMakeFiles/tab_oblivious_optimal.dir/tab_oblivious_optimal.cpp.o.d"
  "tab_oblivious_optimal"
  "tab_oblivious_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_oblivious_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
