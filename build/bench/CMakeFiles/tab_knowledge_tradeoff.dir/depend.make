# Empty dependencies file for tab_knowledge_tradeoff.
# This may be replaced when dependencies are built.
