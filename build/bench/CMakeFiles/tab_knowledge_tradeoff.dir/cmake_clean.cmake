file(REMOVE_RECURSE
  "CMakeFiles/tab_knowledge_tradeoff.dir/tab_knowledge_tradeoff.cpp.o"
  "CMakeFiles/tab_knowledge_tradeoff.dir/tab_knowledge_tradeoff.cpp.o.d"
  "tab_knowledge_tradeoff"
  "tab_knowledge_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_knowledge_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
