file(REMOVE_RECURSE
  "CMakeFiles/tab_n3_delta1_case_analysis.dir/tab_n3_delta1_case_analysis.cpp.o"
  "CMakeFiles/tab_n3_delta1_case_analysis.dir/tab_n3_delta1_case_analysis.cpp.o.d"
  "tab_n3_delta1_case_analysis"
  "tab_n3_delta1_case_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_n3_delta1_case_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
