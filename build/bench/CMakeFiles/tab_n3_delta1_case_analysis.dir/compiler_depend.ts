# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tab_n3_delta1_case_analysis.
