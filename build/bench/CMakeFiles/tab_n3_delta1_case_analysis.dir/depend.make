# Empty dependencies file for tab_n3_delta1_case_analysis.
# This may be replaced when dependencies are built.
