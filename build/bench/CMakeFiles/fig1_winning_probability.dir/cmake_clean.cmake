file(REMOVE_RECURSE
  "CMakeFiles/fig1_winning_probability.dir/fig1_winning_probability.cpp.o"
  "CMakeFiles/fig1_winning_probability.dir/fig1_winning_probability.cpp.o.d"
  "fig1_winning_probability"
  "fig1_winning_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_winning_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
