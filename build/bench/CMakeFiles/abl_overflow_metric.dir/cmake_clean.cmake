file(REMOVE_RECURSE
  "CMakeFiles/abl_overflow_metric.dir/abl_overflow_metric.cpp.o"
  "CMakeFiles/abl_overflow_metric.dir/abl_overflow_metric.cpp.o.d"
  "abl_overflow_metric"
  "abl_overflow_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_overflow_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
