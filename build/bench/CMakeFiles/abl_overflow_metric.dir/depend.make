# Empty dependencies file for abl_overflow_metric.
# This may be replaced when dependencies are built.
