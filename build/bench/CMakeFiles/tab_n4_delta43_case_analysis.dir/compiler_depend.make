# Empty compiler generated dependencies file for tab_n4_delta43_case_analysis.
# This may be replaced when dependencies are built.
