# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tab_n4_delta43_case_analysis.
