file(REMOVE_RECURSE
  "CMakeFiles/abl_asymmetric_thresholds.dir/abl_asymmetric_thresholds.cpp.o"
  "CMakeFiles/abl_asymmetric_thresholds.dir/abl_asymmetric_thresholds.cpp.o.d"
  "abl_asymmetric_thresholds"
  "abl_asymmetric_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_asymmetric_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
