# Empty dependencies file for abl_asymmetric_thresholds.
# This may be replaced when dependencies are built.
