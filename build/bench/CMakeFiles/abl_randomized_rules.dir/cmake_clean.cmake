file(REMOVE_RECURSE
  "CMakeFiles/abl_randomized_rules.dir/abl_randomized_rules.cpp.o"
  "CMakeFiles/abl_randomized_rules.dir/abl_randomized_rules.cpp.o.d"
  "abl_randomized_rules"
  "abl_randomized_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_randomized_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
