# Empty compiler generated dependencies file for abl_randomized_rules.
# This may be replaced when dependencies are built.
