file(REMOVE_RECURSE
  "CMakeFiles/test_polytope.dir/test_polytope.cpp.o"
  "CMakeFiles/test_polytope.dir/test_polytope.cpp.o.d"
  "test_polytope"
  "test_polytope.pdb"
  "test_polytope[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polytope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
