# Empty compiler generated dependencies file for test_polytope.
# This may be replaced when dependencies are built.
