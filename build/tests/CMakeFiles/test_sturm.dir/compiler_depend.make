# Empty compiler generated dependencies file for test_sturm.
# This may be replaced when dependencies are built.
