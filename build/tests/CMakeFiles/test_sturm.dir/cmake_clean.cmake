file(REMOVE_RECURSE
  "CMakeFiles/test_sturm.dir/test_sturm.cpp.o"
  "CMakeFiles/test_sturm.dir/test_sturm.cpp.o.d"
  "test_sturm"
  "test_sturm.pdb"
  "test_sturm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sturm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
