# Empty compiler generated dependencies file for test_multilinear.
# This may be replaced when dependencies are built.
