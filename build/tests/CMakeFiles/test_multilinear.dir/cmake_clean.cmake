file(REMOVE_RECURSE
  "CMakeFiles/test_multilinear.dir/test_multilinear.cpp.o"
  "CMakeFiles/test_multilinear.dir/test_multilinear.cpp.o.d"
  "test_multilinear"
  "test_multilinear.pdb"
  "test_multilinear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
