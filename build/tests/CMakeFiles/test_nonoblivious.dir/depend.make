# Empty dependencies file for test_nonoblivious.
# This may be replaced when dependencies are built.
