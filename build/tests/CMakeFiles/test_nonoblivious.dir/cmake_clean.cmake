file(REMOVE_RECURSE
  "CMakeFiles/test_nonoblivious.dir/test_nonoblivious.cpp.o"
  "CMakeFiles/test_nonoblivious.dir/test_nonoblivious.cpp.o.d"
  "test_nonoblivious"
  "test_nonoblivious.pdb"
  "test_nonoblivious[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonoblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
