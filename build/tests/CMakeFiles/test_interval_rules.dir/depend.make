# Empty dependencies file for test_interval_rules.
# This may be replaced when dependencies are built.
