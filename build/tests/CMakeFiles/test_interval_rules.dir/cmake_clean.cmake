file(REMOVE_RECURSE
  "CMakeFiles/test_interval_rules.dir/test_interval_rules.cpp.o"
  "CMakeFiles/test_interval_rules.dir/test_interval_rules.cpp.o.d"
  "test_interval_rules"
  "test_interval_rules.pdb"
  "test_interval_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
