file(REMOVE_RECURSE
  "CMakeFiles/test_symmetric_threshold.dir/test_symmetric_threshold.cpp.o"
  "CMakeFiles/test_symmetric_threshold.dir/test_symmetric_threshold.cpp.o.d"
  "test_symmetric_threshold"
  "test_symmetric_threshold.pdb"
  "test_symmetric_threshold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symmetric_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
