# Empty dependencies file for test_symmetric_threshold.
# This may be replaced when dependencies are built.
