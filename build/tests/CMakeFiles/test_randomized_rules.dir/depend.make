# Empty dependencies file for test_randomized_rules.
# This may be replaced when dependencies are built.
