file(REMOVE_RECURSE
  "CMakeFiles/test_randomized_rules.dir/test_randomized_rules.cpp.o"
  "CMakeFiles/test_randomized_rules.dir/test_randomized_rules.cpp.o.d"
  "test_randomized_rules"
  "test_randomized_rules.pdb"
  "test_randomized_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_randomized_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
