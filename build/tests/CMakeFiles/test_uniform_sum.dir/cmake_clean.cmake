file(REMOVE_RECURSE
  "CMakeFiles/test_uniform_sum.dir/test_uniform_sum.cpp.o"
  "CMakeFiles/test_uniform_sum.dir/test_uniform_sum.cpp.o.d"
  "test_uniform_sum"
  "test_uniform_sum.pdb"
  "test_uniform_sum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uniform_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
