# Empty compiler generated dependencies file for test_uniform_sum.
# This may be replaced when dependencies are built.
