file(REMOVE_RECURSE
  "CMakeFiles/test_subsets.dir/test_subsets.cpp.o"
  "CMakeFiles/test_subsets.dir/test_subsets.cpp.o.d"
  "test_subsets"
  "test_subsets.pdb"
  "test_subsets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
