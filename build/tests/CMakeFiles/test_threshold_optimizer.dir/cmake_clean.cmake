file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_optimizer.dir/test_threshold_optimizer.cpp.o"
  "CMakeFiles/test_threshold_optimizer.dir/test_threshold_optimizer.cpp.o.d"
  "test_threshold_optimizer"
  "test_threshold_optimizer.pdb"
  "test_threshold_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
