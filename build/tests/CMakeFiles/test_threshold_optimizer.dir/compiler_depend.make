# Empty compiler generated dependencies file for test_threshold_optimizer.
# This may be replaced when dependencies are built.
