# Empty dependencies file for test_binomial.
# This may be replaced when dependencies are built.
