file(REMOVE_RECURSE
  "CMakeFiles/ddm_cli.dir/ddm_cli.cpp.o"
  "CMakeFiles/ddm_cli.dir/ddm_cli.cpp.o.d"
  "ddm_cli"
  "ddm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
