# Empty compiler generated dependencies file for ddm_cli.
# This may be replaced when dependencies are built.
