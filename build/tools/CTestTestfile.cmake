# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_analyze_n3 "/root/repo/build/tools/ddm_cli" "analyze" "3" "1")
set_tests_properties(cli_analyze_n3 PROPERTIES  PASS_REGULAR_EXPRESSION "beta\\* = 0.6220355" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze_n4 "/root/repo/build/tools/ddm_cli" "analyze" "4" "4/3")
set_tests_properties(cli_analyze_n4 PROPERTIES  PASS_REGULAR_EXPRESSION "beta\\* = 0.6779978" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_oblivious "/root/repo/build/tools/ddm_cli" "oblivious" "3" "1")
set_tests_properties(cli_oblivious PROPERTIES  PASS_REGULAR_EXPRESSION "5/12" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_threshold "/root/repo/build/tools/ddm_cli" "threshold" "3" "1" "0.622")
set_tests_properties(cli_threshold PROPERTIES  PASS_REGULAR_EXPRESSION "0.5446" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_volume "/root/repo/build/tools/ddm_cli" "volume" "2" "1" "1" "3/4" "3/4")
set_tests_properties(cli_volume PROPERTIES  PASS_REGULAR_EXPRESSION "7/16" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/ddm_cli" "simulate" "3" "1" "0.622" "50000" "7")
set_tests_properties(cli_simulate PROPERTIES  PASS_REGULAR_EXPRESSION "covered" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/ddm_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
