// engine_tour — the unified evaluation-engine layer in one sitting.
//
// The same question — P(no overflow) for a symmetric single-threshold
// protocol — answered by every registered backend, then by the automatic
// policy, with the plan cache doing its job across repeated requests.
#include <iomanip>
#include <iostream>

#include "ddm.hpp"

int main() {
  using ddm::util::Rational;
  namespace engine = ddm::engine;

  const std::uint32_t n = 6;
  const Rational t{2};
  auto request = engine::EvalRequest::symmetric(n, t, {0.25, 0.5, 0.625, 0.75});

  // 1. The registry: every backend, its guarantees, one seam.
  engine::Registry& registry = engine::Registry::instance();
  std::cout << "Registered engines (n = " << n << ", t = " << t << "):\n";
  for (const std::string_view id : registry.ids()) {
    const engine::Evaluator& evaluator = registry.require(id);
    std::cout << "  " << std::left << std::setw(10) << id
              << to_string(evaluator.determinism()) << " — " << evaluator.describe() << "\n";
  }

  // 2. Every engine answers the same request; the parity suite pins how
  //    closely they must agree.
  std::cout << "\nP(no overflow) at beta = 0.625, per engine:\n";
  for (const std::string_view id : registry.ids()) {
    const auto outcome = registry.require(id).evaluate(request);
    std::cout << "  " << std::left << std::setw(10) << id << std::setprecision(15)
              << outcome.values[2] << "\n";
  }

  // 3. The auto policy: compiled plan when its certificate meets the
  //    tolerance, batch kernel otherwise — and it says which it chose.
  const auto selection = engine::select(engine::EnginePolicy{}, request);
  std::cout << "\nAuto policy chose '" << selection.id() << "'"
            << " (compiled certificate bound " << selection.compiled_bound << ")\n";

  // 4. The plan cache: the lowering above is re-used, not re-done.
  const auto& stats = engine::PlanCache::instance().stats();
  std::cout << "Plan cache: " << stats.hits << " hits, " << stats.misses
            << " misses across this run — one lowering served every compiled call.\n";
  return 0;
}
