// threshold_designer — a command-line tool that, given n and capacity t,
// derives the exact optimal single-threshold protocol: the piecewise
// polynomial P(beta), its breakpoints, the optimality condition, and the
// certified optimal threshold with as many digits as you ask for.
//
// Usage: example_threshold_designer [n] [t_num/t_den] [digits]
// Defaults: n = 3, t = 1, digits = 30  (the paper's Section 5.2.1 instance).
#include <cstdlib>
#include <iostream>
#include <string>

#include "ddm.hpp"

namespace {

void usage() {
  std::cout << "usage: example_threshold_designer [n] [t as a/b or integer] [digits]\n"
            << "example: example_threshold_designer 4 4/3 40\n";
}

}  // namespace

int main(int argc, char** argv) {
  using ddm::util::BigInt;
  using ddm::util::Rational;

  std::uint32_t n = 3;
  Rational t{1};
  int digits = 30;
  try {
    if (argc > 1) n = static_cast<std::uint32_t>(std::stoul(argv[1]));
    if (argc > 2) t = Rational::parse(argv[2]);
    if (argc > 3) digits = std::stoi(argv[3]);
    if (n == 0 || n > 12 || t.signum() <= 0 || digits < 1 || digits > 200) {
      usage();
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "bad arguments: " << e.what() << "\n";
    usage();
    return 1;
  }

  std::cout << "Designing the optimal symmetric single-threshold protocol\n"
            << "  players n = " << n << ", bin capacity t = " << t << "\n\n";

  const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(n, t);

  std::cout << "Winning probability P(beta), derived exactly from Theorem 5.1:\n";
  for (const auto& piece : analysis.winning_probability().pieces()) {
    std::cout << "  beta in [" << piece.lo << ", " << piece.hi << "]:  P = "
              << piece.poly.to_string("beta") << "\n";
  }

  const auto opt = analysis.optimize();
  std::cout << "\nOptimality condition on the optimal piece:\n  P'(beta) = "
            << opt.optimality_condition.to_string("beta") << (opt.interior ? "  = 0" : "")
            << "\n";

  // Refine the optimal threshold to the requested precision: width 10^-digits.
  const Rational width{BigInt{1}, BigInt::pow(BigInt{10}, static_cast<std::uint64_t>(digits))};
  ddm::poly::RootInterval beta = opt.beta;
  if (opt.interior) {
    beta = ddm::poly::refine_root(opt.optimality_condition, beta, width);
  }

  // Decimal expansion of the midpoint to `digits` places.
  const Rational mid = beta.midpoint();
  const BigInt scaled = (mid * Rational{BigInt::pow(BigInt{10}, static_cast<std::uint64_t>(digits)),
                                        BigInt{1}})
                            .floor();
  std::string digits_text = scaled.to_string();
  while (digits_text.size() < static_cast<std::size_t>(digits) + 1) {
    digits_text.insert(digits_text.begin(), '0');
  }
  digits_text.insert(digits_text.size() - static_cast<std::size_t>(digits), ".");

  // Evaluate P(beta*) through the engine registry's exact backend — the same
  // value as analysis.winning_probability()(mid), but via the seam every
  // other caller (CLI, optimizer) uses.
  auto request = ddm::engine::EvalRequest::symmetric(n, t, {mid.to_double()});
  request.exact_betas = {mid};
  const auto outcome =
      ddm::engine::Registry::instance().require("exact").evaluate(request);

  std::cout << "\nOptimal threshold:\n  beta* = " << digits_text << "\n"
            << "  (certified within 10^-" << digits << " by Sturm bisection)\n"
            << "\nWinning probability at the optimum:\n  P(beta*) = "
            << ddm::util::fmt(outcome.values.front(), 15) << "\n";

  std::cout << "\nFor comparison, the optimal oblivious (input-blind) protocol achieves "
            << ddm::util::fmt(
                   ddm::core::optimal_oblivious_winning_probability(n, t).to_double(), 15)
            << ".\n";
  return 0;
}
