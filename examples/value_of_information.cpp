// value_of_information — the Papadimitriou–Yannakakis programme that
// motivates the paper: how does the achievable no-overflow probability grow
// with the information available to the players? This example walks the
// information ladder at n = 3, t = 1 (the PY'91 instance this paper settles):
//
//   rung 0: input-blind, deterministic   (all-one-bin, round-robin)
//   rung 1: input-blind, randomized      (optimal oblivious: fair coin)
//   rung 2: sees own input               (optimal single threshold — the
//                                         paper's main result: 1 − sqrt(1/7))
//   rung 3: sees everything              (full-information oracle; an upper
//                                         bound requiring full communication)
#include <iostream>

#include "ddm.hpp"

int main() {
  using ddm::util::Rational;
  const std::uint32_t n = 3;
  const Rational t{1};
  const double t_d = 1.0;

  std::cout << "The value of information at n = 3, t = 1\n\n";
  ddm::util::Table table{{"information available", "protocol", "P(win)", "method"}};
  ddm::prob::Rng rng{8675309};

  // rung 0a: everything on one machine.
  table.add_row({"none (deterministic)", "all-one-bin",
                 ddm::util::fmt(ddm::prob::irwin_hall_cdf(n, t).to_double(), 6),
                 "exact (Cor 2.6)"});

  // rung 0b: split by player id.
  const auto rr = ddm::sim::estimate_winning_probability(ddm::core::make_round_robin(n), t_d,
                                                         1000000, rng);
  table.add_row({"none (deterministic)", "round-robin", ddm::util::fmt(rr.estimate, 6),
                 "Monte Carlo"});

  // rung 1: optimal oblivious.
  table.add_row({"none (randomized)", "fair coin alpha = 1/2",
                 ddm::util::fmt(
                     ddm::core::optimal_oblivious_winning_probability(n, t).to_double(), 6),
                 "exact (Thm 4.3)"});

  // rung 2: optimal single threshold — this paper's contribution.
  const auto opt = ddm::core::SymmetricThresholdAnalysis::build(n, t).optimize();
  table.add_row({"own input", "threshold beta* = 1 - sqrt(1/7)",
                 ddm::util::fmt(opt.value.to_double(), 6), "exact (Thm 5.1 + Sturm)"});

  // rung 3: full information (upper bound).
  const auto oracle = ddm::sim::estimate_event_probability(
      n, [](std::span<const double> xs) { return ddm::core::full_information_win(xs, 1.0); },
      2000000, rng);
  table.add_row({"all inputs (oracle)", "best feasible split",
                 ddm::util::fmt(oracle.estimate, 6), "Monte Carlo (2e6)"});

  table.print(std::cout);

  std::cout << "\nReading the ladder:\n"
            << "  * Randomization alone lifts deterministic input-blind play.\n"
            << "  * One private observation (your own input) is the biggest single\n"
            << "    jump a no-communication protocol can buy: "
            << ddm::util::fmt(
                   opt.value.to_double() -
                       ddm::core::optimal_oblivious_winning_probability(n, t).to_double(),
                   4)
            << ".\n"
            << "  * The remaining gap to the oracle is the price of no communication.\n"
            << "\nThe paper proves rung 2 exactly: beta* = 0.622035..., P = 0.544631...,\n"
            << "settling the Papadimitriou-Yannakakis conjecture.\n";
  return 0;
}
