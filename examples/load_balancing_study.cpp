// load_balancing_study — the workload from the paper's introduction: n jobs
// with uniform sizes must be placed on two machines with no coordination.
// This example sweeps system sizes and capacity regimes and compares four
// placement policies:
//   * all-one-machine        (degenerate baseline)
//   * round-robin by id      (deterministic, input-blind)
//   * fair coin              (optimal oblivious — Theorem 4.3)
//   * optimal threshold      (optimal non-oblivious — Section 5)
// reporting exact values where formulas exist and Monte Carlo elsewhere.
#include <iostream>

#include "ddm.hpp"

int main() {
  using ddm::util::Rational;
  std::cout << "Distributed load balancing with no communication\n"
            << "(two machines, capacity t each; job sizes ~ U[0,1])\n\n";

  for (const auto& [regime_name, scale_num, scale_den] :
       {std::tuple{"tight capacity t = n/3", 1, 3},
        std::tuple{"roomy capacity t = n/2", 1, 2}}) {
    std::cout << "=== Regime: " << regime_name << " ===\n";
    ddm::util::Table table{{"n", "t", "all-one-machine", "round-robin (MC)", "fair coin",
                            "optimal threshold", "beta*"}};
    ddm::prob::Rng rng{12345};
    for (std::uint32_t n = 2; n <= 8; ++n) {
      const Rational t{static_cast<std::int64_t>(n) * scale_num, scale_den};
      const double t_d = t.to_double();

      // All in one bin: P = IH_n(t), exact.
      const double all_one = ddm::prob::irwin_hall_cdf(n, t).to_double();

      // Round robin: simulate.
      const auto rr = ddm::sim::estimate_winning_probability(
          ddm::core::make_round_robin(n), t_d, 200000, rng);

      // Fair coin: exact (Theorem 4.1 / 4.3).
      const double coin =
          ddm::core::optimal_oblivious_winning_probability(n, t).to_double();

      // Optimal threshold: exact symbolic optimum (Section 5.2 automated).
      const auto opt = ddm::core::SymmetricThresholdAnalysis::build(n, t).optimize();

      table.add_row({std::to_string(n), t.to_string(), ddm::util::fmt(all_one, 4),
                     ddm::util::fmt(rr.estimate, 4), ddm::util::fmt(coin, 4),
                     ddm::util::fmt(opt.value.to_double(), 4),
                     ddm::util::fmt(opt.beta.approx(), 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Observations:\n"
            << "  * Looking at your own job size usually helps (threshold > coin), but\n"
            << "    not always: at t = n/3 with n = 4 or 7 the coin wins slightly — a\n"
            << "    reversal of the paper's blanket claim (see EXPERIMENTS.md).\n"
            << "  * The optimal threshold beta* drifts with n: optimal play is\n"
            << "    non-uniform, exactly the paper's conclusion.\n"
            << "  * Deterministic id-based splitting (round-robin) can beat every\n"
            << "    anonymous protocol — player identities are themselves information,\n"
            << "    which the paper's anonymous no-communication model excludes.\n";
  return 0;
}
