// heterogeneous_speeds — the heterogeneous-ranges extension in action.
//
// Scenario: four job sources of different sizes — two small (jobs ~ U[0, 1/2])
// and two large (jobs ~ U[0, 3/2]) — route jobs to two servers of capacity
// 4/3 with no communication. The paper's Lemma 2.4/2.7 machinery handles
// this directly; we compare oblivious and per-source threshold policies and
// tune the thresholds by coordinate search on the exact formula.
#include <iostream>

#include "ddm.hpp"

int main() {
  using ddm::util::Rational;
  const std::vector<Rational> ranges{Rational(1, 2), Rational(1, 2), Rational(3, 2),
                                     Rational(3, 2)};
  const Rational t{4, 3};
  std::cout << "Heterogeneous job sources: sizes ~ U[0,1/2] x2 and U[0,3/2] x2,\n"
            << "two servers of capacity " << t << ", no communication.\n\n";

  // Oblivious fair coin.
  const std::vector<Rational> half(4, Rational(1, 2));
  std::cout << "Fair coin (oblivious): P = "
            << ddm::util::fmt(ddm::core::heterogeneous_oblivious_winning_probability(
                                  half, ranges, t)
                                  .to_double(),
                              6)
            << "\n";

  // Naive thresholds at half of each range.
  std::vector<Rational> naive;
  for (const Rational& c : ranges) naive.push_back(c * Rational(1, 2));
  std::cout << "Half-range thresholds:  P = "
            << ddm::util::fmt(ddm::core::heterogeneous_threshold_winning_probability(
                                  naive, ranges, t)
                                  .to_double(),
                              6)
            << "\n";

  // Exact coordinate search over thresholds (grid refinement on the exact
  // rational formula; small search space, deterministic).
  std::vector<Rational> best = naive;
  Rational best_value =
      ddm::core::heterogeneous_threshold_winning_probability(best, ranges, t);
  for (int pass = 0; pass < 6; ++pass) {
    const Rational step = Rational{1, 1 << (pass + 2)};
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t i = 0; i < best.size(); ++i) {
        for (const int direction : {+1, -1}) {
          std::vector<Rational> candidate = best;
          Rational moved = candidate[i] + Rational{direction} * step * ranges[i];
          if (moved < Rational{0}) moved = Rational{0};
          if (moved > ranges[i]) moved = ranges[i];
          candidate[i] = moved;
          const Rational value = ddm::core::heterogeneous_threshold_winning_probability(
              candidate, ranges, t);
          if (value > best_value) {
            best_value = value;
            best = std::move(candidate);
            improved = true;
          }
        }
      }
    }
  }
  std::cout << "Tuned thresholds:       P = " << ddm::util::fmt(best_value.to_double(), 6)
            << "   at a = (";
  for (std::size_t i = 0; i < best.size(); ++i) {
    if (i != 0) std::cout << ", ";
    std::cout << ddm::util::fmt(best[i].to_double(), 3);
  }
  std::cout << ")\n\n";

  // Simulation cross-check of the tuned protocol (FunctorProtocol keeps the
  // raw thresholds, which may exceed 1 for the large sources).
  std::vector<ddm::core::FunctorProtocol::Rule> rules;
  for (const Rational& a : best) {
    const double threshold = a.to_double();
    rules.push_back([threshold](double x, ddm::prob::Rng&) {
      return x <= threshold ? ddm::core::kBin0 : ddm::core::kBin1;
    });
  }
  const ddm::core::FunctorProtocol protocol{std::move(rules), "tuned-heterogeneous"};
  ddm::prob::Rng rng{11235};
  const std::vector<double> ranges_d{0.5, 0.5, 1.5, 1.5};
  const auto sim = ddm::core::estimate_heterogeneous_winning_probability(
      protocol, ranges_d, t.to_double(), 400000, rng);
  std::cout << "Simulation of the tuned protocol: " << ddm::util::fmt(sim.estimate, 4)
            << " +- " << ddm::util::fmt(sim.standard_error, 4)
            << "  (exact: " << ddm::util::fmt(best_value.to_double(), 4) << ")\n\n";

  std::cout << "Reading: the small sources' optimal thresholds sit near the top of\n"
            << "their range (small jobs can almost always go to bin 0 safely), while\n"
            << "the large sources' thresholds do the real balancing — heterogeneity\n"
            << "breaks the symmetric analysis of Section 5.2 but not the framework.\n";
  return 0;
}
