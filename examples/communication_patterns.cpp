// communication_patterns — exploring the paper's stated research programme:
// "one simply renders only those parameters of the decision algorithm that
// correspond to the possible communications, and computes values for these
// parameters that maximize the combinatorial expression" (Section 1).
//
// We do exactly that numerically for n = 3, t = 1: for each visibility
// pattern we optimize the PY'91 weighted-threshold class on a fixed
// common-random-number input bank and report the protocol the optimizer
// discovered, alongside the paper's exact no-communication optimum.
#include <iostream>

#include "ddm.hpp"

int main() {
  using ddm::core::VisibilityPattern;
  using ddm::core::WeightedThresholdProtocol;
  using ddm::util::Rational;

  std::cout << "Communication patterns at n = 3, t = 1\n\n";

  ddm::prob::Rng bank_rng{424242};
  const ddm::core::InputBank bank{3, 100000, bank_rng};

  const auto no_comm = ddm::core::SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  std::cout << "Paper's exact no-communication optimum: beta* = "
            << ddm::util::fmt(no_comm.beta.approx(), 6) << ", P = "
            << ddm::util::fmt(no_comm.value.to_double(), 6) << "\n\n";

  const std::vector<std::pair<std::string,
                              std::vector<std::pair<std::size_t, std::size_t>>>>
      patterns{
          {"no communication", {}},
          {"player 1 tells player 2", {{0, 1}}},
          {"chain 1 -> 2 -> 3", {{0, 1}, {1, 2}}},
          {"player 3 hears everyone", {{0, 2}, {1, 2}}},
          {"full communication", {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}},
      };

  for (const auto& [name, edges] : patterns) {
    const auto pattern = VisibilityPattern::from_edges(3, edges);
    // Two starts: the plain single-threshold seed, and the PY'91 shape where
    // receivers subtract what they hear; keep the better outcome.
    WeightedThresholdProtocol structured{pattern};
    for (std::size_t i = 0; i < 3; ++i) {
      for (const std::size_t j : pattern.view(i)) {
        if (j != i) structured.set_weight(i, j, -1.0);
      }
    }
    auto result = ddm::core::optimize_weighted_threshold(
        WeightedThresholdProtocol{pattern}, 1.0, bank, 0.25, 2e-4, 12000);
    const auto seeded = ddm::core::optimize_weighted_threshold(std::move(structured), 1.0,
                                                               bank, 0.25, 2e-4, 12000);
    if (seeded.value > result.value) result = seeded;
    std::cout << "=== " << name << "  (" << pattern.edge_count() << " edges)\n"
              << "  optimized P (bank) = " << ddm::util::fmt(result.value, 4) << "\n"
              << "  protocol: " << result.protocol.to_string() << "\n\n";
  }

  std::cout << "Notes:\n"
            << "  * The zero-edge row reproduces the paper's exact optimum to bank\n"
            << "    resolution and the discovered rule is (approximately) the symmetric\n"
            << "    threshold x_i <= 0.622.\n"
            << "  * Richer patterns can only help (class inclusion); a compass search\n"
            << "    may need good seeds to realize that — compare the two-start values.\n"
            << "  * Receivers learn to use NEGATIVE weights on the sender's input\n"
            << "    (\"if your load is large, I should avoid your bin\"), matching the\n"
            << "    'unexpectedly sophisticated' protocols PY'91 found for n = 3.\n";
  return 0;
}
