// quickstart — a five-minute tour of the ddm library.
//
// Scenario: five sensors each observe a load x_i ~ U[0,1] and must
// independently route it to one of two servers, each with capacity t = 5/3.
// No sensor can talk to any other. What's the best they can do?
#include <iostream>

#include "ddm.hpp"

int main() {
  using ddm::util::Rational;
  const std::uint32_t n = 5;
  const Rational t{5, 3};

  std::cout << "ddm quickstart: " << n << " players, two bins of capacity " << t << "\n\n";

  // 1. The optimal OBLIVIOUS protocol (players ignore their inputs) is the
  //    fair coin, for every n (Theorem 4.3).
  const Rational p_oblivious = ddm::core::optimal_oblivious_winning_probability(n, t);
  std::cout << "Optimal oblivious protocol (alpha = 1/2):\n"
            << "  P(no overflow) = " << p_oblivious << " = " << p_oblivious.to_double() << "\n\n";

  // 2. If players LOOK at their inputs, a single-threshold rule does better.
  //    Derive the exact piecewise polynomial P(beta) and its certified
  //    optimum (the Section 5.2 analysis, automated).
  const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(n, t);
  const auto optimum = analysis.optimize();
  std::cout << "Optimal single-threshold protocol:\n"
            << "  beta* ~= " << optimum.beta.approx()
            << "  (root of " << optimum.optimality_condition.to_string("b") << ")\n"
            << "  P(no overflow) = " << optimum.value.to_double() << "\n\n";

  // 3. Evaluate P at the optimum through the unified engine layer: the auto
  //    policy picks the best backend (here the compiled Horner plan, whose
  //    lowering is cached process-wide) and says what it chose.
  auto request = ddm::engine::EvalRequest::symmetric(
      n, t, {optimum.beta.midpoint().to_double()});
  const auto selection = ddm::engine::select(ddm::engine::EnginePolicy{}, request);
  const auto outcome = selection.evaluator->evaluate(request);
  std::cout << "Engine-layer evaluation at beta*:\n"
            << "  P(no overflow) = " << outcome.values.front() << "  [engine: "
            << selection.id() << ", certificate bound " << outcome.certificate_bound
            << "]\n\n";

  // 4. Cross-check the exact optimum by simulation.
  const auto protocol =
      ddm::core::SingleThresholdProtocol::symmetric(n, optimum.beta.midpoint());
  ddm::prob::Rng rng{42};
  const auto sim =
      ddm::sim::estimate_winning_probability(protocol, t.to_double(), 500000, rng);
  std::cout << "Monte Carlo check (500k trials):\n"
            << "  estimate = " << sim.estimate << "  95% CI [" << sim.ci_low << ", "
            << sim.ci_high << "]\n"
            << "  exact in CI: " << (sim.covers(optimum.value.to_double()) ? "yes" : "no")
            << "\n\n";

  // 5. The knowledge premium.
  std::cout << "Knowing your own input is worth "
            << optimum.value.to_double() - p_oblivious.to_double()
            << " of winning probability at n = " << n << ".\n";
  return 0;
}
