// Ablation (extension beyond the paper): are single-threshold rules optimal
// among richer no-communication decision rules? We evaluate symmetric
// two-interval rules
//   bin 0  iff  x in [0, a] ∪ [b, c]
// EXACTLY (cell-conditioning + Lemma 2.4, core/interval_rules) on a grid for
// n = 3, t = 1 and compare against the paper's single-threshold optimum.
// The paper restricts attention to single-threshold rules; this ablation
// measures what that restriction costs at its flagship instance.
#include <iostream>

#include "bench_common.hpp"
#include "core/interval_rules.hpp"
#include "core/symmetric_threshold.hpp"
#include "util/table.hpp"

int main() {
  using ddm::core::IntervalRule;
  using ddm::util::Rational;
  ddm::bench::print_banner(
      "Ablation: two-interval decision rules (exact)",
      "Does a second acceptance interval beat the optimal single threshold? (n=3, t=1)");

  const auto optimum = ddm::core::SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();
  const double best_single = optimum.value.to_double();
  std::cout << "Optimal single threshold: beta* = " << ddm::util::fmt(optimum.beta.approx(), 6)
            << ", P = " << ddm::util::fmt(best_single, 6) << " (exact)\n\n";

  double best_two = 0.0;
  Rational best_a{0};
  Rational best_b{0};
  Rational best_c{0};
  ddm::util::Table table{{"a", "b", "c", "P_exact", "vs single optimum"}};
  constexpr int kGrid = 12;  // twelfths of the unit interval
  for (int ai = 1; ai < kGrid; ++ai) {
    for (int bi = ai + 1; bi < kGrid; ++bi) {
      for (int ci = bi + 1; ci <= kGrid; ++ci) {
        const Rational a{ai, kGrid};
        const Rational b{bi, kGrid};
        const Rational c{ci, kGrid};
        const std::vector<IntervalRule> rules(3, IntervalRule::two_interval(a, b, c));
        const double value =
            ddm::core::interval_rules_winning_probability(rules, Rational{1}).to_double();
        if (value > best_two) {
          best_two = value;
          best_a = a;
          best_b = b;
          best_c = c;
        }
        if (value > 0.50) {
          table.add_row({a.to_string(), b.to_string(), c.to_string(),
                         ddm::util::fmt(value, 6), ddm::util::fmt(value - best_single, 6)});
        }
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nBest two-interval rule on the " << kGrid << "ths grid: [0, " << best_a
            << "] u [" << best_b << ", " << best_c << "] with P = "
            << ddm::util::fmt(best_two, 6) << " (exact)\n"
            << "Single-threshold optimum P = " << ddm::util::fmt(best_single, 6) << "\n"
            << "Finding: every symmetric two-interval rule on the grid loses to the\n"
            << "single-threshold optimum (best gap "
            << ddm::util::fmt(best_single - best_two, 4)
            << "), supporting the paper's restriction to single thresholds at this\n"
            << "instance. (Grid rules whose second interval is degenerate reduce to\n"
            << "single thresholds and are excluded by construction: b > a.)\n";
  return 0;
}
