// Extension: large-n behavior (the paper's Section 6 asks for general
// instances). With capacity t = c·n, the symmetric-threshold loads
// concentrate: bin 0 carries ~ n·beta²/2, bin 1 ~ n·(1−beta²)/2, so the
// minmax-load threshold is beta = 1/sqrt(2) with both loads ~ n/4 — the
// protocol should win a.s. iff c > 1/4. This bench tracks the optimal beta*
// and the optimal winning probability as n grows, in three capacity regimes,
// and compares against the oblivious coin (whose loads are also ~ n/4).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/oblivious.hpp"
#include "core/threshold_optimizer.hpp"
#include "util/table.hpp"

int main() {
  ddm::bench::print_banner("Extension: asymptotics",
                           "Optimal symmetric threshold and winning probability as n grows");

  for (const double c : {0.2, 0.25, 0.3}) {
    std::cout << "Capacity regime t = " << c << " * n  (LLN predicts P -> "
              << (c > 0.25 ? "1" : (c < 0.25 ? "0" : "const")) << "):\n";
    ddm::util::Table table{{"n", "t", "beta*", "P_threshold", "P_oblivious(1/2)"}};
    for (const std::uint32_t n : {2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
      const double t = c * static_cast<double>(n);
      const auto opt = ddm::core::maximize_symmetric_threshold(n, t, 1.0 / std::sqrt(2.0));
      table.add_row({std::to_string(n), ddm::util::fmt(t, 2),
                     ddm::util::fmt(opt.thresholds[0], 4), ddm::util::fmt(opt.value),
                     ddm::util::fmt(
                         ddm::core::optimal_oblivious_winning_probability_double(n, t))});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Shape claims verified: beta* -> 1/sqrt(2) ~= 0.7071 (the load-balancing\n"
               "threshold); P -> 1 for c > 1/4 and -> 0 for c < 1/4 in both protocol\n"
               "classes; at the critical c = 1/4 the probabilities decay slowly.\n"
               "The threshold/coin ranking keeps oscillating with n mod 3 at moderate n\n"
               "(cf. the knowledge trade-off table) before the regimes separate.\n";
  return 0;
}
