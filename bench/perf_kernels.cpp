// Google-benchmark microbenchmarks for the library's computational kernels:
// Proposition 2.2 volumes, the Poisson-binomial collapse of Theorem 4.1, the
// symmetric Theorem 5.1 evaluator, symbolic piecewise construction, Sturm
// root isolation, and the Monte Carlo trial loop.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/certified.hpp"
#include "core/communication.hpp"
#include "core/interval_rules.hpp"
#include "core/nonoblivious.hpp"
#include "core/oblivious.hpp"
#include "core/protocol.hpp"
#include "core/randomized_rules.hpp"
#include "core/reference_kernels.hpp"
#include "core/symmetric_threshold.hpp"
#include "engine/cost_model.hpp"
#include "engine/plan_cache.hpp"
#include "engine/registry.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "core/threshold_optimizer.hpp"
#include "poly/compiled.hpp"
#include "poly/interpolate.hpp"
#include "geom/volume.hpp"
#include "poly/roots.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "util/build_info.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace {

using ddm::util::Rational;

void BM_SimplexBoxVolumeDouble(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<double> sigma(m);
  std::vector<double> pi(m);
  for (std::size_t l = 0; l < m; ++l) {
    sigma[l] = 1.0 + 0.1 * static_cast<double>(l);
    pi[l] = 0.5 + 0.03 * static_cast<double>(l);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::geom::simplex_box_volume_double(sigma, pi));
  }
}
BENCHMARK(BM_SimplexBoxVolumeDouble)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_SimplexBoxVolumeExact(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<Rational> sigma;
  std::vector<Rational> pi;
  for (std::size_t l = 0; l < m; ++l) {
    sigma.emplace_back(static_cast<std::int64_t>(10 + l), 10);
    pi.emplace_back(static_cast<std::int64_t>(5 + l), 10);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::geom::simplex_box_volume(sigma, pi));
  }
}
BENCHMARK(BM_SimplexBoxVolumeExact)->Arg(4)->Arg(8)->Arg(12);

// Naive O(m·2^m) kernels (src/core/reference_kernels.hpp) benchmarked next
// to the Gray-code production kernels above so the speedup stays visible in
// every BENCH_kernels.json snapshot.
void BM_SimplexBoxVolumeDoubleReference(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<double> sigma(m);
  std::vector<double> pi(m);
  for (std::size_t l = 0; l < m; ++l) {
    sigma[l] = 1.0 + 0.1 * static_cast<double>(l);
    pi[l] = 0.5 + 0.03 * static_cast<double>(l);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::reference::simplex_box_volume_double(sigma, pi));
  }
}
BENCHMARK(BM_SimplexBoxVolumeDoubleReference)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_GeneralThresholdDoubleReference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = 0.4 + 0.03 * static_cast<double>(i);
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::reference::threshold_winning_probability(a, t));
  }
}
BENCHMARK(BM_GeneralThresholdDoubleReference)->Arg(4)->Arg(8)->Arg(12);

void BM_ObliviousWinningDp(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> alpha(n, 0.45);
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::oblivious_winning_probability(alpha, t));
  }
}
BENCHMARK(BM_ObliviousWinningDp)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_ObliviousWinningExact(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Rational> alpha(n, Rational(9, 20));
  const Rational t{static_cast<std::int64_t>(n), 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::oblivious_winning_probability(alpha, t));
  }
}
BENCHMARK(BM_ObliviousWinningExact)->Arg(4)->Arg(8)->Arg(12);

void BM_SymmetricThresholdDouble(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ddm::core::symmetric_threshold_winning_probability(n, 0.6, t));
  }
}
BENCHMARK(BM_SymmetricThresholdDouble)->Arg(4)->Arg(8)->Arg(16);

void BM_GeneralThresholdDouble(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = 0.4 + 0.03 * static_cast<double>(i);
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::threshold_winning_probability(a, t));
  }
}
BENCHMARK(BM_GeneralThresholdDouble)->Arg(4)->Arg(8)->Arg(12);

// Same kernel with tracing + metrics collection enabled: together with the
// plain run above this pins the observability overhead in BENCH_kernels.json.
// The disabled-mode run (BM_GeneralThresholdDouble itself) is the one the
// <= 3% budget applies to — obs is compiled in, just switched off there.
void BM_GeneralThresholdDoubleTraced(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = 0.4 + 0.03 * static_cast<double>(i);
  const double t = static_cast<double>(n) / 3.0;
  ddm::obs::start_tracing();
  ddm::obs::set_metrics_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::threshold_winning_probability(a, t));
  }
  ddm::obs::set_metrics_enabled(false);
  ddm::obs::stop_tracing();
}
BENCHMARK(BM_GeneralThresholdDoubleTraced)->Arg(4)->Arg(8)->Arg(12);

void BM_SymbolicPiecewiseBuild(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  const Rational t{static_cast<std::int64_t>(n), 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::SymmetricThresholdAnalysis::build(n, t));
  }
}
BENCHMARK(BM_SymbolicPiecewiseBuild)->Arg(3)->Arg(5)->Arg(7);

void BM_SymbolicOptimize(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(
      n, Rational{static_cast<std::int64_t>(n), 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.optimize());
  }
}
BENCHMARK(BM_SymbolicOptimize)->Arg(3)->Arg(5)->Arg(7);

void BM_SturmIsolation(benchmark::State& state) {
  // Wilkinson-style polynomial with roots k/10, k = 1..d.
  const int d = static_cast<int>(state.range(0));
  ddm::poly::QPoly p{Rational{1}};
  for (int k = 1; k <= d; ++k) {
    p = p * ddm::poly::QPoly{std::vector<Rational>{Rational(-k, 10), Rational{1}}};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::poly::isolate_roots(p, Rational{0}, Rational{1}));
  }
}
BENCHMARK(BM_SturmIsolation)->Arg(4)->Arg(6)->Arg(8);

void BM_IntervalRulesExact(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<ddm::core::IntervalRule> rules(
      n, ddm::core::IntervalRule::two_interval(Rational(1, 4), Rational(1, 2),
                                               Rational(3, 4)));
  const Rational t{static_cast<std::int64_t>(n), 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::interval_rules_winning_probability(rules, t));
  }
}
BENCHMARK(BM_IntervalRulesExact)->Arg(3)->Arg(5)->Arg(7);

void BM_StepRulesDouble(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Rational> probs{Rational{1}, Rational(2, 3), Rational(1, 3),
                                    Rational{0}};
  const std::vector<ddm::core::StepRule> rules(n, ddm::core::StepRule::uniform_grid(probs));
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::step_rules_winning_probability(rules, t));
  }
}
BENCHMARK(BM_StepRulesDouble)->Arg(3)->Arg(5)->Arg(7);

void BM_LagrangeInterpolation(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  std::vector<std::pair<Rational, Rational>> points;
  for (int i = 0; i <= degree; ++i) {
    const Rational x{i + 1, degree + 2};
    points.emplace_back(x, x * x - Rational(1, 3) * x + Rational(7, 5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::poly::lagrange_interpolate(points));
  }
}
BENCHMARK(BM_LagrangeInterpolation)->Arg(4)->Arg(8)->Arg(12);

void BM_InputBankEvaluation(benchmark::State& state) {
  const std::size_t samples = static_cast<std::size_t>(state.range(0));
  ddm::prob::Rng rng{1};
  const ddm::core::InputBank bank{3, samples, rng};
  const ddm::core::WeightedThresholdProtocol protocol{
      ddm::core::VisibilityPattern::full(3)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.winning_fraction(protocol, 1.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples));
}
BENCHMARK(BM_InputBankEvaluation)->Arg(10000)->Arg(100000);

void BM_MonteCarloTrials(benchmark::State& state) {
  const auto protocol = ddm::core::SingleThresholdProtocol::symmetric(
      static_cast<std::size_t>(state.range(0)), Rational(3, 5));
  ddm::prob::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ddm::sim::estimate_winning_probability(protocol, 1.0, 10000, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_MonteCarloTrials)->Arg(3)->Arg(8);

// Same workload fanned across the pool: near-linear scaling is the target,
// and the wins tally is bitwise identical to the serial run by construction.
void BM_MonteCarloTrialsParallel(benchmark::State& state) {
  constexpr std::uint64_t kTrials = 1000000;
  const auto protocol = ddm::core::SingleThresholdProtocol::symmetric(
      static_cast<std::size_t>(state.range(0)), Rational(3, 5));
  ddm::prob::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::sim::estimate_winning_probability(
        protocol, 1.0, kTrials, rng, ddm::util::parallelism()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
}
BENCHMARK(BM_MonteCarloTrialsParallel)->Arg(3)->Arg(8)->UseRealTime();

// Serial baseline at the same trial count, for the scaling ratio.
void BM_MonteCarloTrialsSerial1M(benchmark::State& state) {
  constexpr std::uint64_t kTrials = 1000000;
  const auto protocol = ddm::core::SingleThresholdProtocol::symmetric(
      static_cast<std::size_t>(state.range(0)), Rational(3, 5));
  ddm::prob::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ddm::sim::estimate_winning_probability(protocol, 1.0, kTrials, rng, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
}
BENCHMARK(BM_MonteCarloTrialsSerial1M)->Arg(3)->Arg(8)->UseRealTime();

// Batch grid evaluation through the pool (the `ddm_cli sweep` workload).
void BM_ThresholdBatchParallel(benchmark::State& state) {
  const std::size_t n = 8;
  const std::size_t grid = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> points(grid);
  for (std::size_t k = 0; k < grid; ++k) {
    points[k].assign(n, static_cast<double>(k) / static_cast<double>(grid));
  }
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::threshold_winning_probability_batch(points, t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid));
}
BENCHMARK(BM_ThresholdBatchParallel)->Arg(32)->Arg(128)->UseRealTime();

// Serial baseline for the same grid.
void BM_ThresholdBatchSerial(benchmark::State& state) {
  const std::size_t n = 8;
  const std::size_t grid = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> points(grid);
  for (std::size_t k = 0; k < grid; ++k) {
    points[k].assign(n, static_cast<double>(k) / static_cast<double>(grid));
  }
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& point : points) {
      acc += ddm::core::threshold_winning_probability(point, t);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid));
}
BENCHMARK(BM_ThresholdBatchSerial)->Arg(32)->Arg(128);

// Certified-mode evaluation: the escalation ladder on top of the symmetric
// Theorem 5.1 kernel. Small n settles on the compensated-double tier (~1x
// the plain kernel plus the tracked error bookkeeping); n = 24 is past the
// cancellation cliff and pays for a full interval-tier evaluation — keeping
// both in BENCH_kernels.json tracks the cost of certification in each regime.
void BM_CertifiedSymmetricThreshold(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  const Rational beta{3, 8};
  const Rational t{static_cast<std::int64_t>(n), 4};  // dyadic: tier 0 eligible
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ddm::core::certified_symmetric_threshold_winning_probability(n, beta, t));
  }
}
BENCHMARK(BM_CertifiedSymmetricThreshold)->Arg(8)->Arg(16)->Arg(24);

void BM_CertifiedGeneralThreshold(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Rational> a;
  for (std::size_t i = 0; i < n; ++i) {
    a.emplace_back(static_cast<std::int64_t>(13 + i), 32);  // dyadic: tier 0 eligible
  }
  const Rational t{static_cast<std::int64_t>(n), 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::certified_threshold_winning_probability(a, t));
  }
}
// Stays in the compensated-double regime: the escalated interval tier for
// the general O(3^n) kernel costs seconds per call (the symmetric n = 24
// case above is the escalation showcase).
BENCHMARK(BM_CertifiedGeneralThreshold)->Arg(4)->Arg(8);

void BM_CertifiedSimplexBoxVolume(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<Rational> sigma;
  std::vector<Rational> pi;
  for (std::size_t l = 0; l < m; ++l) {
    sigma.emplace_back(static_cast<std::int64_t>(16 + l), 16);  // dyadic sides
    pi.emplace_back(static_cast<std::int64_t>(8 + l), 16);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::geom::certified_simplex_box_volume(sigma, pi));
  }
}
BENCHMARK(BM_CertifiedSimplexBoxVolume)->Arg(4)->Arg(8)->Arg(12);

// Full compass search with parallel probe evaluation (n = 6 → 12 concurrent
// Theorem 5.1 evaluations per iteration).
void BM_ThresholdSearchParallelProbes(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::maximize_thresholds(
        std::vector<double>(n, 0.5), t, 0.25, 1e-6, 4000));
  }
}
BENCHMARK(BM_ThresholdSearchParallelProbes)->Arg(4)->Arg(6)->UseRealTime();

// --- Compiled evaluation pipeline ---------------------------------------
// The `ddm_cli sweep --engine=compiled` workload: lower the exact symmetric
// piecewise polynomial once, then evaluate the grid through the certified
// Horner plan. Per-point cost (items/s) is the number to compare against
// BM_GeneralThresholdDouble/12 — one iteration there is one point through
// the O(3^n) kernel, and the acceptance bar is a >= 20x gap at n = 12.
void BM_SweepCompiled(benchmark::State& state) {
  // Pinned to the scalar Horner path: this family is the denominator of the
  // BM_SweepCompiledSimd speedup ratio run_bench.sh --check enforces, and
  // stays comparable with pre-SIMD BENCH_kernels.json baselines.
  const ddm::util::simd::ScopedForceWidth force_scalar{1};
  const std::size_t steps = static_cast<std::size_t>(state.range(0));
  const auto analysis =
      ddm::core::SymmetricThresholdAnalysis::build(12, Rational{4});
  const auto plan = ddm::poly::CompiledPiecewise::lower(analysis.winning_probability());
  std::vector<double> betas(steps + 1);
  for (std::size_t k = 0; k <= steps; ++k) {
    betas[k] = static_cast<double>(k) / static_cast<double>(steps);
  }
  std::vector<double> out(betas.size());
  for (auto _ : state) {
    plan.eval_grid(betas, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(betas.size()));
}
// MinTime on both compiled-sweep families: per-iteration times are a few
// microseconds, so the default sampling window is short enough for AVX-512
// frequency ramps (triggered by neighbouring benchmarks) to skew a sample —
// the Simd-vs-scalar gate in run_bench.sh --check needs stable numbers.
BENCHMARK(BM_SweepCompiled)->Arg(1024)->Arg(10000)->UseRealTime()->MinTime(1.0);

// Same symmetric n = 12 sweep through the batch kernel — the `--engine=kernel`
// fallback path, and the denominator of the compiled-vs-kernel ratio on the
// exact CLI workload (small grid: one point costs ~3^12 subset visits).
void BM_SweepKernel(benchmark::State& state) {
  const std::size_t n = 12;
  const std::size_t steps = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> points(steps + 1);
  for (std::size_t k = 0; k <= steps; ++k) {
    points[k].assign(n, static_cast<double>(k) / static_cast<double>(steps));
  }
  const double t = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::threshold_winning_probability_batch(points, t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_SweepKernel)->Arg(8)->UseRealTime();

// One amortized subset walk per block of kThresholdBatchBlock points versus
// the per-point loop (BM_ThresholdBatchSerial): the walk's sign/subset-sum
// bookkeeping is hoisted to per-subset state, so per-point cost falls toward
// the SoA inner-update cost as the block fills.
void BM_BatchAmortized(benchmark::State& state) {
  // Pinned to the scalar subset walk — the BM_BatchAmortizedSimd denominator
  // (see BM_SweepCompiled for the rationale).
  const ddm::util::simd::ScopedForceWidth force_scalar{1};
  const std::size_t n = 10;
  const std::size_t grid = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> points(grid);
  for (std::size_t k = 0; k < grid; ++k) {
    points[k].assign(n, 0.05 + 0.9 * static_cast<double>(k) / static_cast<double>(grid));
  }
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::threshold_winning_probability_batch(points, t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid));
}
BENCHMARK(BM_BatchAmortized)->Arg(16)->Arg(64)->UseRealTime();

// Compass search after probe batching: all 2n probes of an iteration go
// through one threshold_winning_probability_batch call (one amortized walk
// when 2n <= kThresholdBatchBlock), bitwise-identical to the serial probes.
void BM_OptimizerBatched(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::maximize_thresholds(
        std::vector<double>(n, 0.45), t, 0.25, 1e-6, 2000));
  }
}
BENCHMARK(BM_OptimizerBatched)->Arg(6)->Arg(8)->UseRealTime();

// --- SIMD hot paths ------------------------------------------------------
// The vectorized counterparts of BM_BatchAmortized / BM_SweepCompiled:
// identical workloads forced to the widest compiled pack width this host
// executes (util/simd.hpp), so the family-vs-family cpu_time ratio IS the
// lane speedup. The results are bitwise identical to the scalar families —
// the packs replicate the scalar op sequence per lane — so the ratio
// measures dispatch alone. scripts/run_bench.sh --check enforces >= 2x
// (docs/performance.md §4 records ~the lane count on AVX-512 hosts).
void BM_BatchAmortizedSimd(benchmark::State& state) {
  const ddm::util::simd::ScopedForceWidth force_native{
      ddm::util::simd::native_width()};
  const std::size_t n = 10;
  const std::size_t grid = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> points(grid);
  for (std::size_t k = 0; k < grid; ++k) {
    points[k].assign(n, 0.05 + 0.9 * static_cast<double>(k) / static_cast<double>(grid));
  }
  const double t = static_cast<double>(n) / 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddm::core::threshold_winning_probability_batch(points, t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid));
  state.counters["simd_width"] =
      static_cast<double>(ddm::util::simd::dispatch_width());
}
BENCHMARK(BM_BatchAmortizedSimd)->Arg(16)->Arg(64)->UseRealTime();

void BM_SweepCompiledSimd(benchmark::State& state) {
  const ddm::util::simd::ScopedForceWidth force_native{
      ddm::util::simd::native_width()};
  const std::size_t steps = static_cast<std::size_t>(state.range(0));
  const auto analysis =
      ddm::core::SymmetricThresholdAnalysis::build(12, Rational{4});
  const auto plan = ddm::poly::CompiledPiecewise::lower(analysis.winning_probability());
  std::vector<double> betas(steps + 1);
  for (std::size_t k = 0; k <= steps; ++k) {
    betas[k] = static_cast<double>(k) / static_cast<double>(steps);
  }
  std::vector<double> out(betas.size());
  for (auto _ : state) {
    plan.eval_grid(betas, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(betas.size()));
  state.counters["simd_width"] =
      static_cast<double>(ddm::util::simd::dispatch_width());
}
BENCHMARK(BM_SweepCompiledSimd)->Arg(1024)->Arg(10000)->UseRealTime()->MinTime(1.0);

// --- profile-guided dispatch (engine/cost_model.hpp) -----------------------
//
// The mixed mid-n workload the paper's serving story lives on: four
// symmetric instances spanning the static rule's blind spot. At request
// tolerance 1e-5 the compiled plan's certificate clears every instance
// (n = 10: 5.2e-8, n = 12: 3.3e-6), but the static auto rule holds compiled
// to its fixed 1e-9 bound and pays the batch kernel for n = 10 and n = 12 —
// three orders of magnitude more per point. A calibrated CostModel routes
// all four to the compiled plan; run_bench.sh --check gates
// static/calibrated >= 1.5x and forced-best/calibrated >= 0.9x.

/// The four workload instances with 2048-point beta grids and tolerance
/// 1e-5, built once (2048 points amortize the per-request select() cost the
/// same way real sweep/serve batches do).
const std::vector<ddm::engine::EvalRequest>& dispatch_workload() {
  static const std::vector<ddm::engine::EvalRequest>* workload = [] {
    auto* requests = new std::vector<ddm::engine::EvalRequest>();
    const std::pair<std::uint32_t, Rational> instances[] = {
        {6, Rational{2}}, {8, Rational{8, 3}}, {10, Rational{10, 3}}, {12, Rational{4}}};
    for (const auto& [n, t] : instances) {
      ddm::engine::EvalRequest request;
      request.n = n;
      request.t = t;
      request.tolerance = Rational{1, 100000};
      request.betas.reserve(2048);
      for (std::size_t k = 0; k < 2048; ++k) {
        request.betas.push_back(static_cast<double>(k + 1) / 2049.0);
      }
      requests->push_back(std::move(request));
    }
    return requests;
  }();
  return *workload;
}

/// One real (tiny-grid) calibration, shared by every calibrated iteration.
std::shared_ptr<ddm::engine::CostModel> bench_cost_model() {
  static const std::shared_ptr<ddm::engine::CostModel> model = [] {
    ddm::engine::CalibrationOptions options;
    options.ns = {1, 2, 4, 8, 12};
    options.batches = {16, 256};
    return ddm::engine::CostModel::calibrate(options);
  }();
  return model;
}

void run_dispatch_workload(benchmark::State& state, const ddm::engine::EnginePolicy& policy) {
  // Pre-lower the plans so every variant measures dispatch + evaluation,
  // not one-time exact-algebra lowering.
  for (const ddm::engine::EvalRequest& request : dispatch_workload()) {
    try {
      (void)ddm::engine::PlanCache::instance().get_or_lower(request.n, request.t);
    } catch (const std::exception&) {
    }
  }
  std::int64_t points = 0;
  for (auto _ : state) {
    double accumulated = 0.0;
    for (const ddm::engine::EvalRequest& request : dispatch_workload()) {
      const ddm::engine::Selection selection = ddm::engine::select(policy, request);
      const ddm::engine::EvalOutcome outcome = selection.evaluator->evaluate(request);
      accumulated += outcome.values.front();
      points += static_cast<std::int64_t>(outcome.values.size());
    }
    benchmark::DoNotOptimize(accumulated);
  }
  state.SetItemsProcessed(points);
}

void BM_AutoDispatchStatic(benchmark::State& state) {
  ddm::engine::CostModel::set_configured(nullptr);  // pin the static rule
  run_dispatch_workload(state, ddm::engine::EnginePolicy{});
}
BENCHMARK(BM_AutoDispatchStatic)->UseRealTime();

void BM_AutoDispatchCalibrated(benchmark::State& state) {
  ddm::engine::CostModel::set_configured(bench_cost_model());
  run_dispatch_workload(state, ddm::engine::EnginePolicy{});
  ddm::engine::CostModel::set_configured(nullptr);
}
BENCHMARK(BM_AutoDispatchCalibrated)->UseRealTime();

void BM_AutoDispatchForcedBest(benchmark::State& state) {
  // The best single forced engine for this workload: every certificate
  // clears 1e-5, so a user who hand-tuned would write --engine=compiled.
  ddm::engine::CostModel::set_configured(nullptr);
  ddm::engine::EnginePolicy policy;
  policy.engine = "compiled";
  run_dispatch_workload(state, policy);
}
BENCHMARK(BM_AutoDispatchForcedBest)->UseRealTime();

}  // namespace

// Custom main so the JSON context records the build type of BOTH halves of
// the measured code. The stock `library_build_type` field describes how the
// google-benchmark library was compiled (a debug build on this image — out
// of our control and irrelevant to kernel timings), not perf_kernels or
// libddm — which is how a baseline benchmarking unoptimised kernels once
// got committed without any visible marker, and how a second hole stayed
// open after the first fix: `ddm_build_type` only proves THIS translation
// unit saw NDEBUG, while the kernels live in libddm, which a stale or
// mixed-configuration tree can supply as a debug build. `ddm::util::
// build_type()` is compiled inside libddm, so `ddm_library_build_type`
// stamps the library actually linked. scripts/run_bench.sh refuses to
// record or compare unless BOTH stamps say "release".
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("ddm_build_type", "release");
#else
  benchmark::AddCustomContext("ddm_build_type", "debug");
#endif
  benchmark::AddCustomContext("ddm_library_build_type", ddm::util::build_type());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
