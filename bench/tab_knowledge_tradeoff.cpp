// The knowledge/uniformity trade-off table (abstract + Section 1): for each
// n with capacity t = n/3, compare
//   (a) the optimal oblivious protocol (uniform: alpha = 1/2),
//   (b) the optimal non-oblivious single-threshold protocol (non-uniform:
//       beta* depends on n), and
//   (c) the full-information oracle (an extension baseline) —
// quantifying what each increment of information buys.
#include <iostream>

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/oblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "util/table.hpp"

int main() {
  using ddm::util::Rational;
  ddm::bench::print_banner(
      "Table: knowledge trade-off",
      "Oblivious optimum vs non-oblivious optimum vs full-information oracle, t = n/3");

  ddm::util::Table table{{"n", "t", "P_oblivious (exact)", "beta*", "P_threshold (exact)",
                          "P_full_info (MC, 95% CI)", "gain obl->thr", "gain thr->full"}};
  ddm::prob::Rng rng{60606};
  for (std::uint32_t n = 2; n <= 8; ++n) {
    const Rational t{n, 3};
    const double oblivious =
        ddm::core::optimal_oblivious_winning_probability(n, t).to_double();
    const auto opt = ddm::core::SymmetricThresholdAnalysis::build(n, t).optimize();
    const double threshold = opt.value.to_double();
    const double t_d = t.to_double();
    const auto oracle = ddm::sim::estimate_event_probability(
        n,
        [t_d](std::span<const double> xs) { return ddm::core::full_information_win(xs, t_d); },
        500000, rng);
    table.add_row({std::to_string(n), t.to_string(), ddm::util::fmt(oblivious),
                   ddm::util::fmt(opt.beta.approx(), 4), ddm::util::fmt(threshold),
                   ddm::util::fmt(oracle.estimate, 4) + " [" +
                       ddm::util::fmt(oracle.ci_low, 4) + ", " +
                       ddm::util::fmt(oracle.ci_high, 4) + "]",
                   ddm::util::fmt(threshold - oblivious, 4),
                   ddm::util::fmt(oracle.estimate - threshold, 4)});
  }
  table.print(std::cout);

  std::cout
      << "\nShape claims: the paper asserts the non-oblivious optimum beats the\n"
         "oblivious optimum. Our exact computation confirms this for most n but\n"
         "finds the claim REVERSED exactly when n = 1 (mod 3) at t = n/3 (n = 4, 7:\n"
         "gain obl->thr is negative) — including the paper's own second instance\n"
         "n = 4, delta = 4/3. Both sides are exact rational arithmetic,\n"
         "cross-checked by Monte Carlo; see EXPERIMENTS.md, 'discrepancies'.\n"
         "beta* varying with n (non-uniformity) is confirmed throughout.\n";
  return 0;
}
