// Section 5.2.1 case table (n = 3, δ = 1): per-interval winning-probability
// polynomials, the optimality condition on each interval, the accepted /
// rejected critical points, and the optimum — the paper's case analysis,
// regenerated mechanically and compared against the printed expressions.
#include <iostream>

#include "bench_common.hpp"
#include "core/symmetric_threshold.hpp"
#include "poly/roots.hpp"
#include "util/table.hpp"

int main() {
  using ddm::poly::QPoly;
  using ddm::util::Rational;
  ddm::bench::print_banner("Table: Section 5.2.1",
                           "Case analysis for n = 3, delta = 1 (symmetric thresholds)");

  const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(3, Rational{1});
  const auto& pieces = analysis.winning_probability().pieces();

  // The paper's printed pieces for comparison.
  const QPoly paper_low{std::vector<Rational>{Rational(1, 6), Rational{0}, Rational(3, 2),
                                              Rational(-1, 2)}};
  const QPoly paper_high{std::vector<Rational>{Rational(-11, 6), Rational{9},
                                               Rational(-21, 2), Rational(7, 2)}};

  ddm::util::Table table{{"interval", "derived P(beta)", "paper P(beta)", "match"}};
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const QPoly& expected = pieces[i].hi <= Rational(1, 2) ? paper_low : paper_high;
    table.add_row({"[" + pieces[i].lo.to_string() + ", " + pieces[i].hi.to_string() + "]",
                   pieces[i].poly.to_string("b"), expected.to_string("b"),
                   pieces[i].poly == expected ? "YES" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nOptimality conditions per interval (derivatives):\n";
  ddm::util::Table conditions{{"interval", "P'(beta)", "roots in interval"}};
  for (const auto& piece : pieces) {
    const QPoly deriv = piece.poly.derivative();
    std::string roots_text;
    if (!deriv.is_zero() && deriv.degree() >= 1) {
      for (const auto& root : ddm::poly::isolate_roots(deriv, piece.lo, piece.hi)) {
        const auto refined = ddm::poly::refine_root(
            deriv, root, Rational{ddm::util::BigInt{1},
                                  ddm::util::BigInt::pow(ddm::util::BigInt{2}, 96)});
        if (!roots_text.empty()) roots_text += ", ";
        roots_text += ddm::util::fmt(refined.approx());
      }
    }
    if (roots_text.empty()) roots_text = "(none)";
    conditions.add_row({"[" + piece.lo.to_string() + ", " + piece.hi.to_string() + "]",
                        deriv.to_string("b"), roots_text});
  }
  conditions.print(std::cout);

  const auto opt = analysis.optimize();
  std::cout << "\nOptimum:\n"
            << "  beta*      = " << ddm::util::fmt(opt.beta.approx(), 15)
            << "   (paper: 1 - sqrt(1/7) = 0.622035...)\n"
            << "  P(beta*)   = " << ddm::util::fmt(opt.value.to_double(), 15)
            << "   (paper: 0.545)\n"
            << "  condition  = " << opt.optimality_condition.to_string("b")
            << "   (paper: beta^2 - 2 beta + 6/7 = 0, scaled by 21/2)\n"
            << "  This settles the Papadimitriou-Yannakakis conjecture for n = 3, delta = 1.\n";
  return 0;
}
