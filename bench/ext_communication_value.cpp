// Extension: the value of communication (the Papadimitriou–Yannakakis 1991
// programme the paper builds on; Sections 1 and 6 position the combinatorial
// framework for exactly this). For n = 3, t = 1 we optimize the PY
// weighted-threshold class over increasingly rich visibility patterns with
// common-random-number search, bracketing everything between the paper's
// exact no-communication optimum and the full-information oracle.
#include <iostream>

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/communication.hpp"
#include "core/symmetric_threshold.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "util/table.hpp"

int main() {
  using ddm::core::VisibilityPattern;
  using ddm::core::WeightedThresholdProtocol;
  using ddm::util::Rational;
  ddm::bench::print_banner(
      "Extension: the value of communication (n = 3, t = 1)",
      "Optimized weighted-threshold protocols per visibility pattern (CRN search)");

  ddm::prob::Rng bank_rng{777001};
  const ddm::core::InputBank bank{3, 150000, bank_rng};

  const auto exact_no_comm =
      ddm::core::SymmetricThresholdAnalysis::build(3, Rational{1}).optimize();

  struct PatternCase {
    const char* name;
    std::vector<std::pair<std::size_t, std::size_t>> edges;
  };
  const std::vector<PatternCase> cases{
      {"no communication", {}},
      {"one edge (0 -> 1)", {{0, 1}}},
      {"chain (0 -> 1, 1 -> 2)", {{0, 1}, {1, 2}}},
      {"star into 2 (0 -> 2, 1 -> 2)", {{0, 2}, {1, 2}}},
      {"ring (0 -> 1, 1 -> 2, 2 -> 0)", {{0, 1}, {1, 2}, {2, 0}}},
      {"full (everyone sees everything)", {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}},
  };

  ddm::util::Table table{{"pattern", "#edges", "optimized P (bank)", "evaluations"}};
  ddm::prob::Rng restart_rng{777003};
  for (const PatternCase& c : cases) {
    const auto pattern = VisibilityPattern::from_edges(3, c.edges);
    // Multi-start: the default single-threshold seed plus random jitters
    // (compass search on a rugged objective needs restarts to respect the
    // class-inclusion monotonicity across patterns).
    double best = 0.0;
    std::uint32_t evaluations = 0;
    for (int attempt = 0; attempt < 6; ++attempt) {
      WeightedThresholdProtocol start{pattern};
      if (attempt == 1) {
        // Structured seed: receivers subtract what they hear ("avoid the
        // sender's bin when its load is big") — the PY'91 protocol shape.
        for (std::size_t i = 0; i < 3; ++i) {
          for (const std::size_t j : pattern.view(i)) {
            if (j != i) start.set_weight(i, j, -1.0);
          }
        }
      } else if (attempt > 1) {
        std::vector<double> params = start.parameters();
        for (double& p : params) p += restart_rng.uniform(-0.75, 0.75);
        start.set_parameters(params);
      }
      const auto result = ddm::core::optimize_weighted_threshold(std::move(start), 1.0,
                                                                 bank, 0.25, 2e-4, 15000);
      best = std::max(best, result.value);
      evaluations += result.evaluations;
    }
    table.add_row({c.name, std::to_string(pattern.edge_count()),
                   ddm::util::fmt(best, 4), std::to_string(evaluations)});
  }
  table.print(std::cout);

  ddm::prob::Rng oracle_rng{777002};
  const auto oracle = ddm::sim::estimate_event_probability(
      3, [](std::span<const double> xs) { return ddm::core::full_information_win(xs, 1.0); },
      1000000, oracle_rng);

  std::cout << "\nBrackets:\n"
            << "  exact no-communication optimum (this paper): "
            << ddm::util::fmt(exact_no_comm.value.to_double(), 4) << "\n"
            << "  full-information oracle (MC):                "
            << ddm::util::fmt(oracle.estimate, 4) << "\n"
            << "\nShape claims: by class inclusion, richer patterns can only help; the\n"
               "multi-start search respects this up to residual local-optimum noise.\n"
               "The no-communication row matches the paper's exact optimum to bank\n"
               "resolution; even full visibility in the weighted-threshold class stays\n"
               "below the oracle (which may split loads non-linearly).\n";
  return 0;
}
