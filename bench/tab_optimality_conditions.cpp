// Optimality-condition table (Corollary 4.2 + Theorem 5.2): shows the exact
// gradient of the oblivious winning probability vanishing at alpha = 1/2 (and
// not elsewhere), and the non-oblivious optimality polynomials per n — whose
// roots differ across n, demonstrating that Theorem 5.2's conditions admit no
// uniform solution.
#include <iostream>

#include "bench_common.hpp"
#include "core/optimality.hpp"
#include "core/symmetric_threshold.hpp"
#include "util/table.hpp"

int main() {
  using ddm::util::Rational;
  ddm::bench::print_banner("Table: optimality conditions",
                           "Corollary 4.2 (oblivious) and Theorem 5.2 (non-oblivious)");

  std::cout << "Oblivious conditions: max_k |dP/dalpha_k| at probe vectors (t = n/3)\n";
  ddm::util::Table oblivious{{"n", "alpha=1/2", "alpha=1/4", "alpha=3/4", "alpha=9/10"}};
  for (std::uint32_t n = 2; n <= 10; ++n) {
    const Rational t{n, 3};
    std::vector<std::string> row{std::to_string(n)};
    for (const Rational probe : {Rational(1, 2), Rational(1, 4), Rational(3, 4),
                                 Rational(9, 10)}) {
      const std::vector<Rational> alpha(n, probe);
      row.push_back(ddm::util::fmt(
          ddm::core::stationarity_residual(alpha, t).to_double(), 8));
    }
    oblivious.add_row(std::move(row));
  }
  oblivious.print(std::cout);
  std::cout << "(Exactly zero only at alpha = 1/2 — Theorem 4.3.)\n\n";

  std::cout << "Diagonal condition in r = alpha/(1-alpha) (Section 4.2): coefficients\n"
               "c_k = C(n-1,k)(phi(k+1) - phi(k)) are antisymmetric, so r = 1 (alpha = 1/2)\n"
               "is always a root (t = n/3):\n";
  ddm::util::Table diagonal{{"n", "coefficients c_0..c_{n-1}", "antisymmetric", "sum (root at r=1)"}};
  for (std::uint32_t n = 2; n <= 7; ++n) {
    const auto c = ddm::core::diagonal_condition_coefficients(n, Rational{n, 3});
    std::string text;
    bool antisym = true;
    Rational sum{0};
    for (std::uint32_t k = 0; k < n; ++k) {
      if (!text.empty()) text += ", ";
      text += c[k].to_string();
      sum += c[k];
      if (c[k] != -c[n - 1 - k]) antisym = false;
    }
    diagonal.add_row({std::to_string(n), text, antisym ? "YES" : "NO", sum.to_string()});
  }
  diagonal.print(std::cout);
  std::cout << "\n";

  std::cout << "Non-oblivious optimality polynomials P'(beta) on the optimal piece, t = n/3:\n";
  ddm::util::Table nonoblivious{{"n", "optimality condition", "beta*", "P(beta*)"}};
  for (std::uint32_t n = 2; n <= 8; ++n) {
    const auto opt =
        ddm::core::SymmetricThresholdAnalysis::build(n, Rational{n, 3}).optimize();
    nonoblivious.add_row({std::to_string(n), opt.optimality_condition.to_string("b"),
                          ddm::util::fmt(opt.beta.approx(), 6),
                          ddm::util::fmt(opt.value.to_double(), 6)});
  }
  nonoblivious.print(std::cout);
  std::cout << "(The conditions — and their roots — depend on n: no uniform solution,\n"
               "confirming Theorem 5.2's non-uniformity conclusion. For n = 3 the\n"
               "condition is (21/2)(beta^2 - 2 beta + 6/7); for n = 4 it matches the\n"
               "paper's cubic with the constant's sign corrected.)\n";
  return 0;
}
