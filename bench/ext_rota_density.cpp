// Extension / curiosity: Lemma 2.5 answers a Research Problem posed by
// Rota ("find a nice formula for the density of n independent, uniformly
// distributed random variables"). This bench prints the closed-form density
// of a heterogeneous sum of uniforms against a Monte Carlo histogram — the
// reproduction's visual check of the formula the paper dedicates to Rota's
// memory.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "prob/rng.hpp"
#include "prob/uniform_sum.hpp"
#include "util/table.hpp"

int main() {
  ddm::bench::print_banner(
      "Extension: Rota's density formula (Lemma 2.5)",
      "Closed-form density of U[0,0.5] + U[0,0.8] + U[0,1.2] vs Monte Carlo histogram");

  const std::vector<double> pi{0.5, 0.8, 1.2};
  const double support = 0.5 + 0.8 + 1.2;

  // Monte Carlo histogram.
  constexpr int kBins = 25;
  constexpr std::uint64_t kSamples = 2000000;
  std::vector<std::uint64_t> histogram(kBins, 0);
  ddm::prob::Rng rng{31337};
  for (std::uint64_t s = 0; s < kSamples; ++s) {
    const double x =
        rng.uniform(0.0, pi[0]) + rng.uniform(0.0, pi[1]) + rng.uniform(0.0, pi[2]);
    const int bin = std::min(kBins - 1, static_cast<int>(x / support * kBins));
    ++histogram[static_cast<std::size_t>(bin)];
  }

  ddm::util::Table table{{"t", "density (Lemma 2.5)", "MC histogram density", "CDF (Lemma 2.4)"}};
  const double bin_width = support / kBins;
  for (int b = 0; b < kBins; ++b) {
    const double mid = (b + 0.5) * bin_width;
    const double mc_density = static_cast<double>(histogram[static_cast<std::size_t>(b)]) /
                              static_cast<double>(kSamples) / bin_width;
    table.add_row({ddm::util::fmt(mid, 3), ddm::util::fmt(ddm::prob::sum_uniform_pdf(pi, mid)),
                   ddm::util::fmt(mc_density), ddm::util::fmt(ddm::prob::sum_uniform_cdf(pi, mid))});
  }
  table.print(std::cout);

  std::cout << "\n(The histogram column should track the closed form to ~3 decimals; the\n"
               "density is piecewise-polynomial with breaks where subsets of ranges\n"
               "saturate — visible as slope changes.)\n";
  return 0;
}
