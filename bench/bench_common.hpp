// bench_common.hpp — shared helpers for the figure/table reproduction
// binaries. Each binary prints a header identifying the experiment, the
// paper's claimed values where the paper states them, and the measured
// values side by side (see EXPERIMENTS.md for the recorded comparison).
#pragma once

#include <iostream>
#include <string>

namespace ddm::bench {

inline void print_banner(const std::string& experiment_id, const std::string& description) {
  std::cout << "================================================================\n"
            << experiment_id << "\n"
            << description << "\n"
            << "Paper: Georgiades/Mavronicolas/Spirakis, FCT'99 (full version 2000)\n"
            << "================================================================\n";
}

}  // namespace ddm::bench
