// Figure 1: winning probability P(β) of the symmetric single-threshold
// protocol versus the common threshold β, for n = 3, 4, 5 at fixed capacity
// t = 1. The provided paper text renders the figure as a caption only; the
// shape claims we reproduce (see DESIGN.md): a single interior maximum above
// β = 1/2 whose location shifts with n — the protocol is non-uniform.
//
// Output: one CSV-like series per n (exact piecewise polynomial evaluated on
// a grid, with a Monte Carlo overlay every 10th point), followed by the
// certified optimum of each curve.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/nonoblivious.hpp"
#include "core/protocol.hpp"
#include "core/symmetric_threshold.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  using ddm::util::Rational;
  ddm::bench::print_banner(
      "Figure 1", "P(beta) of the symmetric threshold protocol, n = 3,4,5, capacity t = 1");

  constexpr int kGrid = 50;
  constexpr std::uint64_t kMcTrials = 200000;

  ddm::util::Table table{{"beta", "P_exact(n=3)", "P_exact(n=4)", "P_exact(n=5)",
                          "P_mc(n=3)", "P_mc(n=4)", "P_mc(n=5)"}};
  const Rational t{1};
  std::vector<ddm::core::SymmetricThresholdAnalysis> analyses;
  for (std::uint32_t n = 3; n <= 5; ++n) {
    analyses.push_back(ddm::core::SymmetricThresholdAnalysis::build(n, t));
  }

  ddm::prob::Rng rng{1001};
  for (int i = 0; i <= kGrid; ++i) {
    const Rational beta{i, kGrid};
    std::vector<std::string> row{ddm::util::fmt(beta.to_double(), 2)};
    for (const auto& analysis : analyses) {
      row.push_back(ddm::util::fmt(analysis.winning_probability()(beta).to_double()));
    }
    for (std::uint32_t n = 3; n <= 5; ++n) {
      if (i % 10 != 0) {
        row.push_back("-");
        continue;
      }
      const auto protocol = ddm::core::SingleThresholdProtocol::symmetric(n, beta);
      const auto sim = ddm::sim::estimate_winning_probability(protocol, 1.0, kMcTrials, rng);
      row.push_back(ddm::util::fmt(sim.estimate, 4));
    }
    table.add_row(std::move(row));
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::cout << "\nCertified optima (exact piecewise analysis):\n";
  ddm::util::Table optima{{"n", "t", "beta*", "P(beta*)", "paper"}};
  for (std::uint32_t n = 3; n <= 5; ++n) {
    const auto opt = analyses[n - 3].optimize();
    optima.add_row({std::to_string(n), "1", ddm::util::fmt(opt.beta.approx()),
                    ddm::util::fmt(opt.value.to_double()),
                    n == 3 ? "beta*=0.622, P=0.545" : "(figure only)"});
  }
  optima.print(std::cout);
  return 0;
}
