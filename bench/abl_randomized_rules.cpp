// Ablation: does randomization help anonymous no-communication protocols?
// For each n (t = n/3), compare exactly
//   * the optimal oblivious protocol (randomized, input-blind: the coin),
//   * the optimal deterministic symmetric threshold (the paper's class),
//   * the best symmetric RANDOMIZED step rule found on a 4-cell grid
//     (compass search on the exact evaluator) — a class containing both.
// Outcome: where the coin beats the threshold (n = 4, 7; discrepancy D2),
// the optimal anonymous protocol is genuinely randomized; elsewhere the
// deterministic threshold (approximated on the grid) prevails.
#include <iostream>

#include "bench_common.hpp"
#include "core/oblivious.hpp"
#include "core/randomized_rules.hpp"
#include "core/symmetric_threshold.hpp"
#include "util/table.hpp"

int main() {
  using ddm::util::Rational;
  ddm::bench::print_banner(
      "Ablation: randomized anonymous rules",
      "Coin vs deterministic threshold vs optimized 4-cell randomized rule, t = n/3");

  ddm::util::Table table{{"n", "t", "P_coin (exact)", "P_threshold* (exact)",
                          "P_step4 (search)", "step4 cell probs", "best class"}};
  for (std::uint32_t n = 2; n <= 7; ++n) {
    const Rational t{n, 3};
    const double coin = ddm::core::optimal_oblivious_winning_probability(n, t).to_double();
    const auto threshold = ddm::core::SymmetricThresholdAnalysis::build(n, t).optimize();
    const double threshold_value = threshold.value.to_double();

    // Several starts (coin-like, threshold-like, mixed); keep the best.
    const std::vector<std::vector<double>> starts{
        {0.5, 0.5, 0.5, 0.5}, {1.0, 1.0, 1.0, 0.0}, {1.0, 1.0, 0.0, 0.0},
        {1.0, 1.0, 0.5, 0.0}, {1.0, 0.7, 0.3, 0.0}, {0.9, 0.6, 0.4, 0.1}};
    double step4 = 0.0;
    std::vector<double> best_probs;
    for (const auto& start : starts) {
      const auto result =
          ddm::core::maximize_symmetric_step_rule(n, t.to_double(), 4, start);
      if (result.value > step4) {
        step4 = result.value;
        best_probs = result.probabilities;
      }
    }

    const char* best = "threshold";
    if (coin > threshold_value && coin >= step4 - 1e-9) best = "coin/randomized";
    if (step4 > std::max(coin, threshold_value) + 1e-6) best = "randomized step";

    std::string probs_text;
    for (const double p : best_probs) {
      if (!probs_text.empty()) probs_text += ",";
      probs_text += ddm::util::fmt(p, 2);
    }
    table.add_row({std::to_string(n), t.to_string(), ddm::util::fmt(coin),
                   ddm::util::fmt(threshold_value), ddm::util::fmt(step4), probs_text, best});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the 4-cell grid is a coarse subclass — it cannot place a cell\n"
         "boundary at the optimal threshold (0.622, 0.678, ...), so the searched\n"
         "value can trail the exact threshold optimum. The decisive rows are\n"
         "n = 4 and n = 7 (discrepancy D2): there a RANDOMIZED step rule beats\n"
         "both the coin and the best deterministic threshold — the discovered\n"
         "rule combines a NON-MONOTONE deterministic cell pattern with one\n"
         "partially randomized cell (e.g. p = (0, 0.83, 1, 0) at n = 4). The\n"
         "optimal anonymous no-communication protocol at those instances is\n"
         "genuinely randomized and input-aware — neither a coin nor a threshold.\n";
  return 0;
}
