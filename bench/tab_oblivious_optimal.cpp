// Theorem 4.3 table: the optimal oblivious protocol is α = 1/2 for EVERY n
// (uniformity), with winning probability 2^{-n} Σ_k C(n,k) φ_t(k). This
// binary tabulates the exact optimum across n and capacity regimes, verifies
// the optimality conditions (Corollary 4.2) vanish at 1/2, and shows probe
// vectors losing to 1/2.
#include <iostream>

#include "bench_common.hpp"
#include "core/oblivious.hpp"
#include "core/optimality.hpp"
#include "util/table.hpp"

int main() {
  using ddm::util::Rational;
  ddm::bench::print_banner("Table: Theorem 4.3",
                           "Optimal oblivious protocol alpha = 1/2: exact winning probability");

  ddm::util::Table table{{"n", "P*(t=1)", "P*(t=n/3)", "P*(t=n/4)", "grad residual at 1/2",
                          "best probe != 1/2 (t=n/3)"}};
  for (std::uint32_t n = 2; n <= 12; ++n) {
    const Rational t_third{n, 3};
    const Rational t_quarter{n, 4};
    const std::vector<Rational> half(n, Rational(1, 2));

    // Best symmetric probe away from 1/2 on a 20-point grid.
    Rational best_probe{0};
    for (int i = 0; i <= 20; ++i) {
      if (i == 10) continue;
      const std::vector<Rational> probe(n, Rational{i, 20});
      const Rational p = ddm::core::oblivious_winning_probability(probe, t_third);
      if (p > best_probe) best_probe = p;
    }

    table.add_row(
        {std::to_string(n),
         ddm::util::fmt(
             ddm::core::optimal_oblivious_winning_probability(n, Rational{1}).to_double()),
         ddm::util::fmt(
             ddm::core::optimal_oblivious_winning_probability(n, t_third).to_double()),
         ddm::util::fmt(
             ddm::core::optimal_oblivious_winning_probability(n, t_quarter).to_double()),
         ddm::core::stationarity_residual(half, t_third).to_string(),
         ddm::util::fmt(best_probe.to_double())});
  }
  table.print(std::cout);

  std::cout << "\nExact values for the paper's instances:\n"
            << "  n=3, t=1:   P* = "
            << ddm::core::optimal_oblivious_winning_probability(3, Rational{1}).to_string()
            << " = "
            << ddm::util::fmt(
                   ddm::core::optimal_oblivious_winning_probability(3, Rational{1}).to_double())
            << "  (vs non-oblivious 0.545 -> knowledge helps)\n"
            << "  n=4, t=4/3: P* = "
            << ddm::core::optimal_oblivious_winning_probability(4, Rational(4, 3)).to_string()
            << " = "
            << ddm::util::fmt(ddm::core::optimal_oblivious_winning_probability(4, Rational(4, 3))
                                  .to_double())
            << "\n";
  return 0;
}
