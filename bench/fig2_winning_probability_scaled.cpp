// Figure 2: the same winning-probability curves with the capacity scaled
// with the number of players, t = n/3 — matching the paper's evaluated
// instances (n = 3 at δ = 1, n = 4 at δ = 4/3). Shape claims: interior optimum
// above 1/2; the optimal threshold shifts with n; every curve dominates the
// oblivious optimum for the same (n, t) only near its own peak.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/oblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  using ddm::util::Rational;
  ddm::bench::print_banner(
      "Figure 2",
      "P(beta) of the symmetric threshold protocol, n = 3,4,5, capacity t = n/3");

  constexpr int kGrid = 50;
  std::vector<ddm::core::SymmetricThresholdAnalysis> analyses;
  for (std::uint32_t n = 3; n <= 5; ++n) {
    analyses.push_back(
        ddm::core::SymmetricThresholdAnalysis::build(n, Rational{n, 3}));
  }

  ddm::util::Table table{{"beta", "P(n=3,t=1)", "P(n=4,t=4/3)", "P(n=5,t=5/3)"}};
  for (int i = 0; i <= kGrid; ++i) {
    const Rational beta{i, kGrid};
    std::vector<std::string> row{ddm::util::fmt(beta.to_double(), 2)};
    for (const auto& analysis : analyses) {
      row.push_back(ddm::util::fmt(analysis.winning_probability()(beta).to_double()));
    }
    table.add_row(std::move(row));
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::cout << "\nCertified optima and the oblivious baseline (same n, t):\n";
  ddm::util::Table optima{{"n", "t", "beta*", "P(beta*)", "P_oblivious(1/2)", "paper beta*"}};
  for (std::uint32_t n = 3; n <= 5; ++n) {
    const auto& analysis = analyses[n - 3];
    const auto opt = analysis.optimize();
    const Rational t{n, 3};
    std::string paper = "(figure only)";
    if (n == 3) paper = "0.622";
    if (n == 4) paper = "0.678";
    optima.add_row({std::to_string(n), t.to_string(), ddm::util::fmt(opt.beta.approx()),
                    ddm::util::fmt(opt.value.to_double()),
                    ddm::util::fmt(
                        ddm::core::optimal_oblivious_winning_probability(n, t).to_double()),
                    paper});
  }
  optima.print(std::cout);
  return 0;
}
