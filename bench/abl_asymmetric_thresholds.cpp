// Ablation: scope of Theorem 5.2's symmetry claim. The paper's optimality
// analysis restricts to symmetric thresholds (all players identical —
// the anonymous setting). With distinct player identities, asymmetric
// thresholds strictly dominate: the extreme case a = (1,..,1,0,..,0) is a
// deterministic identity split. This bench quantifies the gap between
//   (a) the paper's symmetric optimum (exact, Sturm-certified),
//   (b) the best asymmetric vector found by compass search from random
//       starts (exact Theorem 5.1 evaluation), and
//   (c) the deterministic balanced identity split.
#include <iostream>

#include "bench_common.hpp"
#include "core/nonoblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "core/threshold_optimizer.hpp"
#include "prob/rng.hpp"
#include "util/table.hpp"

int main() {
  using ddm::util::Rational;
  ddm::bench::print_banner(
      "Ablation: asymmetric thresholds",
      "Symmetric optimum (paper) vs asymmetric compass search vs identity split, t = n/3");

  ddm::util::Table table{{"n", "t", "P_symmetric (exact)", "P_search (asym.)",
                          "P_identity_split (exact)", "identities worth"}};
  ddm::prob::Rng rng{99999};
  for (std::uint32_t n = 2; n <= 8; ++n) {
    const Rational t{n, 3};
    const auto symmetric = ddm::core::SymmetricThresholdAnalysis::build(n, t).optimize();

    // Compass search from a few random starts; keep the best.
    double best_search = 0.0;
    for (int attempt = 0; attempt < 5; ++attempt) {
      std::vector<double> start(n);
      for (double& a : start) a = rng.uniform();
      const auto result = ddm::core::maximize_thresholds(start, t.to_double());
      best_search = std::max(best_search, result.value);
    }

    // Balanced identity split: ceil(n/2) players to bin 0, rest to bin 1.
    std::vector<Rational> split(n, Rational{0});
    for (std::uint32_t i = 0; i < (n + 1) / 2; ++i) split[i] = Rational{1};
    const Rational split_value = ddm::core::threshold_winning_probability(split, t);

    table.add_row({std::to_string(n), t.to_string(),
                   ddm::util::fmt(symmetric.value.to_double()), ddm::util::fmt(best_search),
                   ddm::util::fmt(split_value.to_double()),
                   ddm::util::fmt(split_value.to_double() - symmetric.value.to_double(), 4)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the identity split dominates the symmetric optimum at every n —\n"
         "player identities are information the anonymous model leaves on the table.\n"
         "Theorem 5.2's symmetric solution is the optimum of the ANONYMOUS class\n"
         "(every player runs the same local rule); the compass search, free to break\n"
         "symmetry, climbs to identity-based corners. See EXPERIMENTS.md.\n";
  return 0;
}
