// Section 5.2.2 case table (n = 4, δ = 4/3): per-interval polynomials and the
// optimality condition. The paper's printed expansions for this case contain
// several transcription defects (see DESIGN.md); we regenerate every piece
// exactly and compare the *optimality polynomial* against the paper's
// stated cubic with its constant's sign corrected (the printed root 0.678 is
// only consistent with +416/27).
#include <iostream>

#include "bench_common.hpp"
#include "core/nonoblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "poly/roots.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "util/table.hpp"

int main() {
  using ddm::poly::QPoly;
  using ddm::util::Rational;
  ddm::bench::print_banner("Table: Section 5.2.2",
                           "Case analysis for n = 4, delta = 4/3 (symmetric thresholds)");

  const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(4, Rational(4, 3));
  const auto& pieces = analysis.winning_probability().pieces();

  ddm::util::Table table{{"interval", "derived P(beta)"}};
  for (const auto& piece : pieces) {
    table.add_row({"[" + piece.lo.to_string() + ", " + piece.hi.to_string() + "]",
                   piece.poly.to_string("b")});
  }
  table.print(std::cout);

  const auto opt = analysis.optimize();
  const QPoly paper_corrected{std::vector<Rational>{Rational(416, 27), Rational(-368, 9),
                                                    Rational(98, 3), Rational(-26, 3)}};
  std::cout << "\nOptimum:\n"
            << "  beta*      = " << ddm::util::fmt(opt.beta.approx(), 15)
            << "   (paper: ~0.678)\n"
            << "  P(beta*)   = " << ddm::util::fmt(opt.value.to_double(), 15) << "\n"
            << "  condition  = " << opt.optimality_condition.to_string("b") << "\n"
            << "  paper      = " << paper_corrected.to_string("b")
            << "  (sign-corrected constant)\n"
            << "  conditions match: "
            << (opt.optimality_condition == paper_corrected ? "YES" : "NO") << "\n";

  // Monte Carlo confirmation at the optimum.
  const Rational beta_mc{678, 1000};
  const auto protocol = ddm::core::SingleThresholdProtocol::symmetric(4, beta_mc);
  ddm::prob::Rng rng{424243};
  const auto sim =
      ddm::sim::estimate_winning_probability(protocol, 4.0 / 3.0, 8000000, rng, 4);
  const double exact =
      ddm::core::symmetric_threshold_winning_probability(4, beta_mc, Rational(4, 3)).to_double();
  std::cout << "\nMonte Carlo check at beta = 0.678 (8e6 trials): " << ddm::util::fmt(sim.estimate)
            << " in [" << ddm::util::fmt(sim.ci_low) << ", " << ddm::util::fmt(sim.ci_high)
            << "]; exact = " << ddm::util::fmt(exact)
            << (sim.covers(exact) ? "  [COVERED]" : "  [MISS]") << "\n";
  return 0;
}
