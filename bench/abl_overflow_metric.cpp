// Ablation (extension): a second objective. The paper maximizes
// P(no overflow); the load-balancing story also cares about the expected
// overflow mass E[(Σ0 − t)^+ + (Σ1 − t)^+]. This bench sweeps the symmetric
// threshold β for the paper's two instances and reports both objectives
// exactly, then locates each objective's optimizer — showing how closely the
// two notions of "optimal" agree.
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/nonoblivious.hpp"
#include "core/oblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "util/table.hpp"

namespace {

using ddm::util::Rational;

// Grid + local refinement minimizer for the expected overflow in β (exact
// evaluations at rational points; the function is piecewise smooth).
Rational minimize_overflow(std::uint32_t n, const Rational& t, Rational* best_beta) {
  Rational best_value{1000};
  Rational best{0};
  constexpr int kGrid = 40;
  for (int i = 0; i <= kGrid; ++i) {
    const Rational beta{i, kGrid};
    const Rational value = ddm::core::expected_overflow_symmetric_threshold(n, beta, t);
    if (value < best_value) {
      best_value = value;
      best = beta;
    }
  }
  Rational step{1, kGrid};
  for (int round = 0; round < 12; ++round) {
    step = step * Rational{1, 2};
    for (const int direction : {+1, -1}) {
      Rational candidate = best + Rational{direction} * step;
      if (candidate < Rational{0}) candidate = Rational{0};
      if (candidate > Rational{1}) candidate = Rational{1};
      const Rational value =
          ddm::core::expected_overflow_symmetric_threshold(n, candidate, t);
      if (value < best_value) {
        best_value = value;
        best = candidate;
      }
    }
  }
  *best_beta = best;
  return best_value;
}

}  // namespace

int main() {
  ddm::bench::print_banner(
      "Ablation: expected-overflow objective",
      "P(no overflow) vs E[overflow mass] across symmetric thresholds");

  for (const auto& [n, t] : {std::pair<std::uint32_t, Rational>{3u, Rational{1}},
                             std::pair<std::uint32_t, Rational>{4u, Rational(4, 3)}}) {
    std::cout << "Instance n = " << n << ", t = " << t << ":\n";
    ddm::util::Table table{{"beta", "P(win) exact", "E[overflow] exact"}};
    for (int i = 0; i <= 20; ++i) {
      const Rational beta{i, 20};
      table.add_row(
          {ddm::util::fmt(beta.to_double(), 2),
           ddm::util::fmt(
               ddm::core::symmetric_threshold_winning_probability(n, beta, t).to_double()),
           ddm::util::fmt(
               ddm::core::expected_overflow_symmetric_threshold(n, beta, t).to_double())});
    }
    table.print(std::cout);

    const auto win_opt = ddm::core::SymmetricThresholdAnalysis::build(n, t).optimize();
    Rational overflow_beta{0};
    const Rational overflow_min = minimize_overflow(n, t, &overflow_beta);
    std::cout << "  argmax P(win):        beta = " << ddm::util::fmt(win_opt.beta.approx(), 4)
              << "  (P = " << ddm::util::fmt(win_opt.value.to_double(), 4)
              << ", E[overflow] = "
              << ddm::util::fmt(ddm::core::expected_overflow_symmetric_threshold(
                                    n, win_opt.beta.midpoint(), t)
                                    .to_double(),
                                5)
              << ")\n"
              << "  argmin E[overflow]:   beta = " << ddm::util::fmt(overflow_beta.to_double(), 4)
              << "  (E = " << ddm::util::fmt(overflow_min.to_double(), 5) << ", P = "
              << ddm::util::fmt(ddm::core::symmetric_threshold_winning_probability(
                                    n, overflow_beta, t)
                                    .to_double(),
                                4)
              << ")\n"
              << "  oblivious coin:       E[overflow] = "
              << ddm::util::fmt(
                     ddm::core::expected_overflow_oblivious(
                         std::vector<Rational>(n, Rational(1, 2)), t)
                         .to_double(),
                     5)
              << "\n\n";
  }

  std::cout << "Reading: the two objectives broadly agree on the interesting region but\n"
               "their optimizers differ; notably at n = 4, t = 4/3 the coin's expected\n"
               "overflow can be compared against the threshold family directly —\n"
               "complementing the win-probability reversal of EXPERIMENTS.md D2.\n";
  return 0;
}
