// ddm_load — the load generator / protocol checker for ddm_serve.
//
// Drives N concurrent client connections, each sending a deterministic
// stream of requests (beta varies over a fixed lattice, so runs are
// reproducible), and verifies the serving contract from the OUTSIDE:
//
//   * every request gets exactly one well-formed JSON reply line — a socket
//     timeout counts as a hang and fails the run (the soak harness's "no
//     request may hang past its deadline" assertion);
//   * structured backpressure (`overloaded`, `draining`) and deadline cuts
//     (`deadline_exceeded`, `cancelled`) are tallied, not failed;
//   * latency is captured per request and summarized as p50/p99/max;
//   * --warmup=N sends N unrecorded requests per client first, so the
//     summary measures steady state, not server cold start (plan lowering,
//     pool spin-up) — the mode scripts/run_soak.sh --bench records.
//
// Output is one JSON summary line on stdout (consumed by scripts/run_soak.sh
// and recorded into BENCH_serve.json):
//
//   {"requests":400,"ok":361,"shed":39,"deadline":0,"failed":0,...}
//
// Exit status: 0 when no protocol failures, 1 otherwise, 2 for bad usage.
//
// Usage:
//   ddm_load <port> <clients> <requests-per-client>
//            [--n=6] [--t=2] [--op=threshold|certify|analyze] [--engine=id]
//            [--deadline-ms=0] [--trials=200000] [--timeout-ms=10000]
//            [--warmup=0]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/ndjson.hpp"
#include "net/server.hpp"
#include "util/env.hpp"
#include "util/status.hpp"

namespace {

struct LoadConfig {
  std::uint16_t port = 0;
  unsigned clients = 4;
  unsigned requests = 32;
  std::uint64_t n = 6;
  std::string t = "2";
  std::string op = "threshold";
  std::uint64_t deadline_ms = 0;
  std::uint64_t trials = 200000;
  std::uint64_t timeout_ms = 10000;
  unsigned warmup = 0;  // unrecorded pre-requests per client
  std::string engine;   // forced engine id, "" = server policy
};

struct Tally {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> draining{0};
  std::atomic<std::uint64_t> deadline{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> eval_failed{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> failed{0};  // protocol failures: hangs, bad JSON
};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void run_client(const LoadConfig& config, unsigned client, Tally& tally,
                std::vector<double>& latencies_ms) {
  const int fd = connect_loopback(config.port);
  if (fd < 0) {
    tally.failed.fetch_add(config.requests);
    return;
  }
  ddm::net::Connection connection(fd);
  connection.set_timeout(std::chrono::milliseconds(config.timeout_ms));
  std::string reply_line;
  // Warmup: same request shape, same lattice, but neither latency nor reply
  // status is recorded — these requests exist to absorb the server's cold
  // start so the measured stream below sees steady state. A hang here is
  // still a protocol failure (no request may hang, warmup included).
  for (unsigned w = 0; w < config.warmup; ++w) {
    const unsigned step = (client * config.warmup + w) % 97;
    const double beta = 0.30 + 0.40 * static_cast<double>(step) / 96.0;
    ddm::net::JsonWriter request;
    request.field("id", "w" + std::to_string(client) + "-" + std::to_string(w))
        .field("op", config.op)
        .field("n", config.n)
        .field("t", config.t);
    if (config.op != "analyze") request.field("beta", beta);
    if (!config.engine.empty()) request.field("engine", config.engine);
    if (config.deadline_ms > 0) request.field("deadline_ms", config.deadline_ms);
    request.field("trials", config.trials);
    if (!connection.write_all(request.str() + "\n") || !connection.read_line(reply_line)) {
      tally.failed.fetch_add(config.requests);
      return;
    }
  }
  for (unsigned i = 0; i < config.requests; ++i) {
    // Deterministic beta lattice in [0.30, 0.70]: same stream every run, and
    // enough distinct values that coalesced batches carry real grids.
    const unsigned step = (client * config.requests + i) % 97;
    const double beta = 0.30 + 0.40 * static_cast<double>(step) / 96.0;
    ddm::net::JsonWriter request;
    request.field("id", "c" + std::to_string(client) + "-" + std::to_string(i))
        .field("op", config.op)
        .field("n", config.n)
        .field("t", config.t);
    if (config.op != "analyze") request.field("beta", beta);
    if (!config.engine.empty()) request.field("engine", config.engine);
    if (config.deadline_ms > 0) request.field("deadline_ms", config.deadline_ms);
    request.field("trials", config.trials);
    const auto start = std::chrono::steady_clock::now();
    if (!connection.write_all(request.str() + "\n") || !connection.read_line(reply_line)) {
      // A hang (timeout), EOF, or write failure: the remaining requests on
      // this connection cannot be attributed, count them all as failed.
      tally.failed.fetch_add(config.requests - i);
      return;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    latencies_ms.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed).count());
    try {
      const ddm::net::JsonObject reply = ddm::net::parse_flat_object(reply_line);
      const ddm::net::JsonValue* ok = ddm::net::find(reply, "ok");
      if (ok == nullptr || ok->kind != ddm::net::JsonValue::Kind::kBool) {
        tally.failed.fetch_add(1);
        continue;
      }
      if (ok->boolean) {
        tally.ok.fetch_add(1);
        const ddm::net::JsonValue* degraded = ddm::net::find(reply, "degraded");
        if (degraded != nullptr && degraded->kind == ddm::net::JsonValue::Kind::kBool &&
            degraded->boolean) {
          tally.degraded.fetch_add(1);
        }
        continue;
      }
      const std::string error = ddm::net::get_string(reply, "error", "");
      if (error == "overloaded") {
        tally.shed.fetch_add(1);
      } else if (error == "draining") {
        tally.draining.fetch_add(1);
      } else if (error == "deadline_exceeded") {
        tally.deadline.fetch_add(1);
      } else if (error == "cancelled") {
        tally.cancelled.fetch_add(1);
      } else if (error == "evaluation_failed") {
        tally.eval_failed.fetch_add(1);
      } else {
        tally.failed.fetch_add(1);  // bad_request or unknown: a client bug
      }
    } catch (const std::exception&) {
      tally.failed.fetch_add(1);
    }
  }
}

[[nodiscard]] double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  LoadConfig config;
  try {
    if (args.size() < 3) throw ddm::Error("usage: ddm_load <port> <clients> <requests> [flags]");
    config.port = static_cast<std::uint16_t>(
        ddm::util::parse_env_u64("port", args[0].c_str(), 1, 65535, 0));
    config.clients =
        static_cast<unsigned>(ddm::util::parse_env_u64("clients", args[1].c_str(), 1, 512, 0));
    config.requests =
        static_cast<unsigned>(ddm::util::parse_env_u64("requests", args[2].c_str(), 1, 100000, 0));
    for (std::size_t i = 3; i < args.size(); ++i) {
      const std::string& arg = args[i];
      const auto value = [&arg](const char* prefix) -> const char* {
        const std::size_t len = std::strlen(prefix);
        return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
      };
      if (const char* v = value("--n=")) {
        config.n = ddm::util::parse_env_u64("--n", v, 1, 1000, 6);
      } else if (const char* v = value("--t=")) {
        config.t = v;
      } else if (const char* v = value("--op=")) {
        config.op = v;
      } else if (const char* v = value("--engine=")) {
        config.engine = v;
      } else if (const char* v = value("--deadline-ms=")) {
        config.deadline_ms = ddm::util::parse_env_u64("--deadline-ms", v, 0, 3'600'000, 0);
      } else if (const char* v = value("--trials=")) {
        config.trials = ddm::util::parse_env_u64("--trials", v, 1, 100'000'000, 200000);
      } else if (const char* v = value("--timeout-ms=")) {
        config.timeout_ms = ddm::util::parse_env_u64("--timeout-ms", v, 100, 600'000, 10000);
      } else if (const char* v = value("--warmup=")) {
        config.warmup = static_cast<unsigned>(ddm::util::parse_env_u64("--warmup", v, 0, 10000, 0));
      } else {
        throw ddm::Error("ddm_load: unknown argument '" + arg + "'");
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }

  Tally tally;
  std::vector<std::vector<double>> per_client(config.clients);
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  const auto start = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < config.clients; ++c) {
    threads.emplace_back(
        [&config, c, &tally, &per_client] { run_client(config, c, tally, per_client[c]); });
  }
  for (std::thread& thread : threads) thread.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double seconds = std::chrono::duration<double>(elapsed).count();

  std::vector<double> latencies;
  for (const auto& client_latencies : per_client) {
    latencies.insert(latencies.end(), client_latencies.begin(), client_latencies.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const std::uint64_t total =
      static_cast<std::uint64_t>(config.clients) * static_cast<std::uint64_t>(config.requests);
  const std::uint64_t answered = static_cast<std::uint64_t>(latencies.size());

  ddm::net::JsonWriter summary;
  summary.field("requests", total)
      .field("warmup", static_cast<std::uint64_t>(config.warmup) * config.clients)
      .field("answered", answered)
      .field("ok", tally.ok.load())
      .field("shed", tally.shed.load())
      .field("draining", tally.draining.load())
      .field("deadline", tally.deadline.load())
      .field("cancelled", tally.cancelled.load())
      .field("eval_failed", tally.eval_failed.load())
      .field("degraded", tally.degraded.load())
      .field("failed", tally.failed.load())
      .field("seconds", seconds)
      .field("req_per_s", seconds > 0.0 ? static_cast<double>(answered) / seconds : 0.0)
      .field("p50_ms", percentile(latencies, 0.50))
      .field("p99_ms", percentile(latencies, 0.99))
      .field("max_ms", latencies.empty() ? 0.0 : latencies.back());
  std::cout << summary.str() << "\n";
  return tally.failed.load() == 0 ? 0 : 1;
}
