// ddm_serve — the resilient evaluation daemon.
//
// Answers newline-delimited JSON requests (threshold / certify / analyze /
// health) over loopback TCP through the engine registry, with per-request
// deadlines, retry-with-backoff, the degradation chain, bounded admission
// with load shedding, and same-instance coalescing onto the batch kernel
// (net/service.hpp). `GET /health` and `GET /metrics` on the same port
// answer plain HTTP for probes and Prometheus scrapes.
//
// Configuration — environment first, flags override, both strictly parsed
// (a malformed value exits 2 naming the knob):
//
//   DDM_SERVE_PORT         --port=N         listen port, 0 = ephemeral  [0]
//   DDM_SERVE_BACKLOG      --backlog=N      listen(2) backlog           [64]
//   DDM_SERVE_QUEUE        --queue=N        admission-queue bound       [64]
//   DDM_SERVE_DEADLINE_MS  --deadline-ms=N  default request deadline,
//                                           0 = none                    [0]
//   DDM_SERVE_WORKERS      --workers=N      evaluation worker threads   [2]
//   DDM_PLAN_STORE         --plan-store=DIR persistent compiled-plan
//                                           store (warm start)          [off]
//   DDM_POLICY             --policy-table=F calibrated engine policy
//                                           table (self-tuning auto)    [off]
//
// Knob edges are deliberate: PORT=0 (ephemeral) and DEADLINE_MS=0 (none)
// are valid sentinels; BACKLOG/QUEUE/WORKERS have a minimum of 1 — a
// zero-capacity queue or zero-worker pool is a misconfiguration, rejected
// with exit 2 naming the knob, never a silently wedged daemon.
//
// `--check-config` validates the configuration (plan store directory
// included) and exits without binding — the hook
// scripts/test_cli_robustness.sh uses to pin the exit-2 contract.
//
// With a plan store configured, the engine's plan cache consults the
// validated on-disk plans before lowering, so a cold-started daemon answers
// its first compiled query without paying the exact-algebra lowering cost
// (engine.store.hits on /metrics; docs/performance.md).
//
// With a policy table configured (`ddm_cli calibrate` output), auto dispatch
// ranks engines by measured cost, and the workers fold every request's
// observed latency back into the table (EWMA), so the daemon
// self-tunes while serving (engine.policy.* on /metrics).
//
// Lifecycle: the daemon PRE-WARMS before announcing readiness — canonical
// small plans are lowered (or loaded from the store) into the plan cache and
// every registered engine answers one tiny dispatch, so the first real
// request never pays lowering/spin-up cost (the 88 ms cold-start outlier
// BENCH_serve.json used to carry). It then prints
// `listening on 127.0.0.1:<port>` on stdout once ready
// (supervisors and the soak harness parse it), serves until SIGTERM/SIGINT,
// then drains: stops accepting, answers queued work, replies `draining` to
// stragglers, and exits 0. Crash tolerance is the absence of state: every
// durable artifact (compiled plans) is a cache rebuilt on demand, so
// kill -9 + restart simply serves again — scripts/run_soak.sh proves it.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/cost_model.hpp"
#include "engine/plan_cache.hpp"
#include "engine/registry.hpp"
#include "net/ndjson.hpp"
#include "net/server.hpp"
#include "net/service.hpp"
#include "obs/metrics_registry.hpp"
#include "poly/plan_store.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/rational.hpp"
#include "util/status.hpp"

namespace {

struct ServeConfig {
  std::uint16_t port = 0;
  int backlog = 64;
  std::string plan_store;    ///< empty = DDM_PLAN_STORE (or no store at all)
  std::string policy_table;  ///< empty = DDM_POLICY (or static dispatch)
  ddm::net::ServiceConfig service;
};

std::atomic<int> g_listener_fd{-1};
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  // Async-signal-safe drain trigger: flag + one shutdown(2) to unblock the
  // accept loop. Everything else happens on the main thread.
  g_stop.store(true);
  ddm::net::shutdown_listener_fd(g_listener_fd.load());
}

/// One knob: environment first, then a --name=value flag override; both go
/// through the same strict parser, so the error message names whichever
/// source held the malformed text.
std::uint64_t knob(const char* env_name, const char* flag, const std::string* flag_value,
                   std::uint64_t min_value, std::uint64_t max_value, std::uint64_t fallback) {
  std::uint64_t value =
      ddm::util::parse_env_u64(env_name, std::getenv(env_name), min_value, max_value, fallback);
  if (flag_value != nullptr) {
    value = ddm::util::parse_env_u64(flag, flag_value->c_str(), min_value, max_value, fallback);
  }
  return value;
}

ServeConfig parse_config(const std::vector<std::string>& args, bool& check_only) {
  const std::string* port_flag = nullptr;
  const std::string* backlog_flag = nullptr;
  const std::string* queue_flag = nullptr;
  const std::string* deadline_flag = nullptr;
  const std::string* workers_flag = nullptr;
  std::string config_plan_store;
  std::string config_policy_table;
  std::vector<std::string> values;  // stable storage for flag payloads
  values.reserve(args.size());
  for (const std::string& arg : args) {
    const auto take = [&values, &arg](const char* prefix) -> const std::string* {
      const std::size_t len = std::string(prefix).size();
      if (arg.compare(0, len, prefix) != 0) return nullptr;
      values.push_back(arg.substr(len));
      return &values.back();
    };
    if (arg == "--check-config") {
      check_only = true;
    } else if (const std::string* v = take("--port=")) {
      port_flag = v;
    } else if (const std::string* v = take("--backlog=")) {
      backlog_flag = v;
    } else if (const std::string* v = take("--queue=")) {
      queue_flag = v;
    } else if (const std::string* v = take("--deadline-ms=")) {
      deadline_flag = v;
    } else if (const std::string* v = take("--workers=")) {
      workers_flag = v;
    } else if (const std::string* v = take("--plan-store=")) {
      if (v->empty()) {
        throw ddm::Error("ddm_serve: invalid --plan-store '' (expected --plan-store=<dir>)");
      }
      config_plan_store = *v;
    } else if (const std::string* v = take("--policy-table=")) {
      if (v->empty()) {
        throw ddm::Error("ddm_serve: invalid --policy-table '' (expected --policy-table=<file>)");
      }
      config_policy_table = *v;
    } else {
      throw ddm::Error("ddm_serve: unknown argument '" + arg +
                       "' (expected --port= --backlog= --queue= --deadline-ms= --workers= "
                       "--plan-store= --policy-table= --check-config)");
    }
  }
  ServeConfig config;
  config.port = static_cast<std::uint16_t>(
      knob("DDM_SERVE_PORT", "--port", port_flag, 0, 65535, 0));
  config.backlog = static_cast<int>(
      knob("DDM_SERVE_BACKLOG", "--backlog", backlog_flag, 1, 4096, 64));
  config.service.queue_capacity = static_cast<std::size_t>(
      knob("DDM_SERVE_QUEUE", "--queue", queue_flag, 1, 65536, 64));
  config.service.default_deadline = std::chrono::milliseconds(
      knob("DDM_SERVE_DEADLINE_MS", "--deadline-ms", deadline_flag, 0, 3'600'000, 0));
  config.service.workers = static_cast<unsigned>(
      knob("DDM_SERVE_WORKERS", "--workers", workers_flag, 1, 256, 2));
  // Resolve the plan store now so --check-config validates it too: the flag
  // overrides DDM_PLAN_STORE, and either one pointing at a missing directory
  // is a configuration error (exit 2), not a silently cold daemon.
  if (!config_plan_store.empty()) {
    ddm::poly::PlanStore::set_configured(
        ddm::poly::PlanStore::open_directory(config_plan_store, "--plan-store"));
  }
  if (const auto store = ddm::poly::PlanStore::configured()) {
    config.plan_store = store->directory();
  }
  // Same eager treatment for the engine policy table: the flag overrides
  // DDM_POLICY, and either one naming an unloadable table is a configuration
  // error (exit 2 from --check-config too), never a silently static daemon.
  if (!config_policy_table.empty()) {
    ddm::engine::CostModel::set_configured(
        ddm::engine::CostModel::load(config_policy_table, "--policy-table"));
    config.policy_table = config_policy_table;
  } else {
    if (ddm::engine::CostModel::configured() != nullptr) {
      const char* env = std::getenv("DDM_POLICY");
      config.policy_table = env != nullptr ? env : "";
    }
  }
  return config;
}

/// Warms the evaluation path before the daemon announces readiness: the
/// canonical small symmetric plans are lowered (or pulled from the plan
/// store) into the plan cache, and every registered engine answers one tiny
/// dispatch, so the first REAL request pays neither exact-algebra lowering
/// nor pool spin-up — the cold-start outlier BENCH_serve.json used to show
/// as an 88 ms max. Failures are deliberately swallowed: pre-warm is an
/// optimization, and an engine that cannot answer the probe (or a plan that
/// cannot lower) will report its real error on a real request.
void prewarm() {
  // Under fault injection (a test-only mode), pre-warm would consume the
  // deterministic strike budget before any client connects, silently turning
  // the fault matrix into a fault-free run. The injected faults belong to
  // the serving path — skip pre-warm and start cold.
  const char* fault_plan = std::getenv("DDM_FAULT_PLAN");
  if ((fault_plan != nullptr && *fault_plan != '\0') || ddm::util::fault::active()) {
    std::cerr << "ddm_serve: fault plan active, skipping pre-warm\n";
    return;
  }
  // With a plan store configured, warm exactly what the store can serve:
  // each listed plan comes in through the cache's validated store path, so a
  // warm start stays lowering-free (the plan_store_check contract —
  // compiled.lowerings == 0 until a request asks for an unshipped plan).
  // Without a store, lower the canonical small symmetric plans directly.
  std::size_t plans = 0;
  bool warmed_probe_plan = false;
  const ddm::util::Rational probe_t(1);
  const std::shared_ptr<ddm::poly::PlanStore> store = ddm::poly::PlanStore::configured();
  if (store != nullptr) {
    for (const std::string& path : store->list_paths()) {
      try {
        const ddm::poly::LoadedPlan loaded = store->load_path(path);
        const ddm::util::Rational t = ddm::util::Rational::parse(loaded.t);
        (void)ddm::engine::PlanCache::instance().get_or_lower(loaded.n, t);
        ++plans;
        if (loaded.n == 3 && t == probe_t) warmed_probe_plan = true;
      } catch (const std::exception&) {
      }
    }
  } else {
    for (std::uint32_t n = 1; n <= 8; ++n) {
      try {
        (void)ddm::engine::PlanCache::instance().get_or_lower(n, ddm::util::Rational(n, 3));
        ++plans;
        if (n == 3) warmed_probe_plan = true;
      } catch (const std::exception&) {
      }
    }
  }
  std::size_t engines = 0;
  const ddm::engine::Registry& registry = ddm::engine::Registry::instance();
  for (const std::string_view id : registry.ids()) {
    // The compiled probe would lower its (3, 1) plan if nothing warmed it —
    // under a store that ships other instances, that would break the
    // lowering-free warm start for no benefit (compiled dispatch on a cached
    // plan is nanoseconds; the pool spin-up comes from the other probes).
    if (id == "compiled" && !warmed_probe_plan) continue;
    ddm::engine::EvalRequest request;
    request.n = 3;
    request.t = probe_t;
    request.betas = {0.5};
    request.trials = 1000;  // keep the mc probe cheap
    try {
      const ddm::engine::Evaluator& evaluator = registry.require(id);
      if (!evaluator.supports(request)) continue;
      (void)evaluator.evaluate(request);
      ++engines;
    } catch (const std::exception&) {
    }
  }
  std::cerr << "ddm_serve: pre-warmed " << plans << " plans, " << engines << " engines\n";
}

/// Minimal HTTP answer for probe/scrape paths on the NDJSON port.
void serve_http(ddm::net::Connection& connection, const std::string& request_line,
                ddm::net::EvalService& service) {
  std::string body;
  std::string content_type = "application/json";
  std::string status = "200 OK";
  if (request_line.compare(0, 12, "GET /health ") == 0 || request_line == "GET /health") {
    body = service.handle_line(R"({"op":"health"})") + "\n";
  } else if (request_line.compare(0, 13, "GET /metrics ") == 0 || request_line == "GET /metrics") {
    std::ostringstream prom;
    ddm::obs::Registry::instance().write_prometheus(prom);
    body = prom.str();
    content_type = "text/plain; version=0.0.4";
  } else {
    status = "404 Not Found";
    body = "not found\n";
    content_type = "text/plain";
  }
  std::ostringstream response;
  response << "HTTP/1.1 " << status << "\r\nContent-Type: " << content_type
           << "\r\nContent-Length: " << body.size() << "\r\nConnection: close\r\n\r\n"
           << body;
  (void)connection.write_all(response.str());
}

void serve_connection(const std::shared_ptr<ddm::net::Connection>& connection,
                      ddm::net::EvalService& service) {
  // Generous per-read timeout: idle keep-alive connections are fine, but a
  // dead peer releases the thread within a minute.
  connection->set_timeout(std::chrono::milliseconds(60'000));
  std::string line;
  while (connection->read_line(line)) {
    if (line.empty()) continue;
    if (line.compare(0, 4, "GET ") == 0) {
      serve_http(*connection, line, service);
      return;  // Connection: close semantics for the HTTP surface
    }
    if (!connection->write_all(service.handle_line(line) + "\n")) return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  ServeConfig config;
  bool check_only = false;
  try {
    config = parse_config(args, check_only);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
  if (check_only) {
    std::cout << "config ok: port=" << config.port
              << " queue=" << config.service.queue_capacity
              << " workers=" << config.service.workers << " backlog=" << config.backlog
              << " deadline_ms=" << config.service.default_deadline.count() << " plan_store="
              << (config.plan_store.empty() ? "<none>" : config.plan_store) << " policy_table="
              << (config.policy_table.empty() ? "<none>" : config.policy_table) << "\n";
    return 0;
  }

  // The daemon always exports metrics — /metrics is part of its contract.
  ddm::obs::set_metrics_enabled(true);

  try {
    ddm::net::TcpListener listener(config.port, config.backlog);
    g_listener_fd.store(listener.fd());
    struct sigaction action{};
    action.sa_handler = handle_stop_signal;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);

    ddm::net::EvalService service(config.service);
    if (!config.plan_store.empty()) {
      std::cerr << "ddm_serve: plan store '" << config.plan_store << "' (warm start)\n";
    }
    if (!config.policy_table.empty()) {
      std::cerr << "ddm_serve: policy table '" << config.policy_table
                << "' (self-tuning dispatch)\n";
    }
    prewarm();
    std::cout << "listening on 127.0.0.1:" << listener.port() << std::endl;

    std::mutex connections_mutex;
    std::vector<std::thread> connection_threads;
    std::vector<std::weak_ptr<ddm::net::Connection>> live;  // drain kicks
    while (!g_stop.load()) {
      const int fd = listener.accept_connection();
      if (fd < 0) break;
      auto connection = std::make_shared<ddm::net::Connection>(fd);
      std::lock_guard<std::mutex> lock(connections_mutex);
      live.push_back(connection);
      connection_threads.emplace_back(
          [connection, &service] { serve_connection(connection, service); });
    }

    // Drain: answer everything already admitted, then exit cleanly. The
    // service rejects late arrivals with a structured `draining` reply, and
    // idle keep-alive connections are kicked loose so join() is prompt.
    std::cerr << "ddm_serve: draining\n";
    service.drain();
    {
      std::lock_guard<std::mutex> lock(connections_mutex);
      for (const auto& weak : live) {
        if (const auto connection = weak.lock()) connection->shutdown_now();
      }
    }
    for (std::thread& thread : connection_threads) {
      if (thread.joinable()) thread.join();
    }
    std::cerr << "ddm_serve: drained, exiting\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
