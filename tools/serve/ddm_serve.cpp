// ddm_serve — the resilient evaluation daemon.
//
// Answers newline-delimited JSON requests (threshold / certify / analyze /
// health) over loopback TCP through the engine registry, with per-request
// deadlines, retry-with-backoff, the degradation chain, bounded admission
// with load shedding, and same-instance coalescing onto the batch kernel
// (net/service.hpp). `GET /health` and `GET /metrics` on the same port
// answer plain HTTP for probes and Prometheus scrapes.
//
// Configuration — environment first, flags override, both strictly parsed
// (a malformed value exits 2 naming the knob):
//
//   DDM_SERVE_PORT         --port=N         listen port, 0 = ephemeral  [0]
//   DDM_SERVE_BACKLOG      --backlog=N      listen(2) backlog           [64]
//   DDM_SERVE_QUEUE        --queue=N        admission-queue bound       [64]
//   DDM_SERVE_DEADLINE_MS  --deadline-ms=N  default request deadline,
//                                           0 = none                    [0]
//   DDM_SERVE_WORKERS      --workers=N      evaluation worker threads   [2]
//   DDM_PLAN_STORE         --plan-store=DIR persistent compiled-plan
//                                           store (warm start)          [off]
//
// Knob edges are deliberate: PORT=0 (ephemeral) and DEADLINE_MS=0 (none)
// are valid sentinels; BACKLOG/QUEUE/WORKERS have a minimum of 1 — a
// zero-capacity queue or zero-worker pool is a misconfiguration, rejected
// with exit 2 naming the knob, never a silently wedged daemon.
//
// `--check-config` validates the configuration (plan store directory
// included) and exits without binding — the hook
// scripts/test_cli_robustness.sh uses to pin the exit-2 contract.
//
// With a plan store configured, the engine's plan cache consults the
// validated on-disk plans before lowering, so a cold-started daemon answers
// its first compiled query without paying the exact-algebra lowering cost
// (engine.store.hits on /metrics; docs/performance.md).
//
// Lifecycle: prints `listening on 127.0.0.1:<port>` on stdout once ready
// (supervisors and the soak harness parse it), serves until SIGTERM/SIGINT,
// then drains: stops accepting, answers queued work, replies `draining` to
// stragglers, and exits 0. Crash tolerance is the absence of state: every
// durable artifact (compiled plans) is a cache rebuilt on demand, so
// kill -9 + restart simply serves again — scripts/run_soak.sh proves it.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/ndjson.hpp"
#include "net/server.hpp"
#include "net/service.hpp"
#include "obs/metrics_registry.hpp"
#include "poly/plan_store.hpp"
#include "util/env.hpp"
#include "util/status.hpp"

namespace {

struct ServeConfig {
  std::uint16_t port = 0;
  int backlog = 64;
  std::string plan_store;  ///< empty = DDM_PLAN_STORE (or no store at all)
  ddm::net::ServiceConfig service;
};

std::atomic<int> g_listener_fd{-1};
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  // Async-signal-safe drain trigger: flag + one shutdown(2) to unblock the
  // accept loop. Everything else happens on the main thread.
  g_stop.store(true);
  ddm::net::shutdown_listener_fd(g_listener_fd.load());
}

/// One knob: environment first, then a --name=value flag override; both go
/// through the same strict parser, so the error message names whichever
/// source held the malformed text.
std::uint64_t knob(const char* env_name, const char* flag, const std::string* flag_value,
                   std::uint64_t min_value, std::uint64_t max_value, std::uint64_t fallback) {
  std::uint64_t value =
      ddm::util::parse_env_u64(env_name, std::getenv(env_name), min_value, max_value, fallback);
  if (flag_value != nullptr) {
    value = ddm::util::parse_env_u64(flag, flag_value->c_str(), min_value, max_value, fallback);
  }
  return value;
}

ServeConfig parse_config(const std::vector<std::string>& args, bool& check_only) {
  const std::string* port_flag = nullptr;
  const std::string* backlog_flag = nullptr;
  const std::string* queue_flag = nullptr;
  const std::string* deadline_flag = nullptr;
  const std::string* workers_flag = nullptr;
  std::string config_plan_store;
  std::vector<std::string> values;  // stable storage for flag payloads
  values.reserve(args.size());
  for (const std::string& arg : args) {
    const auto take = [&values, &arg](const char* prefix) -> const std::string* {
      const std::size_t len = std::string(prefix).size();
      if (arg.compare(0, len, prefix) != 0) return nullptr;
      values.push_back(arg.substr(len));
      return &values.back();
    };
    if (arg == "--check-config") {
      check_only = true;
    } else if (const std::string* v = take("--port=")) {
      port_flag = v;
    } else if (const std::string* v = take("--backlog=")) {
      backlog_flag = v;
    } else if (const std::string* v = take("--queue=")) {
      queue_flag = v;
    } else if (const std::string* v = take("--deadline-ms=")) {
      deadline_flag = v;
    } else if (const std::string* v = take("--workers=")) {
      workers_flag = v;
    } else if (const std::string* v = take("--plan-store=")) {
      if (v->empty()) {
        throw ddm::Error("ddm_serve: invalid --plan-store '' (expected --plan-store=<dir>)");
      }
      config_plan_store = *v;
    } else {
      throw ddm::Error("ddm_serve: unknown argument '" + arg +
                       "' (expected --port= --backlog= --queue= --deadline-ms= --workers= "
                       "--plan-store= --check-config)");
    }
  }
  ServeConfig config;
  config.port = static_cast<std::uint16_t>(
      knob("DDM_SERVE_PORT", "--port", port_flag, 0, 65535, 0));
  config.backlog = static_cast<int>(
      knob("DDM_SERVE_BACKLOG", "--backlog", backlog_flag, 1, 4096, 64));
  config.service.queue_capacity = static_cast<std::size_t>(
      knob("DDM_SERVE_QUEUE", "--queue", queue_flag, 1, 65536, 64));
  config.service.default_deadline = std::chrono::milliseconds(
      knob("DDM_SERVE_DEADLINE_MS", "--deadline-ms", deadline_flag, 0, 3'600'000, 0));
  config.service.workers = static_cast<unsigned>(
      knob("DDM_SERVE_WORKERS", "--workers", workers_flag, 1, 256, 2));
  // Resolve the plan store now so --check-config validates it too: the flag
  // overrides DDM_PLAN_STORE, and either one pointing at a missing directory
  // is a configuration error (exit 2), not a silently cold daemon.
  if (!config_plan_store.empty()) {
    ddm::poly::PlanStore::set_configured(
        ddm::poly::PlanStore::open_directory(config_plan_store, "--plan-store"));
  }
  if (const auto store = ddm::poly::PlanStore::configured()) {
    config.plan_store = store->directory();
  }
  return config;
}

/// Minimal HTTP answer for probe/scrape paths on the NDJSON port.
void serve_http(ddm::net::Connection& connection, const std::string& request_line,
                ddm::net::EvalService& service) {
  std::string body;
  std::string content_type = "application/json";
  std::string status = "200 OK";
  if (request_line.compare(0, 12, "GET /health ") == 0 || request_line == "GET /health") {
    body = service.handle_line(R"({"op":"health"})") + "\n";
  } else if (request_line.compare(0, 13, "GET /metrics ") == 0 || request_line == "GET /metrics") {
    std::ostringstream prom;
    ddm::obs::Registry::instance().write_prometheus(prom);
    body = prom.str();
    content_type = "text/plain; version=0.0.4";
  } else {
    status = "404 Not Found";
    body = "not found\n";
    content_type = "text/plain";
  }
  std::ostringstream response;
  response << "HTTP/1.1 " << status << "\r\nContent-Type: " << content_type
           << "\r\nContent-Length: " << body.size() << "\r\nConnection: close\r\n\r\n"
           << body;
  (void)connection.write_all(response.str());
}

void serve_connection(const std::shared_ptr<ddm::net::Connection>& connection,
                      ddm::net::EvalService& service) {
  // Generous per-read timeout: idle keep-alive connections are fine, but a
  // dead peer releases the thread within a minute.
  connection->set_timeout(std::chrono::milliseconds(60'000));
  std::string line;
  while (connection->read_line(line)) {
    if (line.empty()) continue;
    if (line.compare(0, 4, "GET ") == 0) {
      serve_http(*connection, line, service);
      return;  // Connection: close semantics for the HTTP surface
    }
    if (!connection->write_all(service.handle_line(line) + "\n")) return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  ServeConfig config;
  bool check_only = false;
  try {
    config = parse_config(args, check_only);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
  if (check_only) {
    std::cout << "config ok: port=" << config.port
              << " queue=" << config.service.queue_capacity
              << " workers=" << config.service.workers << " backlog=" << config.backlog
              << " deadline_ms=" << config.service.default_deadline.count() << " plan_store="
              << (config.plan_store.empty() ? "<none>" : config.plan_store) << "\n";
    return 0;
  }

  // The daemon always exports metrics — /metrics is part of its contract.
  ddm::obs::set_metrics_enabled(true);

  try {
    ddm::net::TcpListener listener(config.port, config.backlog);
    g_listener_fd.store(listener.fd());
    struct sigaction action{};
    action.sa_handler = handle_stop_signal;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);

    ddm::net::EvalService service(config.service);
    if (!config.plan_store.empty()) {
      std::cerr << "ddm_serve: plan store '" << config.plan_store << "' (warm start)\n";
    }
    std::cout << "listening on 127.0.0.1:" << listener.port() << std::endl;

    std::mutex connections_mutex;
    std::vector<std::thread> connection_threads;
    std::vector<std::weak_ptr<ddm::net::Connection>> live;  // drain kicks
    while (!g_stop.load()) {
      const int fd = listener.accept_connection();
      if (fd < 0) break;
      auto connection = std::make_shared<ddm::net::Connection>(fd);
      std::lock_guard<std::mutex> lock(connections_mutex);
      live.push_back(connection);
      connection_threads.emplace_back(
          [connection, &service] { serve_connection(connection, service); });
    }

    // Drain: answer everything already admitted, then exit cleanly. The
    // service rejects late arrivals with a structured `draining` reply, and
    // idle keep-alive connections are kicked loose so join() is prompt.
    std::cerr << "ddm_serve: draining\n";
    service.drain();
    {
      std::lock_guard<std::mutex> lock(connections_mutex);
      for (const auto& weak : live) {
        if (const auto connection = weak.lock()) connection->shutdown_now();
      }
    }
    for (std::thread& thread : connection_threads) {
      if (thread.joinable()) thread.join();
    }
    std::cerr << "ddm_serve: drained, exiting\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
