// ddm_cli — command-line front end to the ddm library.
//
// This file is intentionally a pure argv dispatcher: global flags are parsed
// by cli/options.cpp, the subcommand table (synopsis, arity, flag
// acceptance, handlers) lives in cli/command.cpp, and each subcommand's
// logic in cli/cmd_<name>.cpp. Engine-selection policy lives in the library
// (src/engine/policy.hpp), not here. Run `ddm_cli` for usage or
// `ddm_cli help <command>` for per-subcommand help.
//
// Exit statuses: 0 success; 1 usage (unknown command or arity); 2 malformed
// arguments or evaluation errors; 3 certified tolerance missed.
#include <exception>
#include <iostream>
#include <utility>
#include <vector>

#include "cli/command.hpp"
#include "cli/options.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;  // positional arguments, command first
  ddm::cli::Options options;
  try {
    ddm::cli::CommandLine command_line = ddm::cli::parse_command_line(argc, argv);
    args = std::move(command_line.args);
    options = std::move(command_line.options);
    if (args.empty()) {
      if (options.help) {
        ddm::cli::print_usage();
        return 0;
      }
      return ddm::cli::usage();
    }
    ddm::cli::enable_observability(options);
    const int rc = ddm::cli::dispatch(args, options);
    const int obs_rc = ddm::cli::finalize_observability(options);
    return rc != 0 ? rc : obs_rc;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    (void)ddm::cli::finalize_observability(options);
    return 2;
  }
}
