// ddm_cli — command-line front end to the ddm library.
//
// Subcommands:
//   oblivious <n> <t>                exact optimal oblivious protocol (Thm 4.3)
//   threshold <n> <t> <beta>         exact P of a symmetric threshold (Thm 5.1)
//   analyze   <n> <t> [digits]       full Section 5.2 analysis: pieces,
//                                    optimality condition, certified beta*
//   simulate  <n> <t> <beta> <trials> [seed]   Monte Carlo cross-check
//   volume    <m> <s1..sm> <p1..pm>  Vol(simplex ∩ box), Proposition 2.2
//   ladder    <n> <t> [trials]       information ladder: deterministic /
//                                    oblivious / threshold / full-info oracle
//   sweep     <n> <t> <lo> <hi> <steps>   β-grid of Theorem 5.1 values, fanned
//                                    across the thread pool, emitted as JSON
//
// Options:
//   --certify[=tol]      (threshold, volume, sweep) certified evaluation:
//                        rigorous enclosure via the escalation ladder,
//                        docs/robustness.md
//   --checkpoint <file>  (sweep) write an append-only JSONL checkpoint per
//                        completed block
//   --resume <file>      (sweep) skip rows already in <file>, append new ones
//   --engine=<e>         (sweep) evaluation engine: `compiled` lowers the
//                        exact Theorem 5.1 piecewise polynomial to a certified
//                        double Horner plan (poly/compiled.hpp), `kernel`
//                        forces the O(3^n) batch kernel, `auto` (default)
//                        picks the compiled plan when its certified error
//                        bound is within 1e-9 — docs/performance.md
//   --trace=<file>       (any) record tracing spans, export Chrome trace JSON
//                        to <file> at exit (load in chrome://tracing/Perfetto)
//   --metrics[=json|prom] (any) dump the metrics registry to stderr at exit
//                        (human-readable text by default), docs/observability.md
//
// Rationals are accepted as "a/b", integers, or decimals (e.g. 4/3, 0.622).
// Malformed arguments name the offending value and exit with status 2.
#include <algorithm>
#include <charconv>
#include <iomanip>
#include <iostream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ddm.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace {

using ddm::util::Rational;

int usage() {
  std::cout <<
      R"(ddm_cli — optimal distributed decision-making with no communication
(Georgiades/Mavronicolas/Spirakis, FCT'99)

usage:
  ddm_cli oblivious <n> <t>
  ddm_cli threshold <n> <t> <beta> [--certify[=tol]]
  ddm_cli analyze   <n> <t> [digits=30]
  ddm_cli simulate  <n> <t> <beta> <trials> [seed=42]
  ddm_cli volume    <m> <sigma_1..sigma_m> <pi_1..pi_m> [--certify[=tol]]
  ddm_cli ladder    <n> <t> [trials=500000]
  ddm_cli sweep     <n> <t> <beta_lo> <beta_hi> <steps> [--certify[=tol]]
                    [--checkpoint <file>] [--resume <file>]
                    [--engine=compiled|kernel|auto]

any subcommand also accepts:
  --trace=<file>         export a Chrome trace of the run to <file>
  --metrics[=json|prom]  dump the metrics registry to stderr at exit

rationals may be written a/b (e.g. 4/3). Examples:
  ddm_cli analyze 3 1            # the paper's flagship instance
  ddm_cli analyze 4 4/3 40       # Section 5.2.2 with 40 certified digits
  ddm_cli simulate 3 1 0.622 1000000
  ddm_cli threshold 24 8 0.37 --certify=1/1000000000000
  ddm_cli sweep 4 4/3 0 1 100    # JSON grid of P(beta), all cores
  ddm_cli sweep 12 4 0 1 10000 --engine=compiled   # certified Horner plan
  ddm_cli sweep 4 4/3 0 1 100 --checkpoint sweep.ckpt   # crash-safe
  ddm_cli sweep 4 4/3 0 1 100 --resume sweep.ckpt       # finish a killed run
  ddm_cli sweep 24 8 0.3 0.45 8 --certify --trace=sweep.json --metrics
)";
  return 1;
}

/// A malformed command-line argument; the message names the offending value.
class BadArgument : public std::runtime_error {
 public:
  explicit BadArgument(const std::string& message) : std::runtime_error(message) {}
};

/// Strict unsigned parser: the whole argument must be a decimal number that
/// fits the target type — no trailing garbage, no leading '-' wrapped around.
template <typename T>
T parse_unsigned(const char* what, const std::string& text) {
  T value{};
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, value);
  if (text.empty() || result.ec != std::errc{} || result.ptr != end) {
    throw BadArgument(std::string("invalid ") + what + " '" + text +
                      "' (expected a non-negative integer)");
  }
  return value;
}

std::uint32_t parse_u32(const char* what, const std::string& text) {
  return parse_unsigned<std::uint32_t>(what, text);
}

std::uint64_t parse_u64(const char* what, const std::string& text) {
  return parse_unsigned<std::uint64_t>(what, text);
}

int parse_int(const char* what, const std::string& text) {
  int value = 0;
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, value);
  if (text.empty() || result.ec != std::errc{} || result.ptr != end) {
    throw BadArgument(std::string("invalid ") + what + " '" + text + "' (expected an integer)");
  }
  return value;
}

bool all_digits(const std::string& text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), [](char c) { return c >= '0' && c <= '9'; });
}

/// Accepts a/b, integers, and decimal notation like 0.622; rejects anything
/// else ("1.2.3", "1.2/3", "0.6x") naming the argument.
Rational parse_rational(const char* what, const std::string& text) {
  const auto reject = [&]() -> BadArgument {
    return BadArgument(std::string("invalid ") + what + " '" + text +
                       "' (expected a/b, an integer, or a decimal)");
  };
  try {
    const auto dot = text.find('.');
    if (dot == std::string::npos) return Rational::parse(text);
    if (text.find('.', dot + 1) != std::string::npos) throw reject();  // e.g. "1.2.3"
    const std::string whole = text.substr(0, dot);
    const std::string frac = text.substr(dot + 1);
    if (!whole.empty() && whole != "-" && !all_digits(whole[0] == '-' ? whole.substr(1) : whole)) {
      throw reject();
    }
    if (frac.empty()) {
      if (whole.empty() || whole == "-") throw reject();  // "." or "-."
      return Rational::parse(whole);
    }
    if (!all_digits(frac)) throw reject();  // e.g. "1.2/3"
    const bool negative = !whole.empty() && whole[0] == '-';
    Rational result = Rational::parse(whole.empty() || whole == "-" ? "0" : whole);
    const Rational fraction{ddm::util::BigInt{frac},
                            ddm::util::BigInt::pow(ddm::util::BigInt{10}, frac.size())};
    return negative ? result - fraction : result + fraction;
  } catch (const BadArgument&) {
    throw;
  } catch (const std::exception&) {
    throw reject();
  }
}

/// Certification options distilled from --certify[=tol].
struct CertifyRequest {
  bool enabled = false;
  ddm::EvalPolicy policy;
};

// Reports the per-evaluation ladder counters (CertifiedValue::stats), not a
// cumulative policy-attached view — across several evaluations the latter
// would misreport each one's escalation count.
void print_certified(const ddm::CertifiedValue& result, const ddm::EvalPolicy& policy) {
  const ddm::EvalStats& stats = result.stats;
  const auto flags = std::cout.flags();
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10)
            << "  certified value = " << result.value() << "\n"
            << "  enclosure = [" << result.enclosure.lo().to_double() << ", "
            << result.enclosure.hi().to_double() << "]"
            << std::setprecision(3) << "  width = " << result.width().to_double() << "\n"
            << "  tier = " << ddm::to_string(result.tier) << "  tolerance ("
            << policy.tolerance.to_double() << ") "
            << (result.met_tolerance ? "met" : "NOT met") << "\n"
            << "  ladder: double x" << stats.double_attempts << ", interval x"
            << stats.interval_attempts << ", exact x" << stats.exact_attempts
            << ", escalations " << stats.escalations << ", numeric errors "
            << stats.numeric_errors << "\n";
  std::cout.flags(flags);
}

int cmd_oblivious(std::uint32_t n, const Rational& t) {
  const Rational p = ddm::core::optimal_oblivious_winning_probability(n, t);
  std::cout << "Optimal oblivious (anonymous) protocol: alpha = 1/2 for all players\n"
            << "  P(no overflow) = " << p << " = " << p.to_double() << "\n"
            << "  gradient residual at 1/2 (Cor 4.2): "
            << ddm::core::stationarity_residual(std::vector<Rational>(n, Rational(1, 2)), t)
            << "\n";
  return 0;
}

int cmd_threshold(std::uint32_t n, const Rational& t, const Rational& beta,
                  const CertifyRequest& certify) {
  std::cout << "Symmetric single-threshold protocol, beta = " << beta << "\n";
  if (certify.enabled) {
    const auto result =
        ddm::core::certified_symmetric_threshold_winning_probability(n, beta, t, certify.policy);
    print_certified(result, certify.policy);
    return result.met_tolerance ? 0 : 3;
  }
  const Rational p = ddm::core::symmetric_threshold_winning_probability(n, beta, t);
  std::cout << "  P(no overflow) = " << p << " = " << p.to_double() << "\n";
  return 0;
}

int cmd_analyze(std::uint32_t n, const Rational& t, int digits) {
  const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(n, t);
  std::cout << "P(beta) for n = " << n << ", t = " << t << " (exact pieces):\n";
  for (const auto& piece : analysis.winning_probability().pieces()) {
    std::cout << "  [" << piece.lo << ", " << piece.hi << "]  "
              << piece.poly.to_string("beta") << "\n";
  }
  const auto opt = analysis.optimize();
  std::cout << "Optimality condition: " << opt.optimality_condition.to_string("beta")
            << (opt.interior ? " = 0" : "") << "\n";
  ddm::poly::RootInterval beta = opt.beta;
  if (opt.interior) {
    const Rational width{ddm::util::BigInt{1},
                         ddm::util::BigInt::pow(ddm::util::BigInt{10},
                                                static_cast<std::uint64_t>(digits))};
    beta = ddm::poly::refine_root(opt.optimality_condition, beta, width);
  }
  std::cout << "beta* = " << ddm::util::fmt(beta.approx(), std::min(digits, 17))
            << "  (certified global maximum: " << (opt.certified ? "yes" : "no") << ")\n"
            << "P(beta*) = " << ddm::util::fmt(opt.value.to_double(), 15) << "\n"
            << "Oblivious baseline: "
            << ddm::util::fmt(
                   ddm::core::optimal_oblivious_winning_probability(n, t).to_double(), 15)
            << "\n";
  return 0;
}

int cmd_simulate(std::uint32_t n, const Rational& t, const Rational& beta,
                 std::uint64_t trials, std::uint64_t seed) {
  const auto protocol = ddm::core::SingleThresholdProtocol::symmetric(n, beta);
  ddm::prob::Rng rng{seed};
  const auto result =
      ddm::sim::estimate_winning_probability(protocol, t.to_double(), trials, rng);
  const double exact =
      ddm::core::symmetric_threshold_winning_probability(n, beta, t).to_double();
  std::cout << "Simulated " << trials << " trials (seed " << seed << "):\n"
            << "  estimate = " << result.estimate << "  95% CI [" << result.ci_low << ", "
            << result.ci_high << "]\n"
            << "  exact    = " << exact << "  ("
            << (result.covers(exact) ? "covered" : "NOT covered") << ")\n";
  return 0;
}

int cmd_volume(const std::vector<Rational>& sigma, const std::vector<Rational>& pi,
               const CertifyRequest& certify) {
  std::cout << "Vol(Sigma(sigma) ∩ Pi(pi))  [Proposition 2.2]\n";
  if (certify.enabled) {
    const auto result = ddm::geom::certified_simplex_box_volume(sigma, pi, certify.policy);
    print_certified(result, certify.policy);
    return result.met_tolerance ? 0 : 3;
  }
  const Rational volume = ddm::geom::simplex_box_volume(sigma, pi);
  std::cout << "  = " << volume << " = " << volume.to_double() << "\n"
            << "  simplex volume = " << ddm::geom::simplex_volume(sigma) << ", box volume = "
            << ddm::geom::box_volume(pi) << "\n";
  return 0;
}

// Certified sweep: every grid point goes through the escalation ladder with
// an exact rational beta (clamped to [0, 1]), fanned across the pool one
// point per chunk. Rows gain the per-point tier/escalations/width; exit code
// 3 when any point misses the policy tolerance.
int cmd_sweep_certified(std::uint32_t n, const Rational& t, const Rational& lo,
                        const Rational& hi, std::uint32_t steps,
                        const CertifyRequest& certify) {
  std::vector<Rational> betas(steps + 1, Rational{0});
  const Rational range = hi - lo;
  const Rational denom{static_cast<std::int64_t>(steps)};
  for (std::uint32_t k = 0; k <= steps; ++k) {
    Rational beta = lo + range * Rational{static_cast<std::int64_t>(k)} / denom;
    if (beta < Rational{0}) beta = Rational{0};
    if (beta > Rational{1}) beta = Rational{1};
    betas[k] = beta;
  }

  std::vector<ddm::CertifiedValue> results(steps + 1);
  ddm::util::ParallelOptions options;
  options.grain = 1;
  options.label = "sweep_certify";
  ddm::util::parallel_for(
      0, betas.size(),
      [&](std::size_t chunk_lo, std::size_t chunk_hi) {
        for (std::size_t k = chunk_lo; k < chunk_hi; ++k) {
          // Fresh evaluation per attempt: idempotent under engine retry, and
          // CertifiedValue::stats carries this point's ladder counters only.
          results[k] = ddm::core::certified_symmetric_threshold_winning_probability(
              n, betas[k], t, certify.policy);
        }
      },
      options);

  bool all_met = true;
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10) << "[\n";
  for (std::uint32_t k = 0; k <= steps; ++k) {
    const ddm::CertifiedValue& r = results[k];
    all_met = all_met && r.met_tolerance;
    std::cout << "  {\"n\": " << n << ", \"t\": " << t.to_double() << ", \"beta\": "
              << betas[k].to_double() << ", \"p_win\": " << r.value() << ", \"tier\": \""
              << ddm::to_string(r.tier) << "\", \"escalations\": " << r.stats.escalations
              << ", \"width\": " << r.width().to_double() << ", \"met_tolerance\": "
              << (r.met_tolerance ? "true" : "false") << "}" << (k < steps ? "," : "") << "\n";
  }
  std::cout << "]\n";
  return all_met ? 0 : 3;
}

// Tolerance the auto engine holds the compiled plan's certificate to, and
// the n cap past which auto does not even attempt the symbolic lowering (the
// exact piecewise build grows combinatorially and its certified bound blows
// past the tolerance anyway; --engine=compiled still forces the attempt).
constexpr double kCompiledAutoTolerance = 1e-9;
constexpr std::uint32_t kCompiledAutoMaxN = 16;

// Lowers the symmetric Theorem 5.1 polynomial for the requested engine, or
// returns nullopt when the sweep should use the batch kernel. `auto` demands
// the certified bound meet kCompiledAutoTolerance and falls back silently;
// `compiled` is unconditional and lets lowering errors surface.
std::optional<ddm::poly::CompiledPiecewise> select_compiled_plan(std::uint32_t n,
                                                                const Rational& t,
                                                                const std::string& engine) {
  if (engine == "kernel") return std::nullopt;
  if (engine == "auto" && n > kCompiledAutoMaxN) return std::nullopt;
  try {
    const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(n, t);
    auto plan = ddm::poly::CompiledPiecewise::lower(analysis.winning_probability());
    if (engine == "compiled" || plan.max_error_bound() <= kCompiledAutoTolerance) {
      return plan;
    }
    return std::nullopt;
  } catch (const std::exception&) {
    if (engine == "compiled") throw;
    return std::nullopt;  // auto: the kernel handles what the lowering cannot
  }
}

int cmd_sweep(std::uint32_t n, const Rational& t, const Rational& lo, const Rational& hi,
              std::uint32_t steps, const std::string& checkpoint_path, bool resume,
              const CertifyRequest& certify, const std::string& engine) {
  if (n == 0) throw BadArgument("invalid n '0' (sweep needs n >= 1)");
  if (steps == 0) throw BadArgument("invalid steps '0' (sweep needs steps >= 1)");
  DDM_SPAN("cli.sweep", {{"n", static_cast<std::int64_t>(n)},
                         {"steps", static_cast<std::int64_t>(steps)}});
  if (certify.enabled) {
    if (!checkpoint_path.empty()) {
      throw BadArgument("--certify cannot be combined with --checkpoint/--resume");
    }
    return cmd_sweep_certified(n, t, lo, hi, steps, certify);
  }
  const std::optional<ddm::poly::CompiledPiecewise> plan = select_compiled_plan(n, t, engine);
  const double t_d = t.to_double();
  const double lo_d = lo.to_double();
  const double hi_d = hi.to_double();
  std::vector<double> betas(steps + 1);
  std::vector<std::vector<double>> points(plan ? 0 : steps + 1);
  for (std::uint32_t k = 0; k <= steps; ++k) {
    const double beta =
        std::clamp(lo_d + (hi_d - lo_d) * static_cast<double>(k) / static_cast<double>(steps),
                   0.0, 1.0);
    betas[k] = beta;
    if (!plan) points[k].assign(n, beta);
  }

  std::vector<double> values(steps + 1, 0.0);
  if (checkpoint_path.empty()) {
    values = plan ? plan->eval_grid(betas)
                  : ddm::core::threshold_winning_probability_batch(points, t_d);
  } else {
    // Crash-safe path: rows already in the checkpoint are reused verbatim;
    // missing rows are evaluated in blocks, each appended (and flushed)
    // before the next block starts. Every row goes through the identical
    // serial evaluator either way, so the final output is byte-identical to
    // an uninterrupted run.
    const ddm::util::SweepParams params{n, t.to_string(), lo.to_string(), hi.to_string(), steps};
    ddm::util::SweepCheckpoint checkpoint(checkpoint_path, params, resume);
    std::vector<std::uint32_t> missing;
    for (std::uint32_t k = 0; k <= steps; ++k) {
      if (checkpoint.has(k)) {
        values[k] = checkpoint.completed().at(k).p_win;
      } else {
        missing.push_back(k);
      }
    }
    constexpr std::size_t kBlock = 8;
    for (std::size_t start = 0; start < missing.size(); start += kBlock) {
      const std::size_t stop = std::min(start + kBlock, missing.size());
      std::vector<double> block_values;
      if (plan) {
        std::vector<double> block_betas;
        block_betas.reserve(stop - start);
        for (std::size_t i = start; i < stop; ++i) block_betas.push_back(betas[missing[i]]);
        block_values = plan->eval_grid(block_betas);
      } else {
        std::vector<std::vector<double>> block_points;
        block_points.reserve(stop - start);
        for (std::size_t i = start; i < stop; ++i) block_points.push_back(points[missing[i]]);
        block_values = ddm::core::threshold_winning_probability_batch(block_points, t_d);
      }
      for (std::size_t i = start; i < stop; ++i) {
        const std::uint32_t k = missing[i];
        values[k] = block_values[i - start];
        checkpoint.append({k, betas[k], values[k]});
      }
    }
  }

  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10) << "[\n";
  for (std::uint32_t k = 0; k <= steps; ++k) {
    std::cout << "  {\"n\": " << n << ", \"t\": " << t_d << ", \"beta\": " << betas[k]
              << ", \"p_win\": " << values[k] << "}" << (k < steps ? "," : "") << "\n";
  }
  std::cout << "]\n";
  return 0;
}

int cmd_ladder(std::uint32_t n, const Rational& t, std::uint64_t trials) {
  const double t_d = t.to_double();
  ddm::prob::Rng rng{1234};
  ddm::util::Table table{{"information", "protocol", "P(win)", "method"}};
  table.add_row({"none (deterministic)", "all-one-bin",
                 ddm::util::fmt(ddm::prob::irwin_hall_cdf(n, t).to_double(), 6), "exact"});
  table.add_row(
      {"none (randomized)", "fair coin",
       ddm::util::fmt(ddm::core::optimal_oblivious_winning_probability(n, t).to_double(), 6),
       "exact"});
  const auto opt = ddm::core::SymmetricThresholdAnalysis::build(n, t).optimize();
  table.add_row({"own input", "optimal threshold beta* = " + ddm::util::fmt(opt.beta.approx(), 4),
                 ddm::util::fmt(opt.value.to_double(), 6), "exact"});
  if (n <= 20) {
    const auto oracle = ddm::sim::estimate_event_probability(
        n,
        [t_d](std::span<const double> xs) { return ddm::core::full_information_win(xs, t_d); },
        trials, rng);
    table.add_row({"all inputs", "oracle split", ddm::util::fmt(oracle.estimate, 6),
                   "Monte Carlo"});
  }
  table.print(std::cout);
  return 0;
}

/// Options pulled out of argv before positional dispatch.
struct Options {
  CertifyRequest certify;
  std::string checkpoint_path;
  bool resume = false;
  std::string trace_path;
  bool metrics = false;
  enum class MetricsFormat { kText, kJson, kProm } metrics_format = MetricsFormat::kText;
  std::string engine = "auto";
};

/// Turns collection on before dispatch. Tracing and metrics are both global
/// relaxed flags, so enabling them costs the instrumented code nothing until
/// an event actually fires.
void enable_observability(const Options& options) {
  if (!options.trace_path.empty()) ddm::obs::start_tracing();
  if (options.metrics) ddm::obs::set_metrics_enabled(true);
}

/// Exports the trace and dumps metrics at exit — on the error path too, so a
/// failed run still leaves its diagnostics behind. Returns 0, or 2 when the
/// trace file cannot be written.
int finalize_observability(const Options& options) {
  int rc = 0;
  if (!options.trace_path.empty()) {
    ddm::obs::stop_tracing();
    try {
      ddm::obs::export_chrome_trace(options.trace_path);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << "\n";
      rc = 2;
    }
  }
  if (options.metrics) {
    const auto& registry = ddm::obs::Registry::instance();
    switch (options.metrics_format) {
      case Options::MetricsFormat::kText:
        registry.write_text(std::cerr);
        break;
      case Options::MetricsFormat::kJson:
        registry.write_json(std::cerr);
        break;
      case Options::MetricsFormat::kProm:
        registry.write_prometheus(std::cerr);
        break;
    }
  }
  return rc;
}

int dispatch(const std::vector<std::string>& args, const Options& options) {
  const std::string& command = args[0];
  const std::size_t n_args = args.size();

  if (options.certify.enabled && command != "threshold" && command != "volume" &&
      command != "sweep") {
    throw BadArgument("--certify is only supported by 'threshold', 'volume', and 'sweep'");
  }
  if (!options.checkpoint_path.empty() && command != "sweep") {
    throw BadArgument("--checkpoint/--resume are only supported by 'sweep'");
  }
  if (options.engine != "auto") {
    if (command != "sweep") throw BadArgument("--engine is only supported by 'sweep'");
    if (options.certify.enabled) {
      throw BadArgument("--engine cannot be combined with --certify (the ladder picks its own tiers)");
    }
  }

  if (command == "oblivious" && n_args == 3) {
    return cmd_oblivious(parse_u32("n", args[1]), parse_rational("t", args[2]));
  }
  if (command == "threshold" && n_args == 4) {
    return cmd_threshold(parse_u32("n", args[1]), parse_rational("t", args[2]),
                         parse_rational("beta", args[3]), options.certify);
  }
  if (command == "analyze" && (n_args == 3 || n_args == 4)) {
    const int digits = n_args == 4 ? parse_int("digits", args[3]) : 30;
    if (digits < 1 || digits > 1000) {
      throw BadArgument("invalid digits '" + args[3] + "' (expected 1..1000)");
    }
    return cmd_analyze(parse_u32("n", args[1]), parse_rational("t", args[2]), digits);
  }
  if (command == "simulate" && (n_args == 5 || n_args == 6)) {
    return cmd_simulate(parse_u32("n", args[1]), parse_rational("t", args[2]),
                        parse_rational("beta", args[3]), parse_u64("trials", args[4]),
                        n_args == 6 ? parse_u64("seed", args[5]) : 42);
  }
  if (command == "volume" && n_args >= 2) {
    const std::uint32_t m = parse_u32("m", args[1]);
    if (m < 1) throw BadArgument("invalid m '" + args[1] + "' (volume needs m >= 1)");
    if (n_args != 2 + 2 * static_cast<std::size_t>(m)) {
      throw BadArgument("invalid volume argument count for m '" + args[1] + "' (expected " +
                        std::to_string(2 * m) + " sides, got " + std::to_string(n_args - 2) +
                        ")");
    }
    std::vector<Rational> sigma;
    std::vector<Rational> pi;
    for (std::uint32_t l = 0; l < m; ++l) {
      sigma.push_back(parse_rational("sigma", args[2 + l]));
    }
    for (std::uint32_t l = 0; l < m; ++l) {
      pi.push_back(parse_rational("pi", args[2 + m + l]));
    }
    return cmd_volume(sigma, pi, options.certify);
  }
  if (command == "sweep" && n_args == 6) {
    return cmd_sweep(parse_u32("n", args[1]), parse_rational("t", args[2]),
                     parse_rational("beta_lo", args[3]), parse_rational("beta_hi", args[4]),
                     parse_u32("steps", args[5]), options.checkpoint_path, options.resume,
                     options.certify, options.engine);
  }
  if (command == "ladder" && (n_args == 3 || n_args == 4)) {
    return cmd_ladder(parse_u32("n", args[1]), parse_rational("t", args[2]),
                      n_args == 4 ? parse_u64("trials", args[3]) : 500000);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;  // positional arguments, command first
  Options options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--certify") {
        options.certify.enabled = true;
      } else if (arg.rfind("--certify=", 0) == 0) {
        options.certify.enabled = true;
        options.certify.policy.tolerance =
            parse_rational("--certify tolerance", arg.substr(10));
        if (options.certify.policy.tolerance.signum() < 0) {
          throw BadArgument("invalid --certify tolerance '" + arg.substr(10) +
                            "' (must be >= 0)");
        }
      } else if (arg == "--checkpoint" || arg == "--resume") {
        if (i + 1 >= argc) throw BadArgument(arg + " requires a file argument");
        options.checkpoint_path = argv[++i];
        options.resume = options.resume || arg == "--resume";
      } else if (arg.rfind("--trace=", 0) == 0) {
        options.trace_path = arg.substr(8);
        if (options.trace_path.empty()) {
          throw BadArgument("invalid --trace '' (expected --trace=<file>)");
        }
      } else if (arg == "--trace") {
        throw BadArgument("--trace requires a file (use --trace=<file>)");
      } else if (arg.rfind("--engine=", 0) == 0) {
        options.engine = arg.substr(9);
        if (options.engine != "compiled" && options.engine != "kernel" &&
            options.engine != "auto") {
          throw BadArgument("invalid --engine '" + options.engine +
                            "' (expected compiled, kernel, or auto)");
        }
      } else if (arg == "--engine") {
        throw BadArgument("--engine requires a value (use --engine=compiled|kernel|auto)");
      } else if (arg == "--metrics") {
        options.metrics = true;
      } else if (arg.rfind("--metrics=", 0) == 0) {
        const std::string format = arg.substr(10);
        if (format == "json") {
          options.metrics_format = Options::MetricsFormat::kJson;
        } else if (format == "prom") {
          options.metrics_format = Options::MetricsFormat::kProm;
        } else {
          throw BadArgument("invalid --metrics format '" + format +
                            "' (expected json or prom)");
        }
        options.metrics = true;
      } else if (arg.rfind("--", 0) == 0) {
        throw BadArgument("unknown option '" + arg + "'");
      } else {
        args.push_back(arg);
      }
    }
    if (args.empty()) return usage();
    enable_observability(options);
    const int rc = dispatch(args, options);
    const int obs_rc = finalize_observability(options);
    return rc != 0 ? rc : obs_rc;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    finalize_observability(options);
    return 2;
  }
}
