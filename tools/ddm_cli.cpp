// ddm_cli — command-line front end to the ddm library.
//
// Subcommands:
//   oblivious <n> <t>                exact optimal oblivious protocol (Thm 4.3)
//   threshold <n> <t> <beta>         exact P of a symmetric threshold (Thm 5.1)
//   analyze   <n> <t> [digits]       full Section 5.2 analysis: pieces,
//                                    optimality condition, certified beta*
//   simulate  <n> <t> <beta> <trials> [seed]   Monte Carlo cross-check
//   volume    <m> <s1..sm> <p1..pm>  Vol(simplex ∩ box), Proposition 2.2
//   ladder    <n> <t> [trials]       information ladder: deterministic /
//                                    oblivious / threshold / full-info oracle
//   sweep     <n> <t> <lo> <hi> <steps>   β-grid of Theorem 5.1 values, fanned
//                                    across the thread pool, emitted as JSON
// Rationals are accepted as "a/b" or integers (e.g. 4/3).
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "ddm.hpp"

namespace {

using ddm::util::Rational;

int usage() {
  std::cout <<
      R"(ddm_cli — optimal distributed decision-making with no communication
(Georgiades/Mavronicolas/Spirakis, FCT'99)

usage:
  ddm_cli oblivious <n> <t>
  ddm_cli threshold <n> <t> <beta>
  ddm_cli analyze   <n> <t> [digits=30]
  ddm_cli simulate  <n> <t> <beta> <trials> [seed=42]
  ddm_cli volume    <m> <sigma_1..sigma_m> <pi_1..pi_m>
  ddm_cli ladder    <n> <t> [trials=500000]
  ddm_cli sweep     <n> <t> <beta_lo> <beta_hi> <steps>

rationals may be written a/b (e.g. 4/3). Examples:
  ddm_cli analyze 3 1            # the paper's flagship instance
  ddm_cli analyze 4 4/3 40       # Section 5.2.2 with 40 certified digits
  ddm_cli simulate 3 1 0.622 1000000
  ddm_cli sweep 4 4/3 0 1 100    # JSON grid of P(beta), all cores
)";
  return 1;
}

Rational parse_rational(const std::string& text) {
  // Accept a/b, integers, and decimal notation like 0.622.
  const auto dot = text.find('.');
  if (dot == std::string::npos) return Rational::parse(text);
  const std::string whole = text.substr(0, dot);
  const std::string frac = text.substr(dot + 1);
  if (frac.empty()) return Rational::parse(whole.empty() ? "0" : whole);
  const bool negative = !whole.empty() && whole[0] == '-';
  Rational result = Rational::parse(whole.empty() || whole == "-" ? "0" : whole);
  const Rational fraction{ddm::util::BigInt{frac},
                          ddm::util::BigInt::pow(ddm::util::BigInt{10}, frac.size())};
  return negative ? result - fraction : result + fraction;
}

int cmd_oblivious(std::uint32_t n, const Rational& t) {
  const Rational p = ddm::core::optimal_oblivious_winning_probability(n, t);
  std::cout << "Optimal oblivious (anonymous) protocol: alpha = 1/2 for all players\n"
            << "  P(no overflow) = " << p << " = " << p.to_double() << "\n"
            << "  gradient residual at 1/2 (Cor 4.2): "
            << ddm::core::stationarity_residual(std::vector<Rational>(n, Rational(1, 2)), t)
            << "\n";
  return 0;
}

int cmd_threshold(std::uint32_t n, const Rational& t, const Rational& beta) {
  const Rational p = ddm::core::symmetric_threshold_winning_probability(n, beta, t);
  std::cout << "Symmetric single-threshold protocol, beta = " << beta << "\n"
            << "  P(no overflow) = " << p << " = " << p.to_double() << "\n";
  return 0;
}

int cmd_analyze(std::uint32_t n, const Rational& t, int digits) {
  const auto analysis = ddm::core::SymmetricThresholdAnalysis::build(n, t);
  std::cout << "P(beta) for n = " << n << ", t = " << t << " (exact pieces):\n";
  for (const auto& piece : analysis.winning_probability().pieces()) {
    std::cout << "  [" << piece.lo << ", " << piece.hi << "]  "
              << piece.poly.to_string("beta") << "\n";
  }
  const auto opt = analysis.optimize();
  std::cout << "Optimality condition: " << opt.optimality_condition.to_string("beta")
            << (opt.interior ? " = 0" : "") << "\n";
  ddm::poly::RootInterval beta = opt.beta;
  if (opt.interior) {
    const Rational width{ddm::util::BigInt{1},
                         ddm::util::BigInt::pow(ddm::util::BigInt{10},
                                                static_cast<std::uint64_t>(digits))};
    beta = ddm::poly::refine_root(opt.optimality_condition, beta, width);
  }
  std::cout << "beta* = " << ddm::util::fmt(beta.approx(), std::min(digits, 17))
            << "  (certified global maximum: " << (opt.certified ? "yes" : "no") << ")\n"
            << "P(beta*) = " << ddm::util::fmt(opt.value.to_double(), 15) << "\n"
            << "Oblivious baseline: "
            << ddm::util::fmt(
                   ddm::core::optimal_oblivious_winning_probability(n, t).to_double(), 15)
            << "\n";
  return 0;
}

int cmd_simulate(std::uint32_t n, const Rational& t, const Rational& beta,
                 std::uint64_t trials, std::uint64_t seed) {
  const auto protocol = ddm::core::SingleThresholdProtocol::symmetric(n, beta);
  ddm::prob::Rng rng{seed};
  const auto result =
      ddm::sim::estimate_winning_probability(protocol, t.to_double(), trials, rng);
  const double exact =
      ddm::core::symmetric_threshold_winning_probability(n, beta, t).to_double();
  std::cout << "Simulated " << trials << " trials (seed " << seed << "):\n"
            << "  estimate = " << result.estimate << "  95% CI [" << result.ci_low << ", "
            << result.ci_high << "]\n"
            << "  exact    = " << exact << "  ("
            << (result.covers(exact) ? "covered" : "NOT covered") << ")\n";
  return 0;
}

int cmd_volume(const std::vector<Rational>& sigma, const std::vector<Rational>& pi) {
  const Rational volume = ddm::geom::simplex_box_volume(sigma, pi);
  std::cout << "Vol(Sigma(sigma) ∩ Pi(pi))  [Proposition 2.2]\n"
            << "  = " << volume << " = " << volume.to_double() << "\n"
            << "  simplex volume = " << ddm::geom::simplex_volume(sigma) << ", box volume = "
            << ddm::geom::box_volume(pi) << "\n";
  return 0;
}

int cmd_sweep(std::uint32_t n, const Rational& t, const Rational& lo, const Rational& hi,
              std::uint32_t steps) {
  if (n == 0 || steps == 0) return usage();
  const double t_d = t.to_double();
  const double lo_d = lo.to_double();
  const double hi_d = hi.to_double();
  std::vector<double> betas(steps + 1);
  std::vector<std::vector<double>> points(steps + 1);
  for (std::uint32_t k = 0; k <= steps; ++k) {
    const double beta =
        std::clamp(lo_d + (hi_d - lo_d) * static_cast<double>(k) / static_cast<double>(steps),
                   0.0, 1.0);
    betas[k] = beta;
    points[k].assign(n, beta);
  }
  const std::vector<double> values =
      ddm::core::threshold_winning_probability_batch(points, t_d);
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10) << "[\n";
  for (std::uint32_t k = 0; k <= steps; ++k) {
    std::cout << "  {\"n\": " << n << ", \"t\": " << t_d << ", \"beta\": " << betas[k]
              << ", \"p_win\": " << values[k] << "}" << (k < steps ? "," : "") << "\n";
  }
  std::cout << "]\n";
  return 0;
}

int cmd_ladder(std::uint32_t n, const Rational& t, std::uint64_t trials) {
  const double t_d = t.to_double();
  ddm::prob::Rng rng{1234};
  ddm::util::Table table{{"information", "protocol", "P(win)", "method"}};
  table.add_row({"none (deterministic)", "all-one-bin",
                 ddm::util::fmt(ddm::prob::irwin_hall_cdf(n, t).to_double(), 6), "exact"});
  table.add_row(
      {"none (randomized)", "fair coin",
       ddm::util::fmt(ddm::core::optimal_oblivious_winning_probability(n, t).to_double(), 6),
       "exact"});
  const auto opt = ddm::core::SymmetricThresholdAnalysis::build(n, t).optimize();
  table.add_row({"own input", "optimal threshold beta* = " + ddm::util::fmt(opt.beta.approx(), 4),
                 ddm::util::fmt(opt.value.to_double(), 6), "exact"});
  if (n <= 20) {
    const auto oracle = ddm::sim::estimate_event_probability(
        n,
        [t_d](std::span<const double> xs) { return ddm::core::full_information_win(xs, t_d); },
        trials, rng);
    table.add_row({"all inputs", "oracle split", ddm::util::fmt(oracle.estimate, 6),
                   "Monte Carlo"});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "oblivious" && argc == 4) {
      return cmd_oblivious(static_cast<std::uint32_t>(std::stoul(argv[2])),
                           parse_rational(argv[3]));
    }
    if (command == "threshold" && argc == 5) {
      return cmd_threshold(static_cast<std::uint32_t>(std::stoul(argv[2])),
                           parse_rational(argv[3]), parse_rational(argv[4]));
    }
    if (command == "analyze" && (argc == 4 || argc == 5)) {
      const int digits = argc == 5 ? std::stoi(argv[4]) : 30;
      if (digits < 1 || digits > 1000) return usage();
      return cmd_analyze(static_cast<std::uint32_t>(std::stoul(argv[2])),
                         parse_rational(argv[3]), digits);
    }
    if (command == "simulate" && (argc == 6 || argc == 7)) {
      return cmd_simulate(static_cast<std::uint32_t>(std::stoul(argv[2])),
                          parse_rational(argv[3]), parse_rational(argv[4]),
                          std::stoull(argv[5]), argc == 7 ? std::stoull(argv[6]) : 42);
    }
    if (command == "volume" && argc >= 3) {
      const int m = std::stoi(argv[2]);
      if (m < 1 || argc != 3 + 2 * m) return usage();
      std::vector<Rational> sigma;
      std::vector<Rational> pi;
      for (int l = 0; l < m; ++l) sigma.push_back(parse_rational(argv[3 + l]));
      for (int l = 0; l < m; ++l) pi.push_back(parse_rational(argv[3 + m + l]));
      return cmd_volume(sigma, pi);
    }
    if (command == "sweep" && argc == 7) {
      return cmd_sweep(static_cast<std::uint32_t>(std::stoul(argv[2])), parse_rational(argv[3]),
                       parse_rational(argv[4]), parse_rational(argv[5]),
                       static_cast<std::uint32_t>(std::stoul(argv[6])));
    }
    if (command == "ladder" && (argc == 4 || argc == 5)) {
      return cmd_ladder(static_cast<std::uint32_t>(std::stoul(argv[2])),
                        parse_rational(argv[3]),
                        argc == 5 ? std::stoull(argv[4]) : 500000);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
  return usage();
}
