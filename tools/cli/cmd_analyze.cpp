// analyze — full Section 5.2 analysis of one symmetric instance.
#include <algorithm>
#include <iostream>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "cli/report.hpp"
#include "core/oblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "engine/registry.hpp"
#include "poly/roots.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace ddm::cli {

namespace {

/// Generalized-game analysis. The Section 5.2 closed-form pieces are a
/// homogeneous result, so under a --scenario the optimizer is numeric:
/// iterated grid refinement of P(beta) over [0, 1] through the
/// scenario-aware engine (exact within its cap, else seeded MC — the engine
/// that actually answered is reported). Each round evaluates one batched
/// grid request and zooms into the cell bracket around the argmax; the
/// reported beta* is a numeric estimate, never a certified root, and the
/// output says so explicitly.
int run_analyze_scenario(const engine::Scenario& scenario, std::uint32_t n,
                         const util::Rational& t, const Options& options) {
  std::cout << "Scenario: " << scenario.digest() << "\n"
            << "Numeric optimization of P(beta), n = " << n << ", t = " << t
            << " (no closed-form pieces for this game):\n";
  engine::EnginePolicy policy;
  policy.engine = options.engine;
  double lo = 0.0;
  double hi = 1.0;
  double best_beta = 0.0;
  double best_value = -1.0;
  std::string engine_id;
  constexpr std::uint32_t kGrid = 64;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> betas(kGrid + 1);
    for (std::uint32_t k = 0; k <= kGrid; ++k) {
      betas[k] = lo + (hi - lo) * static_cast<double>(k) / static_cast<double>(kGrid);
    }
    auto request = engine::EvalRequest::symmetric(n, t, betas);
    request.scenario = scenario;
    const engine::Selection selection = engine::select(policy, request);
    if (round == 0) report_fallback(selection);
    const engine::EvalOutcome outcome = selection.evaluator->evaluate(request);
    engine_id = outcome.engine_id;
    std::size_t arg = 0;
    for (std::size_t k = 0; k <= kGrid; ++k) {
      if (outcome.values[k] > outcome.values[arg]) arg = k;
    }
    best_beta = betas[arg];
    best_value = outcome.values[arg];
    // Zoom into the bracketing cells around the argmax for the next round.
    const double cell = (hi - lo) / static_cast<double>(kGrid);
    lo = std::max(0.0, best_beta - cell);
    hi = std::min(1.0, best_beta + cell);
  }
  std::cout << "beta* ~= " << util::fmt(best_beta, 12)
            << "  (numeric grid refinement; certified: no)\n"
            << "P(beta*) ~= " << util::fmt(best_value, 15) << "  [engine: " << engine_id
            << "]\n"
            << "Grid resolution: " << kRounds << " rounds x " << (kGrid + 1) << " points\n";
  return 0;
}

}  // namespace

int run_analyze(const std::vector<std::string>& args, const Options& options) {
  const std::uint32_t n = parse_u32("n", args[1]);
  const util::Rational t = parse_rational("t", args[2]);
  const int digits = args.size() == 4 ? parse_int("digits", args[3]) : 30;
  if (digits < 1 || digits > 1000) {
    throw BadArgument("invalid digits '" + args[3] + "' (expected 1..1000)");
  }
  const engine::Scenario scenario = resolve_scenario(options);
  if (!scenario.is_default()) {
    try {
      scenario.check_players(n, "analyze");
    } catch (const Error& error) {
      throw BadArgument(error.what());
    }
    return run_analyze_scenario(scenario, n, t, options);
  }
  const auto analysis = core::SymmetricThresholdAnalysis::build(n, t);
  std::cout << "P(beta) for n = " << n << ", t = " << t << " (exact pieces):\n";
  for (const auto& piece : analysis.winning_probability().pieces()) {
    std::cout << "  [" << piece.lo << ", " << piece.hi << "]  "
              << piece.poly.to_string("beta") << "\n";
  }
  const auto opt = analysis.optimize();
  std::cout << "Optimality condition: " << opt.optimality_condition.to_string("beta")
            << (opt.interior ? " = 0" : "") << "\n";
  poly::RootInterval beta = opt.beta;
  if (opt.interior) {
    const util::Rational width{util::BigInt{1},
                               util::BigInt::pow(util::BigInt{10},
                                                 static_cast<std::uint64_t>(digits))};
    beta = poly::refine_root(opt.optimality_condition, beta, width);
  }
  std::cout << "beta* = " << util::fmt(beta.approx(), std::min(digits, 17))
            << "  (certified global maximum: " << (opt.certified ? "yes" : "no") << ")\n"
            << "P(beta*) = " << util::fmt(opt.value.to_double(), 15) << "\n"
            << "Oblivious baseline: "
            << util::fmt(core::optimal_oblivious_winning_probability(n, t).to_double(), 15)
            << "\n";
  if (options.engine_set) {
    // Cross-check: re-evaluate P at the certified beta* through the
    // requested engine. Appended after the unchanged default report so the
    // flagless output stays byte-identical.
    engine::EnginePolicy policy;
    policy.engine = options.engine;
    const auto request = engine::EvalRequest::symmetric(n, t, {beta.approx()});
    const engine::Selection selection = engine::select(policy, request);
    report_fallback(selection);
    const engine::EvalOutcome outcome = selection.evaluator->evaluate(request);
    std::cout << "Engine cross-check [" << outcome.engine_id
              << "]: P(beta*) = " << util::fmt(outcome.values.at(0), 15) << "\n";
  }
  return 0;
}

}  // namespace ddm::cli
