// analyze — full Section 5.2 analysis of one symmetric instance.
#include <algorithm>
#include <iostream>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "cli/report.hpp"
#include "core/oblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "engine/registry.hpp"
#include "poly/roots.hpp"
#include "util/table.hpp"

namespace ddm::cli {

int run_analyze(const std::vector<std::string>& args, const Options& options) {
  const std::uint32_t n = parse_u32("n", args[1]);
  const util::Rational t = parse_rational("t", args[2]);
  const int digits = args.size() == 4 ? parse_int("digits", args[3]) : 30;
  if (digits < 1 || digits > 1000) {
    throw BadArgument("invalid digits '" + args[3] + "' (expected 1..1000)");
  }
  const auto analysis = core::SymmetricThresholdAnalysis::build(n, t);
  std::cout << "P(beta) for n = " << n << ", t = " << t << " (exact pieces):\n";
  for (const auto& piece : analysis.winning_probability().pieces()) {
    std::cout << "  [" << piece.lo << ", " << piece.hi << "]  "
              << piece.poly.to_string("beta") << "\n";
  }
  const auto opt = analysis.optimize();
  std::cout << "Optimality condition: " << opt.optimality_condition.to_string("beta")
            << (opt.interior ? " = 0" : "") << "\n";
  poly::RootInterval beta = opt.beta;
  if (opt.interior) {
    const util::Rational width{util::BigInt{1},
                               util::BigInt::pow(util::BigInt{10},
                                                 static_cast<std::uint64_t>(digits))};
    beta = poly::refine_root(opt.optimality_condition, beta, width);
  }
  std::cout << "beta* = " << util::fmt(beta.approx(), std::min(digits, 17))
            << "  (certified global maximum: " << (opt.certified ? "yes" : "no") << ")\n"
            << "P(beta*) = " << util::fmt(opt.value.to_double(), 15) << "\n"
            << "Oblivious baseline: "
            << util::fmt(core::optimal_oblivious_winning_probability(n, t).to_double(), 15)
            << "\n";
  if (options.engine_set) {
    // Cross-check: re-evaluate P at the certified beta* through the
    // requested engine. Appended after the unchanged default report so the
    // flagless output stays byte-identical.
    engine::EnginePolicy policy;
    policy.engine = options.engine;
    const auto request = engine::EvalRequest::symmetric(n, t, {beta.approx()});
    const engine::Selection selection = engine::select(policy, request);
    report_fallback(selection);
    const engine::EvalOutcome outcome = selection.evaluator->evaluate(request);
    std::cout << "Engine cross-check [" << outcome.engine_id
              << "]: P(beta*) = " << util::fmt(outcome.values.at(0), 15) << "\n";
  }
  return 0;
}

}  // namespace ddm::cli
