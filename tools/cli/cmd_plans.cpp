// plans — operate on the persistent compiled-plan store (poly/plan_store.hpp).
//
// Verbs:
//   * precompile <n_max> <t> [tol]: lower the Theorem 5.1 plan for every
//     n = 1..n_max at capacity t and persist each plan whose certified
//     max-error bound clears the tolerance (default 1e-9, the auto-policy
//     bound). Plans over the bound are reported and skipped — the store only
//     ever holds plans that can honor their own advertisement. Exit 0 when
//     at least one plan was stored, exit 3 when every n was skipped.
//   * list: one JSON row per store file, through full validate-on-load, with
//     rejected files reported (exit stays 0 — list is an inventory).
//   * validate: same walk, but any rejected file makes the exit status 3 —
//     the CI gate for a store directory.
// The store directory comes from --store=<dir> (created for precompile,
// must exist for list/validate) or the DDM_PLAN_STORE environment variable.
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>
#include <memory>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "core/symmetric_threshold.hpp"
#include "engine/policy.hpp"
#include "obs/trace.hpp"
#include "poly/plan_store.hpp"
#include "util/status.hpp"

namespace ddm::cli {

namespace {

using util::Rational;

/// Resolves the store directory for a verb: --store wins, DDM_PLAN_STORE is
/// the fallback, neither is a BadArgument (exit 2). `create` distinguishes
/// the write side (precompile makes the directory) from the read side
/// (list/validate require it to exist).
std::shared_ptr<poly::PlanStore> resolve_store(const Options& options, bool create) {
  if (!options.store_dir.empty()) {
    return create ? poly::PlanStore::create_directory(options.store_dir)
                  : poly::PlanStore::open_directory(options.store_dir, "--store");
  }
  const char* env = std::getenv("DDM_PLAN_STORE");
  if (env != nullptr && *env != '\0') {
    return create ? poly::PlanStore::create_directory(env)
                  : poly::PlanStore::open_directory(env, "DDM_PLAN_STORE");
  }
  throw BadArgument("plans needs a store directory (use --store=<dir> or set DDM_PLAN_STORE)");
}

int plans_precompile(const std::vector<std::string>& args, const Options& options) {
  const std::uint32_t n_max = parse_u32("n_max", args[2]);
  const Rational t = parse_rational("t", args[3]);
  if (n_max == 0) throw BadArgument("invalid n_max '0' (precompile needs n_max >= 1)");
  if (t.signum() <= 0) throw BadArgument("invalid t '" + args[3] + "' (capacity must be > 0)");
  double tolerance = engine::kCompiledAutoTolerance;
  if (args.size() == 5) {
    const Rational tol = parse_rational("tol", args[4]);
    if (tol.signum() <= 0) {
      throw BadArgument("invalid tol '" + args[4] + "' (tolerance must be > 0)");
    }
    tolerance = tol.to_double();
  }
  const auto store = resolve_store(options, /*create=*/true);
  DDM_SPAN("cli.plans.precompile", {{"n_max", static_cast<std::int64_t>(n_max)}});

  std::size_t stored = 0;
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::uint32_t n = 1; n <= n_max; ++n) {
    const auto analysis = core::SymmetricThresholdAnalysis::build(n, t);
    const auto plan = poly::CompiledPiecewise::lower(analysis.winning_probability());
    if (plan.max_error_bound() > tolerance) {
      std::cout << "{\"n\": " << n << ", \"t\": \"" << t.to_string()
                << "\", \"stored\": false, \"max_error\": " << plan.max_error_bound()
                << ", \"tolerance\": " << tolerance << "}\n";
      continue;
    }
    store->save(n, t, plan, tolerance);
    ++stored;
    std::cout << "{\"n\": " << n << ", \"t\": \"" << t.to_string()
              << "\", \"stored\": true, \"pieces\": " << plan.pieces().size()
              << ", \"max_error\": " << plan.max_error_bound() << ", \"path\": \""
              << store->path_for(n, t) << "\"}\n";
  }
  std::cerr << "plans: stored " << stored << "/" << n_max << " plans in '"
            << store->directory() << "'\n";
  return stored > 0 ? 0 : 3;
}

/// Shared walk for `list` and `validate`: every *.plan file goes through full
/// validate-on-load; `strict` (validate) turns any rejection into exit 3.
int plans_walk(const Options& options, bool strict) {
  const auto store = resolve_store(options, /*create=*/false);
  const auto paths = store->list_paths();
  std::size_t rejected = 0;
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const std::string& path : paths) {
    try {
      const poly::LoadedPlan loaded = store->load_path(path);
      std::cout << "{\"path\": \"" << path << "\", \"valid\": true, \"n\": " << loaded.n
                << ", \"t\": \"" << loaded.t
                << "\", \"pieces\": " << loaded.plan->pieces().size()
                << ", \"max_error\": " << loaded.plan->max_error_bound()
                << ", \"tolerance\": " << loaded.tolerance << "}\n";
    } catch (const PlanStoreError& error) {
      ++rejected;
      std::cout << "{\"path\": \"" << path << "\", \"valid\": false, \"stale\": "
                << (error.stale() ? "true" : "false") << "}\n";
      std::cerr << "plans: " << error.what() << "\n";
    }
  }
  std::cerr << "plans: " << (paths.size() - rejected) << "/" << paths.size()
            << " valid plans in '" << store->directory() << "'\n";
  return strict && rejected > 0 ? 3 : 0;
}

}  // namespace

int run_plans(const std::vector<std::string>& args, const Options& options) {
  const std::string& verb = args[1];
  if (verb == "precompile") {
    if (args.size() < 4 || args.size() > 5) {
      throw BadArgument("plans precompile needs <n_max> <t> [tol]");
    }
    return plans_precompile(args, options);
  }
  if (args.size() != 2) throw BadArgument("plans " + verb + " takes no further arguments");
  if (verb == "list") return plans_walk(options, /*strict=*/false);
  if (verb == "validate") return plans_walk(options, /*strict=*/true);
  throw BadArgument("unknown plans verb '" + verb +
                    "' (expected precompile, list, or validate)");
}

}  // namespace ddm::cli
