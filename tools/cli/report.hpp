// report.hpp — shared result formatting for the ddm_cli subcommands.
#pragma once

#include "engine/registry.hpp"
#include "util/certify.hpp"

namespace ddm::cli {

/// Prints a certified result block (value, enclosure, tier, ladder
/// counters). Reports the per-evaluation ladder counters
/// (CertifiedValue::stats), not a cumulative policy-attached view — across
/// several evaluations the latter would misreport each one's escalation
/// count.
void print_certified(const ddm::CertifiedValue& result, const ddm::EvalPolicy& policy);

/// Surfaces an auto-mode fallback on stderr ("note: --engine=auto: ..."),
/// so a sweep that silently switched backends is silent no longer. No-op
/// for forced engines or when auto took its first choice.
void report_fallback(const engine::Selection& selection);

}  // namespace ddm::cli
