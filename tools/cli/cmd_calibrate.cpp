// calibrate — measure per-engine latency and write a policy table.
//
// The producer side of profile-guided dispatch (engine/cost_model.hpp): runs
// the deterministic calibration protocol — for every (engine, n, batch) grid
// cell one warmup run (absorbing plan lowering and pool spin-up) followed by
// median-of-3 timed runs of a fixed β-grid request at the paper's t = n/3
// regime — and persists the measured seconds-per-point as a versioned +
// checksummed table, then loads it straight back (full validate-on-load) as
// a round-trip self-check. One JSON row per measured cell goes to stdout so
// a calibration run is inspectable and diffable like every other subcommand.
//
// Like scripts/run_bench.sh, calibrate refuses non-release builds: a table
// measured with assertions enabled would mistune dispatch on every later run
// that loads it.
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "engine/cost_model.hpp"
#include "obs/trace.hpp"
#include "util/build_info.hpp"
#include "util/status.hpp"

namespace ddm::cli {

namespace {

/// Output path: --policy wins, otherwise the table lands next to the plan
/// store as <store>/policy.ddmpolicy (--store or DDM_PLAN_STORE).
std::string resolve_output(const Options& options) {
  if (options.policy_set) return options.policy_path;
  if (!options.store_dir.empty()) return options.store_dir + "/policy.ddmpolicy";
  const char* env = std::getenv("DDM_PLAN_STORE");
  if (env != nullptr && *env != '\0') return std::string(env) + "/policy.ddmpolicy";
  throw BadArgument(
      "calibrate needs an output (use --policy=<file>, or --store=<dir> / "
      "DDM_PLAN_STORE to write <store>/policy.ddmpolicy)");
}

/// The n grid: powers of two below n_max, then n_max itself — log-spaced,
/// deterministic, and always ending on the caller's ceiling.
std::vector<std::uint32_t> n_grid(std::uint32_t n_max) {
  std::vector<std::uint32_t> ns;
  for (std::uint32_t n = 1; n < n_max; n *= 2) ns.push_back(n);
  ns.push_back(n_max);
  return ns;
}

}  // namespace

int run_calibrate(const std::vector<std::string>& args, const Options& options) {
  if (std::string(util::build_type()) != "release") {
    throw Error(std::string("calibrate requires a release build (this library was built '") +
                util::build_type() +
                "'; configure with -DCMAKE_BUILD_TYPE=Release — a debug-timed table would "
                "mistune dispatch on every run that loads it)");
  }
  std::uint32_t n_max = 12;
  if (args.size() == 2) {
    n_max = parse_u32("n_max", args[1]);
    if (n_max == 0 || n_max > 20) {
      throw BadArgument("invalid n_max '" + args[1] + "' (calibrate needs 1 <= n_max <= 20)");
    }
  }
  const std::string output = resolve_output(options);
  DDM_SPAN("cli.calibrate", {{"n_max", static_cast<std::int64_t>(n_max)}});

  engine::CalibrationOptions calibration;
  calibration.ns = n_grid(n_max);
  const auto model = engine::CostModel::calibrate(calibration);
  if (model->empty()) {
    throw Error("calibrate measured no cells (no engine supported the grid)");
  }
  model->save(output);
  // Round-trip self-check: the file we just wrote must survive the same
  // strict validate-on-load every consumer will apply.
  const auto loaded = engine::CostModel::load(output, "calibrate");

  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const engine::CostCell& cell : loaded->cells()) {
    std::cout << "{\"engine\": \"" << cell.engine << "\", \"n\": " << cell.n
              << ", \"batch\": " << cell.batch
              << ", \"seconds_per_point\": " << cell.seconds_per_point << "}\n";
  }
  std::cerr << "calibrate: wrote " << loaded->cell_count() << " cells to '" << output << "'\n";
  return 0;
}

}  // namespace ddm::cli
