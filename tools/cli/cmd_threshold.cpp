// threshold — exact P of a symmetric threshold protocol (Theorem 5.1).
#include <iomanip>
#include <iostream>
#include <limits>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "cli/report.hpp"
#include "core/certified.hpp"
#include "core/nonoblivious.hpp"
#include "engine/registry.hpp"
#include "util/status.hpp"

namespace ddm::cli {

namespace {

/// Generalized-game evaluation: route through the engine layer (the only
/// seam that knows which backend serves which scenario). --certify forces
/// the certified engine so the answer carries a rigorous enclosure; the
/// default lets auto resolve (exact within the cap, else seeded MC).
int run_threshold_scenario(const engine::Scenario& scenario, std::uint32_t n,
                           const util::Rational& t, const util::Rational& beta,
                           const Options& options) {
  std::cout << "Scenario: " << scenario.digest() << "\n";
  engine::EnginePolicy policy;
  policy.engine = options.certify.enabled ? "certified" : options.engine;
  auto request = engine::EvalRequest::symmetric(n, t, {beta.to_double()});
  request.exact_betas = {beta};
  request.scenario = scenario;
  if (options.certify.enabled) request.tolerance = options.certify.policy.tolerance;
  const engine::Selection selection = engine::select(policy, request);
  report_fallback(selection);
  const engine::EvalOutcome outcome = selection.evaluator->evaluate(request);
  if (options.certify.enabled) {
    const ddm::CertifiedValue& result = outcome.certificates.at(0);
    print_certified(result, options.certify.policy);
    return result.met_tolerance ? 0 : 3;
  }
  const auto flags = std::cout.flags();
  const auto precision = std::cout.precision();
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10)
            << "  P(no overflow) = " << outcome.values.at(0) << "  [engine: "
            << outcome.engine_id << ", "
            << engine::to_string(selection.evaluator->determinism()) << "]\n";
  std::cout.flags(flags);
  std::cout.precision(precision);
  return 0;
}

}  // namespace

int run_threshold(const std::vector<std::string>& args, const Options& options) {
  const std::uint32_t n = parse_u32("n", args[1]);
  const util::Rational t = parse_rational("t", args[2]);
  const util::Rational beta = parse_rational("beta", args[3]);
  const engine::Scenario scenario = resolve_scenario(options);
  if (!scenario.is_default()) {
    try {
      scenario.check_players(n, "threshold");
    } catch (const Error& error) {
      throw BadArgument(error.what());
    }
  }
  std::cout << "Symmetric single-threshold protocol, beta = " << beta << "\n";
  if (!scenario.is_default()) return run_threshold_scenario(scenario, n, t, beta, options);
  if (options.certify.enabled) {
    const auto result =
        core::certified_symmetric_threshold_winning_probability(n, beta, t,
                                                                options.certify.policy);
    print_certified(result, options.certify.policy);
    return result.met_tolerance ? 0 : 3;
  }
  if (options.engine_set) {
    engine::EnginePolicy policy;
    policy.engine = options.engine;
    auto request = engine::EvalRequest::symmetric(n, t, {beta.to_double()});
    request.exact_betas = {beta};
    const engine::Selection selection = engine::select(policy, request);
    report_fallback(selection);
    const engine::EvalOutcome outcome = selection.evaluator->evaluate(request);
    const auto flags = std::cout.flags();
    const auto precision = std::cout.precision();
    std::cout << std::setprecision(std::numeric_limits<double>::max_digits10)
              << "  P(no overflow) = " << outcome.values.at(0) << "  [engine: "
              << outcome.engine_id << ", "
              << engine::to_string(selection.evaluator->determinism()) << "]\n";
    std::cout.flags(flags);
    std::cout.precision(precision);
    return 0;
  }
  const util::Rational p = core::symmetric_threshold_winning_probability(n, beta, t);
  std::cout << "  P(no overflow) = " << p << " = " << p.to_double() << "\n";
  return 0;
}

}  // namespace ddm::cli
