#include "cli/parse.hpp"

#include <algorithm>
#include <charconv>

#include "util/bigint.hpp"

namespace ddm::cli {

namespace {

template <typename T>
T parse_unsigned(const char* what, const std::string& text) {
  T value{};
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, value);
  if (text.empty() || result.ec != std::errc{} || result.ptr != end) {
    throw BadArgument(std::string("invalid ") + what + " '" + text +
                      "' (expected a non-negative integer)");
  }
  return value;
}

bool all_digits(const std::string& text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), [](char c) { return c >= '0' && c <= '9'; });
}

}  // namespace

std::uint32_t parse_u32(const char* what, const std::string& text) {
  return parse_unsigned<std::uint32_t>(what, text);
}

std::uint64_t parse_u64(const char* what, const std::string& text) {
  return parse_unsigned<std::uint64_t>(what, text);
}

int parse_int(const char* what, const std::string& text) {
  int value = 0;
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, value);
  if (text.empty() || result.ec != std::errc{} || result.ptr != end) {
    throw BadArgument(std::string("invalid ") + what + " '" + text + "' (expected an integer)");
  }
  return value;
}

util::Rational parse_rational(const char* what, const std::string& text) {
  const auto reject = [&]() -> BadArgument {
    return BadArgument(std::string("invalid ") + what + " '" + text +
                       "' (expected a/b, an integer, or a decimal)");
  };
  try {
    const auto dot = text.find('.');
    if (dot == std::string::npos) return util::Rational::parse(text);
    if (text.find('.', dot + 1) != std::string::npos) throw reject();  // e.g. "1.2.3"
    const std::string whole = text.substr(0, dot);
    const std::string frac = text.substr(dot + 1);
    if (!whole.empty() && whole != "-" && !all_digits(whole[0] == '-' ? whole.substr(1) : whole)) {
      throw reject();
    }
    if (frac.empty()) {
      if (whole.empty() || whole == "-") throw reject();  // "." or "-."
      return util::Rational::parse(whole);
    }
    if (!all_digits(frac)) throw reject();  // e.g. "1.2/3"
    const bool negative = !whole.empty() && whole[0] == '-';
    util::Rational result = util::Rational::parse(whole.empty() || whole == "-" ? "0" : whole);
    const util::Rational fraction{util::BigInt{frac},
                                  util::BigInt::pow(util::BigInt{10}, frac.size())};
    return negative ? result - fraction : result + fraction;
  } catch (const BadArgument&) {
    throw;
  } catch (const std::exception&) {
    throw reject();
  }
}

}  // namespace ddm::cli
