#include "cli/options.hpp"

#include <iostream>

#include "cli/parse.hpp"
#include "engine/registry.hpp"
#include "util/status.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace ddm::cli {

namespace {

/// "auto, batch, ..., kernel, or mc" — built from the registry so a newly
/// registered engine is accepted (and named in rejections) automatically.
std::string engine_choices() {
  const auto ids = engine::Registry::instance().ids();
  std::string choices = "auto";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    choices += (i + 1 == ids.size()) ? ", or " : ", ";
    choices += ids[i];
  }
  return choices;
}

std::string engine_values() {
  std::string values = "auto";
  for (const std::string_view id : engine::Registry::instance().ids()) {
    values += '|';
    values += id;
  }
  return values;
}

}  // namespace

CommandLine parse_command_line(int argc, char** argv) {
  CommandLine command_line;
  Options& options = command_line.options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--certify") {
      options.certify.enabled = true;
    } else if (arg.rfind("--certify=", 0) == 0) {
      options.certify.enabled = true;
      options.certify.policy.tolerance = parse_rational("--certify tolerance", arg.substr(10));
      if (options.certify.policy.tolerance.signum() < 0) {
        throw BadArgument("invalid --certify tolerance '" + arg.substr(10) + "' (must be >= 0)");
      }
    } else if (arg == "--checkpoint" || arg == "--resume") {
      if (i + 1 >= argc) throw BadArgument(arg + " requires a file argument");
      options.checkpoint_path = argv[++i];
      options.resume = options.resume || arg == "--resume";
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace_path = arg.substr(8);
      if (options.trace_path.empty()) {
        throw BadArgument("invalid --trace '' (expected --trace=<file>)");
      }
    } else if (arg == "--trace") {
      throw BadArgument("--trace requires a file (use --trace=<file>)");
    } else if (arg.rfind("--engine=", 0) == 0) {
      options.engine = arg.substr(9);
      options.engine_set = true;
      if (options.engine != "auto" &&
          engine::Registry::instance().find(options.engine) == nullptr) {
        throw BadArgument("invalid --engine '" + options.engine + "' (expected " +
                          engine_choices() + ")");
      }
    } else if (arg == "--engine") {
      throw BadArgument("--engine requires a value (use --engine=" + engine_values() + ")");
    } else if (arg.rfind("--shard=", 0) == 0) {
      const std::string value = arg.substr(8);
      const auto slash = value.find('/');
      bool ok = slash != std::string::npos && slash > 0 && slash + 1 < value.size();
      if (ok) {
        try {
          options.shard_index = parse_u32("--shard index", value.substr(0, slash));
          options.shard_count = parse_u32("--shard count", value.substr(slash + 1));
        } catch (const BadArgument&) {
          ok = false;
        }
      }
      if (!ok || options.shard_count == 0 || options.shard_index >= options.shard_count) {
        throw BadArgument("invalid --shard '" + value +
                          "' (expected i/k with 0 <= i < k, e.g. --shard=0/3)");
      }
      options.shard_set = true;
    } else if (arg == "--shard") {
      throw BadArgument("--shard requires a value (use --shard=i/k)");
    } else if (arg.rfind("--scenario=", 0) == 0) {
      options.scenario = arg.substr(11);
      options.scenario_set = true;
      if (options.scenario.empty()) {
        throw BadArgument(
            "invalid --scenario '' (expected homogeneous, heterogeneous, or deviating:<k>)");
      }
    } else if (arg == "--scenario") {
      throw BadArgument("--scenario requires a value (use --scenario=<descriptor>)");
    } else if (arg.rfind("--ranges=", 0) == 0) {
      options.ranges = arg.substr(9);
      options.ranges_set = true;
      if (options.ranges.empty()) {
        throw BadArgument("invalid --ranges '' (expected --ranges=c_1,..,c_n)");
      }
    } else if (arg == "--ranges") {
      throw BadArgument("--ranges requires a value (use --ranges=c_1,..,c_n)");
    } else if (arg.rfind("--policy=", 0) == 0) {
      options.policy_path = arg.substr(9);
      options.policy_set = true;
      if (options.policy_path.empty()) {
        throw BadArgument("invalid --policy '' (expected --policy=<file>)");
      }
    } else if (arg == "--policy") {
      throw BadArgument("--policy requires a file (use --policy=<file>)");
    } else if (arg.rfind("--store=", 0) == 0) {
      options.store_dir = arg.substr(8);
      if (options.store_dir.empty()) {
        throw BadArgument("invalid --store '' (expected --store=<dir>)");
      }
    } else if (arg == "--store") {
      throw BadArgument("--store requires a directory (use --store=<dir>)");
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      const std::string format = arg.substr(10);
      if (format == "json") {
        options.metrics_format = Options::MetricsFormat::kJson;
      } else if (format == "prom") {
        options.metrics_format = Options::MetricsFormat::kProm;
      } else {
        throw BadArgument("invalid --metrics format '" + format + "' (expected json or prom)");
      }
      options.metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg.rfind("--", 0) == 0) {
      throw BadArgument("unknown option '" + arg + "'");
    } else {
      command_line.args.push_back(arg);
    }
  }
  return command_line;
}

engine::Scenario resolve_scenario(const Options& options) {
  if (!options.scenario_set) {
    if (options.ranges_set) {
      throw BadArgument("--ranges requires --scenario=heterogeneous");
    }
    return engine::Scenario{};
  }
  if (options.scenario == "heterogeneous") {
    if (!options.ranges_set) {
      throw BadArgument(
          "--scenario=heterogeneous requires per-player ranges: add --ranges=c_1,..,c_n or "
          "write --scenario=heterogeneous:c_1,..,c_n");
    }
    try {
      return engine::Scenario::heterogeneous(engine::Scenario::parse_ranges(options.ranges));
    } catch (const Error& error) {
      throw BadArgument("invalid --ranges '" + options.ranges + "': " + error.what());
    }
  }
  if (options.ranges_set) {
    throw BadArgument(options.scenario.rfind("heterogeneous:", 0) == 0
                          ? "--scenario=heterogeneous:... carries its own ranges; drop --ranges"
                          : "--ranges only applies to --scenario=heterogeneous");
  }
  try {
    return engine::Scenario::parse(options.scenario);
  } catch (const Error& error) {
    throw BadArgument("invalid --scenario '" + options.scenario + "': " + error.what());
  }
}

void enable_observability(const Options& options) {
  if (!options.trace_path.empty()) ddm::obs::start_tracing();
  if (options.metrics) ddm::obs::set_metrics_enabled(true);
}

int finalize_observability(const Options& options) {
  int rc = 0;
  if (!options.trace_path.empty()) {
    ddm::obs::stop_tracing();
    try {
      ddm::obs::export_chrome_trace(options.trace_path);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << "\n";
      rc = 2;
    }
  }
  if (options.metrics) {
    const auto& registry = ddm::obs::Registry::instance();
    switch (options.metrics_format) {
      case Options::MetricsFormat::kText:
        registry.write_text(std::cerr);
        break;
      case Options::MetricsFormat::kJson:
        registry.write_json(std::cerr);
        break;
      case Options::MetricsFormat::kProm:
        registry.write_prometheus(std::cerr);
        break;
    }
  }
  return rc;
}

}  // namespace ddm::cli
