// options.hpp — global flags pulled out of argv before positional dispatch.
//
// Flag grammar (identical across subcommands; per-command *acceptance* is
// enforced by cli::dispatch against the command table):
//   --certify[=tol]       certified evaluation via the escalation ladder
//   --checkpoint <file>   append-only JSONL checkpoint (sweep)
//   --resume <file>       reuse rows already in <file>, append the rest
//   --engine=<id>         evaluation engine: "auto" or any registered id
//   --policy=<file>       calibrated engine policy table (overrides DDM_POLICY;
//                         for `calibrate` it names the OUTPUT file instead)
//   --shard=i/k           evaluate grid rows with index % k == i (sweep)
//   --scenario=<desc>     decision game: homogeneous (default),
//                         heterogeneous[:c_1,..,c_n], or deviating:<k>
//   --ranges=c_1,..,c_n   per-player ranges for --scenario=heterogeneous
//   --store=<dir>         plan store directory (plans; overrides DDM_PLAN_STORE)
//   --trace=<file>        export a Chrome trace at exit
//   --metrics[=json|prom] dump the metrics registry to stderr at exit
//   --help / -h           subcommand help (global usage without a command)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/scenario.hpp"
#include "util/certify.hpp"

namespace ddm::cli {

/// Certification options distilled from --certify[=tol].
struct CertifyRequest {
  bool enabled = false;
  ddm::EvalPolicy policy;
};

/// Options pulled out of argv before positional dispatch.
struct Options {
  CertifyRequest certify;
  std::string checkpoint_path;
  bool resume = false;
  std::string trace_path;
  bool metrics = false;
  enum class MetricsFormat { kText, kJson, kProm } metrics_format = MetricsFormat::kText;
  /// Engine-selection policy: "auto" or a registered engine id. engine_set
  /// records whether --engine appeared at all — subcommands keep their
  /// pre-engine output byte-identical unless the flag was given explicitly
  /// (sweep is the exception: its auto mode always reports the chosen
  /// engine, see cmd_sweep.cpp).
  std::string engine = "auto";
  bool engine_set = false;
  /// Deterministic grid partition (--shard=i/k): this process evaluates the
  /// rows with k-index % shard_count == shard_index. 0/1 = unsharded.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  bool shard_set = false;
  /// Decision game descriptor (--scenario=<desc>) and the companion
  /// heterogeneous ranges list (--ranges=c_1,..,c_n). Raw text here; the
  /// combination is validated and resolved by resolve_scenario() so every
  /// subcommand rejects malformed games with the same messages.
  std::string scenario;
  bool scenario_set = false;
  std::string ranges;
  bool ranges_set = false;
  /// Plan store directory (--store=<dir>); empty means DDM_PLAN_STORE.
  std::string store_dir;
  /// Engine policy table (--policy=<file>); empty means DDM_POLICY. Loaded
  /// strictly by dispatch() before any handler runs — except `calibrate`,
  /// where it names the table the calibration sweep WRITES.
  std::string policy_path;
  bool policy_set = false;
  bool help = false;
};

/// argv split into positional arguments (command first) and global options.
struct CommandLine {
  std::vector<std::string> args;
  Options options;
};

/// Parses argv. Throws BadArgument on malformed or unknown flags; --engine
/// values are validated against the registry ("auto" plus every id).
[[nodiscard]] CommandLine parse_command_line(int argc, char** argv);

/// Resolves --scenario/--ranges into the game the request is posed over.
/// No flags = the paper's homogeneous default. Throws BadArgument on every
/// malformed combination: --ranges without --scenario=heterogeneous,
/// --scenario=heterogeneous without ranges (flag or inline), inline ranges
/// combined with --ranges, unknown scenario ids, and unparseable values.
[[nodiscard]] engine::Scenario resolve_scenario(const Options& options);

/// Turns collection on before dispatch. Tracing and metrics are both global
/// relaxed flags, so enabling them costs the instrumented code nothing until
/// an event actually fires.
void enable_observability(const Options& options);

/// Exports the trace and dumps metrics at exit — on the error path too, so a
/// failed run still leaves its diagnostics behind. Returns 0, or 2 when the
/// trace file cannot be written.
[[nodiscard]] int finalize_observability(const Options& options);

}  // namespace ddm::cli
