#include "cli/report.hpp"

#include <iomanip>
#include <iostream>
#include <limits>

namespace ddm::cli {

void print_certified(const ddm::CertifiedValue& result, const ddm::EvalPolicy& policy) {
  const ddm::EvalStats& stats = result.stats;
  const auto flags = std::cout.flags();
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10)
            << "  certified value = " << result.value() << "\n"
            << "  enclosure = [" << result.enclosure.lo().to_double() << ", "
            << result.enclosure.hi().to_double() << "]"
            << std::setprecision(3) << "  width = " << result.width().to_double() << "\n"
            << "  tier = " << ddm::to_string(result.tier) << "  tolerance ("
            << policy.tolerance.to_double() << ") "
            << (result.met_tolerance ? "met" : "NOT met") << "\n"
            << "  ladder: double x" << stats.double_attempts << ", interval x"
            << stats.interval_attempts << ", exact x" << stats.exact_attempts
            << ", escalations " << stats.escalations << ", numeric errors "
            << stats.numeric_errors << "\n";
  std::cout.flags(flags);
}

void report_fallback(const engine::Selection& selection) {
  if (selection.auto_mode && selection.fallback) {
    std::cerr << "note: --engine=auto: " << selection.note << "\n";
  }
}

}  // namespace ddm::cli
