// ladder — the information ladder for one instance.
#include <iostream>
#include <span>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "core/baselines.hpp"
#include "core/oblivious.hpp"
#include "core/symmetric_threshold.hpp"
#include "prob/rng.hpp"
#include "prob/uniform_sum.hpp"
#include "sim/monte_carlo.hpp"
#include "util/table.hpp"

namespace ddm::cli {

int run_ladder(const std::vector<std::string>& args, const Options&) {
  const std::uint32_t n = parse_u32("n", args[1]);
  const util::Rational t = parse_rational("t", args[2]);
  const std::uint64_t trials = args.size() == 4 ? parse_u64("trials", args[3]) : 500000;
  const double t_d = t.to_double();
  prob::Rng rng{1234};
  util::Table table{{"information", "protocol", "P(win)", "method"}};
  table.add_row({"none (deterministic)", "all-one-bin",
                 util::fmt(prob::irwin_hall_cdf(n, t).to_double(), 6), "exact"});
  table.add_row(
      {"none (randomized)", "fair coin",
       util::fmt(core::optimal_oblivious_winning_probability(n, t).to_double(), 6), "exact"});
  const auto opt = core::SymmetricThresholdAnalysis::build(n, t).optimize();
  table.add_row({"own input", "optimal threshold beta* = " + util::fmt(opt.beta.approx(), 4),
                 util::fmt(opt.value.to_double(), 6), "exact"});
  if (n <= 20) {
    const auto oracle = sim::estimate_event_probability(
        n, [t_d](std::span<const double> xs) { return core::full_information_win(xs, t_d); },
        trials, rng);
    table.add_row({"all inputs", "oracle split", util::fmt(oracle.estimate, 6), "Monte Carlo"});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace ddm::cli
