// sweep — β-grid of Theorem 5.1 values, evaluated through the engine layer.
//
// Engine semantics:
//   * forced (--engine=<id>, id != auto): the named engine evaluates every
//     point and rows keep the pre-engine format {"n", "t", "beta", "p_win"} —
//     pinned byte-identical to the pre-refactor CLI by tests/golden_cli/.
//   * auto (default or --engine=auto): engine::select applies the
//     compiled-vs-batch policy; every row gains an "engine" field naming the
//     backend that actually produced it, and a fallback (compiled plan
//     declined) is announced once on stderr — never silent.
//   * --certify / --engine=certified: the certified grid (exact rational
//     betas through the escalation ladder), rows carrying tier/width, exit 3
//     when any point misses the tolerance.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <limits>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "cli/report.hpp"
#include "core/certified.hpp"
#include "engine/registry.hpp"
#include "obs/trace.hpp"
#include "util/checkpoint.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace ddm::cli {

namespace {

using util::Rational;

// Certified sweep: every grid point goes through the escalation ladder with
// an exact rational beta (clamped to [0, 1]), fanned across the pool one
// point per chunk. Rows gain the per-point tier/escalations/width; exit code
// 3 when any point misses the policy tolerance. Under a generalized
// --scenario the per-point ladder is replaced by one batched request through
// the certified ENGINE (the only certificate-bearing backend that knows the
// game); rows then also carry the scenario digest.
int sweep_certified(std::uint32_t n, const Rational& t, const Rational& lo, const Rational& hi,
                    std::uint32_t steps, const ddm::EvalPolicy& policy,
                    const engine::Scenario& scenario) {
  std::vector<Rational> betas(steps + 1, Rational{0});
  const Rational range = hi - lo;
  const Rational denom{static_cast<std::int64_t>(steps)};
  for (std::uint32_t k = 0; k <= steps; ++k) {
    Rational beta = lo + range * Rational{static_cast<std::int64_t>(k)} / denom;
    if (beta < Rational{0}) beta = Rational{0};
    if (beta > Rational{1}) beta = Rational{1};
    betas[k] = beta;
  }

  std::vector<ddm::CertifiedValue> results(steps + 1);
  if (scenario.is_default()) {
    util::ParallelOptions options;
    options.grain = 1;
    options.label = "sweep_certify";
    util::parallel_for(
        0, betas.size(),
        [&](std::size_t chunk_lo, std::size_t chunk_hi) {
          for (std::size_t k = chunk_lo; k < chunk_hi; ++k) {
            // Fresh evaluation per attempt: idempotent under engine retry, and
            // CertifiedValue::stats carries this point's ladder counters only.
            results[k] = core::certified_symmetric_threshold_winning_probability(
                n, betas[k], t, policy);
          }
        },
        options);
  } else {
    std::vector<double> betas_d(steps + 1);
    for (std::uint32_t k = 0; k <= steps; ++k) betas_d[k] = betas[k].to_double();
    auto request = engine::EvalRequest::symmetric(n, t, std::move(betas_d));
    request.exact_betas = betas;
    request.tolerance = policy.tolerance;
    request.scenario = scenario;
    engine::EnginePolicy engine_policy;
    engine_policy.engine = "certified";
    const engine::Selection selection = engine::select(engine_policy, request);
    results = selection.evaluator->evaluate(request).certificates;
  }

  bool all_met = true;
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10) << "[\n";
  for (std::uint32_t k = 0; k <= steps; ++k) {
    const ddm::CertifiedValue& r = results[k];
    all_met = all_met && r.met_tolerance;
    std::cout << "  {\"n\": " << n << ", \"t\": " << t.to_double() << ", \"beta\": "
              << betas[k].to_double() << ", \"p_win\": " << r.value();
    if (!scenario.is_default()) std::cout << ", \"scenario\": \"" << scenario.digest() << "\"";
    std::cout << ", \"tier\": \""
              << ddm::to_string(r.tier) << "\", \"escalations\": " << r.stats.escalations
              << ", \"width\": " << r.width().to_double() << ", \"met_tolerance\": "
              << (r.met_tolerance ? "true" : "false") << "}" << (k < steps ? "," : "") << "\n";
  }
  std::cout << "]\n";
  return all_met ? 0 : 3;
}

}  // namespace

int run_sweep(const std::vector<std::string>& args, const Options& options) {
  const std::uint32_t n = parse_u32("n", args[1]);
  const Rational t = parse_rational("t", args[2]);
  const Rational lo = parse_rational("beta_lo", args[3]);
  const Rational hi = parse_rational("beta_hi", args[4]);
  const std::uint32_t steps = parse_u32("steps", args[5]);
  if (n == 0) throw BadArgument("invalid n '0' (sweep needs n >= 1)");
  if (steps == 0) throw BadArgument("invalid steps '0' (sweep needs steps >= 1)");
  const engine::Scenario scenario = resolve_scenario(options);
  if (!scenario.is_default()) {
    try {
      scenario.check_players(n, "sweep");
    } catch (const Error& error) {
      throw BadArgument(error.what());
    }
  }
  DDM_SPAN("cli.sweep", {{"n", static_cast<std::int64_t>(n)},
                         {"steps", static_cast<std::int64_t>(steps)}});
  const bool certified_engine = options.engine_set && options.engine == "certified";
  if (options.certify.enabled || certified_engine) {
    if (!options.checkpoint_path.empty()) {
      throw BadArgument(certified_engine
                            ? "--engine=certified cannot be combined with --checkpoint/--resume"
                            : "--certify cannot be combined with --checkpoint/--resume");
    }
    if (options.shard_set) {
      throw BadArgument(certified_engine
                            ? "--engine=certified cannot be combined with --shard"
                            : "--certify cannot be combined with --shard");
    }
    return sweep_certified(n, t, lo, hi, steps, options.certify.policy, scenario);
  }

  const double t_d = t.to_double();
  const double lo_d = lo.to_double();
  const double hi_d = hi.to_double();
  std::vector<double> betas(steps + 1);
  for (std::uint32_t k = 0; k <= steps; ++k) {
    betas[k] =
        std::clamp(lo_d + (hi_d - lo_d) * static_cast<double>(k) / static_cast<double>(steps),
                   0.0, 1.0);
  }

  engine::EnginePolicy policy;
  policy.engine = options.engine;
  // Selection always sees the FULL grid, even when sharded: the auto policy
  // must resolve identically for every shard of one sweep (and for the
  // unsharded run), or `ddm_cli merge` could not reproduce it.
  auto request = engine::EvalRequest::symmetric(n, t, betas);
  request.scenario = scenario;
  const engine::Selection selection = engine::select(policy, request);
  report_fallback(selection);

  // The rows this process owns under --shard=i/k (strided assignment, so
  // shards stay balanced even on monotone-cost grids). Unsharded = 0/1 owns
  // every row.
  std::vector<std::uint32_t> owned;
  owned.reserve(steps / options.shard_count + 1);
  for (std::uint32_t k = 0; k <= steps; ++k) {
    if (k % options.shard_count == options.shard_index) owned.push_back(k);
  }

  std::vector<double> values(steps + 1, 0.0);
  if (options.checkpoint_path.empty()) {
    if (owned.size() == betas.size()) {
      values = selection.evaluator->evaluate(request).values;
    } else {
      // Sharded one-shot run: evaluate only the owned rows, carrying their
      // GLOBAL grid indices as point identities so randomized engines key
      // their streams exactly like the unsharded run.
      std::vector<double> shard_betas;
      shard_betas.reserve(owned.size());
      auto shard_request = engine::EvalRequest::symmetric(n, t, {});
      shard_request.scenario = scenario;
      for (const std::uint32_t k : owned) {
        shard_betas.push_back(betas[k]);
        shard_request.point_ids.push_back(k);
      }
      shard_request.betas = std::move(shard_betas);
      const std::vector<double> shard_values =
          selection.evaluator->evaluate(shard_request).values;
      for (std::size_t i = 0; i < owned.size(); ++i) values[owned[i]] = shard_values[i];
    }
  } else {
    // Crash-safe path: rows already in the checkpoint are reused verbatim;
    // missing rows are evaluated in blocks, each appended (and flushed)
    // before the next block starts. Every row goes through the identical
    // evaluator either way (the selection is deterministic per instance and
    // grid), so the final output is byte-identical to an uninterrupted run.
    // The header records the full run identity — grid, requested engine,
    // resolved engine, shard — and a resume rejects any mismatch by field.
    util::SweepParams params;
    params.n = n;
    params.t = t.to_string();
    params.beta_lo = lo.to_string();
    params.beta_hi = hi.to_string();
    params.steps = steps;
    params.engine = options.engine;
    params.resolved = std::string(selection.id());
    params.shard_index = options.shard_index;
    params.shard_count = options.shard_count;
    params.scenario = scenario.digest();
    util::SweepCheckpoint checkpoint(options.checkpoint_path, params, options.resume);
    std::vector<std::uint32_t> missing;
    for (const std::uint32_t k : owned) {
      if (checkpoint.has(k)) {
        values[k] = checkpoint.completed().at(k).p_win;
      } else {
        missing.push_back(k);
      }
    }
    constexpr std::size_t kBlock = 8;
    for (std::size_t start = 0; start < missing.size(); start += kBlock) {
      const std::size_t stop = std::min(start + kBlock, missing.size());
      std::vector<double> block_betas;
      block_betas.reserve(stop - start);
      auto block_request = engine::EvalRequest::symmetric(n, t, {});
      block_request.scenario = scenario;
      for (std::size_t i = start; i < stop; ++i) {
        block_betas.push_back(betas[missing[i]]);
        // Global grid indices as point identities: a checkpointed (or
        // sharded) Monte Carlo sweep draws the same streams as the
        // uninterrupted unsharded run.
        block_request.point_ids.push_back(missing[i]);
      }
      block_request.betas = std::move(block_betas);
      const std::vector<double> block_values =
          selection.evaluator->evaluate(block_request).values;
      for (std::size_t i = start; i < stop; ++i) {
        const std::uint32_t k = missing[i];
        values[k] = block_values[i - start];
        checkpoint.append({k, betas[k], values[k]});
      }
    }
  }

  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10) << "[\n";
  for (std::size_t i = 0; i < owned.size(); ++i) {
    const std::uint32_t k = owned[i];
    std::cout << "  {\"n\": " << n << ", \"t\": " << t_d << ", \"beta\": " << betas[k]
              << ", \"p_win\": " << values[k];
    if (!scenario.is_default()) std::cout << ", \"scenario\": \"" << scenario.digest() << "\"";
    if (selection.auto_mode) std::cout << ", \"engine\": \"" << selection.id() << "\"";
    std::cout << "}" << (i + 1 < owned.size() ? "," : "") << "\n";
  }
  std::cout << "]\n";
  return 0;
}

}  // namespace ddm::cli
