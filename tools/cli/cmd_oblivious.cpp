// oblivious — exact optimal oblivious protocol (Theorem 4.3).
#include <iostream>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "core/oblivious.hpp"
#include "core/optimality.hpp"

namespace ddm::cli {

int run_oblivious(const std::vector<std::string>& args, const Options&) {
  const std::uint32_t n = parse_u32("n", args[1]);
  const util::Rational t = parse_rational("t", args[2]);
  const util::Rational p = core::optimal_oblivious_winning_probability(n, t);
  std::cout << "Optimal oblivious (anonymous) protocol: alpha = 1/2 for all players\n"
            << "  P(no overflow) = " << p << " = " << p.to_double() << "\n"
            << "  gradient residual at 1/2 (Cor 4.2): "
            << core::stationarity_residual(
                   std::vector<util::Rational>(n, util::Rational(1, 2)), t)
            << "\n";
  return 0;
}

}  // namespace ddm::cli
