// command.hpp — the ddm_cli subcommand table.
//
// Each subcommand is one Command row: its synopsis/help text, the argv arity
// it accepts, which global flags apply to it, and its handler. main() is a
// pure argv dispatcher over this table — adding a subcommand means adding a
// cmd_<name>.cpp with a handler and one row here; no policy lives in
// ddm_cli.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cli/options.hpp"

namespace ddm::cli {

struct Command {
  const char* name;
  /// Positional/flag synopsis shown in usage and help ("threshold <n> <t>
  /// <beta> [--certify[=tol]] [--engine=<id>]").
  const char* synopsis;
  /// One-line summary for the usage screen.
  const char* summary;
  /// Multi-line body for `ddm_cli help <name>` / `<name> --help`.
  const char* help;
  /// Accepted argv token counts, command name included (volume validates its
  /// variable tail itself).
  std::size_t min_args;
  std::size_t max_args;
  bool accepts_certify;
  bool accepts_checkpoint;
  bool accepts_engine;
  bool accepts_shard;
  bool accepts_store;
  /// Whether --scenario/--ranges (generalized decision games) apply.
  bool accepts_scenario;
  int (*run)(const std::vector<std::string>& args, const Options& options);
};

/// Every registered subcommand, in usage order.
[[nodiscard]] std::span<const Command> command_table();

/// Command row by name, or nullptr.
[[nodiscard]] const Command* find_command(std::string_view name) noexcept;

/// Prints the global usage screen to stdout.
void print_usage();

/// Prints usage and returns the conventional exit status 1 (unknown command
/// or arity).
[[nodiscard]] int usage();

/// Prints `command`'s help page to stdout.
void print_command_help(const Command& command);

/// Dispatches args (command first) over the table: validates the flag set
/// against the command's row (BadArgument, exit 2, same messages as the
/// pre-refactor CLI), the arity (usage, exit 1), then runs the handler.
/// Also serves `help [<command>]` and `<command> --help`.
[[nodiscard]] int dispatch(const std::vector<std::string>& args, const Options& options);

}  // namespace ddm::cli
