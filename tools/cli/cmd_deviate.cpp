// deviate — worst-case threshold protocol analysis under k deviating players.
//
// Answers the robustness question of core/deviating.hpp for one instance:
// with n players, capacity t, and the symmetric threshold-beta protocol, how
// far does P(win) drop when k players deviate adversarially? By symmetry the
// adversary's (oblivious) strategy space collapses to j, the number of
// deviators sent to bin 0; the report prints the exact P_j for every j, the
// adversary's optimum (the minimum), and a seeded Monte Carlo cross-check.
// Beyond the exact cap (n > 14, where the conditional CDFs' O(2^n)
// inclusion-exclusion becomes prohibitive) the analysis is Monte Carlo only
// and the report says so.
#include <iomanip>
#include <iostream>
#include <limits>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "core/deviating.hpp"
#include "obs/trace.hpp"
#include "prob/rng.hpp"
#include "util/rational.hpp"

namespace ddm::cli {

int run_deviate(const std::vector<std::string>& args, const Options& options) {
  (void)options;
  const std::uint32_t n = parse_u32("n", args[1]);
  const util::Rational t = parse_rational("t", args[2]);
  const util::Rational beta = parse_rational("beta", args[3]);
  const std::uint32_t deviators = parse_u32("k", args[4]);
  const std::uint64_t trials = args.size() == 6 ? parse_u64("trials", args[5]) : 200000;
  if (n == 0) throw BadArgument("invalid n '0' (deviate needs n >= 1)");
  if (deviators == 0) {
    throw BadArgument("invalid k '0' (with no deviators, use `ddm_cli threshold`)");
  }
  if (deviators >= n) {
    throw BadArgument("invalid k '" + args[4] + "' (needs k < n: at least one follower)");
  }
  if (beta.signum() < 0 || beta > util::Rational{1}) {
    throw BadArgument("invalid beta '" + args[3] + "' (expected 0 <= beta <= 1)");
  }
  if (trials == 0) throw BadArgument("invalid trials '0' (deviate needs trials >= 1)");
  DDM_SPAN("cli.deviate", {{"n", static_cast<std::int64_t>(n)},
                           {"k", static_cast<std::int64_t>(deviators)}});

  std::cout << "Worst-case threshold protocol under " << deviators
            << " adversarially deviating player" << (deviators == 1 ? "" : "s") << "\n"
            << "n = " << n << ", t = " << t << ", beta = " << beta << " (j = deviators in bin 0)\n";
  const bool exact = n <= core::kDeviatingMaxExactN;
  if (exact) {
    util::Rational worst;
    std::uint32_t worst_j = 0;
    for (std::uint32_t j = 0; j <= deviators; ++j) {
      const util::Rational p_j =
          core::deviating_threshold_winning_probability(n, deviators, j, beta, t);
      std::cout << "  P_" << j << " = " << p_j << " = " << p_j.to_double() << "\n";
      if (j == 0 || p_j < worst) {
        worst = p_j;
        worst_j = j;
      }
    }
    std::cout << "Worst case (adversary optimum): j = " << worst_j << ", P = " << worst << " = "
              << worst.to_double() << "\n";
  } else {
    std::cout << "n > " << core::kDeviatingMaxExactN
              << ": exact analysis capped (O(2^n) inclusion-exclusion); Monte Carlo only\n";
  }
  prob::Rng rng{42};
  const core::DeviatingSimResult sim =
      core::estimate_worst_case_deviating(n, deviators, beta.to_double(), t.to_double(), trials,
                                          rng);
  const auto flags = std::cout.flags();
  const auto precision = std::cout.precision();
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10)
            << "Monte Carlo cross-check (" << sim.trials << " trials/strategy, seed 42): P ~= "
            << sim.estimate << " at j = " << sim.worst_bin0 << "\n";
  std::cout.flags(flags);
  std::cout.precision(precision);
  return 0;
}

}  // namespace ddm::cli
