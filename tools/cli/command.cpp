#include "cli/command.hpp"

#include <array>
#include <iostream>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "engine/cost_model.hpp"

namespace ddm::cli {

namespace {

constexpr std::size_t kNoMax = static_cast<std::size_t>(-1);

constexpr std::array<Command, 11> kCommands{{
    {"oblivious", "oblivious <n> <t>",
     "exact optimal oblivious protocol (Thm 4.3)",
     "Computes the optimal oblivious (input-ignoring, anonymous) protocol:\n"
     "every player picks bin 1 with probability alpha = 1/2, the unique\n"
     "stationary point of Theorem 4.3. Prints the exact winning probability\n"
     "and the gradient residual at 1/2 (Corollary 4.2).",
     3, 3, false, false, false, false, false, false, run_oblivious},
    {"threshold", "threshold <n> <t> <beta> [--certify[=tol]] [--engine=<id>]\n"
                  "                      [--scenario=<desc>] [--ranges=c_1,..,c_n]",
     "exact P of a symmetric threshold (Thm 5.1)",
     "Evaluates the winning probability of the symmetric single-threshold\n"
     "protocol (every player chooses bin 1 iff its input <= beta) via the\n"
     "exact Theorem 5.1 formula. --certify replaces the exact evaluation\n"
     "with the escalation ladder and prints a rigorous enclosure (exit 3\n"
     "when the tolerance is missed). --engine routes the evaluation through\n"
     "a named engine instead and reports which one answered. --scenario\n"
     "poses the same protocol over a generalized game (docs/scenarios.md):\n"
     "heterogeneous ranges x_i ~ U[0, c_i] (beta then scales each player's\n"
     "threshold to beta*c_i) or k adversarially deviating players\n"
     "(deviating:<k>, worst case over the adversary's bin split).",
     4, 4, true, false, true, false, false, true, run_threshold},
    {"analyze", "analyze <n> <t> [digits=30] [--engine=<id>] [--scenario=<desc>]\n"
                "                    [--ranges=c_1,..,c_n]",
     "full Section 5.2 analysis: pieces, optimality condition, certified beta*",
     "Builds the exact piecewise polynomial P(beta), prints every piece, the\n"
     "optimality condition, and the certified optimal threshold beta*\n"
     "refined to the requested number of digits. --engine appends a\n"
     "cross-check of P at beta* through the named engine. Under a\n"
     "generalized --scenario the closed-form pieces do not apply; analyze\n"
     "switches to numeric optimization (iterated grid refinement on the\n"
     "scenario-aware engine) and says so — the reported beta* is a numeric\n"
     "estimate, not a certified root.",
     3, 4, false, false, true, false, false, true, run_analyze},
    {"simulate", "simulate <n> <t> <beta> <trials> [seed=42] [--engine=<id>]",
     "Monte Carlo cross-check",
     "Estimates the threshold protocol's winning probability by simulation\n"
     "and checks that the 95% confidence interval covers the reference\n"
     "value. The reference is the exact Theorem 5.1 evaluation by default;\n"
     "--engine computes it through the named engine instead.",
     5, 6, false, false, true, false, false, false, run_simulate},
    {"volume", "volume <m> <sigma_1..sigma_m> <pi_1..pi_m> [--certify[=tol]]",
     "Vol(simplex ∩ box), Proposition 2.2",
     "Computes the exact volume of the intersection of a scaled simplex and\n"
     "an axis-aligned box (Proposition 2.2), the geometric core of the\n"
     "winning-probability formulas. --certify evaluates through the\n"
     "escalation ladder and prints a rigorous enclosure.",
     2, kNoMax, true, false, false, false, false, false, run_volume},
    {"ladder", "ladder <n> <t> [trials=500000]",
     "information ladder: deterministic / oblivious / threshold / oracle",
     "Prints the information ladder for one instance: deterministic\n"
     "all-one-bin, optimal oblivious coin, optimal own-input threshold, and\n"
     "(for n <= 20) a Monte Carlo full-information oracle estimate.",
     3, 4, false, false, false, false, false, false, run_ladder},
    {"deviate", "deviate <n> <t> <beta> <k> [trials=200000]",
     "worst-case P of a threshold protocol under k deviating players",
     "Analyzes the symmetric threshold-beta protocol when k of the n\n"
     "players deviate adversarially (obliviously: a deviator picks a bin,\n"
     "not a function of the inputs). By symmetry the adversary's strategy\n"
     "space collapses to j, the number of deviators sent to bin 0; the\n"
     "report prints P_j for every j, the worst case (the adversary's\n"
     "optimum), and a seeded Monte Carlo cross-check. For n up to 14 the\n"
     "per-strategy values are exact rationals (Lemma 2.4 conditioning);\n"
     "beyond that cap the analysis is Monte Carlo only and says so.",
     5, 6, false, false, false, false, false, false, run_deviate},
    {"sweep", "sweep <n> <t> <beta_lo> <beta_hi> <steps> [--certify[=tol]]\n"
              "                  [--checkpoint <file>] [--resume <file>] [--engine=<id>]\n"
              "                  [--shard=i/k] [--scenario=<desc>] [--ranges=c_1,..,c_n]",
     "β-grid of Theorem 5.1 values, fanned across the thread pool, as JSON",
     "Evaluates P(beta) on a uniform grid and emits one JSON row per point.\n"
     "The default --engine=auto picks the compiled Horner plan when its\n"
     "certified error bound is within 1e-9 and the batch kernel otherwise;\n"
     "auto mode stamps the chosen engine into every row and announces\n"
     "fallbacks on stderr. Forcing an engine keeps the row format of the\n"
     "pre-engine CLI (and --engine=compiled surfaces lowering errors as\n"
     "exit 2). --engine=certified is the same as --certify. --checkpoint\n"
     "and --resume make the sweep crash-safe, and --shard=i/k evaluates\n"
     "only the rows with index % k == i — run k sharded sweeps (each with\n"
     "its own checkpoint), then `ddm_cli merge` reconstructs the byte-\n"
     "identical unsharded output (docs/robustness.md). --scenario sweeps\n"
     "the same grid over a generalized game (docs/scenarios.md); rows then\n"
     "carry a \"scenario\" field and the checkpoint header pins the game, so\n"
     "shards of different games can never be merged.",
     6, 6, true, true, true, true, false, true, run_sweep},
    {"plans", "plans <precompile <n_max> <t> [tol] | list | validate> [--store=<dir>]",
     "persistent plan store: precompile, inspect, validate (docs/performance.md)",
     "Operates on the on-disk compiled-plan store (poly/plan_store.hpp).\n"
     "`precompile` lowers the Theorem 5.1 plan for every n <= n_max at\n"
     "capacity t and persists each plan that clears the tolerance (default\n"
     "1e-9, the auto-policy bound) together with its exact rational error\n"
     "certificates. `list` and `validate` read every *.plan file back\n"
     "through full validate-on-load; `validate` exits 3 when any file is\n"
     "rejected. The store directory comes from --store=<dir> or the\n"
     "DDM_PLAN_STORE environment variable; a store-backed `ddm_cli sweep`\n"
     "or ddm_serve answers its first compiled query without lowering.",
     2, 5, false, false, false, false, true, false, run_plans},
    {"calibrate", "calibrate [n_max=12] [--policy=<out>] [--store=<dir>]",
     "measure per-engine latency, write a policy table for self-tuning auto",
     "Runs the deterministic calibration sweep: for every (engine, n, batch)\n"
     "grid cell — engines compiled/batch/kernel, n log-spaced up to n_max,\n"
     "batches 1/16/256 — one warmup run (absorbing plan lowering) followed\n"
     "by median-of-3 timed runs of a fixed beta-grid request at t = n/3,\n"
     "recording seconds per point. The result is a versioned + checksummed\n"
     "policy table; once loaded (--policy / DDM_POLICY / ddm_serve\n"
     "--policy-table) `--engine=auto` picks the predicted-fastest engine\n"
     "whose accuracy contract still meets the request tolerance instead of\n"
     "applying the static rule. The table is written to --policy=<out>, or\n"
     "to <store>/policy.ddmpolicy next to the plan store. Refuses non-\n"
     "release builds, like scripts/run_bench.sh (timings from a debug build\n"
     "would mistune dispatch on every later run).",
     1, 2, false, false, false, false, true, false, run_calibrate},
    {"merge", "merge <ckpt> [<ckpt>...]",
     "merge sharded sweep checkpoints into the unsharded JSON output",
     "Validates that the given checkpoints belong to ONE sharded sweep —\n"
     "headers must agree on grid, engine, resolved engine, scenario, and\n"
     "shard count, every shard 0..k-1 must be present once, and every row\n"
     "must be covered — then emits the byte-identical output of the\n"
     "equivalent unsharded `ddm_cli sweep` run. Mismatched or incomplete\n"
     "inputs are rejected with exit 2 naming the offending field or row.",
     2, kNoMax, false, false, false, false, false, false, run_merge},
}};

}  // namespace

std::span<const Command> command_table() { return kCommands; }

const Command* find_command(std::string_view name) noexcept {
  for (const Command& command : kCommands) {
    if (name == command.name) return &command;
  }
  return nullptr;
}

void print_usage() {
  std::cout <<
      R"(ddm_cli — optimal distributed decision-making with no communication
(Georgiades/Mavronicolas/Spirakis, FCT'99)

usage:
  ddm_cli oblivious <n> <t>
  ddm_cli threshold <n> <t> <beta> [--certify[=tol]] [--engine=<id>]
                    [--scenario=<desc>] [--ranges=c_1,..,c_n]
  ddm_cli analyze   <n> <t> [digits=30] [--engine=<id>] [--scenario=<desc>]
                    [--ranges=c_1,..,c_n]
  ddm_cli simulate  <n> <t> <beta> <trials> [seed=42] [--engine=<id>]
  ddm_cli volume    <m> <sigma_1..sigma_m> <pi_1..pi_m> [--certify[=tol]]
  ddm_cli ladder    <n> <t> [trials=500000]
  ddm_cli deviate   <n> <t> <beta> <k> [trials=200000]
  ddm_cli sweep     <n> <t> <beta_lo> <beta_hi> <steps> [--certify[=tol]]
                    [--checkpoint <file>] [--resume <file>] [--engine=<id>]
                    [--shard=i/k] [--scenario=<desc>] [--ranges=c_1,..,c_n]
  ddm_cli plans     <precompile <n_max> <t> [tol] | list | validate>
                    [--store=<dir>]
  ddm_cli calibrate [n_max=12] [--policy=<out>] [--store=<dir>]
  ddm_cli merge     <ckpt> [<ckpt>...]
  ddm_cli help      <command>

any subcommand also accepts:
  --trace=<file>         export a Chrome trace of the run to <file>
  --metrics[=json|prom]  dump the metrics registry to stderr at exit
  --policy=<file>        load a calibrated engine policy table; auto mode
                         then dispatches on measured cost (see calibrate)

scenarios (--scenario=<desc>, docs/scenarios.md):
  homogeneous                 x_i ~ U[0, 1] — the paper's game (default)
  heterogeneous:c_1,..,c_n    x_i ~ U[0, c_i]; or --scenario=heterogeneous
                              with the ranges in --ranges=c_1,..,c_n
  deviating:<k>               k players deviate adversarially; worst case

engines (--engine=<id>, docs/architecture.md):
  auto       compiled plan when its certified bound is <= 1e-9, else the
             batch kernel — the choice is reported, never silent (default)
  batch      block-amortized parallel Gray-code kernel (n <= 20)
  certified  escalation ladder with rigorous enclosures
  compiled   certified double Horner plan via the LRU plan cache
  exact      exact rational Theorem 5.1 evaluation
  kernel     serial Gray-code double kernel (n <= 20)
  mc         seeded Monte Carlo estimation

rationals may be written a/b (e.g. 4/3). Examples:
  ddm_cli analyze 3 1            # the paper's flagship instance
  ddm_cli analyze 4 4/3 40       # Section 5.2.2 with 40 certified digits
  ddm_cli simulate 3 1 0.622 1000000
  ddm_cli threshold 24 8 0.37 --certify=1/1000000000000
  ddm_cli threshold 3 1 0.5 --scenario=heterogeneous --ranges=1/2,1,2
  ddm_cli deviate 6 2 0.62 2       # robustness margin under 2 deviators
  ddm_cli sweep 3 1 0 1 50 --scenario=deviating:1   # worst-case grid
  ddm_cli sweep 4 4/3 0 1 100    # JSON grid of P(beta), all cores
  ddm_cli sweep 12 4 0 1 10000 --engine=compiled   # certified Horner plan
  ddm_cli sweep 4 4/3 0 1 100 --checkpoint sweep.ckpt   # crash-safe
  ddm_cli sweep 4 4/3 0 1 100 --resume sweep.ckpt       # finish a killed run
  ddm_cli sweep 24 8 0.3 0.45 8 --certify --trace=sweep.json --metrics
  ddm_cli sweep 6 2 0 1 30 --shard=0/3 --checkpoint s0.ckpt   # 1 of 3 shards
  ddm_cli merge s0.ckpt s1.ckpt s2.ckpt   # byte-identical unsharded output
  ddm_cli plans precompile 12 4 --store=plans/   # warm-start plan store
  ddm_cli calibrate 12 --policy=policy.ddmpolicy   # measure engine costs
  ddm_cli sweep 12 4 0 1 10000 --policy=policy.ddmpolicy   # self-tuned auto
)";
}

int usage() {
  print_usage();
  return 1;
}

void print_command_help(const Command& command) {
  std::cout << "usage: ddm_cli " << command.synopsis << "\n\n"
            << command.summary << "\n\n"
            << command.help << "\n\n"
            << "common options:\n"
            << "  --trace=<file>         export a Chrome trace of the run to <file>\n"
            << "  --metrics[=json|prom]  dump the metrics registry to stderr at exit\n"
            << "  --policy=<file>        load a calibrated engine policy table\n";
}

int dispatch(const std::vector<std::string>& args, const Options& options) {
  const std::string& name = args[0];
  if (name == "help") {
    if (args.size() == 2) {
      if (const Command* command = find_command(args[1])) {
        print_command_help(*command);
        return 0;
      }
      throw BadArgument("unknown command '" + args[1] + "' (see ddm_cli usage)");
    }
    if (args.size() == 1) {
      print_usage();
      return 0;
    }
    return usage();
  }
  const Command* command = find_command(name);
  if (command == nullptr) return usage();
  if (options.help) {
    print_command_help(*command);
    return 0;
  }
  // Flag-set validation precedes arity so flag misuse is diagnosed by name
  // (exit 2), matching the pre-refactor CLI.
  if (options.certify.enabled && !command->accepts_certify) {
    throw BadArgument("--certify is only supported by 'threshold', 'volume', and 'sweep'");
  }
  if (!options.checkpoint_path.empty() && !command->accepts_checkpoint) {
    throw BadArgument("--checkpoint/--resume are only supported by 'sweep'");
  }
  if (options.shard_set && !command->accepts_shard) {
    throw BadArgument("--shard is only supported by 'sweep'");
  }
  if (!options.store_dir.empty() && !command->accepts_store) {
    throw BadArgument("--store is only supported by 'plans'");
  }
  if ((options.scenario_set || options.ranges_set) && !command->accepts_scenario) {
    throw BadArgument(
        "--scenario/--ranges are only supported by 'threshold', 'analyze', and 'sweep'");
  }
  if (options.engine_set) {
    if (!command->accepts_engine) {
      throw BadArgument(
          "--engine is only supported by 'threshold', 'analyze', 'simulate', and 'sweep'");
    }
    if (options.certify.enabled) {
      throw BadArgument(
          "--engine cannot be combined with --certify (the ladder picks its own tiers)");
    }
  }
  if (args.size() < command->min_args || args.size() > command->max_args) return usage();
  // Resolve the engine policy table STRICTLY before the handler runs:
  // --policy loads and validates the named table, and with no flag a set
  // DDM_POLICY is forced to resolve now, so a corrupt table fails here with
  // exit 2 naming its source instead of surfacing mid-evaluation (the
  // DDM_THREADS/DDM_SIMD precedent). `calibrate` is the producer — its
  // --policy names the OUTPUT file, so nothing is loaded for it.
  if (std::string_view(command->name) != "calibrate") {
    if (options.policy_set) {
      engine::CostModel::set_configured(
          engine::CostModel::load(options.policy_path, "--policy"));
    } else {
      (void)engine::CostModel::configured();
    }
  }
  return command->run(args, options);
}

}  // namespace ddm::cli
