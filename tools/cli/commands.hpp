// commands.hpp — handler declarations for the ddm_cli subcommands.
//
// Each handler lives in its own cmd_<name>.cpp and receives the positional
// arguments (command name first, exactly as dispatched) plus the parsed
// global options. Handlers throw BadArgument for malformed values (exit 2)
// and return the subcommand's exit status otherwise.
#pragma once

#include <string>
#include <vector>

#include "cli/options.hpp"

namespace ddm::cli {

int run_oblivious(const std::vector<std::string>& args, const Options& options);
int run_threshold(const std::vector<std::string>& args, const Options& options);
int run_analyze(const std::vector<std::string>& args, const Options& options);
int run_simulate(const std::vector<std::string>& args, const Options& options);
int run_volume(const std::vector<std::string>& args, const Options& options);
int run_ladder(const std::vector<std::string>& args, const Options& options);
int run_deviate(const std::vector<std::string>& args, const Options& options);
int run_sweep(const std::vector<std::string>& args, const Options& options);
int run_plans(const std::vector<std::string>& args, const Options& options);
int run_merge(const std::vector<std::string>& args, const Options& options);
int run_calibrate(const std::vector<std::string>& args, const Options& options);

}  // namespace ddm::cli
