// merge — reassemble sharded sweep checkpoints into the unsharded output.
//
// `ddm_cli sweep --shard=i/k --checkpoint si.ckpt` leaves k checkpoint files,
// each holding the rows with index % k == i. merge validates that the given
// files belong to ONE sweep — headers must agree on every field except
// shard_index (grid, engine, resolved engine, scenario, shard count), the shard
// indices must be exactly {0..k-1} with no duplicates, and every grid row
// must be present in its owning shard — then prints the byte-identical
// output of the equivalent unsharded `ddm_cli sweep` run. Doubles round-trip
// losslessly through the checkpoint (max_digits10 both ways), so
// byte-identity is exact, not approximate. Mismatched, duplicate, or
// incomplete inputs are rejected with exit 2 naming the offending field,
// shard, or row.
#include <iomanip>
#include <iostream>
#include <limits>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "obs/trace.hpp"
#include "util/checkpoint.hpp"
#include "util/rational.hpp"
#include "util/status.hpp"

namespace ddm::cli {

namespace {

/// First header field (other than shard_index) on which `other` disagrees
/// with `base`, or empty. Mirrors the checkpoint resume validation: name the
/// field, show both values.
std::string describe_shard_mismatch(const util::SweepParams& base,
                                    const util::SweepParams& other) {
  const auto differ = [](const char* field, const std::string& a, const std::string& b) {
    return std::string("field '") + field + "': " + (a.empty() ? "<absent>" : a) + " vs " +
           (b.empty() ? "<absent>" : b);
  };
  if (base.n != other.n) return differ("n", std::to_string(base.n), std::to_string(other.n));
  if (base.t != other.t) return differ("t", base.t, other.t);
  if (base.beta_lo != other.beta_lo) return differ("beta_lo", base.beta_lo, other.beta_lo);
  if (base.beta_hi != other.beta_hi) return differ("beta_hi", base.beta_hi, other.beta_hi);
  if (base.steps != other.steps) {
    return differ("steps", std::to_string(base.steps), std::to_string(other.steps));
  }
  if (base.engine != other.engine) return differ("engine", base.engine, other.engine);
  if (base.resolved != other.resolved) return differ("resolved", base.resolved, other.resolved);
  if (base.scenario != other.scenario) return differ("scenario", base.scenario, other.scenario);
  if (base.shard_count != other.shard_count) {
    return differ("shard_count", std::to_string(base.shard_count),
                  std::to_string(other.shard_count));
  }
  return {};
}

}  // namespace

int run_merge(const std::vector<std::string>& args, const Options& options) {
  (void)options;
  DDM_SPAN("cli.merge", {{"shards", static_cast<std::int64_t>(args.size() - 1)}});
  std::vector<util::LoadedCheckpoint> shards;
  shards.reserve(args.size() - 1);
  for (std::size_t i = 1; i < args.size(); ++i) {
    shards.push_back(util::read_checkpoint(args[i]));
    if (shards.back().torn_tail) {
      std::cerr << "warning: '" << args[i]
                << "' has a torn trailing line (incomplete final row discarded)\n";
    }
  }

  // One sweep identity across every file, shard_index excepted.
  const util::SweepParams& base = shards.front().params;
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const std::string mismatch = describe_shard_mismatch(base, shards[i].params);
    if (!mismatch.empty()) {
      throw BadArgument("merge: '" + args[1 + i] + "' belongs to a different sweep than '" +
                        args[1] + "' (" + mismatch + ")");
    }
  }

  // Exactly the shards 0..k-1, each once.
  if (shards.size() != base.shard_count) {
    throw BadArgument("merge: sweep has " + std::to_string(base.shard_count) +
                      " shards but " + std::to_string(shards.size()) + " checkpoints were given");
  }
  std::vector<const util::LoadedCheckpoint*> by_index(base.shard_count, nullptr);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::uint32_t index = shards[i].params.shard_index;
    if (index >= base.shard_count) {
      throw BadArgument("merge: '" + args[1 + i] + "' claims shard " + std::to_string(index) +
                        "/" + std::to_string(base.shard_count));
    }
    if (by_index[index] != nullptr) {
      throw BadArgument("merge: shard " + std::to_string(index) + "/" +
                        std::to_string(base.shard_count) + " appears more than once");
    }
    by_index[index] = &shards[i];
  }

  // Every grid row, from its owning shard. A missing row means that shard's
  // sweep was killed before finishing — resume it, then merge again.
  std::vector<const util::SweepRow*> rows(base.steps + 1, nullptr);
  for (std::uint32_t k = 0; k <= base.steps; ++k) {
    const util::LoadedCheckpoint& owner = *by_index[k % base.shard_count];
    const auto found = owner.rows.find(k);
    if (found == owner.rows.end()) {
      throw BadArgument("merge: row k=" + std::to_string(k) + " is missing from shard " +
                        std::to_string(k % base.shard_count) + "/" +
                        std::to_string(base.shard_count) +
                        " (resume that shard's sweep, then merge again)");
    }
    rows[k] = &found->second;
  }

  // Byte-identical to the unsharded sweep: t as a double from the exact
  // header rational, beta/p_win straight from the lossless checkpoint rows,
  // the "engine" field stamped only when the sweep ran in auto mode.
  const double t_d = util::Rational::parse(base.t).to_double();
  const bool auto_mode = base.engine == "auto";
  // Generalized-game sweeps stamp the scenario into every row; the merged
  // output mirrors `ddm_cli sweep --scenario=...` byte for byte, and the
  // default game keeps the pre-scenario row format.
  const bool generalized = base.scenario != "homogeneous";
  std::cout << std::setprecision(std::numeric_limits<double>::max_digits10) << "[\n";
  for (std::uint32_t k = 0; k <= base.steps; ++k) {
    std::cout << "  {\"n\": " << base.n << ", \"t\": " << t_d << ", \"beta\": " << rows[k]->beta
              << ", \"p_win\": " << rows[k]->p_win;
    if (generalized) std::cout << ", \"scenario\": \"" << base.scenario << "\"";
    if (auto_mode) std::cout << ", \"engine\": \"" << base.resolved << "\"";
    std::cout << "}" << (k < base.steps ? "," : "") << "\n";
  }
  std::cout << "]\n";
  return 0;
}

}  // namespace ddm::cli
