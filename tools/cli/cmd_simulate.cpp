// simulate — Monte Carlo cross-check of the Theorem 5.1 value.
#include <iostream>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "cli/report.hpp"
#include "core/nonoblivious.hpp"
#include "core/protocol.hpp"
#include "engine/registry.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"

namespace ddm::cli {

int run_simulate(const std::vector<std::string>& args, const Options& options) {
  const std::uint32_t n = parse_u32("n", args[1]);
  const util::Rational t = parse_rational("t", args[2]);
  const util::Rational beta = parse_rational("beta", args[3]);
  const std::uint64_t trials = parse_u64("trials", args[4]);
  const std::uint64_t seed = args.size() == 6 ? parse_u64("seed", args[5]) : 42;
  const auto protocol = core::SingleThresholdProtocol::symmetric(n, beta);
  prob::Rng rng{seed};
  const auto result = sim::estimate_winning_probability(protocol, t.to_double(), trials, rng);
  std::cout << "Simulated " << trials << " trials (seed " << seed << "):\n"
            << "  estimate = " << result.estimate << "  95% CI [" << result.ci_low << ", "
            << result.ci_high << "]\n";
  if (options.engine_set) {
    // Reference value through the requested engine instead of the built-in
    // exact evaluation (the default line below stays byte-identical without
    // the flag).
    engine::EnginePolicy policy;
    policy.engine = options.engine;
    auto request = engine::EvalRequest::symmetric(n, t, {beta.to_double()});
    request.exact_betas = {beta};
    const engine::Selection selection = engine::select(policy, request);
    report_fallback(selection);
    const engine::EvalOutcome outcome = selection.evaluator->evaluate(request);
    const double reference = outcome.values.at(0);
    std::cout << "  reference = " << reference << "  [engine: " << outcome.engine_id << "]  ("
              << (result.covers(reference) ? "covered" : "NOT covered") << ")\n";
    return 0;
  }
  const double exact = core::symmetric_threshold_winning_probability(n, beta, t).to_double();
  std::cout << "  exact    = " << exact << "  ("
            << (result.covers(exact) ? "covered" : "NOT covered") << ")\n";
  return 0;
}

}  // namespace ddm::cli
