// volume — Vol(simplex ∩ box), Proposition 2.2.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "cli/parse.hpp"
#include "cli/report.hpp"
#include "geom/volume.hpp"

namespace ddm::cli {

int run_volume(const std::vector<std::string>& args, const Options& options) {
  const std::uint32_t m = parse_u32("m", args[1]);
  if (m < 1) throw BadArgument("invalid m '" + args[1] + "' (volume needs m >= 1)");
  if (args.size() != 2 + 2 * static_cast<std::size_t>(m)) {
    throw BadArgument("invalid volume argument count for m '" + args[1] + "' (expected " +
                      std::to_string(2 * m) + " sides, got " + std::to_string(args.size() - 2) +
                      ")");
  }
  std::vector<util::Rational> sigma;
  std::vector<util::Rational> pi;
  for (std::uint32_t l = 0; l < m; ++l) {
    sigma.push_back(parse_rational("sigma", args[2 + l]));
  }
  for (std::uint32_t l = 0; l < m; ++l) {
    pi.push_back(parse_rational("pi", args[2 + m + l]));
  }
  std::cout << "Vol(Sigma(sigma) ∩ Pi(pi))  [Proposition 2.2]\n";
  if (options.certify.enabled) {
    const auto result = geom::certified_simplex_box_volume(sigma, pi, options.certify.policy);
    print_certified(result, options.certify.policy);
    return result.met_tolerance ? 0 : 3;
  }
  const util::Rational volume = geom::simplex_box_volume(sigma, pi);
  std::cout << "  = " << volume << " = " << volume.to_double() << "\n"
            << "  simplex volume = " << geom::simplex_volume(sigma) << ", box volume = "
            << geom::box_volume(pi) << "\n";
  return 0;
}

}  // namespace ddm::cli
