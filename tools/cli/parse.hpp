// parse.hpp — strict argument parsing shared by the ddm_cli subcommands.
//
// Every parser takes the argument's name so rejection messages can point at
// the offending value ("invalid beta '1.2.3' (...)"); malformed arguments
// raise BadArgument, which main() turns into exit status 2.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/rational.hpp"

namespace ddm::cli {

/// A malformed command-line argument; the message names the offending value.
class BadArgument : public std::runtime_error {
 public:
  explicit BadArgument(const std::string& message) : std::runtime_error(message) {}
};

/// Strict parsers: the whole argument must be a decimal number that fits the
/// target type — no trailing garbage, no leading '-' wrapped around.
[[nodiscard]] std::uint32_t parse_u32(const char* what, const std::string& text);
[[nodiscard]] std::uint64_t parse_u64(const char* what, const std::string& text);
[[nodiscard]] int parse_int(const char* what, const std::string& text);

/// Accepts a/b, integers, and decimal notation like 0.622; rejects anything
/// else ("1.2.3", "1.2/3", "0.6x") naming the argument.
[[nodiscard]] util::Rational parse_rational(const char* what, const std::string& text);

}  // namespace ddm::cli
