// certified.hpp — certified Theorem 5.1 evaluation (escalation ladder).
//
// Certified counterparts of the threshold winning-probability kernels in
// core/nonoblivious.hpp: instead of a bare double they return a
// CertifiedValue — a rigorous enclosure of the exact value — escalating
// compensated double → dyadic interval → exact Rational until the enclosure
// is narrower than the policy tolerance (util/certify.hpp). The alternating
// inclusion-exclusion sums of Theorem 5.1 cancel catastrophically for large
// n (terms of size ~ (n − t)^n against a result in [0, 1]), which is exactly
// the regime where the plain double kernels silently lose every digit; the
// certified versions either prove their answer or visibly escalate.
#pragma once

#include <cstdint>
#include <span>

#include "util/certify.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// Certified Theorem 5.1 for arbitrary thresholds a ∈ [0, 1]^n. Tier costs:
/// double/interval O(3^n) (any n ≤ 20), exact O(3^n) rational (n ≤ 16 — the
/// exact tier reports NumericError above that and the ladder returns the
/// best interval enclosure instead). Throws std::invalid_argument on bad
/// inputs, NumericError when no tier can evaluate the instance.
[[nodiscard]] CertifiedValue certified_threshold_winning_probability(
    std::span<const util::Rational> a, const util::Rational& t, const EvalPolicy& policy = {});

/// Certified symmetric Theorem 5.1 (all thresholds equal beta): O(n²) terms
/// in every tier, so even the exact tier is cheap — this is the evaluator
/// the ill-conditioned large-n demonstrations use.
[[nodiscard]] CertifiedValue certified_symmetric_threshold_winning_probability(
    std::uint32_t n, const util::Rational& beta, const util::Rational& t,
    const EvalPolicy& policy = {});

}  // namespace ddm::core
