// Exact symbolic analysis of the symmetric Theorem 5.1 objective. Everything
// here is rational-arithmetic-only; it doubles as the independent ground
// truth that the certified escalation ladder's enclosures are tested against
// (certified_symmetric_threshold_winning_probability must contain the value
// of these pieces at every probe — see tests/test_certified.cpp and
// docs/robustness.md).
#include "core/symmetric_threshold.hpp"

#include <algorithm>
#include <stdexcept>

#include "combinat/binomial.hpp"

namespace ddm::core {

using poly::QPoly;
using util::Rational;

namespace {

// Zeros bracket as a polynomial in β on an interval where the indicator
// pattern is constant (decided at the probe point):
//   Z_m(β) = (1/m!) Σ_{l = 0..m : t − l·probe > 0} (−1)^l C(m,l) (t − lβ)^m.
QPoly zero_bracket_poly(std::uint32_t m, const Rational& t, const Rational& probe) {
  if (m == 0) return QPoly{Rational{1}};
  QPoly sum;
  for (std::uint32_t l = 0; l <= m; ++l) {
    const Rational ll{static_cast<std::int64_t>(l)};
    if ((t - ll * probe).signum() <= 0) continue;
    QPoly term = poly::binomial_power(t, -ll, m);
    term *= Rational{combinat::binomial(m, l), util::BigInt{1}};
    if (l % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  sum *= combinat::inverse_factorial(m);
  return sum;
}

// Ones bracket as a polynomial in β on an interval with a constant indicator
// pattern:
//   O_k(β) = (1−β)^k − (1/k!) Σ_{l = 0..k : k−t−l+l·probe > 0}
//                       (−1)^l C(k,l) ((k−t−l) + lβ)^k.
QPoly one_bracket_poly(std::uint32_t k, const Rational& t, const Rational& probe) {
  if (k == 0) return QPoly{Rational{1}};
  const Rational kk{static_cast<std::int64_t>(k)};
  QPoly sum;
  for (std::uint32_t l = 0; l <= k; ++l) {
    const Rational ll{static_cast<std::int64_t>(l)};
    const Rational constant = kk - t - ll;
    if ((constant + ll * probe).signum() <= 0) continue;
    QPoly term = poly::binomial_power(constant, ll, k);
    term *= Rational{combinat::binomial(k, l), util::BigInt{1}};
    if (l % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  sum *= combinat::inverse_factorial(k);
  return poly::binomial_power(Rational{1}, Rational{-1}, k) - sum;
}

}  // namespace

SymmetricThresholdAnalysis SymmetricThresholdAnalysis::build(std::uint32_t n, Rational t) {
  if (n == 0) throw std::invalid_argument("SymmetricThresholdAnalysis: n == 0");
  if (t.signum() <= 0) throw std::invalid_argument("SymmetricThresholdAnalysis: t <= 0");

  // Collect every β in (0, 1) where an indicator condition flips.
  std::vector<Rational> points;
  points.push_back(Rational{0});
  points.push_back(Rational{1});
  const auto add_if_interior = [&points](const Rational& p) {
    if (p > Rational{0} && p < Rational{1}) points.push_back(p);
  };
  for (std::uint32_t l = 1; l <= n; ++l) {
    // zeros bracket: t − lβ > 0 flips at β = t / l.
    add_if_interior(t / Rational{static_cast<std::int64_t>(l)});
  }
  for (std::uint32_t k = 1; k <= n; ++k) {
    for (std::uint32_t l = 1; l <= k; ++l) {
      // ones bracket: k − t − l + lβ > 0 flips at β = (t + l − k) / l.
      add_if_interior((t + Rational{static_cast<std::int64_t>(l)} -
                       Rational{static_cast<std::int64_t>(k)}) /
                      Rational{static_cast<std::int64_t>(l)});
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  std::vector<poly::Piece> pieces;
  pieces.reserve(points.size() - 1);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const Rational& lo = points[i];
    const Rational& hi = points[i + 1];
    const Rational probe = (lo + hi) * Rational{1, 2};
    QPoly piece_poly;
    for (std::uint32_t k = 0; k <= n; ++k) {
      QPoly term = zero_bracket_poly(n - k, t, probe) * one_bracket_poly(k, t, probe);
      term *= Rational{combinat::binomial(n, k), util::BigInt{1}};
      piece_poly += term;
    }
    pieces.push_back(poly::Piece{lo, hi, std::move(piece_poly)});
  }
  return SymmetricThresholdAnalysis{n, std::move(t),
                                    poly::PiecewisePolynomial{std::move(pieces)}};
}

std::vector<Rational> SymmetricThresholdAnalysis::breakpoints() const {
  std::vector<Rational> out;
  out.reserve(pieces_.pieces().size() + 1);
  out.push_back(pieces_.domain_lo());
  for (const poly::Piece& piece : pieces_.pieces()) out.push_back(piece.hi);
  return out;
}

SymmetricOptimum SymmetricThresholdAnalysis::optimize() const {
  const poly::MaxCandidate best = pieces_.maximize();
  SymmetricOptimum optimum;
  optimum.beta = best.location;
  optimum.value = best.value;
  optimum.piece_index = best.piece_index;
  optimum.interior = best.interior_critical;
  optimum.optimality_condition = pieces_.pieces()[best.piece_index].poly.derivative();
  optimum.certified = best.certified;
  return optimum;
}

}  // namespace ddm::core
