#include "core/oblivious.hpp"

#include <cmath>
#include <stdexcept>

#include "combinat/binomial.hpp"
#include "prob/uniform_sum.hpp"

namespace ddm::core {

using util::Rational;

namespace {

void check_alpha(std::span<const Rational> alpha) {
  if (alpha.empty()) throw std::invalid_argument("oblivious: need >= 1 player");
  for (const Rational& a : alpha) {
    if (a < Rational{0} || a > Rational{1}) {
      throw std::invalid_argument("oblivious: alpha entries must lie in [0, 1]");
    }
  }
}

}  // namespace

Rational phi(std::uint32_t n, std::uint32_t k, const Rational& t) {
  if (k > n) throw std::invalid_argument("phi: k > n");
  return prob::irwin_hall_cdf(k, t) * prob::irwin_hall_cdf(n - k, t);
}

double phi_double(std::uint32_t n, std::uint32_t k, double t) {
  if (k > n) throw std::invalid_argument("phi_double: k > n");
  return prob::irwin_hall_cdf(k, t) * prob::irwin_hall_cdf(n - k, t);
}

std::vector<Rational> ones_count_distribution(std::span<const Rational> alpha) {
  check_alpha(alpha);
  // DP over players; pmf[k] = P(k ones so far). Player i contributes a one
  // (bin 1) with probability 1 − α_i.
  std::vector<Rational> pmf{Rational{1}};
  for (const Rational& a : alpha) {
    const Rational p_one = Rational{1} - a;
    std::vector<Rational> next(pmf.size() + 1, Rational{0});
    for (std::size_t k = 0; k < pmf.size(); ++k) {
      next[k] += pmf[k] * a;
      next[k + 1] += pmf[k] * p_one;
    }
    pmf = std::move(next);
  }
  return pmf;
}

Rational oblivious_winning_probability(std::span<const Rational> alpha, const Rational& t) {
  check_alpha(alpha);
  if (t.signum() <= 0) return Rational{0};
  const auto n = static_cast<std::uint32_t>(alpha.size());
  const std::vector<Rational> pmf = ones_count_distribution(alpha);
  Rational total{0};
  for (std::uint32_t k = 0; k <= n; ++k) {
    if (pmf[k].is_zero()) continue;
    total += phi(n, k, t) * pmf[k];
  }
  return total;
}

Rational oblivious_winning_probability_bruteforce(std::span<const Rational> alpha,
                                                  const Rational& t) {
  check_alpha(alpha);
  const std::size_t n = alpha.size();
  if (n > 25) {
    throw std::invalid_argument("oblivious_winning_probability_bruteforce: n too large");
  }
  if (t.signum() <= 0) return Rational{0};
  Rational total{0};
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    Rational weight{1};
    std::uint32_t ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        weight *= Rational{1} - alpha[i];
        ++ones;
      } else {
        weight *= alpha[i];
      }
    }
    if (weight.is_zero()) continue;
    total += phi(static_cast<std::uint32_t>(n), ones, t) * weight;
  }
  return total;
}

double oblivious_winning_probability(std::span<const double> alpha, double t) {
  if (alpha.empty()) throw std::invalid_argument("oblivious: need >= 1 player");
  if (t <= 0.0) return 0.0;
  const auto n = static_cast<std::uint32_t>(alpha.size());
  std::vector<double> pmf{1.0};
  for (const double a : alpha) {
    if (a < 0.0 || a > 1.0) throw std::invalid_argument("oblivious: alpha must lie in [0, 1]");
    std::vector<double> next(pmf.size() + 1, 0.0);
    for (std::size_t k = 0; k < pmf.size(); ++k) {
      next[k] += pmf[k] * a;
      next[k + 1] += pmf[k] * (1.0 - a);
    }
    pmf = std::move(next);
  }
  double total = 0.0;
  for (std::uint32_t k = 0; k <= n; ++k) total += phi_double(n, k, t) * pmf[k];
  return total;
}

poly::MultilinearPolynomial oblivious_winning_polynomial(std::uint32_t n, const Rational& t) {
  if (n == 0 || n > 12) {
    throw std::invalid_argument("oblivious_winning_polynomial: need 1 <= n <= 12");
  }
  poly::MultilinearPolynomial total{n};
  if (t.signum() <= 0) return total;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    const auto ones = static_cast<std::uint32_t>(__builtin_popcountll(b));
    poly::MultilinearPolynomial product =
        poly::MultilinearPolynomial::constant(n, phi(n, ones, t));
    for (std::uint32_t i = 0; i < n; ++i) {
      const bool bit = (b & (std::uint64_t{1} << i)) != 0;
      product = product.disjoint_product(
          bit ? poly::MultilinearPolynomial::one_minus_variable(n, i)
              : poly::MultilinearPolynomial::variable(n, i));
    }
    total += product;
  }
  return total;
}

Rational optimal_oblivious_winning_probability(std::uint32_t n, const Rational& t) {
  if (n == 0) throw std::invalid_argument("optimal_oblivious_winning_probability: n == 0");
  if (t.signum() <= 0) return Rational{0};
  Rational total{0};
  for (std::uint32_t k = 0; k <= n; ++k) {
    total += Rational{combinat::binomial(n, k), util::BigInt{1}} * phi(n, k, t);
  }
  return total * Rational{1, 2}.pow(n);
}

double optimal_oblivious_winning_probability_double(std::uint32_t n, double t) {
  if (n == 0) throw std::invalid_argument("optimal_oblivious_winning_probability: n == 0");
  if (t <= 0.0) return 0.0;
  double total = 0.0;
  for (std::uint32_t k = 0; k <= n; ++k) {
    total += combinat::binomial_double(n, k) * phi_double(n, k, t);
  }
  return total * std::pow(0.5, static_cast<double>(n));
}

}  // namespace ddm::core
