// communication.hpp — decision-making WITH communication (the programme the
// paper positions its framework for, Sections 1 and 6).
//
// The paper completely settles the no-communication case and argues its
// methodology extends to arbitrary communication patterns (the setting of
// Papadimitriou–Yannakakis 1991, who studied n = 3). This module provides
// the model for that extension: a visibility pattern records which inputs
// each player sees (its own plus whatever was communicated), protocols are
// local rules over the visible inputs, and evaluation is by common-random-
// number simulation (a fixed bank of input vectors shared across protocol
// evaluations, making optimization objectives deterministic).
//
// The optimizable protocol class is the one PY'91 analyze: player i compares
// a weighted average of the inputs it sees against a threshold,
//   bin 0  iff  Σ_{j visible} w_ij x_j <= θ_i.
// With the empty pattern this degenerates to single thresholds (Section 5).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "prob/rng.hpp"

namespace ddm::core {

/// Who sees what: view(i) is the set of players whose inputs player i knows.
/// Always contains i itself.
class VisibilityPattern {
 public:
  /// No communication: view(i) = {i} (the paper's setting).
  [[nodiscard]] static VisibilityPattern none(std::size_t n);
  /// Full communication: everybody sees everything.
  [[nodiscard]] static VisibilityPattern full(std::size_t n);
  /// Directed edges: edge (from, to) means player `to` learns x_from.
  [[nodiscard]] static VisibilityPattern from_edges(
      std::size_t n, std::span<const std::pair<std::size_t, std::size_t>> edges);

  [[nodiscard]] std::size_t size() const noexcept { return views_.size(); }
  /// Sorted list of players visible to player i (includes i).
  [[nodiscard]] const std::vector<std::size_t>& view(std::size_t i) const;
  /// Number of directed communication edges (total visibility minus n).
  [[nodiscard]] std::size_t edge_count() const noexcept;
  [[nodiscard]] std::string to_string() const;

 private:
  explicit VisibilityPattern(std::vector<std::vector<std::size_t>> views)
      : views_(std::move(views)) {}
  std::vector<std::vector<std::size_t>> views_;
};

/// The PY'91 weighted-threshold class over a visibility pattern.
/// Player i picks bin 0 iff Σ_{j ∈ view(i)} w[i][j]·x_j <= theta[i], where
/// weights outside the view are forced to zero.
class WeightedThresholdProtocol {
 public:
  /// Initializes to the pure single-threshold protocol: w[i][i] = 1,
  /// theta[i] = 1/2.
  explicit WeightedThresholdProtocol(VisibilityPattern pattern);

  [[nodiscard]] const VisibilityPattern& pattern() const noexcept { return pattern_; }
  [[nodiscard]] std::size_t size() const noexcept { return pattern_.size(); }

  /// Mutable access for the optimizer; setting a weight outside the view
  /// throws std::invalid_argument.
  void set_weight(std::size_t i, std::size_t j, double w);
  void set_threshold(std::size_t i, double theta);
  [[nodiscard]] double weight(std::size_t i, std::size_t j) const;
  [[nodiscard]] double threshold(std::size_t i) const { return theta_.at(i); }

  /// Decision of player i on the full input vector (only visible entries are
  /// read).
  [[nodiscard]] int decide(std::size_t i, std::span<const double> inputs) const;

  /// The protocol's free parameters flattened (visible weights then
  /// thresholds) — the optimizer's coordinate space.
  [[nodiscard]] std::vector<double> parameters() const;
  void set_parameters(std::span<const double> parameters);

  [[nodiscard]] std::string to_string() const;

 private:
  VisibilityPattern pattern_;
  std::vector<std::vector<double>> weights_;  // n × n, zero outside views
  std::vector<double> theta_;
};

/// A fixed bank of input vectors for common-random-number evaluation:
/// the same draws are reused for every protocol, so comparisons and
/// optimization objectives are deterministic functions of the parameters.
class InputBank {
 public:
  InputBank(std::size_t n, std::size_t samples, prob::Rng& rng);

  [[nodiscard]] std::size_t players() const noexcept { return n_; }
  [[nodiscard]] std::size_t samples() const noexcept { return count_; }
  /// The s-th input vector.
  [[nodiscard]] std::span<const double> sample(std::size_t s) const;

  /// Fraction of bank samples on which the protocol wins at capacity t.
  [[nodiscard]] double winning_fraction(const WeightedThresholdProtocol& protocol,
                                        double t) const;

 private:
  std::size_t n_;
  std::size_t count_;
  std::vector<double> data_;  // row-major samples × n
};

/// Compass search over the protocol's parameters (weights in [-2, 2],
/// thresholds in [-1, n]) maximizing the bank winning fraction. Returns the
/// optimized protocol and its bank value. Deterministic given the bank.
struct CommunicationSearchResult {
  WeightedThresholdProtocol protocol;
  double value = 0.0;
  std::uint32_t evaluations = 0;
};
[[nodiscard]] CommunicationSearchResult optimize_weighted_threshold(
    WeightedThresholdProtocol start, double t, const InputBank& bank,
    double initial_step = 0.25, double tolerance = 1e-4,
    std::uint32_t max_evaluations = 20000);

}  // namespace ddm::core
