// batch_walk_avx2.cpp — the 4-wide AVX2 instantiation of the amortized
// subset walk. Compiled with -mavx2 -ffp-contract=off (src/CMakeLists.txt):
// the contract-off flag guarantees the compiler cannot fuse the pack
// multiply/add sequences into FMAs, which would break the bitwise identity
// with the scalar kernel. Nothing outside this translation unit may execute
// AVX2 instructions — callers must gate on util::simd::dispatch_width().
#include "core/batch_walk.hpp"

namespace ddm::core::detail {

void subset_walk_avx2(const double* deltas, std::size_t sz, std::size_t count,
                      std::uint32_t exponent, BatchWorkspace& ws) {
  subset_walk_pack<util::simd::Pack<4>>(deltas, sz, count, exponent, ws);
}

}  // namespace ddm::core::detail
