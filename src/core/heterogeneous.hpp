// heterogeneous.hpp — heterogeneous input ranges (extension enabled by the
// paper's own tools).
//
// The paper's model fixes x_i ~ U[0, 1], but its probabilistic lemmas
// (Lemma 2.4/2.7) are stated for arbitrary ranges U[0, π_i]. This module
// generalizes the winning-probability engines to players with input ranges
// x_i ~ U[0, c_i] — e.g. jobs from machines of different speeds — exercising
// the full generality of Section 2.
#pragma once

#include <span>
#include <vector>

#include "core/protocol.hpp"
#include "prob/rng.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// Theorem 4.1 generalized: oblivious protocol α (α_i = P(bin 0)) with inputs
/// x_i ~ U[0, ranges_i], ranges_i > 0. Exact; O(2^n · 2^n) subset sums —
/// throws ddm::Error for n > 14 or invalid parameters.
[[nodiscard]] util::Rational heterogeneous_oblivious_winning_probability(
    std::span<const util::Rational> alpha, std::span<const util::Rational> ranges,
    const util::Rational& t);

/// Theorem 5.1 generalized: single-threshold protocol with thresholds
/// a_i ∈ [0, ranges_i] and inputs x_i ~ U[0, ranges_i]. Exact; throws
/// ddm::Error for n > 14 or invalid parameters.
[[nodiscard]] util::Rational heterogeneous_threshold_winning_probability(
    std::span<const util::Rational> thresholds, std::span<const util::Rational> ranges,
    const util::Rational& t);

/// Monte Carlo cross-check: estimate the winning probability of `protocol`
/// when player i's input is U[0, ranges_i] (the protocol's decide() receives
/// the raw input value).
struct HeterogeneousSimResult {
  double estimate = 0.0;
  double standard_error = 0.0;
  std::uint64_t wins = 0;
  std::uint64_t trials = 0;
};
[[nodiscard]] HeterogeneousSimResult estimate_heterogeneous_winning_probability(
    const Protocol& protocol, std::span<const double> ranges, double t, std::uint64_t trials,
    prob::Rng& rng);

}  // namespace ddm::core
