#include "core/metrics.hpp"

#include <stdexcept>
#include <vector>

#include "combinat/binomial.hpp"
#include "prob/cdf_poly.hpp"

namespace ddm::core {

using util::Rational;

Rational expected_overflow_oblivious(std::span<const Rational> alpha, const Rational& t) {
  const std::size_t n = alpha.size();
  if (n == 0 || n > 10) {
    throw std::invalid_argument("expected_overflow_oblivious: need 1 <= n <= 10");
  }
  for (const Rational& a : alpha) {
    if (a < Rational{0} || a > Rational{1}) {
      throw std::invalid_argument("expected_overflow_oblivious: alpha outside [0, 1]");
    }
  }
  // Condition on the decision vector; given b, each bin's load is a sum of
  // independent U[0,1], so the conditional expected excess depends only on
  // the bin sizes. E[(X_k − t)^+] for k unit uniforms:
  std::vector<Rational> excess_by_count(n + 1, Rational{0});
  for (std::size_t k = 1; k <= n; ++k) {
    const std::vector<Rational> ranges(k, Rational{1});
    excess_by_count[k] = prob::expected_excess(ranges, t);
  }
  // P(|b| = k) via the Poisson-binomial DP (player i picks bin 1 w.p. 1−α_i).
  std::vector<Rational> pmf{Rational{1}};
  for (const Rational& a : alpha) {
    std::vector<Rational> next(pmf.size() + 1, Rational{0});
    for (std::size_t k = 0; k < pmf.size(); ++k) {
      next[k] += pmf[k] * a;
      next[k + 1] += pmf[k] * (Rational{1} - a);
    }
    pmf = std::move(next);
  }
  Rational total{0};
  for (std::size_t ones = 0; ones <= n; ++ones) {
    if (pmf[ones].is_zero()) continue;
    total += pmf[ones] * (excess_by_count[n - ones] + excess_by_count[ones]);
  }
  return total;
}

Rational expected_overflow_symmetric_threshold(std::uint32_t n, const Rational& beta,
                                               const Rational& t) {
  if (n == 0 || n > 10) {
    throw std::invalid_argument("expected_overflow_symmetric_threshold: need 1 <= n <= 10");
  }
  if (beta < Rational{0} || beta > Rational{1}) {
    throw std::invalid_argument("expected_overflow_symmetric_threshold: beta outside [0, 1]");
  }
  // Given |b| = k ones: the n−k zero-players' inputs are U[0, β]; the k
  // one-players' inputs are U[β, 1] = β + U[0, 1−β], so bin 1's excess is the
  // recentered E[(Σ U[0, 1−β] − (t − kβ))^+].
  const Rational one_minus_beta = Rational{1} - beta;
  Rational total{0};
  for (std::uint32_t k = 0; k <= n; ++k) {
    const Rational weight = Rational{combinat::binomial(n, k), util::BigInt{1}} *
                            beta.pow(static_cast<std::int64_t>(n - k)) *
                            one_minus_beta.pow(static_cast<std::int64_t>(k));
    if (weight.is_zero()) continue;
    Rational conditional{0};
    if (n - k > 0 && !beta.is_zero()) {
      const std::vector<Rational> zero_ranges(n - k, beta);
      conditional += prob::expected_excess(zero_ranges, t);
    }
    if (k > 0 && !one_minus_beta.is_zero()) {
      const std::vector<Rational> one_ranges(k, one_minus_beta);
      conditional += prob::expected_excess(
          one_ranges, t - beta * Rational{static_cast<std::int64_t>(k)});
    }
    total += weight * conditional;
  }
  return total;
}

}  // namespace ddm::core
