// protocol.hpp — the distributed decision-making model of Section 3.
//
// n players; player i receives x_i ~ U[0,1] and must choose one of two bins
// of capacity t, with NO communication (Section 3.2): its local algorithm
// sees only its own input (and private coin tosses). The protocol "wins"
// when neither bin overflows: Σ_0 <= t and Σ_1 <= t, where Σ_b sums the
// inputs of the players that chose bin b.
//
// Three concrete families:
//   * ObliviousProtocol       — ignores the input; a probability vector α,
//                               α_i = P(player i chooses bin 0)  (Section 3.2)
//   * SingleThresholdProtocol — bin 0 iff x_i <= a_i               (Section 3.2)
//   * FunctorProtocol         — any computable local rule (the general model
//                               of Section 3.1), used for extension studies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "prob/rng.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// Bin identifiers (the paper's {0, 1}).
inline constexpr int kBin0 = 0;
inline constexpr int kBin1 = 1;

/// Abstract no-communication decision protocol.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Number of players n (>= 2 in the paper's model).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Player `player`'s decision given its own input; `rng` supplies the
  /// player's private coin tosses (unused by deterministic protocols).
  [[nodiscard]] virtual int decide(std::size_t player, double input, prob::Rng& rng) const = 0;

  /// Descriptive name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Oblivious protocol: player i picks bin 0 with probability α_i, ignoring
/// its input. Identified with the probability vector α (Section 3.2).
class ObliviousProtocol final : public Protocol {
 public:
  /// Throws std::invalid_argument unless every α_i ∈ [0, 1] and size >= 1.
  explicit ObliviousProtocol(std::vector<util::Rational> alpha);

  /// The optimal oblivious protocol α = (1/2, ..., 1/2) (Theorem 4.3).
  [[nodiscard]] static ObliviousProtocol uniform(std::size_t n);

  [[nodiscard]] std::size_t size() const override { return alpha_.size(); }
  [[nodiscard]] int decide(std::size_t player, double input, prob::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::span<const util::Rational> alpha() const noexcept { return alpha_; }

 private:
  std::vector<util::Rational> alpha_;
  std::vector<double> alpha_double_;
};

/// Deterministic single-threshold protocol: player i picks bin 0 iff
/// x_i <= a_i (Section 3.2).
class SingleThresholdProtocol final : public Protocol {
 public:
  /// Throws std::invalid_argument unless every a_i ∈ [0, 1] and size >= 1.
  /// (The paper allows a_i up to ∞; thresholds above 1 are equivalent to 1.)
  explicit SingleThresholdProtocol(std::vector<util::Rational> thresholds);

  /// All players share the same threshold β (the symmetric protocols of
  /// Section 5.2).
  [[nodiscard]] static SingleThresholdProtocol symmetric(std::size_t n, util::Rational beta);

  [[nodiscard]] std::size_t size() const override { return thresholds_.size(); }
  [[nodiscard]] int decide(std::size_t player, double input, prob::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::span<const util::Rational> thresholds() const noexcept {
    return thresholds_;
  }

 private:
  std::vector<util::Rational> thresholds_;
  std::vector<double> thresholds_double_;
};

/// Arbitrary computable local rules — the general model of Section 3.1
/// restricted to no communication. Used by the extension studies (e.g.
/// two-interval rules) and by tests.
class FunctorProtocol final : public Protocol {
 public:
  using Rule = std::function<int(double input, prob::Rng& rng)>;

  /// One rule per player; throws std::invalid_argument when empty.
  FunctorProtocol(std::vector<Rule> rules, std::string name);

  [[nodiscard]] std::size_t size() const override { return rules_.size(); }
  [[nodiscard]] int decide(std::size_t player, double input, prob::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::vector<Rule> rules_;
  std::string name_;
};

/// Outcome of one play: the two bin loads.
struct BinLoads {
  double bin0 = 0.0;
  double bin1 = 0.0;
};

/// Run the protocol on a concrete input vector; returns the two bin loads.
/// Throws std::invalid_argument when inputs.size() != protocol.size().
[[nodiscard]] BinLoads play(const Protocol& protocol, std::span<const double> inputs,
                            prob::Rng& rng);

/// Convenience: did the protocol win (no overflow) on these inputs?
[[nodiscard]] bool wins(const Protocol& protocol, std::span<const double> inputs, double t,
                        prob::Rng& rng);

}  // namespace ddm::core
