#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ddm::core {

using util::Rational;

FunctorProtocol make_all_bin0(std::size_t n) {
  std::vector<FunctorProtocol::Rule> rules(
      n, [](double /*input*/, prob::Rng& /*rng*/) { return kBin0; });
  return FunctorProtocol{std::move(rules), "all-bin0"};
}

FunctorProtocol make_round_robin(std::size_t n) {
  std::vector<FunctorProtocol::Rule> rules;
  rules.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int bin = static_cast<int>(i % 2);
    rules.push_back([bin](double /*input*/, prob::Rng& /*rng*/) { return bin; });
  }
  return FunctorProtocol{std::move(rules), "round-robin"};
}

SingleThresholdProtocol make_py_n3() {
  // 1 − sqrt(1/7) is irrational; use a rational approximation good to 1e-18
  // for simulation purposes (the exact optimum lives in the symbolic layer).
  // 1 - 1/sqrt(7) = 0.622035952850104...
  const Rational beta = Rational::parse("622035952850104147/1000000000000000000");
  return SingleThresholdProtocol::symmetric(3, beta);
}

bool full_information_win(std::span<const double> inputs, double t) {
  const std::size_t n = inputs.size();
  if (n > 25) throw std::invalid_argument("full_information_win: n too large for 2^n sweep");
  double total = 0.0;
  for (const double x : inputs) total += x;
  if (total <= t) return true;  // everything in one bin fits
  // Feasible iff some subset load S satisfies S <= t and total − S <= t.
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    double load = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) load += inputs[i];
    }
    if (load <= t && total - load <= t) return true;
  }
  return false;
}

double full_information_winning_probability_exact(std::uint32_t n, double t) {
  if (t <= 0.0) return 0.0;
  const double tc = std::min(t, 1.0);
  switch (n) {
    case 1:
      return tc;
    case 2:
      // Placing the two items in different bins dominates every other
      // assignment, so the oracle wins iff max(x1, x2) <= t.
      return tc * tc;
    default:
      throw std::invalid_argument(
          "full_information_winning_probability_exact: closed form only for n <= 2");
  }
}

}  // namespace ddm::core
