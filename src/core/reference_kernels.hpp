// reference_kernels.hpp — naive O(m·2^m) inclusion-exclusion kernels.
//
// These are the original straight-line subset-sum loops that the production
// kernels (src/geom/volume.cpp, src/core/nonoblivious.cpp) replaced with
// Gray-code walks. They are kept verbatim as an executable specification:
// tests/test_kernels.cpp property-tests the optimized kernels against them
// (exact equality for Rational, 1e-12 for double), and bench/perf_kernels.cpp
// benchmarks both so the speedup stays visible in BENCH_kernels.json.
//
// Internal header — not exported through ddm.hpp; do not use outside tests
// and benchmarks.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "combinat/binomial.hpp"
#include "util/rational.hpp"
#include "util/status.hpp"

namespace ddm::reference {

/// Proposition 2.2 volume, exact, one O(m) subset-sum per mask.
[[nodiscard]] inline util::Rational simplex_box_volume(std::span<const util::Rational> sigma,
                                                       std::span<const util::Rational> pi) {
  using util::Rational;
  if (sigma.empty() || sigma.size() != pi.size()) {
    throw std::invalid_argument("reference simplex_box_volume: bad dimensions");
  }
  const std::size_t m = sigma.size();
  Rational simplex{1};
  std::vector<Rational> ratio(m);
  for (std::size_t l = 0; l < m; ++l) {
    simplex *= sigma[l];
    ratio[l] = pi[l] / sigma[l];
  }
  simplex *= combinat::inverse_factorial(static_cast<std::uint32_t>(m));
  Rational sum{0};
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Rational ratio_sum{0};
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) ratio_sum += ratio[l];
    }
    if (ratio_sum >= Rational{1}) continue;
    const Rational term = (Rational{1} - ratio_sum).pow(static_cast<std::int64_t>(m));
    if (__builtin_popcountll(mask) % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  return simplex * sum;
}

/// Proposition 2.2 volume, double precision, naive subset sums and std::pow.
[[nodiscard]] inline double simplex_box_volume_double(std::span<const double> sigma,
                                                      std::span<const double> pi) {
  if (sigma.empty() || sigma.size() != pi.size()) {
    throw std::invalid_argument("reference simplex_box_volume_double: bad dimensions");
  }
  const std::size_t m = sigma.size();
  std::vector<double> ratio(m);
  double side_product = 1.0;
  for (std::size_t l = 0; l < m; ++l) {
    ratio[l] = require_finite(pi[l] / sigma[l], "reference simplex_box_volume_double: ratio");
    side_product =
        require_finite(side_product * sigma[l], "reference simplex_box_volume_double: sides");
  }
  double sum = 0.0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    double ratio_sum = 0.0;
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) ratio_sum += ratio[l];
    }
    if (ratio_sum >= 1.0) continue;
    const double term = std::pow(1.0 - ratio_sum, static_cast<double>(m));
    sum += (__builtin_popcountll(mask) % 2 == 0) ? term : -term;
  }
  return require_finite(
      side_product * combinat::inverse_factorial_double(static_cast<std::uint32_t>(m)) * sum,
      "reference simplex_box_volume_double: result");
}

/// Theorem 5.1 general-threshold evaluator, exact, naive brackets.
[[nodiscard]] inline util::Rational threshold_winning_probability(
    std::span<const util::Rational> a, const util::Rational& t) {
  using util::Rational;
  if (a.empty()) throw std::invalid_argument("reference threshold_winning_probability: empty");
  if (t.signum() <= 0) return Rational{0};
  const std::size_t n = a.size();

  const auto zeros_bracket = [&](std::span<const std::size_t> zeros) {
    const std::size_t m = zeros.size();
    if (m == 0) return Rational{1};
    Rational sum{0};
    const std::uint64_t limit = std::uint64_t{1} << m;
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      Rational subset_sum{0};
      for (std::size_t j = 0; j < m; ++j) {
        if (mask & (std::uint64_t{1} << j)) subset_sum += a[zeros[j]];
      }
      if (subset_sum >= t) continue;
      const Rational term = (t - subset_sum).pow(static_cast<std::int64_t>(m));
      if (__builtin_popcountll(mask) % 2 == 0) {
        sum += term;
      } else {
        sum -= term;
      }
    }
    return sum * combinat::inverse_factorial(static_cast<std::uint32_t>(m));
  };
  const auto ones_bracket = [&](std::span<const std::size_t> ones) {
    const std::size_t k = ones.size();
    if (k == 0) return Rational{1};
    Rational product{1};
    for (const std::size_t idx : ones) product *= Rational{1} - a[idx];
    const Rational kk{static_cast<std::int64_t>(k)};
    Rational sum{0};
    const std::uint64_t limit = std::uint64_t{1} << k;
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      Rational subset_sum{0};
      for (std::size_t j = 0; j < k; ++j) {
        if (mask & (std::uint64_t{1} << j)) subset_sum += a[ones[j]];
      }
      const int i = __builtin_popcountll(mask);
      const Rational base = kk - t - Rational{i} + subset_sum;
      if (base.signum() <= 0) continue;
      const Rational term = base.pow(static_cast<std::int64_t>(k));
      if (i % 2 == 0) {
        sum += term;
      } else {
        sum -= term;
      }
    }
    return product - sum * combinat::inverse_factorial(static_cast<std::uint32_t>(k));
  };

  Rational total{0};
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    zeros.clear();
    ones.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        ones.push_back(i);
      } else {
        zeros.push_back(i);
      }
    }
    total += zeros_bracket(zeros) * ones_bracket(ones);
  }
  return total;
}

/// Theorem 5.1 general-threshold evaluator, double precision, naive brackets.
[[nodiscard]] inline double threshold_winning_probability(std::span<const double> a, double t) {
  if (a.empty()) throw std::invalid_argument("reference threshold_winning_probability: empty");
  if (t <= 0.0) return 0.0;
  const std::size_t n = a.size();

  const auto zeros_bracket = [&](std::span<const std::size_t> zeros) {
    const std::size_t m = zeros.size();
    if (m == 0) return 1.0;
    double sum = 0.0;
    const std::uint64_t limit = std::uint64_t{1} << m;
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      double subset_sum = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        if (mask & (std::uint64_t{1} << j)) subset_sum += a[zeros[j]];
      }
      if (subset_sum >= t) continue;
      const double term = std::pow(t - subset_sum, static_cast<double>(m));
      sum += (__builtin_popcountll(mask) % 2 == 0) ? term : -term;
    }
    return sum * combinat::inverse_factorial_double(static_cast<std::uint32_t>(m));
  };
  const auto ones_bracket = [&](std::span<const std::size_t> ones) {
    const std::size_t k = ones.size();
    if (k == 0) return 1.0;
    double product = 1.0;
    for (const std::size_t idx : ones) product *= 1.0 - a[idx];
    double sum = 0.0;
    const std::uint64_t limit = std::uint64_t{1} << k;
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      double subset_sum = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (mask & (std::uint64_t{1} << j)) subset_sum += a[ones[j]];
      }
      const int i = __builtin_popcountll(mask);
      const double base = static_cast<double>(k) - t - static_cast<double>(i) + subset_sum;
      if (base <= 0.0) continue;
      const double term = std::pow(base, static_cast<double>(k));
      sum += (i % 2 == 0) ? term : -term;
    }
    return product - sum * combinat::inverse_factorial_double(static_cast<std::uint32_t>(k));
  };

  double total = 0.0;
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    zeros.clear();
    ones.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        ones.push_back(i);
      } else {
        zeros.push_back(i);
      }
    }
    total += zeros_bracket(zeros) * ones_bracket(ones);
  }
  return require_finite(total, "reference threshold_winning_probability: double result");
}

}  // namespace ddm::reference
