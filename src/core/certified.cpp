#include "core/certified.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "combinat/binomial.hpp"
#include "combinat/subsets.hpp"
#include "core/nonoblivious.hpp"
#include "obs/trace.hpp"
#include "util/kahan.hpp"

namespace ddm::core {

using util::KahanSum;
using util::Rational;
using util::RationalInterval;

namespace {

// Unit roundoff of IEEE double under round-to-nearest.
constexpr double kU = 0x1p-53;

// Upper bound on the number of multiplications pow_uint(·, e) performs.
double pow_mults(std::uint32_t e) { return 2.0 * static_cast<double>(std::bit_width(e)); }

using Tracked = util::TrackedDouble;

RationalInterval point(const Rational& r) { return RationalInterval{r}; }

// ---------------------------------------------------------------------------
// Symmetric Theorem 5.1, tier 0: the O(n²) double evaluator of
// core/nonoblivious.cpp with a running error bound alongside every
// operation. The indicator base > 0 is decided in rounded arithmetic; when
// the rounded base lies within its own error bound of zero the true
// indicator is unknown, so the possibly-present term is added to the error
// instead of the sum.
Tracked sym_zero_bracket_t0(std::uint32_t m, double beta, double t) {
  if (m == 0) return {1.0, 0.0};
  KahanSum sum;
  double abs_sum = 0.0;
  double err = 0.0;
  for (std::uint32_t l = 0; l <= m; ++l) {
    const double lb = static_cast<double>(l) * beta;
    const double base = t - lb;
    const double err_base = kU * (std::abs(lb) + std::abs(base));
    const double binom = combinat::binomial_double(m, l);
    if (base <= err_base) {
      if (base > -err_base) err += binom * combinat::pow_uint(std::abs(base) + err_base, m);
      continue;
    }
    const double p1 = combinat::pow_uint(base, m - 1);
    const double term = binom * p1 * base;
    err += binom * static_cast<double>(m) * p1 * err_base + (pow_mults(m) + 2.0) * kU * term;
    sum.add(l % 2 == 0 ? term : -term);
    abs_sum += term;
  }
  const double inv = combinat::inverse_factorial_double(m);
  const double value = sum.get() * inv;
  return {value, inv * (err + 2.0 * kU * abs_sum) + 2.0 * kU * std::abs(value)};
}

Tracked sym_one_bracket_t0(std::uint32_t k, double beta, double t) {
  if (k == 0) return {1.0, 0.0};
  const double lead = combinat::pow_uint(1.0 - beta, k);
  const double err_lead = (static_cast<double>(k) + pow_mults(k)) * kU * lead;
  KahanSum sum;
  double abs_sum = 0.0;
  double err = 0.0;
  for (std::uint32_t l = 0; l <= k; ++l) {
    const double x1 = static_cast<double>(k) - t;
    const double x2 = x1 - static_cast<double>(l);
    const double lb = static_cast<double>(l) * beta;
    const double base = x2 + lb;
    const double err_base = kU * (std::abs(x1) + std::abs(x2) + 2.0 * std::abs(lb) +
                                  std::abs(base));
    const double binom = combinat::binomial_double(k, l);
    if (base <= err_base) {
      if (base > -err_base) err += binom * combinat::pow_uint(std::abs(base) + err_base, k);
      continue;
    }
    const double p1 = combinat::pow_uint(base, k - 1);
    const double term = binom * p1 * base;
    err += binom * static_cast<double>(k) * p1 * err_base + (pow_mults(k) + 2.0) * kU * term;
    sum.add(l % 2 == 0 ? term : -term);
    abs_sum += term;
  }
  const double inv = combinat::inverse_factorial_double(k);
  const double tail = sum.get() * inv;
  const double value = lead - tail;
  return {value, err_lead + inv * (err + 2.0 * kU * abs_sum) + 2.0 * kU * std::abs(tail) +
                     kU * std::abs(value)};
}

Tracked sym_total_t0(std::uint32_t n, double beta, double t) {
  DDM_SPAN("kernel.sym_tracked", {{"n", static_cast<std::int64_t>(n)}});
  KahanSum total;
  double abs_total = 0.0;
  double err = 0.0;
  for (std::uint32_t k = 0; k <= n; ++k) {
    const Tracked zb = sym_zero_bracket_t0(n - k, beta, t);
    const Tracked ob = sym_one_bracket_t0(k, beta, t);
    const double binom = combinat::binomial_double(n, k);
    const double product = binom * zb.value * ob.value;
    total.add(product);
    abs_total += std::abs(product);
    err += binom * (std::abs(zb.value) * ob.error + std::abs(ob.value) * zb.error +
                    zb.error * ob.error + 2.0 * kU * std::abs(zb.value * ob.value));
  }
  return {total.get(), err + 2.0 * kU * abs_total};
}

// ---------------------------------------------------------------------------
// Symmetric Theorem 5.1, tier 1: dyadic-interval arithmetic. The bracket
// bases t − lβ and k − t − l + lβ are exact rationals, so every indicator
// decision is exact; rounding enters only through pow_outward and the
// rounded sums, keeping endpoint sizes bounded by `bits` fractional bits.
RationalInterval sym_zero_bracket_i(std::uint32_t m, const Rational& beta, const Rational& t,
                                    unsigned bits) {
  if (m == 0) return point(Rational{1});
  RationalInterval sum{Rational{0}};
  for (std::uint32_t l = 0; l <= m; ++l) {
    const Rational base = t - Rational{static_cast<std::int64_t>(l)} * beta;
    if (base.signum() <= 0) continue;
    RationalInterval term = pow_outward(point(base), m, bits);
    term = outward_round(term * point(Rational{combinat::binomial(m, l), util::BigInt{1}}), bits);
    sum = outward_round(l % 2 == 0 ? sum + term : sum - term, bits);
  }
  return outward_round(sum * point(combinat::inverse_factorial(m)), bits);
}

RationalInterval sym_one_bracket_i(std::uint32_t k, const Rational& beta, const Rational& t,
                                   unsigned bits) {
  if (k == 0) return point(Rational{1});
  const Rational kk{static_cast<std::int64_t>(k)};
  RationalInterval sum{Rational{0}};
  for (std::uint32_t l = 0; l <= k; ++l) {
    const Rational ll{static_cast<std::int64_t>(l)};
    const Rational base = kk - t - ll + ll * beta;
    if (base.signum() <= 0) continue;
    RationalInterval term = pow_outward(point(base), k, bits);
    term = outward_round(term * point(Rational{combinat::binomial(k, l), util::BigInt{1}}), bits);
    sum = outward_round(l % 2 == 0 ? sum + term : sum - term, bits);
  }
  const RationalInterval lead = pow_outward(point(Rational{1} - beta), k, bits);
  return outward_round(lead - outward_round(sum * point(combinat::inverse_factorial(k)), bits),
                       bits);
}

RationalInterval sym_total_i(std::uint32_t n, const Rational& beta, const Rational& t,
                             unsigned bits) {
  DDM_SPAN("kernel.sym_interval", {{"n", static_cast<std::int64_t>(n)}});
  RationalInterval total{Rational{0}};
  for (std::uint32_t k = 0; k <= n; ++k) {
    RationalInterval term = outward_round(
        sym_zero_bracket_i(n - k, beta, t, bits) * sym_one_bracket_i(k, beta, t, bits), bits);
    term = outward_round(term * point(Rational{combinat::binomial(n, k), util::BigInt{1}}), bits);
    total = outward_round(total + term, bits);
  }
  return total;
}

// ---------------------------------------------------------------------------
// General Theorem 5.1, tier 0: the Gray-code double kernel of
// core/nonoblivious.cpp with running error bounds. The compensated running
// base carries the Neumaier bound 2u·Σ|increments|.
Tracked gen_zeros_bracket_t0(std::span<const double> a, std::span<const std::size_t> zeros,
                             double t) {
  const std::size_t m = zeros.size();
  if (m == 0) return {1.0, 0.0};
  const auto mm = static_cast<std::uint32_t>(m);
  KahanSum remainder{t};
  double abs_inc = std::abs(t);
  KahanSum sum{combinat::pow_uint(t, mm)};
  double abs_sum = sum.get();
  double err = pow_mults(mm) * kU * abs_sum;
  std::uint64_t mask = 0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    remainder.add((mask & bit) ? -a[zeros[j]] : a[zeros[j]]);
    abs_inc += std::abs(a[zeros[j]]);
    const double err_base = 2.0 * kU * abs_inc;
    const double rem = remainder.get();
    if (rem <= err_base) {
      if (rem > -err_base) err += combinat::pow_uint(std::abs(rem) + err_base, mm);
      continue;
    }
    const double p1 = combinat::pow_uint(rem, mm - 1);
    const double term = p1 * rem;
    err += static_cast<double>(m) * p1 * err_base + (pow_mults(mm) + 1.0) * kU * term;
    sum.add(combinat::gray_parity_odd(i) ? -term : term);
    abs_sum += term;
  }
  const double inv = combinat::inverse_factorial_double(mm);
  const double value = sum.get() * inv;
  return {value, inv * (err + 2.0 * kU * abs_sum) + 2.0 * kU * std::abs(value)};
}

Tracked gen_ones_bracket_t0(std::span<const double> a, std::span<const std::size_t> ones,
                            double t) {
  const std::size_t k = ones.size();
  if (k == 0) return {1.0, 0.0};
  const auto kk = static_cast<std::uint32_t>(k);
  double product = 1.0;
  for (const std::size_t idx : ones) product *= 1.0 - a[idx];
  // Factors lie in [0, 1], so the absolute error of the product is at most
  // 2k·u (one rounding per subtraction and per multiplication).
  const double err_product = 2.0 * static_cast<double>(k) * kU;
  KahanSum base{static_cast<double>(k) - t};
  double abs_inc = static_cast<double>(k) + std::abs(t);
  KahanSum sum;
  double abs_sum = 0.0;
  double err = 0.0;
  {
    const double b0 = base.get();
    const double err_b0 = kU * std::abs(b0);
    if (b0 > err_b0) {
      const double term0 = combinat::pow_uint(b0, kk);
      sum.add(term0);
      abs_sum += term0;
      err += static_cast<double>(k) * combinat::pow_uint(b0, kk - 1) * err_b0 +
             pow_mults(kk) * kU * term0;
    } else if (b0 > -err_b0) {
      err += combinat::pow_uint(std::abs(b0) + err_b0, kk);
    }
  }
  std::uint64_t mask = 0;
  const std::uint64_t limit = std::uint64_t{1} << k;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    base.add((mask & bit) ? a[ones[j]] - 1.0 : 1.0 - a[ones[j]]);
    abs_inc += 1.0;  // |a_l − 1| <= 1
    const double err_base = 2.0 * kU * abs_inc;
    const double b = base.get();
    if (b <= err_base) {
      if (b > -err_base) err += combinat::pow_uint(std::abs(b) + err_base, kk);
      continue;
    }
    const double p1 = combinat::pow_uint(b, kk - 1);
    const double term = p1 * b;
    err += static_cast<double>(k) * p1 * err_base + (pow_mults(kk) + 1.0) * kU * term;
    sum.add(combinat::gray_parity_odd(i) ? -term : term);
    abs_sum += term;
  }
  const double inv = combinat::inverse_factorial_double(kk);
  const double tail = sum.get() * inv;
  const double value = product - tail;
  return {value, err_product + inv * (err + 2.0 * kU * abs_sum) + 2.0 * kU * std::abs(tail) +
                     kU * std::abs(value)};
}

Tracked gen_total_t0(std::span<const double> a, double t) {
  const std::size_t n = a.size();
  DDM_SPAN("kernel.gray_tracked", {{"n", static_cast<std::int64_t>(n)}});
  KahanSum total;
  double abs_total = 0.0;
  double err = 0.0;
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  zeros.reserve(n);
  ones.reserve(n);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    zeros.clear();
    ones.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        ones.push_back(i);
      } else {
        zeros.push_back(i);
      }
    }
    const Tracked zb = gen_zeros_bracket_t0(a, zeros, t);
    const Tracked ob = gen_ones_bracket_t0(a, ones, t);
    const double product = zb.value * ob.value;
    total.add(product);
    abs_total += std::abs(product);
    err += std::abs(zb.value) * ob.error + std::abs(ob.value) * zb.error + zb.error * ob.error +
           kU * std::abs(product);
  }
  return {total.get(), err + 2.0 * kU * abs_total};
}

// ---------------------------------------------------------------------------
// General Theorem 5.1, tier 1: Gray-code walk with an *exact* rational
// running base (so every feasibility indicator is decided exactly) and
// dyadic-interval term accumulation.
RationalInterval gen_zeros_bracket_i(std::span<const Rational> a,
                                     std::span<const std::size_t> zeros, const Rational& t,
                                     unsigned bits) {
  const std::size_t m = zeros.size();
  if (m == 0) return point(Rational{1});
  const auto mm = static_cast<std::uint32_t>(m);
  Rational remainder = t;
  RationalInterval sum = pow_outward(point(t), mm, bits);  // I = ∅ (t > 0)
  std::uint64_t mask = 0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    if (mask & bit) {
      remainder -= a[zeros[j]];
    } else {
      remainder += a[zeros[j]];
    }
    if (remainder.signum() <= 0) continue;
    const RationalInterval term = pow_outward(point(remainder), mm, bits);
    sum = outward_round(combinat::gray_parity_odd(i) ? sum - term : sum + term, bits);
  }
  return outward_round(sum * point(combinat::inverse_factorial(mm)), bits);
}

RationalInterval gen_ones_bracket_i(std::span<const Rational> a,
                                    std::span<const std::size_t> ones, const Rational& t,
                                    unsigned bits) {
  const std::size_t k = ones.size();
  if (k == 0) return point(Rational{1});
  const auto kk = static_cast<std::uint32_t>(k);
  Rational product{1};
  std::vector<Rational> shifted(k);
  for (std::size_t j = 0; j < k; ++j) {
    product *= Rational{1} - a[ones[j]];
    shifted[j] = a[ones[j]] - Rational{1};
  }
  Rational base = Rational{static_cast<std::int64_t>(k)} - t;
  RationalInterval sum{Rational{0}};
  if (base.signum() > 0) sum = pow_outward(point(base), kk, bits);
  std::uint64_t mask = 0;
  const std::uint64_t limit = std::uint64_t{1} << k;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    if (mask & bit) {
      base += shifted[j];
    } else {
      base -= shifted[j];
    }
    if (base.signum() <= 0) continue;
    const RationalInterval term = pow_outward(point(base), kk, bits);
    sum = outward_round(combinat::gray_parity_odd(i) ? sum - term : sum + term, bits);
  }
  return outward_round(point(product) -
                           outward_round(sum * point(combinat::inverse_factorial(kk)), bits),
                       bits);
}

RationalInterval gen_total_i(std::span<const Rational> a, const Rational& t, unsigned bits) {
  const std::size_t n = a.size();
  DDM_SPAN("kernel.gray_interval", {{"n", static_cast<std::int64_t>(n)}});
  RationalInterval total{Rational{0}};
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  zeros.reserve(n);
  ones.reserve(n);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    zeros.clear();
    ones.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        ones.push_back(i);
      } else {
        zeros.push_back(i);
      }
    }
    const RationalInterval product = outward_round(
        gen_zeros_bracket_i(a, zeros, t, bits) * gen_ones_bracket_i(a, ones, t, bits), bits);
    total = outward_round(total + product, bits);
  }
  return total;
}

bool all_representable(std::span<const Rational> values) {
  for (const Rational& v : values) {
    if (!util::representable_as_double(v)) return false;
  }
  return true;
}

}  // namespace

CertifiedValue certified_threshold_winning_probability(std::span<const Rational> a,
                                                       const Rational& t,
                                                       const EvalPolicy& policy) {
  if (a.empty()) {
    throw std::invalid_argument("certified_threshold_winning_probability: need >= 1 player");
  }
  if (a.size() > 20) {
    throw std::invalid_argument("certified_threshold_winning_probability: n too large for 3^n sum");
  }
  for (const Rational& x : a) {
    if (x < Rational{0} || x > Rational{1}) {
      throw std::invalid_argument(
          "certified_threshold_winning_probability: thresholds must lie in [0, 1]");
    }
  }
  if (t.signum() <= 0) {
    CertifiedValue zero;
    zero.enclosure = point(Rational{0});
    zero.tier = EvalTier::kExact;
    zero.met_tolerance = true;
    return zero;
  }

  const TierSpec tiers[] = {
      {EvalTier::kCompensatedDouble,
       [&]() -> RationalInterval {
         if (!all_representable(a) || !util::representable_as_double(t)) {
           throw NumericError(
               "certified_threshold_winning_probability: inputs not representable as doubles");
         }
         std::vector<double> ad(a.size());
         for (std::size_t i = 0; i < a.size(); ++i) ad[i] = a[i].to_double();
         return util::tracked_enclosure(gen_total_t0(ad, t.to_double()),
                                  "certified_threshold_winning_probability");
       }},
      {EvalTier::kInterval,
       [&]() -> RationalInterval { return gen_total_i(a, t, policy.interval_bits); }},
      {EvalTier::kExact,
       [&]() -> RationalInterval {
         if (a.size() > 16) {
           throw NumericError(
               "certified_threshold_winning_probability: exact tier limited to n <= 16");
         }
         return point(threshold_winning_probability(a, t));
       }},
  };
  return run_escalation_ladder(policy, "certified_threshold_winning_probability", tiers);
}

CertifiedValue certified_symmetric_threshold_winning_probability(std::uint32_t n,
                                                                 const Rational& beta,
                                                                 const Rational& t,
                                                                 const EvalPolicy& policy) {
  if (n == 0) {
    throw std::invalid_argument("certified_symmetric_threshold_winning_probability: n == 0");
  }
  if (beta < Rational{0} || beta > Rational{1}) {
    throw std::invalid_argument(
        "certified_symmetric_threshold_winning_probability: beta outside [0, 1]");
  }
  if (t.signum() <= 0) {
    CertifiedValue zero;
    zero.enclosure = point(Rational{0});
    zero.tier = EvalTier::kExact;
    zero.met_tolerance = true;
    return zero;
  }

  const TierSpec tiers[] = {
      {EvalTier::kCompensatedDouble,
       [&]() -> RationalInterval {
         // binomial_double is exact only while C(n, k) fits the mantissa.
         if (n > 56 || !util::representable_as_double(beta) ||
             !util::representable_as_double(t)) {
           throw NumericError(
               "certified_symmetric_threshold_winning_probability: double tier unavailable "
               "(inputs not representable or n > 56)");
         }
         return util::tracked_enclosure(sym_total_t0(n, beta.to_double(), t.to_double()),
                                  "certified_symmetric_threshold_winning_probability");
       }},
      {EvalTier::kInterval,
       [&]() -> RationalInterval { return sym_total_i(n, beta, t, policy.interval_bits); }},
      {EvalTier::kExact,
       [&]() -> RationalInterval {
         return point(symmetric_threshold_winning_probability(n, beta, t));
       }},
  };
  return run_escalation_ladder(policy, "certified_symmetric_threshold_winning_probability",
                               tiers);
}

}  // namespace ddm::core
