// optimality.hpp — optimality conditions for oblivious protocols
// (Corollary 4.2, Theorem 4.3) and numerical maximization utilities.
//
// At an optimum of the winning probability, every partial derivative with
// respect to the probability vector α must vanish (Corollary 4.2). The paper
// proves (Lemmas 4.5/4.6) that the unique solution is α = (1/2, ..., 1/2)
// for every n — the optimal oblivious protocol is *uniform*. This module
// computes the gradient exactly (so tests can verify it vanishes at 1/2 and
// nowhere else along rational probes) and provides projected gradient ascent
// as an independent numerical confirmation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rational.hpp"

namespace ddm::core {

/// Exact gradient ∂P_A(t)/∂α_k of Theorem 4.1's winning probability at α,
/// using the O(n²) Poisson-binomial collapse per coordinate:
///   ∂P/∂α_k = Σ_j PB_{−k}(j) · (φ_t(j) − φ_t(j+1)),
/// where PB_{−k} is the ones-count distribution of the other players.
[[nodiscard]] std::vector<util::Rational> oblivious_gradient(
    std::span<const util::Rational> alpha, const util::Rational& t);

/// Literal 2^n-term gradient (Corollary 4.2 as printed) — test oracle.
[[nodiscard]] std::vector<util::Rational> oblivious_gradient_bruteforce(
    std::span<const util::Rational> alpha, const util::Rational& t);

/// Double-precision gradient (same collapse).
[[nodiscard]] std::vector<double> oblivious_gradient(std::span<const double> alpha, double t);

/// Largest |∂P/∂α_k| at α — zero iff α satisfies the optimality conditions.
[[nodiscard]] util::Rational stationarity_residual(std::span<const util::Rational> alpha,
                                                   const util::Rational& t);

/// The diagonal optimality condition of Section 4.2: restricting Corollary
/// 4.2 to a common alpha and dividing by (1 − alpha)^{n−1} yields a degree-
/// (n−1) polynomial equation in the ratio r = alpha / (1 − alpha),
///   Σ_{k} c_k r^k = 0,   c_k = C(n−1, k) (φ_t(k+1) − φ_t(k)).
/// Lemma 4.4 (φ_t(k) = φ_t(n−k)) makes the coefficient sequence
/// antisymmetric — c_k = −c_{n−1−k} — which is the engine of the paper's
/// proof that r = 1 (alpha = 1/2) is the unique positive solution
/// (Lemma 4.6). Returned low-degree-first.
[[nodiscard]] std::vector<util::Rational> diagonal_condition_coefficients(
    std::uint32_t n, const util::Rational& t);

/// Result of numerical maximization.
struct AscentResult {
  std::vector<double> alpha;     ///< final iterate
  double value = 0.0;            ///< winning probability at the final iterate
  double gradient_norm = 0.0;    ///< max-norm of the final gradient (interior coords)
  std::uint32_t iterations = 0;  ///< iterations actually performed
};

/// Projected gradient ascent on [0,1]^n from `start` (step halving on
/// non-improvement). Converges to the unique stationary point α = 1/2
/// (Theorem 4.3); used as an independent check of the exact derivation.
[[nodiscard]] AscentResult maximize_oblivious(std::vector<double> start, double t,
                                              std::uint32_t max_iterations = 500,
                                              double initial_step = 0.5);

}  // namespace ddm::core
