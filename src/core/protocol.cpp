#include "core/protocol.hpp"

#include <sstream>
#include <stdexcept>

namespace ddm::core {

using util::Rational;

namespace {

void check_probability_vector(std::span<const Rational> values, const char* what) {
  if (values.empty()) throw std::invalid_argument(std::string(what) + ": need >= 1 player");
  for (const Rational& v : values) {
    if (v < Rational{0} || v > Rational{1}) {
      throw std::invalid_argument(std::string(what) + ": entries must lie in [0, 1]");
    }
  }
}

std::vector<double> to_doubles(std::span<const Rational> values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const Rational& v : values) out.push_back(v.to_double());
  return out;
}

}  // namespace

ObliviousProtocol::ObliviousProtocol(std::vector<Rational> alpha) : alpha_(std::move(alpha)) {
  check_probability_vector(alpha_, "ObliviousProtocol");
  alpha_double_ = to_doubles(alpha_);
}

ObliviousProtocol ObliviousProtocol::uniform(std::size_t n) {
  return ObliviousProtocol{std::vector<Rational>(n, Rational{1, 2})};
}

int ObliviousProtocol::decide(std::size_t player, double /*input*/, prob::Rng& rng) const {
  if (player >= alpha_.size()) throw std::out_of_range("ObliviousProtocol::decide: bad player");
  return rng.bernoulli(alpha_double_[player]) ? kBin0 : kBin1;
}

std::string ObliviousProtocol::name() const {
  std::ostringstream oss;
  oss << "oblivious(alpha=[";
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << alpha_[i];
  }
  oss << "])";
  return oss.str();
}

SingleThresholdProtocol::SingleThresholdProtocol(std::vector<Rational> thresholds)
    : thresholds_(std::move(thresholds)) {
  check_probability_vector(thresholds_, "SingleThresholdProtocol");
  thresholds_double_ = to_doubles(thresholds_);
}

SingleThresholdProtocol SingleThresholdProtocol::symmetric(std::size_t n, Rational beta) {
  return SingleThresholdProtocol{std::vector<Rational>(n, std::move(beta))};
}

int SingleThresholdProtocol::decide(std::size_t player, double input, prob::Rng& /*rng*/) const {
  if (player >= thresholds_.size()) {
    throw std::out_of_range("SingleThresholdProtocol::decide: bad player");
  }
  return input <= thresholds_double_[player] ? kBin0 : kBin1;
}

std::string SingleThresholdProtocol::name() const {
  std::ostringstream oss;
  oss << "single-threshold(a=[";
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << thresholds_[i];
  }
  oss << "])";
  return oss.str();
}

FunctorProtocol::FunctorProtocol(std::vector<Rule> rules, std::string name)
    : rules_(std::move(rules)), name_(std::move(name)) {
  if (rules_.empty()) throw std::invalid_argument("FunctorProtocol: need >= 1 player");
  for (const Rule& rule : rules_) {
    if (!rule) throw std::invalid_argument("FunctorProtocol: empty rule");
  }
}

int FunctorProtocol::decide(std::size_t player, double input, prob::Rng& rng) const {
  if (player >= rules_.size()) throw std::out_of_range("FunctorProtocol::decide: bad player");
  return rules_[player](input, rng);
}

BinLoads play(const Protocol& protocol, std::span<const double> inputs, prob::Rng& rng) {
  if (inputs.size() != protocol.size()) {
    throw std::invalid_argument("play: input vector size does not match protocol size");
  }
  BinLoads loads;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const int bin = protocol.decide(i, inputs[i], rng);
    if (bin == kBin0) {
      loads.bin0 += inputs[i];
    } else if (bin == kBin1) {
      loads.bin1 += inputs[i];
    } else {
      throw std::logic_error("play: protocol returned an invalid bin");
    }
  }
  return loads;
}

bool wins(const Protocol& protocol, std::span<const double> inputs, double t, prob::Rng& rng) {
  const BinLoads loads = play(protocol, inputs, rng);
  return loads.bin0 <= t && loads.bin1 <= t;
}

}  // namespace ddm::core
