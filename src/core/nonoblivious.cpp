#include "core/nonoblivious.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "combinat/binomial.hpp"
#include "combinat/subsets.hpp"
#include "core/batch_walk.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/kahan.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/status.hpp"

namespace ddm::core {

using util::Rational;

namespace {

// Kernel metrics (docs/observability.md). subsets_visited counts Gray-code
// subset evaluations (2·3^n per general-kernel call); kahan_compensation
// records the absolute compensation a bracket accumulated — the live
// cancellation-severity signal behind the certified ladder's tier-0 bound.
struct KernelMetrics {
  obs::Counter gray_calls = obs::counter("kernel.gray_calls");
  obs::Counter symmetric_calls = obs::counter("kernel.symmetric_calls");
  obs::Counter subsets_visited = obs::counter("kernel.subsets_visited");
  obs::Histogram kahan_compensation = obs::histogram("kernel.kahan_compensation");

  static const KernelMetrics& get() {
    static const KernelMetrics metrics;
    return metrics;
  }
};

// 2·3^n: total Gray-code subset evaluations of one general-kernel call
// (each outer assignment with m zeros and k ones walks 2^m + 2^k subsets;
// Σ_b 2^m + 2^k = 2·3^n). n <= 20, so this fits comfortably in 64 bits.
std::uint64_t general_kernel_subsets(std::size_t n) noexcept {
  std::uint64_t p = 1;
  for (std::size_t i = 0; i < n; ++i) p *= 3;
  return 2 * p;
}

void check_thresholds(std::span<const Rational> a, std::size_t max_n) {
  if (a.empty()) throw std::invalid_argument("threshold_winning_probability: need >= 1 player");
  if (a.size() > max_n) {
    throw std::invalid_argument("threshold_winning_probability: n too large for exact 3^n sum");
  }
  for (const Rational& x : a) {
    if (x < Rational{0} || x > Rational{1}) {
      throw std::invalid_argument("threshold_winning_probability: thresholds must lie in [0, 1]");
    }
  }
}

// Both brackets below visit the subsets I in reflected Gray-code order
// (combinat::gray_code): consecutive subsets differ in one element, so the
// bracket's per-subset base value is maintained with a single add or
// subtract instead of an O(m) subset-sum loop, and the inclusion-exclusion
// sign (−1)^|I| simply alternates with the step index. The derivation —
// including why the feasibility guards commute with the reordering — is in
// docs/performance.md.

// Zeros bracket of Theorem 5.1 for the players listed in `zeros`:
//   (1/m!) Σ_{I ⊆ zeros, Σ_{l∈I} a_l < t} (−1)^{|I|} (t − Σ_{l∈I} a_l)^m.
Rational zeros_bracket(std::span<const Rational> a, std::span<const std::size_t> zeros,
                       const Rational& t) {
  const std::size_t m = zeros.size();
  if (m == 0) return Rational{1};  // empty bin never overflows (t > 0)
  Rational remainder = t;  // t − Σ_{l∈I} a_l for the current subset I
  std::uint64_t mask = 0;
  Rational sum = remainder.pow(static_cast<std::int64_t>(m));  // I = ∅ (t > 0)
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    if (mask & bit) {
      remainder -= a[zeros[j]];
    } else {
      remainder += a[zeros[j]];
    }
    if (remainder.signum() <= 0) continue;
    const Rational term = remainder.pow(static_cast<std::int64_t>(m));
    if (combinat::gray_parity_odd(i)) {
      sum -= term;
    } else {
      sum += term;
    }
  }
  return sum * combinat::inverse_factorial(static_cast<std::uint32_t>(m));
}

// Ones bracket of Theorem 5.1 for the players listed in `ones`:
//   Π (1−a_l)  −  (1/k!) Σ_{I ⊆ ones, k−t−|I|+Σ a_l > 0} (−1)^{|I|} (k−t−|I|+Σ_{l∈I} a_l)^k.
// The Gray walk maintains base = k − t + Σ_{l∈I} (a_l − 1) directly: adding
// element l to I shifts the base by (a_l − 1), covering both the +a_l and the
// −|I| bookkeeping in one update.
Rational ones_bracket(std::span<const Rational> a, std::span<const std::size_t> ones,
                      const Rational& t) {
  const std::size_t k = ones.size();
  if (k == 0) return Rational{1};
  Rational product{1};
  std::vector<Rational> shifted(k);  // a_l − 1 per listed player
  for (std::size_t j = 0; j < k; ++j) {
    product *= Rational{1} - a[ones[j]];
    shifted[j] = a[ones[j]] - Rational{1};
  }
  Rational base = Rational{static_cast<std::int64_t>(k)} - t;  // I = ∅
  std::uint64_t mask = 0;
  Rational sum{0};
  if (base.signum() > 0) sum = base.pow(static_cast<std::int64_t>(k));
  const std::uint64_t limit = std::uint64_t{1} << k;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    if (mask & bit) {
      base += shifted[j];
    } else {
      base -= shifted[j];
    }
    if (base.signum() <= 0) continue;
    const Rational term = base.pow(static_cast<std::int64_t>(k));
    if (combinat::gray_parity_odd(i)) {
      sum -= term;
    } else {
      sum += term;
    }
  }
  return product - sum * combinat::inverse_factorial(static_cast<std::uint32_t>(k));
}

}  // namespace

Rational threshold_winning_probability(std::span<const Rational> a, const Rational& t) {
  check_thresholds(a, 16);
  if (t.signum() <= 0) return Rational{0};
  const std::size_t n = a.size();
  DDM_SPAN("kernel.gray_exact", {{"n", static_cast<std::int64_t>(n)}});
  Rational total{0};
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  zeros.reserve(n);
  ones.reserve(n);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    zeros.clear();
    ones.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        ones.push_back(i);
      } else {
        zeros.push_back(i);
      }
    }
    total += zeros_bracket(a, zeros, t) * ones_bracket(a, ones, t);
  }
  return total;
}

double threshold_winning_probability(std::span<const double> a, double t) {
  if (a.empty()) throw std::invalid_argument("threshold_winning_probability: need >= 1 player");
  if (a.size() > 20) {
    throw std::invalid_argument("threshold_winning_probability: n too large for 3^n sum");
  }
  if (t <= 0.0) return 0.0;
  const std::size_t n = a.size();
  const KernelMetrics& metrics = KernelMetrics::get();
  DDM_SPAN("kernel.gray_ie", {{"n", static_cast<std::int64_t>(n)}});
  metrics.gray_calls.add();
  if (obs::metrics_enabled()) metrics.subsets_visited.add(general_kernel_subsets(n));

  // Gray-code brackets, mirroring the exact versions above: one running-sum
  // update per subset and binary exponentiation instead of std::pow. The
  // running base and the term accumulator carry Kahan compensation so 2^m
  // incremental updates stay within a few ulps of fresh recomputation.
  const auto zeros_bracket_d = [&](std::span<const std::size_t> zeros) {
    const std::size_t m = zeros.size();
    if (m == 0) return 1.0;
    const auto mm = static_cast<std::uint32_t>(m);
    util::KahanSum remainder{t};
    std::uint64_t mask = 0;
    util::KahanSum sum{combinat::pow_uint(t, mm)};  // I = ∅ (t > 0)
    const std::uint64_t limit = std::uint64_t{1} << m;
    for (std::uint64_t i = 1; i < limit; ++i) {
      const std::uint32_t j = combinat::gray_flip_bit(i);
      const std::uint64_t bit = std::uint64_t{1} << j;
      mask ^= bit;
      remainder.add((mask & bit) ? -a[zeros[j]] : a[zeros[j]]);
      const double rem = remainder.get();
      if (rem <= 0.0) continue;
      const double term = combinat::pow_uint(rem, mm);
      sum.add(combinat::gray_parity_odd(i) ? -term : term);
    }
    if (obs::metrics_enabled()) metrics.kahan_compensation.record(std::abs(sum.compensation));
    return sum.get() * combinat::inverse_factorial_double(mm);
  };
  const auto ones_bracket_d = [&](std::span<const std::size_t> ones) {
    const std::size_t k = ones.size();
    if (k == 0) return 1.0;
    const auto kk = static_cast<std::uint32_t>(k);
    double product = 1.0;
    for (const std::size_t idx : ones) product *= 1.0 - a[idx];
    // base = k − t + Σ_{l∈I} (a_l − 1): adding player l to I covers both the
    // +a_l and the −|I| bookkeeping in one update.
    util::KahanSum base{static_cast<double>(k) - t};
    std::uint64_t mask = 0;
    util::KahanSum sum{base.get() > 0.0 ? combinat::pow_uint(base.get(), kk) : 0.0};
    const std::uint64_t limit = std::uint64_t{1} << k;
    for (std::uint64_t i = 1; i < limit; ++i) {
      const std::uint32_t j = combinat::gray_flip_bit(i);
      const std::uint64_t bit = std::uint64_t{1} << j;
      mask ^= bit;
      base.add((mask & bit) ? a[ones[j]] - 1.0 : 1.0 - a[ones[j]]);
      const double b = base.get();
      if (b <= 0.0) continue;
      const double term = combinat::pow_uint(b, kk);
      sum.add(combinat::gray_parity_odd(i) ? -term : term);
    }
    if (obs::metrics_enabled()) metrics.kahan_compensation.record(std::abs(sum.compensation));
    return product - sum.get() * combinat::inverse_factorial_double(kk);
  };

  double total = 0.0;
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    zeros.clear();
    ones.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        ones.push_back(i);
      } else {
        zeros.push_back(i);
      }
    }
    total += zeros_bracket_d(zeros) * ones_bracket_d(ones);
  }
  return require_finite(total, "threshold_winning_probability: double result");
}

namespace {

// Batch-kernel metrics (docs/observability.md). `batch.subset_walks_amortized`
// counts the per-point Gray walks the amortized evaluator did NOT have to run:
// a run of P same-size points shares one walk, saving P − 1 of them.
// `engine.simd_width` reports the pack width the walk actually dispatched
// (after DDM_SIMD, compiled widths, and CPU support — never the compiled
// maximum), and `kernel.vector_lanes` counts the points that went through
// full-width vector lanes (tail points run the pinned scalar path).
struct BatchMetrics {
  obs::Counter points = obs::counter("batch.points");
  obs::Counter walks_amortized = obs::counter("batch.subset_walks_amortized");
  obs::Gauge simd_width = obs::gauge("engine.simd_width");
  obs::Counter vector_lanes = obs::counter("kernel.vector_lanes");

  static const BatchMetrics& get() {
    static const BatchMetrics metrics;
    return metrics;
  }
};

using detail::BatchWorkspace;

// The amortized Gray-code subset walk, W points per lane (the generic
// implementation and the bitwise-identity argument live in
// core/batch_walk.hpp; the AVX2/AVX-512 instantiations in their own
// translation units). `width` is the caller's util::simd::dispatch_width()
// — resolved once per batch call so a malformed DDM_SIMD throws on the
// calling thread, before any chunk runs.
void subset_walk(const double* deltas, std::size_t sz, std::size_t count, std::uint32_t exponent,
                 BatchWorkspace& ws, int width) {
  switch (width) {
#if defined(DDM_SIMD_COMPILED_AVX512)
    case 8:
      detail::subset_walk_avx512(deltas, sz, count, exponent, ws);
      return;
#endif
#if defined(DDM_SIMD_COMPILED_AVX2)
    case 4:
      detail::subset_walk_avx2(deltas, sz, count, exponent, ws);
      return;
#endif
#if defined(DDM_SIMD_HAS_SSE2) || defined(DDM_SIMD_HAS_NEON)
    case 2:
      detail::subset_walk_pack<util::simd::Pack<2>>(deltas, sz, count, exponent, ws);
      return;
#endif
    default:
      detail::subset_walk_pack<util::simd::Pack<1>>(deltas, sz, count, exponent, ws);
      return;
  }
}

// Evaluates Theorem 5.1 for a run of `count` points of equal size n sharing
// one Gray-code subset walk per decision vector, writing out[p] bitwise equal
// to threshold_winning_probability(points[first + p], t).
void amortized_run(std::span<const std::vector<double>> points, std::size_t first,
                   std::size_t count, double t, std::span<double> out, BatchWorkspace& ws,
                   int width) {
  const std::size_t n = points[first].size();
  DDM_SPAN("kernel.batch_walk", {{"n", static_cast<std::int64_t>(n)},
                                 {"points", static_cast<std::int64_t>(count)}});
  const KernelMetrics& kernel_metrics = KernelMetrics::get();
  const BatchMetrics& batch_metrics = BatchMetrics::get();
  batch_metrics.points.add(count);
  batch_metrics.walks_amortized.add(count - 1);
  if (obs::metrics_enabled()) {
    kernel_metrics.subsets_visited.add(general_kernel_subsets(n));
    batch_metrics.simd_width.set(width);
    if (width > 1) {
      batch_metrics.vector_lanes.add(count - count % static_cast<std::size_t>(width));
    }
  }

  ws.coords.resize(n * count);
  for (std::size_t p = 0; p < count; ++p) {
    for (std::size_t i = 0; i < n; ++i) ws.coords[i * count + p] = points[first + p][i];
  }
  ws.deltas.resize(n * count);
  for (auto* buf : {&ws.rs, &ws.rc, &ws.ss, &ws.sc, &ws.prod, &ws.zres, &ws.total}) {
    buf->resize(count);
  }
  std::fill(ws.total.begin(), ws.total.end(), 0.0);

  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  zeros.reserve(n);
  ones.reserve(n);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    zeros.clear();
    ones.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        ones.push_back(i);
      } else {
        zeros.push_back(i);
      }
    }

    // Zeros bracket: base tracks t − Σ_{l∈I} a_l, so entering adds −a_l.
    const std::size_t m = zeros.size();
    if (m == 0) {
      std::fill(ws.zres.begin(), ws.zres.end(), 1.0);
    } else {
      const auto mm = static_cast<std::uint32_t>(m);
      const double init = combinat::pow_uint(t, mm);  // I = ∅ (t > 0)
      for (std::size_t p = 0; p < count; ++p) {
        ws.rs[p] = t;
        ws.rc[p] = 0.0;
        ws.ss[p] = init;
        ws.sc[p] = 0.0;
      }
      for (std::size_t j = 0; j < m; ++j) {
        const double* col = ws.coords.data() + zeros[j] * count;
        for (std::size_t p = 0; p < count; ++p) ws.deltas[j * count + p] = -col[p];
      }
      subset_walk(ws.deltas.data(), m, count, mm, ws, width);
      if (obs::metrics_enabled()) {
        for (std::size_t p = 0; p < count; ++p) {
          kernel_metrics.kahan_compensation.record(std::abs(ws.sc[p]));
        }
      }
      const double inv_fact = combinat::inverse_factorial_double(mm);
      for (std::size_t p = 0; p < count; ++p) ws.zres[p] = (ws.ss[p] + ws.sc[p]) * inv_fact;
    }

    // Ones bracket: base tracks k − t + Σ_{l∈I} (a_l − 1), entering adds a_l − 1.
    const std::size_t k = ones.size();
    if (k == 0) {
      for (std::size_t p = 0; p < count; ++p) ws.total[p] += ws.zres[p] * 1.0;
      continue;
    }
    const auto kk = static_cast<std::uint32_t>(k);
    std::fill(ws.prod.begin(), ws.prod.end(), 1.0);
    for (std::size_t j = 0; j < k; ++j) {
      const double* col = ws.coords.data() + ones[j] * count;
      for (std::size_t p = 0; p < count; ++p) {
        ws.prod[p] *= 1.0 - col[p];
        ws.deltas[j * count + p] = col[p] - 1.0;
      }
    }
    const double base0 = static_cast<double>(k) - t;
    const double init = base0 > 0.0 ? combinat::pow_uint(base0, kk) : 0.0;
    for (std::size_t p = 0; p < count; ++p) {
      ws.rs[p] = base0;
      ws.rc[p] = 0.0;
      ws.ss[p] = init;
      ws.sc[p] = 0.0;
    }
    subset_walk(ws.deltas.data(), k, count, kk, ws, width);
    if (obs::metrics_enabled()) {
      for (std::size_t p = 0; p < count; ++p) {
        kernel_metrics.kahan_compensation.record(std::abs(ws.sc[p]));
      }
    }
    const double inv_fact = combinat::inverse_factorial_double(kk);
    for (std::size_t p = 0; p < count; ++p) {
      ws.total[p] += ws.zres[p] * (ws.prod[p] - (ws.ss[p] + ws.sc[p]) * inv_fact);
    }
  }

  for (std::size_t p = 0; p < count; ++p) {
    out[p] = require_finite(ws.total[p], "threshold_winning_probability: double result");
  }
}

}  // namespace

std::vector<double> threshold_winning_probability_batch(
    std::span<const std::vector<double>> points, double t, const util::RunControl& control) {
  DDM_SPAN("kernel.batch", {{"points", static_cast<std::int64_t>(points.size())}});
  // Validate every point up front, in index order, with the single-point
  // evaluator's exact messages — the batch throws like a sequential loop
  // would, independent of how chunks land on threads.
  for (const std::vector<double>& point : points) {
    if (point.empty()) {
      throw std::invalid_argument("threshold_winning_probability: need >= 1 player");
    }
    if (point.size() > 20) {
      throw std::invalid_argument("threshold_winning_probability: n too large for 3^n sum");
    }
  }
  std::vector<double> values(points.size(), 0.0);
  if (t <= 0.0) return values;  // mirrors the single-point evaluator
  // Resolve the SIMD dispatch width up front, on the calling thread: a
  // malformed DDM_SIMD throws ddm::Error here (exit 2 from the CLI) before
  // any chunk is scheduled, and every chunk then walks at the same width.
  const int simd_width = util::simd::dispatch_width();
  // Chunks of kThresholdBatchBlock points share one Gray-code subset walk per
  // run of equal-size points (amortized_run above); per point the arithmetic
  // is bitwise identical to a single-point call — at EVERY dispatch width,
  // because the vector lanes run across points with the serial op sequence
  // per lane (core/batch_walk.hpp) — so neither blocking nor parallelism nor
  // vectorization ever changes results. The validate hook rejects any chunk
  // holding a non-finite value — whether produced by the kernel or injected
  // by a nan-poison fault directive — so the engine recomputes it instead of
  // returning silently-corrupt rows.
  util::ParallelOptions options;
  options.grain = kThresholdBatchBlock;
  options.label = "threshold_batch";
  options.control = control;
  options.validate = [&values](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      if (!std::isfinite(values[p])) return false;
    }
    return true;
  };
  util::parallel_for(
      0, points.size(),
      [&](std::size_t lo, std::size_t hi) {
        BatchWorkspace ws;
        std::size_t idx = lo;
        while (idx < hi) {
          std::size_t end = idx + 1;
          while (end < hi && points[end].size() == points[idx].size()) ++end;
          amortized_run(points, idx, end - idx, t,
                        std::span<double>{values.data() + idx, end - idx}, ws, simd_width);
          idx = end;
        }
        // Chunk ordinal for fault directives: lo / kThresholdBatchBlock.
        if (util::fault::active() && util::fault::consume_nan(lo / kThresholdBatchBlock)) {
          values[lo] = std::numeric_limits<double>::quiet_NaN();
        }
      },
      options);
  return values;
}

Rational symmetric_zero_bracket(std::uint32_t m, const Rational& beta, const Rational& t) {
  if (m == 0) return Rational{1};
  Rational sum{0};
  for (std::uint32_t l = 0; l <= m; ++l) {
    const Rational base = t - Rational{static_cast<std::int64_t>(l)} * beta;
    if (base.signum() <= 0) continue;
    const Rational term =
        Rational{combinat::binomial(m, l), util::BigInt{1}} * base.pow(static_cast<std::int64_t>(m));
    if (l % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  return sum * combinat::inverse_factorial(m);
}

Rational symmetric_one_bracket(std::uint32_t k, const Rational& beta, const Rational& t) {
  if (k == 0) return Rational{1};
  const Rational kk{static_cast<std::int64_t>(k)};
  Rational sum{0};
  for (std::uint32_t l = 0; l <= k; ++l) {
    const Rational ll{static_cast<std::int64_t>(l)};
    const Rational base = kk - t - ll + ll * beta;
    if (base.signum() <= 0) continue;
    const Rational term =
        Rational{combinat::binomial(k, l), util::BigInt{1}} * base.pow(static_cast<std::int64_t>(k));
    if (l % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  return (Rational{1} - beta).pow(static_cast<std::int64_t>(k)) -
         sum * combinat::inverse_factorial(k);
}

Rational symmetric_threshold_winning_probability(std::uint32_t n, const Rational& beta,
                                                 const Rational& t) {
  if (n == 0) throw std::invalid_argument("symmetric_threshold_winning_probability: n == 0");
  if (beta < Rational{0} || beta > Rational{1}) {
    throw std::invalid_argument("symmetric_threshold_winning_probability: beta outside [0, 1]");
  }
  if (t.signum() <= 0) return Rational{0};
  DDM_SPAN("kernel.sym_exact", {{"n", static_cast<std::int64_t>(n)}});
  Rational total{0};
  for (std::uint32_t k = 0; k <= n; ++k) {
    total += Rational{combinat::binomial(n, k), util::BigInt{1}} *
             symmetric_zero_bracket(n - k, beta, t) * symmetric_one_bracket(k, beta, t);
  }
  return total;
}

double symmetric_threshold_winning_probability(std::uint32_t n, double beta, double t) {
  if (n == 0) throw std::invalid_argument("symmetric_threshold_winning_probability: n == 0");
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("symmetric_threshold_winning_probability: beta outside [0, 1]");
  }
  if (t <= 0.0) return 0.0;
  DDM_SPAN("kernel.symmetric", {{"n", static_cast<std::int64_t>(n)}});
  KernelMetrics::get().symmetric_calls.add();

  const auto zero_bracket = [&](std::uint32_t m) {
    if (m == 0) return 1.0;
    double sum = 0.0;
    for (std::uint32_t l = 0; l <= m; ++l) {
      const double base = t - static_cast<double>(l) * beta;
      if (base <= 0.0) continue;
      const double term = combinat::binomial_double(m, l) * std::pow(base, m);
      sum += (l % 2 == 0) ? term : -term;
    }
    return sum * combinat::inverse_factorial_double(m);
  };
  const auto one_bracket = [&](std::uint32_t k) {
    if (k == 0) return 1.0;
    double sum = 0.0;
    for (std::uint32_t l = 0; l <= k; ++l) {
      const double base =
          static_cast<double>(k) - t - static_cast<double>(l) + static_cast<double>(l) * beta;
      if (base <= 0.0) continue;
      const double term = combinat::binomial_double(k, l) * std::pow(base, k);
      sum += (l % 2 == 0) ? term : -term;
    }
    return std::pow(1.0 - beta, static_cast<double>(k)) -
           sum * combinat::inverse_factorial_double(k);
  };

  double total = 0.0;
  for (std::uint32_t k = 0; k <= n; ++k) {
    total += combinat::binomial_double(n, k) * zero_bracket(n - k) * one_bracket(k);
  }
  return require_finite(total, "symmetric_threshold_winning_probability: double result");
}

}  // namespace ddm::core
