// symmetric_threshold.hpp — exact symbolic analysis of symmetric
// single-threshold protocols (Section 5.2).
//
// For a common threshold β, the winning probability of Theorem 5.1 becomes a
// piecewise polynomial P(β) on [0, 1]: each indicator condition
//   t − lβ > 0            (zeros bracket, l = 1..n)
//   k − t − l + lβ > 0    (ones bracket,  k = 1..n, l = 1..k)
// flips at a rational breakpoint, and between breakpoints P is one exact
// polynomial. This module constructs those pieces symbolically (exactly what
// the paper does by hand for n = 3, t = 1 and n = 4, t = 4/3), then finds
// the optimal threshold as a certified root of the derivative — the paper's
// "optimality condition" (e.g. β² − 2β + 6/7 = 0, root 1 − √(1/7) ≈ 0.622).
#pragma once

#include <cstdint>
#include <vector>

#include "poly/piecewise.hpp"
#include "poly/polynomial.hpp"
#include "poly/roots.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// The certified optimum of P(β) over [0, 1].
struct SymmetricOptimum {
  /// Isolating interval for the optimal threshold β*; exact when the optimum
  /// is a breakpoint or domain endpoint.
  poly::RootInterval beta;
  /// P(β) at beta.midpoint() — exact there; within Lipschitz * width of the
  /// true optimum value.
  util::Rational value;
  /// Index of the piece containing the optimum.
  std::size_t piece_index = 0;
  /// True when β* is an interior critical point of its piece.
  bool interior = false;
  /// Derivative of the optimal piece — the optimality condition; when
  /// `interior` is true, β* is one of its roots.
  poly::QPoly optimality_condition;
  /// True when interval arithmetic proved this is the global maximum
  /// (see poly::MaxCandidate::certified).
  bool certified = false;
};

/// Symbolic piecewise representation of β ↦ P_A(t) for the symmetric
/// single-threshold protocol with n players and capacity t.
class SymmetricThresholdAnalysis {
 public:
  /// Derive the exact piecewise polynomial. Throws std::invalid_argument for
  /// n == 0 or t <= 0. Cost is O(#breakpoints · n²) exact polynomial algebra
  /// (breakpoints are O(n²)).
  [[nodiscard]] static SymmetricThresholdAnalysis build(std::uint32_t n, util::Rational t);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] const util::Rational& t() const noexcept { return t_; }
  [[nodiscard]] const poly::PiecewisePolynomial& winning_probability() const noexcept {
    return pieces_;
  }

  /// All breakpoints including 0 and 1, ascending.
  [[nodiscard]] std::vector<util::Rational> breakpoints() const;

  /// Certified global optimum over β ∈ [0, 1].
  [[nodiscard]] SymmetricOptimum optimize() const;

 private:
  SymmetricThresholdAnalysis(std::uint32_t n, util::Rational t, poly::PiecewisePolynomial pieces)
      : n_(n), t_(std::move(t)), pieces_(std::move(pieces)) {}

  std::uint32_t n_;
  util::Rational t_;
  poly::PiecewisePolynomial pieces_;
};

}  // namespace ddm::core
