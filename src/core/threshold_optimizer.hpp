// threshold_optimizer.hpp — derivative-free search over threshold vectors.
//
// Theorem 5.2's optimality conditions are first-order interior conditions
// derived under symmetry. This module searches the FULL threshold box
// [0,1]^n numerically (compass/pattern search on the exact-formula double
// evaluator), which lets us test the symmetry claim empirically: from
// symmetric starts the search reproduces the paper's symmetric optima; from
// asymmetric starts it can escape to identity-based corner protocols (e.g.
// thresholds (0,0,1,1) = a deterministic split) that dominate every
// symmetric rule — quantifying exactly what the paper's anonymous setting
// gives up. See EXPERIMENTS.md ("scope of Theorem 5.2").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ddm::core {

/// Result of a pattern search run.
struct ThresholdSearchResult {
  std::vector<double> thresholds;  ///< best vector found
  double value = 0.0;              ///< winning probability there (Theorem 5.1)
  std::uint32_t evaluations = 0;   ///< objective evaluations spent
  double final_step = 0.0;         ///< mesh size at termination
};

/// The optimizer's objective seam: maps a batch of threshold vectors (all the
/// same length) to their winning probabilities for capacity t, index for
/// index. The default is core::threshold_winning_probability_batch; callers
/// can route probes through any evaluation engine (engine::batch_objective)
/// as long as the objective is deterministic — the search's acceptance rule
/// assumes replaying a batch yields identical values.
using BatchObjective =
    std::function<std::vector<double>(const std::vector<std::vector<double>>&, double)>;

/// Compass search maximizing threshold_winning_probability(a, t) over
/// a ∈ [0,1]^n from `start`: each iteration evaluates the 2n probes ±step
/// along every axis concurrently (util::parallel_for), moves to the best
/// strictly-improving probe, and halves the step when none improves, until
/// step < tolerance. Deterministic regardless of thread count. Throws
/// std::invalid_argument on empty start, start outside [0,1]^n,
/// tolerance <= 0, or n > 16.
[[nodiscard]] ThresholdSearchResult maximize_thresholds(std::vector<double> start, double t,
                                                        double initial_step = 0.25,
                                                        double tolerance = 1e-10,
                                                        std::uint32_t max_evaluations = 200000);

/// Same search with every evaluation (incumbent and probe batches) routed
/// through `objective`. With the default batch objective the iterate sequence
/// and every reported value are bitwise identical to the overload above.
[[nodiscard]] ThresholdSearchResult maximize_thresholds(std::vector<double> start, double t,
                                                        const BatchObjective& objective,
                                                        double initial_step = 0.25,
                                                        double tolerance = 1e-10,
                                                        std::uint32_t max_evaluations = 200000);

/// Same search restricted to the symmetric diagonal a_1 = ... = a_n — the
/// class Theorem 5.2 analyzes. One-dimensional golden-section-style compass.
[[nodiscard]] ThresholdSearchResult maximize_symmetric_threshold(
    std::uint32_t n, double t, double start = 0.5, double initial_step = 0.25,
    double tolerance = 1e-12);

}  // namespace ddm::core
