// batch_walk_avx512.cpp — the 8-wide AVX-512F instantiation of the
// amortized subset walk. Compiled with -mavx512f -ffp-contract=off
// (src/CMakeLists.txt); see batch_walk_avx2.cpp for why contract-off is
// load-bearing. Callers must gate on util::simd::dispatch_width().
#include "core/batch_walk.hpp"

namespace ddm::core::detail {

void subset_walk_avx512(const double* deltas, std::size_t sz, std::size_t count,
                        std::uint32_t exponent, BatchWorkspace& ws) {
  subset_walk_pack<util::simd::Pack<8>>(deltas, sz, count, exponent, ws);
}

}  // namespace ddm::core::detail
