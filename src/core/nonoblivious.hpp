// nonoblivious.hpp — winning probabilities of single-threshold protocols
// (Section 5, Theorem 5.1).
//
// A deterministic single-threshold protocol has thresholds a_1..a_n; player i
// picks bin 0 iff x_i <= a_i. Conditioned on the decision vector b, the
// inputs of 0-players are U[0, a_i] and of 1-players U[a_i, 1], so the two
// no-overflow probabilities come from Lemma 2.4 and Lemma 2.7. Theorem 5.1
// folds P(y = b) = Π_{b_i=0} a_i · Π_{b_i=1} (1 − a_i) into the brackets:
//
//  P_A(t) = Σ_b  [ (1/(n−|b|)!) Σ_{I ⊆ zeros(b), Σa_l < t} (−1)^{|I|}(t − Σ_{l∈I} a_l)^{n−|b|} ]
//              · [ Π_{l∈ones(b)} (1−a_l)
//                  − (1/|b|!) Σ_{I ⊆ ones(b), |b|−t−|I|+Σa_l > 0} (−1)^{|I|}(|b|−t−|I|+Σ_{l∈I}a_l)^{|b|} ]
//
// The general evaluator runs in O(3^n) exact arithmetic; the symmetric
// special case (all a_i = β, Section 5.2) collapses to O(n²) terms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rational.hpp"
#include "util/resilience.hpp"

namespace ddm::core {

/// Theorem 5.1 for arbitrary thresholds a_i ∈ [0, 1]. Exact; throws
/// std::invalid_argument for n > 16 (use the symmetric version or the
/// double engine for larger systems).
[[nodiscard]] util::Rational threshold_winning_probability(std::span<const util::Rational> a,
                                                           const util::Rational& t);

/// Double-precision Theorem 5.1 for arbitrary thresholds (same O(3^n) sum).
[[nodiscard]] double threshold_winning_probability(std::span<const double> a, double t);

/// Points per parallel chunk of threshold_winning_probability_batch. One
/// amortized Gray-code subset walk serves a whole run of same-size points
/// inside a chunk, and fault-injection directives address chunks by ordinal
/// floor(first_point_index / kThresholdBatchBlock).
inline constexpr std::size_t kThresholdBatchBlock = 16;

/// Evaluates threshold_winning_probability(points[p], t) for every p, fanning
/// blocks of kThresholdBatchBlock points out across the global thread pool
/// (util::parallel_for). Within a block, each run of equal-size points shares
/// ONE reflected-Gray-code subset walk per decision vector: the flip-bit /
/// sign / subset bookkeeping is hoisted into per-subset state and only the
/// per-point clamped-power + Kahan-accumulate arithmetic remains in the inner
/// loop (structure-of-arrays, written to auto-vectorize). Per point the
/// floating-point op sequence is exactly the serial evaluator's, so values[p]
/// is bitwise equal to a single-point call — neither blocking nor parallelism
/// ever changes results. Used by grid sweeps (`ddm_cli sweep`) and the probe
/// batches of `maximize_thresholds`. Validates all points up front in index
/// order with the single-point evaluator's messages.
/// `control` (util/resilience.hpp) is polled at block boundaries: a fired
/// deadline or cancellation surfaces as ddm::DeadlineExceeded /
/// ddm::Cancelled with the completed-block count. The default runs to
/// completion at zero polling cost.
[[nodiscard]] std::vector<double> threshold_winning_probability_batch(
    std::span<const std::vector<double>> points, double t,
    const util::RunControl& control = {});

/// Symmetric Theorem 5.1: all thresholds equal β; O(n²) exact terms
///   P(β) = Σ_k C(n,k) · B0_{n−k}(β) · B1_k(β).
[[nodiscard]] util::Rational symmetric_threshold_winning_probability(std::uint32_t n,
                                                                     const util::Rational& beta,
                                                                     const util::Rational& t);
[[nodiscard]] double symmetric_threshold_winning_probability(std::uint32_t n, double beta,
                                                             double t);

/// The "zeros" bracket for m players below a common threshold β:
///   B0_m(β) = (1/m!) Σ_{l=0..m, t−lβ>0} (−1)^l C(m,l) (t − lβ)^m.
/// Equals a_m^m · P(Σ of m U[0,β] <= t) with the β^m factor folded in.
[[nodiscard]] util::Rational symmetric_zero_bracket(std::uint32_t m, const util::Rational& beta,
                                                    const util::Rational& t);

/// The "ones" bracket for k players above a common threshold β:
///   B1_k(β) = (1−β)^k − (1/k!) Σ_{l=0..k, k−t−l+lβ>0} (−1)^l C(k,l) (k−t−l+lβ)^k.
[[nodiscard]] util::Rational symmetric_one_bracket(std::uint32_t k, const util::Rational& beta,
                                                   const util::Rational& t);

}  // namespace ddm::core
