// batch_walk.hpp — internal detail header for the batch kernel's amortized
// Gray-code subset walk (core/nonoblivious.cpp), shared with the
// SIMD-specialized translation units (batch_walk_avx2.cpp /
// batch_walk_avx512.cpp).
//
// The walk is generic over a util::simd::Pack width W. Lanes run ACROSS
// POINTS of the amortized run, never across subsets: every per-point
// floating-point op sequence is exactly the serial bracket's (one Neumaier
// base update, one clamp, one binary-exponentiation power, one signed
// Neumaier accumulate per subset), so each lane's result is bitwise
// identical to the scalar kernel for every width — the contract is KEPT,
// not versioned. The three ingredients (derivations in
// docs/performance.md §1.4 and §4):
//
//   1. element-wise pack add/sub/mul round to nearest per lane, exactly
//      like the corresponding scalar op (no FMA anywhere: the packs have
//      no fused ops and the wide TUs compile with -ffp-contract=off);
//   2. the Neumaier compensation branch becomes a per-lane select of the
//      SAME two expressions the scalar ternary chooses between, and the
//      infeasibility clamp produces the literal +0.0 bit pattern
//      (Pack::clamp_positive), preserving the ±0.0-Kahan no-op argument;
//   3. the count % W trailing points run the pinned scalar tail path —
//      walk_step<Pack<1>> — which IS the pre-SIMD loop body.
//
// The templates sit in an anonymous namespace ON PURPOSE: each translation
// unit (baseline, -mavx2, -mavx512f) must get its OWN internal-linkage
// instantiations. With external linkage the linker would merge e.g. the
// Pack<1> tail across TUs and could keep the AVX-compiled copy, silently
// executing AVX instructions on the scalar dispatch path and crashing
// pre-AVX hosts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "combinat/subsets.hpp"
#include "util/simd.hpp"

namespace ddm::core::detail {

// Structure-of-arrays scratch for one amortized run; one instance per chunk,
// reused across the chunk's runs and decision vectors.
struct BatchWorkspace {
  std::vector<double> coords;  // transposed run coordinates, coords[i·P + p]
  std::vector<double> deltas;  // per-member base increments for the current walk
  std::vector<double> rs, rc;  // running-base Kahan state (sum, compensation)
  std::vector<double> ss, sc;  // bracket-accumulator Kahan state
  std::vector<double> prod;    // ones-bracket Π (1 − a_l)
  std::vector<double> zres;    // zeros-bracket value per point
  std::vector<double> total;
};

#if defined(DDM_SIMD_COMPILED_AVX2)
/// subset_walk_pack<Pack<4>>, instantiated in batch_walk_avx2.cpp (compiled
/// with -mavx2 -ffp-contract=off). Call only when dispatch_width() says the
/// host executes AVX2.
void subset_walk_avx2(const double* deltas, std::size_t sz, std::size_t count,
                      std::uint32_t exponent, BatchWorkspace& ws);
#endif
#if defined(DDM_SIMD_COMPILED_AVX512)
/// subset_walk_pack<Pack<8>>, instantiated in batch_walk_avx512.cpp
/// (compiled with -mavx512f -ffp-contract=off).
void subset_walk_avx512(const double* deltas, std::size_t sz, std::size_t count,
                        std::uint32_t exponent, BatchWorkspace& ws);
#endif

namespace {

/// One subset step for the W points starting at `p`: Neumaier base advance,
/// clamp, base^exponent in pow_uint's multiply order, signed Neumaier
/// accumulate. With P = Pack<1> this is literally the serial per-point
/// update (the pinned scalar tail path).
template <class P>
inline void walk_step(const double* row, std::size_t p, bool entering, bool negative,
                      std::uint32_t exponent, double* rs, double* rc, double* ss,
                      double* sc) {
  // Advance the running base (Neumaier update) and clamp. The clamp must be
  // the literal +0.0 (never −0.0) so the power phase raises an exact ±0.0
  // for infeasible points; both select operands match the scalar ternary's.
  const P row_p = P::load(row + p);
  const P term = entering ? row_p : -row_p;
  const P rsv = P::load(rs + p);
  P rcv = P::load(rc + p);
  const P next = rsv + term;
  rcv = rcv + P::select_abs_ge(rsv, term, (rsv - next) + term, (term - next) + rsv);
  next.store(rs + p);
  rcv.store(rc + p);
  const P base = P::clamp_positive(next + rcv);
  // base^exponent, replicating pow_uint's multiply order (the final squaring
  // never feeds the result and is skipped).
  P pw = P::broadcast(1.0);
  P sq = base;
  for (std::uint32_t e = exponent; e != 0; e >>= 1) {
    if (e & 1u) pw = pw * sq;
    if (e > 1u) sq = sq * sq;
  }
  // Signed Neumaier accumulate.
  const P acc_term = negative ? -pw : pw;
  const P ssv = P::load(ss + p);
  P scv = P::load(sc + p);
  const P acc_next = ssv + acc_term;
  scv = scv + P::select_abs_ge(ssv, acc_term, (ssv - acc_next) + acc_term,
                               (acc_term - acc_next) + ssv);
  acc_next.store(ss + p);
  scv.store(sc + p);
}

/// One reflected-Gray subset walk over `sz` members, shared by a run of
/// `count` points, W lanes at a time with a scalar tail. `deltas` is an
/// sz × count matrix of per-point running-base increments: entering the
/// subset adds +delta, leaving adds −delta (for the zeros bracket
/// delta = −a_l, for the ones bracket delta = a_l − 1; IEEE negation is
/// exact and x − y = −(y − x) under round-to-nearest, so this matches the
/// serial brackets' two-sided updates bitwise). Infeasible subsets
/// (base <= 0), which the serial code skips with a branch, contribute a
/// clamped ±0.0 term instead; adding ±0.0 leaves a Kahan accumulator
/// bitwise unchanged because neither its sum nor its compensation can ever
/// be −0.0 (derivation in docs/performance.md).
template <class P>
void subset_walk_pack(const double* deltas, std::size_t sz, std::size_t count,
                      std::uint32_t exponent, BatchWorkspace& ws) {
  double* rs = ws.rs.data();
  double* rc = ws.rc.data();
  double* ss = ws.ss.data();
  double* sc = ws.sc.data();
  constexpr std::size_t W = P::width;
  const std::size_t vec = count - count % W;
  const std::uint64_t limit = std::uint64_t{1} << sz;
  std::uint64_t mask = 0;
  for (std::uint64_t i = 1; i < limit; ++i) {
    const std::uint32_t j = combinat::gray_flip_bit(i);
    const std::uint64_t bit = std::uint64_t{1} << j;
    mask ^= bit;
    const bool entering = (mask & bit) != 0;
    const bool negative = combinat::gray_parity_odd(i);
    const double* row = deltas + j * count;
    for (std::size_t p = 0; p < vec; p += W) {
      walk_step<P>(row, p, entering, negative, exponent, rs, rc, ss, sc);
    }
    for (std::size_t p = vec; p < count; ++p) {
      walk_step<util::simd::Pack<1>>(row, p, entering, negative, exponent, rs, rc, ss, sc);
    }
  }
}

}  // namespace

}  // namespace ddm::core::detail
