#include "core/randomized_rules.hpp"

#include <cmath>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "prob/uniform_sum.hpp"

namespace ddm::core {

using util::Rational;

StepRule::StepRule(std::vector<Step> steps) : steps_(std::move(steps)) {
  if (steps_.empty()) throw std::invalid_argument("StepRule: need >= 1 cell");
  Rational previous{0};
  for (const Step& step : steps_) {
    if (step.hi <= previous) {
      throw std::invalid_argument("StepRule: cell endpoints must be strictly increasing");
    }
    if (step.p0 < Rational{0} || step.p0 > Rational{1}) {
      throw std::invalid_argument("StepRule: cell probabilities must lie in [0, 1]");
    }
    previous = step.hi;
  }
  if (steps_.back().hi != Rational{1}) {
    throw std::invalid_argument("StepRule: cells must cover [0, 1] exactly");
  }
}

StepRule StepRule::oblivious(Rational p0) {
  return StepRule{{Step{Rational{1}, std::move(p0)}}};
}

StepRule StepRule::threshold(const Rational& a) {
  if (a < Rational{0} || a > Rational{1}) {
    throw std::invalid_argument("StepRule::threshold: a outside [0, 1]");
  }
  if (a.is_zero()) return StepRule{{Step{Rational{1}, Rational{0}}}};
  if (a == Rational{1}) return StepRule{{Step{Rational{1}, Rational{1}}}};
  return StepRule{{Step{a, Rational{1}}, Step{Rational{1}, Rational{0}}}};
}

StepRule StepRule::uniform_grid(std::span<const Rational> probabilities) {
  if (probabilities.empty()) throw std::invalid_argument("StepRule::uniform_grid: no cells");
  std::vector<Step> steps;
  const auto m = static_cast<std::int64_t>(probabilities.size());
  for (std::int64_t c = 0; c < m; ++c) {
    steps.push_back(Step{Rational{c + 1, m}, probabilities[static_cast<std::size_t>(c)]});
  }
  return StepRule{std::move(steps)};
}

Rational StepRule::p0_at(const Rational& x) const {
  if (x < Rational{0} || x > Rational{1}) {
    throw std::out_of_range("StepRule::p0_at: x outside [0, 1]");
  }
  for (const Step& step : steps_) {
    if (x <= step.hi) return step.p0;
  }
  return steps_.back().p0;
}

Rational StepRule::marginal_p0() const {
  Rational total{0};
  Rational previous{0};
  for (const Step& step : steps_) {
    total += (step.hi - previous) * step.p0;
    previous = step.hi;
  }
  return total;
}

std::string StepRule::to_string() const {
  std::ostringstream oss;
  Rational previous{0};
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << "p0=" << steps_[i].p0 << " on (" << previous << ", " << steps_[i].hi << "]";
    previous = steps_[i].hi;
  }
  return oss.str();
}

namespace {

// Shared odometer core for the exact and double evaluators.
struct CellChoice {
  Rational lo;
  Rational width;
  Rational weight_bin0;  // width * p0
  Rational weight_bin1;  // width * (1 - p0)
};

std::vector<std::vector<CellChoice>> build_cells(std::span<const StepRule> rules) {
  std::vector<std::vector<CellChoice>> cells;
  cells.reserve(rules.size());
  for (const StepRule& rule : rules) {
    std::vector<CellChoice> player_cells;
    Rational previous{0};
    for (const StepRule::Step& step : rule.steps()) {
      const Rational width = step.hi - previous;
      player_cells.push_back(CellChoice{previous, width, width * step.p0,
                                        width * (Rational{1} - step.p0)});
      previous = step.hi;
    }
    cells.push_back(std::move(player_cells));
  }
  return cells;
}

}  // namespace

Rational step_rules_winning_probability(std::span<const StepRule> rules, const Rational& t) {
  if (rules.empty()) {
    throw std::invalid_argument("step_rules_winning_probability: need >= 1 player");
  }
  if (t.signum() <= 0) return Rational{0};
  const std::size_t n = rules.size();
  const auto cells = build_cells(rules);

  std::size_t combos = 1;
  for (const auto& player_cells : cells) {
    combos *= 2 * player_cells.size();
    if (combos > (std::size_t{1} << 24)) {
      throw std::invalid_argument("step_rules_winning_probability: state space too large");
    }
  }

  // Odometer over (cell, decision) per player: index = 2*cell + decision.
  std::vector<std::size_t> choice(n, 0);
  Rational total{0};
  std::vector<Rational> widths0;
  std::vector<Rational> widths1;
  while (true) {
    Rational weight{1};
    widths0.clear();
    widths1.clear();
    Rational shift0{0};
    Rational shift1{0};
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cell_index = choice[i] / 2;
      const bool to_bin1 = (choice[i] % 2) != 0;
      const CellChoice& cell = cells[i][cell_index];
      if (to_bin1) {
        weight *= cell.weight_bin1;
        widths1.push_back(cell.width);
        shift1 += cell.lo;
      } else {
        weight *= cell.weight_bin0;
        widths0.push_back(cell.width);
        shift0 += cell.lo;
      }
      if (weight.is_zero()) break;
    }
    if (!weight.is_zero()) {
      const Rational f0 = prob::sum_uniform_cdf(widths0, t - shift0);
      if (!f0.is_zero()) {
        total += weight * f0 * prob::sum_uniform_cdf(widths1, t - shift1);
      }
    }
    std::size_t i = 0;
    while (i < n) {
      if (++choice[i] < 2 * cells[i].size()) break;
      choice[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return total;
}

double step_rules_winning_probability(std::span<const StepRule> rules, double t) {
  if (rules.empty()) {
    throw std::invalid_argument("step_rules_winning_probability: need >= 1 player");
  }
  if (t <= 0.0) return 0.0;
  const std::size_t n = rules.size();

  struct DCell {
    double lo, width, w0, w1;
  };
  std::vector<std::vector<DCell>> cells;
  cells.reserve(n);
  std::size_t combos = 1;
  for (const StepRule& rule : rules) {
    std::vector<DCell> player_cells;
    double previous = 0.0;
    for (const StepRule::Step& step : rule.steps()) {
      const double hi = step.hi.to_double();
      const double p0 = step.p0.to_double();
      const double width = hi - previous;
      player_cells.push_back(DCell{previous, width, width * p0, width * (1.0 - p0)});
      previous = hi;
    }
    combos *= 2 * player_cells.size();
    if (combos > (std::size_t{1} << 24)) {
      throw std::invalid_argument("step_rules_winning_probability: state space too large");
    }
    cells.push_back(std::move(player_cells));
  }

  std::vector<std::size_t> choice(n, 0);
  double total = 0.0;
  std::vector<double> widths0;
  std::vector<double> widths1;
  while (true) {
    double weight = 1.0;
    widths0.clear();
    widths1.clear();
    double shift0 = 0.0;
    double shift1 = 0.0;
    for (std::size_t i = 0; i < n && weight != 0.0; ++i) {
      const DCell& cell = cells[i][choice[i] / 2];
      if (choice[i] % 2) {
        weight *= cell.w1;
        widths1.push_back(cell.width);
        shift1 += cell.lo;
      } else {
        weight *= cell.w0;
        widths0.push_back(cell.width);
        shift0 += cell.lo;
      }
    }
    if (weight != 0.0) {
      const double f0 = prob::sum_uniform_cdf(widths0, t - shift0);
      if (f0 != 0.0) total += weight * f0 * prob::sum_uniform_cdf(widths1, t - shift1);
    }
    std::size_t i = 0;
    while (i < n) {
      if (++choice[i] < 2 * cells[i].size()) break;
      choice[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return total;
}


namespace {

// Shared recursion for the symmetric evaluators: enumerate type counts
// (k_1..k_{2m}) with sum n; the caller provides per-type weights, widths and
// shifts, and a terminal functor computing F0 * F1 for the accumulated
// multiset. Types are laid out as [cell0/bin0, cell0/bin1, cell1/bin0, ...].
struct SymmetricTypeInfo {
  double width = 0.0;
  double lo = 0.0;
  double weight = 0.0;  // width * p or width * (1 - p)
  bool to_bin1 = false;
};

}  // namespace

double symmetric_step_rule_winning_probability(std::uint32_t n, const StepRule& rule,
                                               double t) {
  if (n == 0) throw std::invalid_argument("symmetric_step_rule_winning_probability: n == 0");
  if (t <= 0.0) return 0.0;

  std::vector<SymmetricTypeInfo> types;
  double previous = 0.0;
  for (const StepRule::Step& step : rule.steps()) {
    const double hi = step.hi.to_double();
    const double p0 = step.p0.to_double();
    const double width = hi - previous;
    types.push_back(SymmetricTypeInfo{width, previous, width * p0, false});
    types.push_back(SymmetricTypeInfo{width, previous, width * (1.0 - p0), true});
    previous = hi;
  }

  std::vector<double> widths0;
  std::vector<double> widths1;
  widths0.reserve(n);
  widths1.reserve(n);
  double shift0 = 0.0;
  double shift1 = 0.0;
  double total = 0.0;

  // Recursive composition enumeration with incremental multinomial weight.
  const std::function<void(std::size_t, std::uint32_t, double)> recurse =
      [&](std::size_t type, std::uint32_t remaining, double weight) {
        if (weight == 0.0) return;
        if (type + 1 == types.size()) {
          // Last type takes everything that remains.
          const SymmetricTypeInfo& info = types[type];
          double w = weight;
          for (std::uint32_t c = 0; c < remaining; ++c) {
            w *= info.weight * static_cast<double>(remaining - c);
            w /= static_cast<double>(c + 1);
          }
          if (w == 0.0) return;
          const std::size_t size0 = widths0.size();
          const std::size_t size1 = widths1.size();
          for (std::uint32_t c = 0; c < remaining; ++c) {
            if (info.to_bin1) {
              widths1.push_back(info.width);
              shift1 += info.lo;
            } else {
              widths0.push_back(info.width);
              shift0 += info.lo;
            }
          }
          const double f0 = prob::sum_uniform_cdf(widths0, t - shift0);
          if (f0 != 0.0) total += w * f0 * prob::sum_uniform_cdf(widths1, t - shift1);
          while (widths0.size() > size0) {
            widths0.pop_back();
            shift0 -= info.lo;
          }
          while (widths1.size() > size1) {
            widths1.pop_back();
            shift1 -= info.lo;
          }
          return;
        }
        const SymmetricTypeInfo& info = types[type];
        // k copies of this type; weight picks up C(remaining, k) * w^k
        // incrementally: multiplying by (remaining - k + 1) / k * w.
        double w = weight;
        recurse(type + 1, remaining, w);  // k = 0
        std::uint32_t pushed = 0;
        for (std::uint32_t k = 1; k <= remaining; ++k) {
          w *= info.weight * static_cast<double>(remaining - k + 1) / static_cast<double>(k);
          if (w == 0.0) break;
          if (info.to_bin1) {
            widths1.push_back(info.width);
            shift1 += info.lo;
          } else {
            widths0.push_back(info.width);
            shift0 += info.lo;
          }
          ++pushed;
          recurse(type + 1, remaining - k, w);
        }
        // Undo exactly the pushes made for this type at this frame.
        for (std::uint32_t k = 0; k < pushed; ++k) {
          if (info.to_bin1) {
            widths1.pop_back();
            shift1 -= info.lo;
          } else {
            widths0.pop_back();
            shift0 -= info.lo;
          }
        }
      };
  recurse(0, n, 1.0);
  return total;
}

util::Rational symmetric_step_rule_winning_probability(std::uint32_t n, const StepRule& rule,
                                                       const util::Rational& t) {
  if (n == 0) throw std::invalid_argument("symmetric_step_rule_winning_probability: n == 0");
  if (t.signum() <= 0) return Rational{0};

  struct TypeInfo {
    Rational width;
    Rational lo;
    Rational weight;
    bool to_bin1;
  };
  std::vector<TypeInfo> types;
  Rational previous{0};
  for (const StepRule::Step& step : rule.steps()) {
    const Rational width = step.hi - previous;
    types.push_back(TypeInfo{width, previous, width * step.p0, false});
    types.push_back(TypeInfo{width, previous, width * (Rational{1} - step.p0), true});
    previous = step.hi;
  }

  std::vector<Rational> widths0;
  std::vector<Rational> widths1;
  Rational shift0{0};
  Rational shift1{0};
  Rational total{0};

  const std::function<void(std::size_t, std::uint32_t, const Rational&)> recurse =
      [&](std::size_t type, std::uint32_t remaining, const Rational& weight) {
        if (weight.is_zero()) return;
        const TypeInfo& info = types[type];
        if (type + 1 == types.size()) {
          Rational w = weight;
          for (std::uint32_t c = 0; c < remaining; ++c) {
            w *= info.weight * Rational{static_cast<std::int64_t>(remaining - c)} /
                 Rational{static_cast<std::int64_t>(c + 1)};
          }
          if (w.is_zero()) return;
          const std::size_t size0 = widths0.size();
          const std::size_t size1 = widths1.size();
          for (std::uint32_t c = 0; c < remaining; ++c) {
            if (info.to_bin1) {
              widths1.push_back(info.width);
              shift1 += info.lo;
            } else {
              widths0.push_back(info.width);
              shift0 += info.lo;
            }
          }
          const Rational f0 = prob::sum_uniform_cdf(widths0, t - shift0);
          if (!f0.is_zero()) total += w * f0 * prob::sum_uniform_cdf(widths1, t - shift1);
          while (widths0.size() > size0) {
            widths0.pop_back();
            shift0 -= info.lo;
          }
          while (widths1.size() > size1) {
            widths1.pop_back();
            shift1 -= info.lo;
          }
          return;
        }
        Rational w = weight;
        recurse(type + 1, remaining, w);
        std::uint32_t pushed = 0;
        for (std::uint32_t k = 1; k <= remaining; ++k) {
          w *= info.weight * Rational{static_cast<std::int64_t>(remaining - k + 1)} /
               Rational{static_cast<std::int64_t>(k)};
          if (w.is_zero()) break;
          if (info.to_bin1) {
            widths1.push_back(info.width);
            shift1 += info.lo;
          } else {
            widths0.push_back(info.width);
            shift0 += info.lo;
          }
          ++pushed;
          recurse(type + 1, remaining - k, w);
        }
        for (std::uint32_t k = 0; k < pushed; ++k) {
          if (info.to_bin1) {
            widths1.pop_back();
            shift1 -= info.lo;
          } else {
            widths0.pop_back();
            shift0 -= info.lo;
          }
        }
      };
  recurse(0, n, Rational{1});
  return total;
}

StepRuleSearchResult maximize_symmetric_step_rule(std::uint32_t n, double t,
                                                  std::uint32_t cells,
                                                  std::vector<double> start,
                                                  double initial_step, double tolerance,
                                                  std::uint32_t max_evaluations) {
  if (n == 0 || cells == 0) {
    throw std::invalid_argument("maximize_symmetric_step_rule: n and cells must be >= 1");
  }
  if (start.size() != cells) {
    throw std::invalid_argument("maximize_symmetric_step_rule: start size != cells");
  }
  if (initial_step <= 0.0 || tolerance <= 0.0) {
    throw std::invalid_argument("maximize_symmetric_step_rule: bad step/tolerance");
  }
  for (double& p : start) p = std::clamp(p, 0.0, 1.0);

  // Objective: symmetric profile of uniform-grid step rules with the given
  // per-cell probabilities (rounded to rationals with denominator 10^9 so the
  // StepRule invariants hold exactly).
  const auto evaluate = [n, t, cells](const std::vector<double>& probabilities) {
    std::vector<Rational> p;
    p.reserve(cells);
    for (const double v : probabilities) {
      p.emplace_back(static_cast<std::int64_t>(std::llround(v * 1e9)), 1000000000);
    }
    return symmetric_step_rule_winning_probability(n, StepRule::uniform_grid(p), t);
  };

  StepRuleSearchResult result;
  result.probabilities = std::move(start);
  result.value = evaluate(result.probabilities);
  result.evaluations = 1;
  double step = initial_step;
  while (step >= tolerance && result.evaluations < max_evaluations) {
    bool improved = false;
    for (std::size_t c = 0; c < cells; ++c) {
      for (const double direction : {+1.0, -1.0}) {
        const double original = result.probabilities[c];
        const double candidate = std::clamp(original + direction * step, 0.0, 1.0);
        if (candidate == original) continue;
        result.probabilities[c] = candidate;
        const double value = evaluate(result.probabilities);
        ++result.evaluations;
        if (value > result.value) {
          result.value = value;
          improved = true;
        } else {
          result.probabilities[c] = original;
        }
        if (result.evaluations >= max_evaluations) break;
      }
      if (result.evaluations >= max_evaluations) break;
    }
    if (!improved) step *= 0.5;
  }
  return result;
}

StepRuleProtocol::StepRuleProtocol(std::vector<StepRule> rules) : rules_(std::move(rules)) {
  if (rules_.empty()) throw std::invalid_argument("StepRuleProtocol: need >= 1 player");
  his_.reserve(rules_.size());
  p0s_.reserve(rules_.size());
  for (const StepRule& rule : rules_) {
    std::vector<double> his;
    std::vector<double> p0s;
    for (const StepRule::Step& step : rule.steps()) {
      his.push_back(step.hi.to_double());
      p0s.push_back(step.p0.to_double());
    }
    his_.push_back(std::move(his));
    p0s_.push_back(std::move(p0s));
  }
}

int StepRuleProtocol::decide(std::size_t player, double input, prob::Rng& rng) const {
  if (player >= rules_.size()) throw std::out_of_range("StepRuleProtocol: bad player");
  const std::vector<double>& his = his_[player];
  std::size_t cell = 0;
  while (cell + 1 < his.size() && input > his[cell]) ++cell;
  return rng.bernoulli(p0s_[player][cell]) ? kBin0 : kBin1;
}

std::string StepRuleProtocol::name() const {
  std::ostringstream oss;
  oss << "step-rules(";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i != 0) oss << "; ";
    oss << rules_[i].to_string();
  }
  oss << ")";
  return oss.str();
}

}  // namespace ddm::core
