// deviating.hpp — worst-case analysis under k adversarially deviating players.
//
// "Consensus in Equilibrium" (PAPERS.md) asks how a protocol's guarantee
// degrades when some players stop following it. This module answers that for
// the paper's symmetric threshold protocols: n players with x_i ~ U[0, 1],
// of which k deviate. A follower drops into bin 0 iff x_i <= beta; a
// deviator ignores its input and picks a bin adversarially (obliviously —
// the choice may not depend on the realized inputs, matching the oblivious
// adversary of Section 4). By symmetry the adversary's strategy space
// collapses to j, the number of deviators sent to bin 0, and the worst case
// is the minimum over j in {0..k}.
//
// For fixed j, conditioning on the number m of followers in bin 0:
//
//   P_j = Σ_m C(n−k, m) β^m (1−β)^{n−k−m}
//           · P(Σ_m U[0,β] + Σ_j U[0,1] <= t)                      (bin 0)
//           · P(Σ_{n−k−m} U[β,1] + Σ_{k−j} U[0,1] <= t)            (bin 1)
//
// both factors via Lemma 2.4 (prob/uniform_sum.hpp), the bin-1 load
// recentered by its (n−k−m)·β shift. Exact Rational; the inclusion-exclusion
// CDFs are O(2^n), so n is capped at kDeviatingMaxExactN (the heterogeneous
// module's cap) — the Monte Carlo cross-check below covers larger n.
//
// With k = 0 this reduces to Theorem 5.1 exactly; with β at the homogeneous
// optimum it measures the protocol's robustness margin.
#pragma once

#include <cstdint>
#include <vector>

#include "prob/rng.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// Largest n the exact deviating analysis accepts (the conditional CDFs are
/// O(2^n) inclusion-exclusion sums — the same economics as
/// core/heterogeneous.cpp, and the same cap).
inline constexpr std::uint32_t kDeviatingMaxExactN = 14;

/// P(win) of the symmetric threshold-β protocol when exactly j of the k
/// deviators choose bin 0 and the rest bin 1. Exact; throws ddm::Error when
/// n == 0, k >= n, j > k, β outside [0, 1], or n > kDeviatingMaxExactN.
[[nodiscard]] util::Rational deviating_threshold_winning_probability(
    std::uint32_t n, std::uint32_t deviators, std::uint32_t bin0_deviators,
    const util::Rational& beta, const util::Rational& t);

/// The adversarial worst case: min over j in {0..k} of the probability
/// above. Same validation and cap.
[[nodiscard]] util::Rational worst_case_deviating_winning_probability(
    std::uint32_t n, std::uint32_t deviators, const util::Rational& beta,
    const util::Rational& t);

/// Monte Carlo cross-check of the worst case: simulates the same model per
/// adversary strategy j (deviator bin choices fixed, follower inputs and
/// choices drawn) and returns the minimum estimate over j. Point streams are
/// keyed on `rng`'s current state; throws ddm::Error on zero trials or
/// invalid (n, k, beta).
struct DeviatingSimResult {
  double estimate = 0.0;        ///< min over j of the per-strategy estimates
  std::uint32_t worst_bin0 = 0; ///< the j attaining the minimum
  std::uint64_t trials = 0;     ///< trials per strategy
};
[[nodiscard]] DeviatingSimResult estimate_worst_case_deviating(std::uint32_t n,
                                                               std::uint32_t deviators,
                                                               double beta, double t,
                                                               std::uint64_t trials,
                                                               prob::Rng& rng);

}  // namespace ddm::core
