// oblivious.hpp — winning probabilities of oblivious protocols (Section 4).
//
// Theorem 4.1: for an oblivious protocol with probability vector α
// (α_i = P(player i picks bin 0)),
//
//   P_A(t) = Σ_{b ∈ {0,1}^n}  φ_t(|b|) · Π_i α_i^(b_i),
//
// where φ_t(k) = IH_k(t) · IH_{n−k}(t) is the product of two Irwin–Hall CDFs
// (the no-overflow probabilities of the two bins given the split) and
// α^(b) selects α or 1−α according to the bit.
//
// Because φ_t depends on b only through |b|, the 2^n-term sum collapses to
//   P_A(t) = Σ_{k=0..n} φ_t(k) · P(|b| = k),
// with |b| Poisson-binomially distributed — an O(n²) dynamic program. The
// brute-force 2^n version is kept as a test oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "poly/multilinear.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// φ_t(k) = IH_k(t) · IH_{n−k}(t) for a system of n players (Theorem 4.1);
/// satisfies the symmetry φ_t(k) = φ_t(n−k) (Lemma 4.4).
[[nodiscard]] util::Rational phi(std::uint32_t n, std::uint32_t k, const util::Rational& t);
[[nodiscard]] double phi_double(std::uint32_t n, std::uint32_t k, double t);

/// Poisson-binomial pmf of the number of 1-decisions: entry k is
/// P(|b| = k) when player i picks bin 1 with probability 1 − α_i.
[[nodiscard]] std::vector<util::Rational> ones_count_distribution(
    std::span<const util::Rational> alpha);

/// Theorem 4.1 via the Poisson-binomial collapse (O(n²) exact arithmetic).
/// α_i = P(player i picks bin 0), each in [0,1]; t > 0.
[[nodiscard]] util::Rational oblivious_winning_probability(std::span<const util::Rational> alpha,
                                                           const util::Rational& t);

/// Theorem 4.1 summed literally over all 2^n decision vectors — the test
/// oracle. Throws std::invalid_argument for n > 25.
[[nodiscard]] util::Rational oblivious_winning_probability_bruteforce(
    std::span<const util::Rational> alpha, const util::Rational& t);

/// Fast double evaluation of Theorem 4.1 (Poisson-binomial collapse).
[[nodiscard]] double oblivious_winning_probability(std::span<const double> alpha, double t);

/// Theorem 4.1 as a symbolic object: the winning probability as an exact
/// MULTILINEAR polynomial in the probability vector α (α_i = P(bin 0)).
/// Evaluation reproduces oblivious_winning_probability; partial derivatives
/// are Corollary 4.2's optimality conditions. Throws std::invalid_argument
/// for n > 12 (the expansion has up to 2^n terms).
[[nodiscard]] poly::MultilinearPolynomial oblivious_winning_polynomial(
    std::uint32_t n, const util::Rational& t);

/// Theorem 4.3: the winning probability of the optimal oblivious protocol
/// α = (1/2, ..., 1/2):  P = 2^{-n} Σ_k C(n,k) φ_t(k).
[[nodiscard]] util::Rational optimal_oblivious_winning_probability(std::uint32_t n,
                                                                   const util::Rational& t);
[[nodiscard]] double optimal_oblivious_winning_probability_double(std::uint32_t n, double t);

}  // namespace ddm::core
