#include "core/interval_rules.hpp"

#include <sstream>
#include <stdexcept>

#include "prob/uniform_sum.hpp"

namespace ddm::core {

using util::Rational;

IntervalRule::IntervalRule(std::vector<UnitInterval> bin0_intervals)
    : bin0_(std::move(bin0_intervals)) {
  const Rational zero{0};
  const Rational one{1};
  Rational previous_hi{-1};
  std::vector<UnitInterval> kept;
  kept.reserve(bin0_.size());
  for (const UnitInterval& interval : bin0_) {
    if (interval.lo < zero || interval.hi > one || interval.lo > interval.hi) {
      throw std::invalid_argument("IntervalRule: intervals must satisfy 0 <= lo <= hi <= 1");
    }
    if (interval.lo < previous_hi) {
      throw std::invalid_argument("IntervalRule: intervals must be sorted and disjoint");
    }
    previous_hi = interval.hi;
    if (interval.lo < interval.hi) kept.push_back(interval);  // drop measure-zero intervals
  }
  bin0_ = std::move(kept);
}

IntervalRule IntervalRule::threshold(Rational a) {
  if (a < Rational{0} || a > Rational{1}) {
    throw std::invalid_argument("IntervalRule::threshold: a outside [0, 1]");
  }
  return IntervalRule{{UnitInterval{Rational{0}, std::move(a)}}};
}

IntervalRule IntervalRule::two_interval(Rational a, Rational b, Rational c) {
  return IntervalRule{{UnitInterval{Rational{0}, std::move(a)},
                       UnitInterval{std::move(b), std::move(c)}}};
}

IntervalRule IntervalRule::constant(int bin) {
  if (bin == kBin0) return IntervalRule{{UnitInterval{Rational{0}, Rational{1}}}};
  if (bin == kBin1) return IntervalRule{{}};
  throw std::invalid_argument("IntervalRule::constant: bad bin");
}

int IntervalRule::decide(const Rational& x) const {
  for (const UnitInterval& interval : bin0_) {
    if (x >= interval.lo && x <= interval.hi) return kBin0;
  }
  return kBin1;
}

int IntervalRule::decide(double x) const {
  for (const UnitInterval& interval : bin0_) {
    if (x >= interval.lo.to_double() && x <= interval.hi.to_double()) return kBin0;
  }
  return kBin1;
}

Rational IntervalRule::bin0_measure() const {
  Rational total{0};
  for (const UnitInterval& interval : bin0_) total += interval.hi - interval.lo;
  return total;
}

std::vector<IntervalRule::Cell> IntervalRule::cells() const {
  std::vector<Cell> result;
  Rational cursor{0};
  for (const UnitInterval& interval : bin0_) {
    if (cursor < interval.lo) {
      result.push_back(Cell{UnitInterval{cursor, interval.lo}, kBin1});
    }
    result.push_back(Cell{interval, kBin0});
    cursor = interval.hi;
  }
  if (cursor < Rational{1}) {
    result.push_back(Cell{UnitInterval{cursor, Rational{1}}, kBin1});
  }
  return result;
}

std::string IntervalRule::to_string() const {
  std::ostringstream oss;
  oss << "bin0 on ";
  if (bin0_.empty()) oss << "{}";
  for (std::size_t i = 0; i < bin0_.size(); ++i) {
    if (i != 0) oss << " u ";
    oss << "[" << bin0_[i].lo << ", " << bin0_[i].hi << "]";
  }
  return oss.str();
}

Rational interval_rules_winning_probability(std::span<const IntervalRule> rules,
                                            const Rational& t) {
  if (rules.empty()) {
    throw std::invalid_argument("interval_rules_winning_probability: need >= 1 player");
  }
  if (t.signum() <= 0) return Rational{0};
  const std::size_t n = rules.size();

  std::vector<std::vector<IntervalRule::Cell>> cells;
  cells.reserve(n);
  std::size_t assignments = 1;
  for (const IntervalRule& rule : rules) {
    cells.push_back(rule.cells());
    if (cells.back().empty()) {
      throw std::logic_error("interval_rules_winning_probability: rule with no cells");
    }
    assignments *= cells.back().size();
    if (assignments > (std::size_t{1} << 24)) {
      throw std::invalid_argument(
          "interval_rules_winning_probability: too many cell assignments");
    }
  }

  // Odometer over one cell choice per player.
  std::vector<std::size_t> choice(n, 0);
  Rational total{0};
  std::vector<Rational> widths0;
  std::vector<Rational> widths1;
  while (true) {
    Rational weight{1};
    widths0.clear();
    widths1.clear();
    Rational shift0{0};
    Rational shift1{0};
    for (std::size_t i = 0; i < n; ++i) {
      const IntervalRule::Cell& cell = cells[i][choice[i]];
      const Rational width = cell.interval.hi - cell.interval.lo;
      weight *= width;
      if (cell.bin == kBin0) {
        widths0.push_back(width);
        shift0 += cell.interval.lo;
      } else {
        widths1.push_back(width);
        shift1 += cell.interval.lo;
      }
    }
    if (!weight.is_zero()) {
      // Conditional no-overflow probabilities via Lemma 2.4 after recentering
      // each shifted uniform U[lo, hi] = lo + U[0, hi - lo].
      const Rational f0 = prob::sum_uniform_cdf(widths0, t - shift0);
      if (!f0.is_zero()) {
        const Rational f1 = prob::sum_uniform_cdf(widths1, t - shift1);
        total += weight * f0 * f1;
      }
    }
    // Advance the odometer.
    std::size_t i = 0;
    while (i < n) {
      if (++choice[i] < cells[i].size()) break;
      choice[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return total;
}

IntervalRuleProtocol::IntervalRuleProtocol(std::vector<IntervalRule> rules)
    : rules_(std::move(rules)) {
  if (rules_.empty()) throw std::invalid_argument("IntervalRuleProtocol: need >= 1 player");
}

int IntervalRuleProtocol::decide(std::size_t player, double input, prob::Rng& /*rng*/) const {
  if (player >= rules_.size()) throw std::out_of_range("IntervalRuleProtocol: bad player");
  return rules_[player].decide(input);
}

std::string IntervalRuleProtocol::name() const {
  std::ostringstream oss;
  oss << "interval-rules(";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i != 0) oss << "; ";
    oss << rules_[i].to_string();
  }
  oss << ")";
  return oss.str();
}

}  // namespace ddm::core
