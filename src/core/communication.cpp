#include "core/communication.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ddm::core {

VisibilityPattern VisibilityPattern::none(std::size_t n) {
  if (n == 0) throw std::invalid_argument("VisibilityPattern: n == 0");
  std::vector<std::vector<std::size_t>> views(n);
  for (std::size_t i = 0; i < n; ++i) views[i] = {i};
  return VisibilityPattern{std::move(views)};
}

VisibilityPattern VisibilityPattern::full(std::size_t n) {
  if (n == 0) throw std::invalid_argument("VisibilityPattern: n == 0");
  std::vector<std::size_t> everyone(n);
  for (std::size_t i = 0; i < n; ++i) everyone[i] = i;
  return VisibilityPattern{std::vector<std::vector<std::size_t>>(n, everyone)};
}

VisibilityPattern VisibilityPattern::from_edges(
    std::size_t n, std::span<const std::pair<std::size_t, std::size_t>> edges) {
  if (n == 0) throw std::invalid_argument("VisibilityPattern: n == 0");
  std::vector<std::vector<std::size_t>> views(n);
  for (std::size_t i = 0; i < n; ++i) views[i] = {i};
  for (const auto& [from, to] : edges) {
    if (from >= n || to >= n) {
      throw std::invalid_argument("VisibilityPattern: edge endpoint out of range");
    }
    views[to].push_back(from);
  }
  for (auto& view : views) {
    std::sort(view.begin(), view.end());
    view.erase(std::unique(view.begin(), view.end()), view.end());
  }
  return VisibilityPattern{std::move(views)};
}

const std::vector<std::size_t>& VisibilityPattern::view(std::size_t i) const {
  if (i >= views_.size()) throw std::out_of_range("VisibilityPattern::view: bad player");
  return views_[i];
}

std::size_t VisibilityPattern::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& view : views_) total += view.size();
  return total - views_.size();
}

std::string VisibilityPattern::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (i != 0) oss << "; ";
    oss << "P" << i << " sees {";
    for (std::size_t k = 0; k < views_[i].size(); ++k) {
      if (k != 0) oss << ",";
      oss << views_[i][k];
    }
    oss << "}";
  }
  return oss.str();
}

WeightedThresholdProtocol::WeightedThresholdProtocol(VisibilityPattern pattern)
    : pattern_(std::move(pattern)),
      weights_(pattern_.size(), std::vector<double>(pattern_.size(), 0.0)),
      theta_(pattern_.size(), 0.5) {
  for (std::size_t i = 0; i < pattern_.size(); ++i) weights_[i][i] = 1.0;
}

void WeightedThresholdProtocol::set_weight(std::size_t i, std::size_t j, double w) {
  const auto& view = pattern_.view(i);
  if (!std::binary_search(view.begin(), view.end(), j)) {
    throw std::invalid_argument("WeightedThresholdProtocol: weight outside visibility");
  }
  weights_[i][j] = w;
}

void WeightedThresholdProtocol::set_threshold(std::size_t i, double theta) {
  theta_.at(i) = theta;
}

double WeightedThresholdProtocol::weight(std::size_t i, std::size_t j) const {
  if (i >= weights_.size() || j >= weights_.size()) {
    throw std::out_of_range("WeightedThresholdProtocol::weight");
  }
  return weights_[i][j];
}

int WeightedThresholdProtocol::decide(std::size_t i, std::span<const double> inputs) const {
  if (inputs.size() != size()) {
    throw std::invalid_argument("WeightedThresholdProtocol::decide: input size mismatch");
  }
  double sum = 0.0;
  for (const std::size_t j : pattern_.view(i)) sum += weights_[i][j] * inputs[j];
  return sum <= theta_.at(i) ? 0 : 1;
}

std::vector<double> WeightedThresholdProtocol::parameters() const {
  std::vector<double> params;
  for (std::size_t i = 0; i < size(); ++i) {
    for (const std::size_t j : pattern_.view(i)) params.push_back(weights_[i][j]);
  }
  params.insert(params.end(), theta_.begin(), theta_.end());
  return params;
}

void WeightedThresholdProtocol::set_parameters(std::span<const double> parameters) {
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    for (const std::size_t j : pattern_.view(i)) {
      if (cursor >= parameters.size()) {
        throw std::invalid_argument("WeightedThresholdProtocol: too few parameters");
      }
      weights_[i][j] = parameters[cursor++];
    }
  }
  for (std::size_t i = 0; i < size(); ++i) {
    if (cursor >= parameters.size()) {
      throw std::invalid_argument("WeightedThresholdProtocol: too few parameters");
    }
    theta_[i] = parameters[cursor++];
  }
  if (cursor != parameters.size()) {
    throw std::invalid_argument("WeightedThresholdProtocol: too many parameters");
  }
}

std::string WeightedThresholdProtocol::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < size(); ++i) {
    if (i != 0) oss << "; ";
    oss << "P" << i << ": ";
    bool first = true;
    for (const std::size_t j : pattern_.view(i)) {
      if (!first) oss << " + ";
      first = false;
      oss << weights_[i][j] << "*x" << j;
    }
    oss << " <= " << theta_[i];
  }
  return oss.str();
}

InputBank::InputBank(std::size_t n, std::size_t samples, prob::Rng& rng)
    : n_(n), count_(samples) {
  if (n == 0 || samples == 0) throw std::invalid_argument("InputBank: empty dimensions");
  data_.resize(n * samples);
  for (double& x : data_) x = rng.uniform();
}

std::span<const double> InputBank::sample(std::size_t s) const {
  if (s >= count_) throw std::out_of_range("InputBank::sample");
  return {data_.data() + s * n_, n_};
}

double InputBank::winning_fraction(const WeightedThresholdProtocol& protocol, double t) const {
  if (protocol.size() != n_) {
    throw std::invalid_argument("InputBank::winning_fraction: size mismatch");
  }
  std::size_t wins = 0;
  for (std::size_t s = 0; s < count_; ++s) {
    const std::span<const double> inputs = sample(s);
    double bin0 = 0.0;
    double bin1 = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (protocol.decide(i, inputs) == 0) {
        bin0 += inputs[i];
      } else {
        bin1 += inputs[i];
      }
    }
    if (bin0 <= t && bin1 <= t) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(count_);
}

CommunicationSearchResult optimize_weighted_threshold(WeightedThresholdProtocol start,
                                                      double t, const InputBank& bank,
                                                      double initial_step, double tolerance,
                                                      std::uint32_t max_evaluations) {
  if (initial_step <= 0.0 || tolerance <= 0.0) {
    throw std::invalid_argument("optimize_weighted_threshold: bad step/tolerance");
  }
  const double n = static_cast<double>(start.size());
  CommunicationSearchResult result{std::move(start), 0.0, 0};
  result.value = bank.winning_fraction(result.protocol, t);
  result.evaluations = 1;

  std::vector<double> params = result.protocol.parameters();
  const std::size_t weight_count = params.size() - result.protocol.size();
  double step = initial_step;
  WeightedThresholdProtocol candidate = result.protocol;
  while (step >= tolerance && result.evaluations < max_evaluations) {
    bool improved = false;
    for (std::size_t p = 0; p < params.size(); ++p) {
      const double lo = p < weight_count ? -2.0 : -1.0;
      const double hi = p < weight_count ? 2.0 : n;
      for (const double direction : {+1.0, -1.0}) {
        const double original = params[p];
        const double moved = std::clamp(original + direction * step, lo, hi);
        if (moved == original) continue;
        params[p] = moved;
        candidate.set_parameters(params);
        const double value = bank.winning_fraction(candidate, t);
        ++result.evaluations;
        if (value > result.value) {
          result.value = value;
          result.protocol = candidate;
          improved = true;
        } else {
          params[p] = original;
        }
        if (result.evaluations >= max_evaluations) break;
      }
      if (result.evaluations >= max_evaluations) break;
    }
    if (!improved) step *= 0.5;
  }
  return result;
}

}  // namespace ddm::core
