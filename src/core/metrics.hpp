// metrics.hpp — expected-overflow metrics (extension).
//
// The paper optimizes P(no overflow); the load-balancing motivation equally
// cares about HOW MUCH overflow occurs when it does. This module computes
//   E[(Σ_0 − t)^+ + (Σ_1 − t)^+]
// exactly for oblivious and symmetric-threshold protocols, by conditioning on
// the decision vector and integrating the conditional sum-of-uniforms CDFs
// symbolically (prob/cdf_poly). The two objectives need not agree on the
// optimal protocol — the ablation bench quantifies the divergence.
#pragma once

#include <cstdint>
#include <span>

#include "util/rational.hpp"

namespace ddm::core {

/// Expected total overflow of an oblivious protocol (α_i = P(bin 0)) with
/// unit input ranges. Exact; throws std::invalid_argument for n > 10.
[[nodiscard]] util::Rational expected_overflow_oblivious(std::span<const util::Rational> alpha,
                                                         const util::Rational& t);

/// Expected total overflow of the symmetric single-threshold protocol.
/// Exact; throws std::invalid_argument for n > 10 or β outside [0, 1].
[[nodiscard]] util::Rational expected_overflow_symmetric_threshold(std::uint32_t n,
                                                                   const util::Rational& beta,
                                                                   const util::Rational& t);

}  // namespace ddm::core
