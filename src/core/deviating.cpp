#include "core/deviating.hpp"

#include <string>

#include "combinat/binomial.hpp"
#include "prob/uniform_sum.hpp"
#include "util/status.hpp"

namespace ddm::core {

using util::Rational;

namespace {

void check_instance(std::uint32_t n, std::uint32_t deviators, const Rational& beta,
                    const char* what) {
  if (n == 0) throw Error(std::string(what) + ": need >= 1 player");
  if (deviators >= n) {
    throw Error(std::string(what) + ": deviators (" + std::to_string(deviators) +
                ") must be < n (" + std::to_string(n) + ")");
  }
  if (beta < Rational{0} || beta > Rational{1}) {
    throw Error(std::string(what) + ": beta outside [0, 1]");
  }
}

}  // namespace

Rational deviating_threshold_winning_probability(std::uint32_t n, std::uint32_t deviators,
                                                 std::uint32_t bin0_deviators,
                                                 const Rational& beta, const Rational& t) {
  const char* what = "deviating_threshold_winning_probability";
  check_instance(n, deviators, beta, what);
  if (bin0_deviators > deviators) {
    throw Error(std::string(what) + ": bin0 deviators (" + std::to_string(bin0_deviators) +
                ") must be <= deviators (" + std::to_string(deviators) + ")");
  }
  if (n > kDeviatingMaxExactN) {
    throw Error(std::string(what) + ": n too large for exact evaluation (n = " +
                std::to_string(n) + " > " + std::to_string(kDeviatingMaxExactN) + ")");
  }
  if (t.signum() <= 0) return Rational{0};

  const std::uint32_t followers = n - deviators;
  const std::uint32_t j = bin0_deviators;
  const Rational one_minus_beta = Rational{1} - beta;

  // Condition on m, the number of followers in bin 0 (each independently
  // with probability beta). Given m, bin 0 carries m inputs U[0, β] plus j
  // deviator inputs U[0, 1]; bin 1 carries the remaining followers' inputs
  // U[β, 1] (recentered by their β shift for Lemma 2.4) plus k − j deviator
  // inputs U[0, 1].
  Rational total{0};
  std::vector<Rational> widths0;
  std::vector<Rational> widths1;
  for (std::uint32_t m = 0; m <= followers; ++m) {
    const Rational weight = Rational{combinat::binomial(followers, m), util::BigInt{1}} *
                            beta.pow(m) * one_minus_beta.pow(followers - m);
    if (weight.is_zero()) continue;
    widths0.assign(m, beta);
    widths0.insert(widths0.end(), j, Rational{1});
    const Rational f0 = prob::sum_uniform_cdf(widths0, t);
    if (f0.is_zero()) continue;
    const std::uint32_t bin1_followers = followers - m;
    widths1.assign(bin1_followers, one_minus_beta);
    widths1.insert(widths1.end(), deviators - j, Rational{1});
    const Rational shift = beta * Rational{bin1_followers};
    total += weight * f0 * prob::sum_uniform_cdf(widths1, t - shift);
  }
  return total;
}

Rational worst_case_deviating_winning_probability(std::uint32_t n, std::uint32_t deviators,
                                                  const Rational& beta, const Rational& t) {
  check_instance(n, deviators, beta, "worst_case_deviating_winning_probability");
  Rational worst;
  bool first = true;
  for (std::uint32_t j = 0; j <= deviators; ++j) {
    const Rational value = deviating_threshold_winning_probability(n, deviators, j, beta, t);
    if (first || value < worst) {
      worst = value;
      first = false;
    }
  }
  return worst;
}

DeviatingSimResult estimate_worst_case_deviating(std::uint32_t n, std::uint32_t deviators,
                                                 double beta, double t, std::uint64_t trials,
                                                 prob::Rng& rng) {
  const char* what = "estimate_worst_case_deviating";
  check_instance(n, deviators, util::Rational::from_double(beta), what);
  if (trials == 0) throw Error(std::string(what) + ": zero trials");

  const std::uint32_t followers = n - deviators;
  DeviatingSimResult result;
  result.trials = trials;
  bool first = true;
  for (std::uint32_t j = 0; j <= deviators; ++j) {
    std::uint64_t wins = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      double load0 = 0.0;
      double load1 = 0.0;
      for (std::uint32_t d = 0; d < deviators; ++d) {
        const double x = rng.uniform(0.0, 1.0);
        if (d < j) {
          load0 += x;
        } else {
          load1 += x;
        }
      }
      for (std::uint32_t f = 0; f < followers; ++f) {
        const double x = rng.uniform(0.0, 1.0);
        if (x <= beta) {
          load0 += x;
        } else {
          load1 += x;
        }
      }
      if (load0 <= t && load1 <= t) ++wins;
    }
    const double estimate = static_cast<double>(wins) / static_cast<double>(trials);
    if (first || estimate < result.estimate) {
      result.estimate = estimate;
      result.worst_bin0 = j;
      first = false;
    }
  }
  return result;
}

}  // namespace ddm::core
