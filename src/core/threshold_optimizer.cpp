#include "core/threshold_optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/nonoblivious.hpp"

namespace ddm::core {

ThresholdSearchResult maximize_thresholds(std::vector<double> start, double t,
                                          double initial_step, double tolerance,
                                          std::uint32_t max_evaluations) {
  if (start.empty()) throw std::invalid_argument("maximize_thresholds: empty start");
  if (start.size() > 16) throw std::invalid_argument("maximize_thresholds: n too large");
  if (tolerance <= 0.0 || initial_step <= 0.0) {
    throw std::invalid_argument("maximize_thresholds: step/tolerance must be > 0");
  }
  for (double& a : start) a = std::clamp(a, 0.0, 1.0);

  ThresholdSearchResult result;
  result.thresholds = std::move(start);
  result.value = threshold_winning_probability(result.thresholds, t);
  result.evaluations = 1;
  double step = initial_step;

  while (step >= tolerance && result.evaluations < max_evaluations) {
    bool improved = false;
    for (std::size_t i = 0; i < result.thresholds.size(); ++i) {
      for (const double direction : {+1.0, -1.0}) {
        const double original = result.thresholds[i];
        const double candidate = std::clamp(original + direction * step, 0.0, 1.0);
        if (candidate == original) continue;
        result.thresholds[i] = candidate;
        const double value = threshold_winning_probability(result.thresholds, t);
        ++result.evaluations;
        if (value > result.value) {
          result.value = value;
          improved = true;
        } else {
          result.thresholds[i] = original;
        }
        if (result.evaluations >= max_evaluations) break;
      }
      if (result.evaluations >= max_evaluations) break;
    }
    if (!improved) step *= 0.5;
  }
  result.final_step = step;
  return result;
}

ThresholdSearchResult maximize_symmetric_threshold(std::uint32_t n, double t, double start,
                                                   double initial_step, double tolerance) {
  if (n == 0) throw std::invalid_argument("maximize_symmetric_threshold: n == 0");
  if (tolerance <= 0.0 || initial_step <= 0.0) {
    throw std::invalid_argument("maximize_symmetric_threshold: step/tolerance must be > 0");
  }
  double beta = std::clamp(start, 0.0, 1.0);
  double value = symmetric_threshold_winning_probability(n, beta, t);
  std::uint32_t evaluations = 1;
  double step = initial_step;
  while (step >= tolerance) {
    bool improved = false;
    for (const double direction : {+1.0, -1.0}) {
      const double candidate = std::clamp(beta + direction * step, 0.0, 1.0);
      if (candidate == beta) continue;
      const double candidate_value = symmetric_threshold_winning_probability(n, candidate, t);
      ++evaluations;
      if (candidate_value > value) {
        beta = candidate;
        value = candidate_value;
        improved = true;
        break;
      }
    }
    if (!improved) step *= 0.5;
  }
  ThresholdSearchResult result;
  result.thresholds.assign(n, beta);
  result.value = value;
  result.evaluations = evaluations;
  result.final_step = step;
  return result;
}

}  // namespace ddm::core
