#include "core/threshold_optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/nonoblivious.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace ddm::core {

namespace {

// Search metrics: probes evaluated, strictly-improving moves accepted, and
// step halvings (the "restart" of the compass step schedule when no probe
// improves). See docs/observability.md.
struct OptimizerMetrics {
  obs::Counter probes = obs::counter("optimizer.probes");
  obs::Counter accepts = obs::counter("optimizer.accepts");
  obs::Counter step_halvings = obs::counter("optimizer.step_halvings");

  static const OptimizerMetrics& get() {
    static const OptimizerMetrics metrics;
    return metrics;
  }
};

}  // namespace

ThresholdSearchResult maximize_thresholds(std::vector<double> start, double t,
                                          double initial_step, double tolerance,
                                          std::uint32_t max_evaluations) {
  return maximize_thresholds(
      std::move(start), t,
      [](const std::vector<std::vector<double>>& points, double capacity) {
        return threshold_winning_probability_batch(points, capacity);
      },
      initial_step, tolerance, max_evaluations);
}

ThresholdSearchResult maximize_thresholds(std::vector<double> start, double t,
                                          const BatchObjective& objective, double initial_step,
                                          double tolerance, std::uint32_t max_evaluations) {
  if (start.empty()) throw std::invalid_argument("maximize_thresholds: empty start");
  if (!objective) throw std::invalid_argument("maximize_thresholds: null objective");
  if (start.size() > 16) throw std::invalid_argument("maximize_thresholds: n too large");
  if (tolerance <= 0.0 || initial_step <= 0.0) {
    throw std::invalid_argument("maximize_thresholds: step/tolerance must be > 0");
  }
  for (double& a : start) a = std::clamp(a, 0.0, 1.0);
  DDM_SPAN("optimizer.search", {{"n", static_cast<std::int64_t>(start.size())}});
  const OptimizerMetrics& metrics = OptimizerMetrics::get();

  ThresholdSearchResult result;
  result.thresholds = std::move(start);
  // The batch objective on a singleton is bitwise equal to the single-point
  // kernel call this used to make (the batch kernel's pinned contract), so
  // routing the incumbent through the seam changes no result.
  result.value = objective({result.thresholds}, t).at(0);
  result.evaluations = 1;
  double step = initial_step;

  // Generating-set search: each iteration evaluates the (up to) 2n compass
  // probes around the incumbent concurrently on the shared pool, then applies
  // a deterministic acceptance rule — move to the best strictly-improving
  // probe (ties broken by the fixed probe order: axis 0 +, axis 0 −, axis 1
  // +, ...), halve the step when none improves. The probe list, the
  // acceptance decision, and the evaluation count are all independent of how
  // many workers evaluated the probes.
  struct Probe {
    std::size_t axis;
    double candidate;
    double value;
  };
  std::vector<Probe> probes;
  std::vector<std::vector<double>> probe_points;
  while (step >= tolerance && result.evaluations < max_evaluations) {
    probes.clear();
    for (std::size_t i = 0; i < result.thresholds.size(); ++i) {
      for (const double direction : {+1.0, -1.0}) {
        const double original = result.thresholds[i];
        const double candidate = std::clamp(original + direction * step, 0.0, 1.0);
        if (candidate != original) probes.push_back({i, candidate, 0.0});
      }
    }
    // Truncating to the remaining budget keeps the evaluation cap exact; the
    // surviving prefix is the same one the serial sweep would have tried.
    const std::size_t budget = max_evaluations - result.evaluations;
    if (probes.size() > budget) probes.resize(budget);
    if (probes.empty()) break;
    // One amortized batch call evaluates the whole compass star: all probe
    // points share the incumbent's size, so the batch kernel runs one
    // Gray-code subset walk per block of probes instead of 2n independent
    // kernel invocations — and each value is bitwise equal to the
    // single-point call the probe loop used to make.
    probe_points.resize(probes.size());
    for (std::size_t p = 0; p < probes.size(); ++p) {
      probe_points[p] = result.thresholds;
      probe_points[p][probes[p].axis] = probes[p].candidate;
    }
    const std::vector<double> probe_values = objective(probe_points, t);
    if (probe_values.size() != probes.size()) {
      throw std::invalid_argument("maximize_thresholds: objective returned wrong batch size");
    }
    for (std::size_t p = 0; p < probes.size(); ++p) probes[p].value = probe_values[p];
    result.evaluations += static_cast<std::uint32_t>(probes.size());
    metrics.probes.add(probes.size());
    const Probe* best = &probes[0];
    for (const Probe& probe : probes) {
      if (probe.value > best->value) best = &probe;
    }
    if (best->value > result.value) {
      result.thresholds[best->axis] = best->candidate;
      result.value = best->value;
      metrics.accepts.add();
    } else {
      step *= 0.5;
      metrics.step_halvings.add();
    }
  }
  result.final_step = step;
  return result;
}

ThresholdSearchResult maximize_symmetric_threshold(std::uint32_t n, double t, double start,
                                                   double initial_step, double tolerance) {
  if (n == 0) throw std::invalid_argument("maximize_symmetric_threshold: n == 0");
  if (tolerance <= 0.0 || initial_step <= 0.0) {
    throw std::invalid_argument("maximize_symmetric_threshold: step/tolerance must be > 0");
  }
  DDM_SPAN("optimizer.search", {{"n", static_cast<std::int64_t>(n)}, {"symmetric", 1}});
  const OptimizerMetrics& metrics = OptimizerMetrics::get();
  double beta = std::clamp(start, 0.0, 1.0);
  double value = symmetric_threshold_winning_probability(n, beta, t);
  std::uint32_t evaluations = 1;
  double step = initial_step;
  while (step >= tolerance) {
    bool improved = false;
    for (const double direction : {+1.0, -1.0}) {
      const double candidate = std::clamp(beta + direction * step, 0.0, 1.0);
      if (candidate == beta) continue;
      const double candidate_value = symmetric_threshold_winning_probability(n, candidate, t);
      ++evaluations;
      metrics.probes.add();
      if (candidate_value > value) {
        beta = candidate;
        value = candidate_value;
        improved = true;
        metrics.accepts.add();
        break;
      }
    }
    if (!improved) {
      step *= 0.5;
      metrics.step_halvings.add();
    }
  }
  ThresholdSearchResult result;
  result.thresholds.assign(n, beta);
  result.value = value;
  result.evaluations = evaluations;
  result.final_step = step;
  return result;
}

}  // namespace ddm::core
