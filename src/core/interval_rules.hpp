// interval_rules.hpp — exact winning probabilities for general deterministic
// decision rules (extension beyond the paper's single-threshold class).
//
// The paper's model (Section 3.1) allows ANY computable local rule; its
// analysis (Section 5) covers single thresholds. This module evaluates the
// winning probability EXACTLY for every deterministic rule whose bin-0
// acceptance set is a finite union of intervals — which is dense in all
// measurable rules. The method conditions on the "cell" (maximal interval on
// which the decision is constant) containing each player's input: within a
// cell the input is conditionally uniform, so each bin's load is a sum of
// independent shifted uniforms and Lemma 2.4 applies after recentering:
//
//   P(Σ_j U[lo_j, hi_j] <= t)  =  P(Σ_j (hi_j−lo_j)·U[0,1] <= t − Σ_j lo_j).
//
// Cost: Π_i (#cells of player i) cell assignments — exponential in n, fine
// for the small systems the paper studies. This turns the two-interval
// ablation from Monte Carlo into exact arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// A closed interval [lo, hi] ⊆ [0, 1].
struct UnitInterval {
  util::Rational lo;
  util::Rational hi;
};

/// One player's deterministic decision rule: bin 0 iff the input lies in one
/// of the given intervals (bin 1 otherwise). Immutable after construction.
class IntervalRule {
 public:
  /// Intervals must lie in [0, 1], be sorted, and be pairwise disjoint with
  /// positive-length gaps allowed; throws std::invalid_argument otherwise.
  /// Zero-length intervals are allowed and ignored (measure zero).
  explicit IntervalRule(std::vector<UnitInterval> bin0_intervals);

  /// The single-threshold rule "bin 0 iff x <= a" (the paper's class).
  [[nodiscard]] static IntervalRule threshold(util::Rational a);
  /// The two-interval rule "bin 0 iff x in [0,a] ∪ [b,c]".
  [[nodiscard]] static IntervalRule two_interval(util::Rational a, util::Rational b,
                                                 util::Rational c);
  /// Everything to bin `bin`.
  [[nodiscard]] static IntervalRule constant(int bin);

  [[nodiscard]] const std::vector<UnitInterval>& bin0_intervals() const noexcept {
    return bin0_;
  }

  /// Decision for a concrete input (boundaries count as bin 0, matching the
  /// single-threshold convention x <= a).
  [[nodiscard]] int decide(const util::Rational& x) const;
  [[nodiscard]] int decide(double x) const;

  /// Total measure of the bin-0 set.
  [[nodiscard]] util::Rational bin0_measure() const;

  /// The decision-constant cells partitioning [0, 1]: the bin-0 intervals and
  /// the complementary bin-1 gaps, in order, zero-length cells omitted.
  struct Cell {
    UnitInterval interval;
    int bin = kBin0;
  };
  [[nodiscard]] std::vector<Cell> cells() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<UnitInterval> bin0_;
};

/// Exact winning probability of the profile of interval rules (player i uses
/// rules[i]) at capacity t, by cell-conditioning + Lemma 2.4.
/// Throws std::invalid_argument when rules is empty or the total cell-product
/// exceeds ~2^24 (guard against accidental blowup).
[[nodiscard]] util::Rational interval_rules_winning_probability(
    std::span<const IntervalRule> rules, const util::Rational& t);

/// Adapter so interval rules can run in the Monte Carlo simulator.
class IntervalRuleProtocol final : public Protocol {
 public:
  explicit IntervalRuleProtocol(std::vector<IntervalRule> rules);

  [[nodiscard]] std::size_t size() const override { return rules_.size(); }
  [[nodiscard]] int decide(std::size_t player, double input, prob::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::span<const IntervalRule> rules() const noexcept { return rules_; }

 private:
  std::vector<IntervalRule> rules_;
};

}  // namespace ddm::core
