// randomized_rules.hpp — exact winning probabilities for randomized
// piecewise-constant decision rules (the general randomized model of
// Section 3.1, restricted to no communication).
//
// A step rule assigns to each cell of a partition of [0,1] a probability of
// choosing bin 0; the player observes its input, finds its cell, and flips
// the cell's coin. This class strictly contains
//   * oblivious protocols   (a single cell)           — Section 4
//   * single thresholds     (cells with p ∈ {0,1})    — Section 5
//   * interval rules        (any 0/1 cell pattern).
// Exactness: condition on each player's (cell, decision) pair; conditional
// inputs are uniform on cells, so both bin loads are sums of shifted
// uniforms and Lemma 2.4 applies. Cost Π_i (2·#cells_i) — exponential in n.
//
// The class matters because of the paper's n = 4, δ = 4/3 anomaly (see
// EXPERIMENTS.md D2): there the randomized coin beats every deterministic
// symmetric threshold, so the optimal ANONYMOUS no-communication protocol at
// that instance is genuinely randomized. This module lets us search that
// space exactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// A randomized piecewise-constant rule on [0, 1].
class StepRule {
 public:
  /// One cell: the input range (implicitly starting at the previous cell's
  /// hi, the first starting at 0) and the probability of choosing bin 0.
  struct Step {
    util::Rational hi;  ///< right endpoint of the cell
    util::Rational p0;  ///< P(bin 0 | input in this cell), in [0, 1]
  };

  /// Steps must have strictly increasing hi, ending exactly at 1, with
  /// p0 ∈ [0, 1]; throws std::invalid_argument otherwise.
  explicit StepRule(std::vector<Step> steps);

  /// Oblivious rule: one cell covering [0,1] with P(bin 0) = p0 (Section 4).
  [[nodiscard]] static StepRule oblivious(util::Rational p0);
  /// Deterministic threshold: p0 = 1 on [0, a], p0 = 0 on (a, 1] (Section 5).
  [[nodiscard]] static StepRule threshold(const util::Rational& a);
  /// Uniform grid of `cells` equal cells with the given probabilities.
  [[nodiscard]] static StepRule uniform_grid(std::span<const util::Rational> probabilities);

  [[nodiscard]] const std::vector<Step>& steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t cell_count() const noexcept { return steps_.size(); }

  /// P(bin 0 | input = x) — the cell probability (left-closed lookup).
  [[nodiscard]] util::Rational p0_at(const util::Rational& x) const;

  /// Marginal probability of choosing bin 0 (integrated over the input).
  [[nodiscard]] util::Rational marginal_p0() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Step> steps_;
};

/// Exact winning probability of the profile (player i uses rules[i]) at
/// capacity t. Throws std::invalid_argument when empty or when the total
/// (cell, decision) product exceeds ~2^24.
[[nodiscard]] util::Rational step_rules_winning_probability(std::span<const StepRule> rules,
                                                            const util::Rational& t);

/// Fast double version of the same sum (for optimization loops).
[[nodiscard]] double step_rules_winning_probability(std::span<const StepRule> rules, double t);

/// Symmetric profile (all n players use `rule`): exploits exchangeability to
/// collapse the (2m)^n assignment sum to a multinomial enumeration over
/// cell-decision type counts — C(n + 2m − 1, 2m − 1) terms. Exact and double
/// versions; both agree with the general evaluators.
[[nodiscard]] util::Rational symmetric_step_rule_winning_probability(std::uint32_t n,
                                                                     const StepRule& rule,
                                                                     const util::Rational& t);
[[nodiscard]] double symmetric_step_rule_winning_probability(std::uint32_t n,
                                                             const StepRule& rule, double t);

/// Compass search over the cell probabilities of a SYMMETRIC step rule on a
/// uniform grid with `cells` cells: maximizes the exact-formula double
/// objective over p ∈ [0,1]^cells. Deterministic.
struct StepRuleSearchResult {
  std::vector<double> probabilities;  ///< best per-cell P(bin 0)
  double value = 0.0;
  std::uint32_t evaluations = 0;
};
[[nodiscard]] StepRuleSearchResult maximize_symmetric_step_rule(
    std::uint32_t n, double t, std::uint32_t cells, std::vector<double> start,
    double initial_step = 0.25, double tolerance = 1e-9,
    std::uint32_t max_evaluations = 100000);

/// Simulator adapter.
class StepRuleProtocol final : public Protocol {
 public:
  explicit StepRuleProtocol(std::vector<StepRule> rules);

  [[nodiscard]] std::size_t size() const override { return rules_.size(); }
  [[nodiscard]] int decide(std::size_t player, double input, prob::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::vector<StepRule> rules_;
  std::vector<std::vector<double>> his_;  // double breakpoints per rule
  std::vector<std::vector<double>> p0s_;  // double probabilities per rule
};

}  // namespace ddm::core
