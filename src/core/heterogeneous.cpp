#include "core/heterogeneous.hpp"

#include <cmath>
#include <string>

#include "prob/uniform_sum.hpp"
#include "util/status.hpp"

namespace ddm::core {

using util::Rational;

namespace {

// Validation throws ddm::Error (util/status.hpp), the taxonomy the CLI maps
// to exit 2 and ddm_serve to a structured bad_request — not a bare
// std::invalid_argument that would surface as an internal error.
void check_common(std::span<const Rational> first, std::span<const Rational> ranges,
                  const char* what) {
  if (first.empty()) throw Error(std::string(what) + ": need >= 1 player");
  if (first.size() != ranges.size()) {
    throw Error(std::string(what) + ": size mismatch (" + std::to_string(first.size()) +
                " players, " + std::to_string(ranges.size()) + " ranges)");
  }
  if (first.size() > 14) {
    throw Error(std::string(what) + ": n too large for exact evaluation (n = " +
                std::to_string(first.size()) + " > 14)");
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].signum() <= 0) {
      throw Error(std::string(what) + ": range " + std::to_string(i) + " must be > 0");
    }
  }
}

}  // namespace

Rational heterogeneous_oblivious_winning_probability(std::span<const Rational> alpha,
                                                     std::span<const Rational> ranges,
                                                     const Rational& t) {
  check_common(alpha, ranges, "heterogeneous_oblivious_winning_probability");
  for (const Rational& a : alpha) {
    if (a < Rational{0} || a > Rational{1}) {
      throw Error("heterogeneous_oblivious_winning_probability: alpha outside [0, 1]");
    }
  }
  if (t.signum() <= 0) return Rational{0};
  const std::size_t n = alpha.size();

  // Condition on the decision vector b (independent of inputs for oblivious
  // protocols); the two bins' loads are independent sums of U[0, c_i].
  Rational total{0};
  std::vector<Rational> ranges0;
  std::vector<Rational> ranges1;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    Rational weight{1};
    ranges0.clear();
    ranges1.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        weight *= Rational{1} - alpha[i];
        ranges1.push_back(ranges[i]);
      } else {
        weight *= alpha[i];
        ranges0.push_back(ranges[i]);
      }
    }
    if (weight.is_zero()) continue;
    const Rational f0 = prob::sum_uniform_cdf(ranges0, t);
    if (f0.is_zero()) continue;
    total += weight * f0 * prob::sum_uniform_cdf(ranges1, t);
  }
  return total;
}

Rational heterogeneous_threshold_winning_probability(std::span<const Rational> thresholds,
                                                     std::span<const Rational> ranges,
                                                     const Rational& t) {
  check_common(thresholds, ranges, "heterogeneous_threshold_winning_probability");
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    if (thresholds[i] < Rational{0} || thresholds[i] > ranges[i]) {
      throw Error("heterogeneous_threshold_winning_probability: threshold " + std::to_string(i) +
                  " must lie in [0, range]");
    }
  }
  if (t.signum() <= 0) return Rational{0};
  const std::size_t n = thresholds.size();

  // Condition on b: a 0-player's input is U[0, a_i] (weight a_i / c_i), a
  // 1-player's input is U[a_i, c_i] = a_i + U[0, c_i − a_i] (weight
  // (c_i − a_i)/c_i). Bin 1's load is recentered for Lemma 2.4.
  Rational total{0};
  std::vector<Rational> widths0;
  std::vector<Rational> widths1;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    Rational weight{1};
    widths0.clear();
    widths1.clear();
    Rational shift1{0};
    for (std::size_t i = 0; i < n; ++i) {
      if (b & (std::uint64_t{1} << i)) {
        const Rational width = ranges[i] - thresholds[i];
        weight *= width / ranges[i];
        widths1.push_back(width);
        shift1 += thresholds[i];
      } else {
        weight *= thresholds[i] / ranges[i];
        widths0.push_back(thresholds[i]);
      }
    }
    if (weight.is_zero()) continue;
    const Rational f0 = prob::sum_uniform_cdf(widths0, t);
    if (f0.is_zero()) continue;
    total += weight * f0 * prob::sum_uniform_cdf(widths1, t - shift1);
  }
  return total;
}

HeterogeneousSimResult estimate_heterogeneous_winning_probability(
    const Protocol& protocol, std::span<const double> ranges, double t, std::uint64_t trials,
    prob::Rng& rng) {
  if (ranges.size() != protocol.size()) {
    throw Error("estimate_heterogeneous_winning_probability: size mismatch");
  }
  if (trials == 0) {
    throw Error("estimate_heterogeneous_winning_probability: zero trials");
  }
  std::vector<double> inputs(ranges.size());
  std::uint64_t won = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = rng.uniform(0.0, ranges[i]);
    if (wins(protocol, inputs, t, rng)) ++won;
  }
  HeterogeneousSimResult result;
  result.wins = won;
  result.trials = trials;
  result.estimate = static_cast<double>(won) / static_cast<double>(trials);
  result.standard_error = std::sqrt(result.estimate * (1.0 - result.estimate) /
                                    static_cast<double>(trials));
  return result;
}

}  // namespace ddm::core
