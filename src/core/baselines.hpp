// baselines.hpp — comparison protocols and the full-information oracle.
//
// The paper's programme (following Papadimitriou–Yannakakis 1991) is to
// quantify the value of information: how much winning probability is lost by
// communicating less. The no-communication optimum is the paper's result;
// these baselines bracket it from below (trivial protocols) and above (the
// full-information oracle, an extension we add: a scheduler that sees all
// inputs and wins whenever ANY bin assignment avoids overflow).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "core/protocol.hpp"
#include "util/rational.hpp"

namespace ddm::core {

/// Everyone deterministically picks bin 0 — the degenerate lower baseline.
[[nodiscard]] FunctorProtocol make_all_bin0(std::size_t n);

/// Player i picks bin i mod 2 — deterministic round-robin split.
[[nodiscard]] FunctorProtocol make_round_robin(std::size_t n);

/// The Papadimitriou–Yannakakis conjectured optimal threshold protocol for
/// n = 3, t = 1: common threshold 1 − sqrt(1/7) (settled by this paper).
[[nodiscard]] SingleThresholdProtocol make_py_n3();

/// True iff SOME assignment of the inputs to two bins keeps both loads <= t
/// (exact subset-sum sweep; throws std::invalid_argument for n > 25).
/// This is the win condition of the full-information oracle.
[[nodiscard]] bool full_information_win(std::span<const double> inputs, double t);

/// Exact full-information winning probability, closed forms for n <= 2
/// (used to sanity-check the oracle; larger n via Monte Carlo):
///   n = 1: the item goes in a bin alone      => P = min(t, 1)
///   n = 2: one item per bin is optimal       => P = min(t, 1)²
/// Throws std::invalid_argument for n == 0 or n > 2.
[[nodiscard]] double full_information_winning_probability_exact(std::uint32_t n, double t);

}  // namespace ddm::core
