#include "core/optimality.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "combinat/binomial.hpp"
#include "core/oblivious.hpp"

namespace ddm::core {

using util::Rational;

namespace {

// Ones-count pmf of all players except `skip`.
std::vector<Rational> ones_count_excluding(std::span<const Rational> alpha, std::size_t skip) {
  std::vector<Rational> pmf{Rational{1}};
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    if (i == skip) continue;
    const Rational p_one = Rational{1} - alpha[i];
    std::vector<Rational> next(pmf.size() + 1, Rational{0});
    for (std::size_t k = 0; k < pmf.size(); ++k) {
      next[k] += pmf[k] * alpha[i];
      next[k + 1] += pmf[k] * p_one;
    }
    pmf = std::move(next);
  }
  return pmf;
}

}  // namespace

std::vector<Rational> oblivious_gradient(std::span<const Rational> alpha, const Rational& t) {
  if (alpha.empty()) throw std::invalid_argument("oblivious_gradient: need >= 1 player");
  const auto n = static_cast<std::uint32_t>(alpha.size());
  std::vector<Rational> gradient(alpha.size());
  for (std::size_t k = 0; k < alpha.size(); ++k) {
    const std::vector<Rational> pmf = ones_count_excluding(alpha, k);
    Rational g{0};
    for (std::uint32_t j = 0; j < pmf.size(); ++j) {
      if (pmf[j].is_zero()) continue;
      // b_k = 0 keeps |b| = j (coefficient +1); b_k = 1 makes |b| = j + 1
      // (coefficient −1): Corollary 4.2 with ∂α^(b_k)/∂α = ±1.
      g += pmf[j] * (phi(n, j, t) - phi(n, j + 1, t));
    }
    gradient[k] = std::move(g);
  }
  return gradient;
}

std::vector<Rational> oblivious_gradient_bruteforce(std::span<const Rational> alpha,
                                                    const Rational& t) {
  if (alpha.empty()) throw std::invalid_argument("oblivious_gradient_bruteforce: empty alpha");
  const std::size_t n = alpha.size();
  if (n > 20) throw std::invalid_argument("oblivious_gradient_bruteforce: n too large");
  std::vector<Rational> gradient(n, Rational{0});
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t b = 0; b < limit; ++b) {
    const std::uint32_t ones = static_cast<std::uint32_t>(__builtin_popcountll(b));
    const Rational phi_b = phi(static_cast<std::uint32_t>(n), ones, t);
    for (std::size_t k = 0; k < n; ++k) {
      Rational weight{1};
      for (std::size_t i = 0; i < n; ++i) {
        if (i == k) continue;
        weight *= (b & (std::uint64_t{1} << i)) ? Rational{1} - alpha[i] : alpha[i];
      }
      const bool bit_k = (b & (std::uint64_t{1} << k)) != 0;
      if (bit_k) {
        gradient[k] -= phi_b * weight;
      } else {
        gradient[k] += phi_b * weight;
      }
    }
  }
  return gradient;
}

std::vector<double> oblivious_gradient(std::span<const double> alpha, double t) {
  if (alpha.empty()) throw std::invalid_argument("oblivious_gradient: need >= 1 player");
  const auto n = static_cast<std::uint32_t>(alpha.size());
  std::vector<double> gradient(alpha.size());
  for (std::size_t k = 0; k < alpha.size(); ++k) {
    std::vector<double> pmf{1.0};
    for (std::size_t i = 0; i < alpha.size(); ++i) {
      if (i == k) continue;
      std::vector<double> next(pmf.size() + 1, 0.0);
      for (std::size_t j = 0; j < pmf.size(); ++j) {
        next[j] += pmf[j] * alpha[i];
        next[j + 1] += pmf[j] * (1.0 - alpha[i]);
      }
      pmf = std::move(next);
    }
    double g = 0.0;
    for (std::uint32_t j = 0; j < pmf.size(); ++j) {
      g += pmf[j] * (phi_double(n, j, t) - phi_double(n, j + 1, t));
    }
    gradient[k] = g;
  }
  return gradient;
}

Rational stationarity_residual(std::span<const Rational> alpha, const Rational& t) {
  Rational residual{0};
  for (const Rational& g : oblivious_gradient(alpha, t)) {
    if (g.abs() > residual) residual = g.abs();
  }
  return residual;
}

std::vector<Rational> diagonal_condition_coefficients(std::uint32_t n, const Rational& t) {
  if (n == 0) throw std::invalid_argument("diagonal_condition_coefficients: n == 0");
  std::vector<Rational> coefficients(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    coefficients[k] = Rational{combinat::binomial(n - 1, k), util::BigInt{1}} *
                      (phi(n, k + 1, t) - phi(n, k, t));
  }
  return coefficients;
}

AscentResult maximize_oblivious(std::vector<double> start, double t,
                                std::uint32_t max_iterations, double initial_step) {
  if (start.empty()) throw std::invalid_argument("maximize_oblivious: empty start");
  for (double& a : start) a = std::clamp(a, 0.0, 1.0);

  AscentResult result;
  result.alpha = std::move(start);
  result.value = oblivious_winning_probability(result.alpha, t);
  double step = initial_step;

  for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
    const std::vector<double> gradient = oblivious_gradient(result.alpha, t);
    std::vector<double> candidate(result.alpha.size());
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      candidate[i] = std::clamp(result.alpha[i] + step * gradient[i], 0.0, 1.0);
    }
    const double candidate_value = oblivious_winning_probability(candidate, t);
    ++result.iterations;
    if (candidate_value > result.value) {
      result.alpha = std::move(candidate);
      result.value = candidate_value;
    } else {
      step *= 0.5;
      if (step < 1e-14) break;
    }
  }

  const std::vector<double> final_gradient = oblivious_gradient(result.alpha, t);
  double norm = 0.0;
  for (std::size_t i = 0; i < final_gradient.size(); ++i) {
    // Only interior coordinates must be stationary; clamped coordinates may
    // carry an outward gradient.
    const bool at_lower = result.alpha[i] <= 0.0 && final_gradient[i] < 0.0;
    const bool at_upper = result.alpha[i] >= 1.0 && final_gradient[i] > 0.0;
    if (at_lower || at_upper) continue;
    norm = std::max(norm, std::abs(final_gradient[i]));
  }
  result.gradient_norm = norm;
  return result;
}

}  // namespace ddm::core
