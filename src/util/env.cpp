#include "util/env.hpp"

#include <charconv>
#include <string>

#include "util/status.hpp"

namespace ddm::util {

std::uint64_t parse_env_u64(const char* env_name, const char* text, std::uint64_t min_value,
                            std::uint64_t max_value, std::uint64_t fallback) {
  if (text == nullptr) return fallback;
  const std::string value{text};
  std::uint64_t parsed = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed, 10);
  if (value.empty() || ec != std::errc{} || ptr != last || parsed < min_value ||
      parsed > max_value) {
    throw Error(std::string(env_name) + ": invalid value '" + value +
                "' (expected a decimal integer in [" + std::to_string(min_value) + ", " +
                std::to_string(max_value) + "])");
  }
  return parsed;
}

}  // namespace ddm::util
