// kahan.hpp — compensated (Kahan) running sums.
//
// The Gray-code inclusion-exclusion kernels maintain one running subset sum
// across up to 2^m incremental add/subtract updates. A bare double drifts by
// O(2^m · eps) — ~1e-11 at m = 12, visible against the naive kernels that
// recompute each subset sum fresh. Carrying the classic Neumaier
// compensation term keeps the running value within a few ulps of exact at
// the cost of three extra flops per update, preserving the one-update-per-
// subset complexity. See docs/performance.md.
//
// The certified escalation ladder (util/certify.hpp, docs/robustness.md)
// leans on this quantitatively: its tier-0 error analysis bounds a
// compensated running sum's error by the Neumaier bound 2u·Σ|increments|
// (u = 2^-53), which is what lets a tracked double kernel prove a rigorous
// enclosure instead of merely being "usually accurate".
#pragma once

#include <cmath>

namespace ddm::util {

/// Running sum with Neumaier compensation: `add` folds one term, `get`
/// returns the compensated value.
struct KahanSum {
  double sum = 0.0;
  double compensation = 0.0;

  constexpr KahanSum() = default;
  constexpr explicit KahanSum(double initial) : sum(initial) {}

  void add(double term) noexcept {
    const double next = sum + term;
    if (std::abs(sum) >= std::abs(term)) {
      compensation += (sum - next) + term;
    } else {
      compensation += (term - next) + sum;
    }
    sum = next;
  }

  [[nodiscard]] double get() const noexcept { return sum + compensation; }
};

}  // namespace ddm::util
