// rational.hpp — exact rational arithmetic over BigInt.
//
// All of the paper's formulas (Proposition 2.2, Theorems 4.1 and 5.1, the
// optimality conditions of Corollary 4.2 / Theorem 5.2) are rational-valued
// for rational parameters; computing them exactly removes any numerical
// doubt from the reproduction. Invariant: denominator > 0, gcd(num, den) = 1,
// and zero is 0/1.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>
#include <string_view>

#include "util/bigint.hpp"

namespace ddm::util {

/// Exact rational number (value type). Always kept in lowest terms with a
/// positive denominator.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Integer value.
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT: literal ergonomics
  /// num / den; throws std::domain_error if den == 0.
  Rational(BigInt num, BigInt den);
  /// num / den from native integers.
  Rational(std::int64_t num, std::int64_t den) : Rational(BigInt{num}, BigInt{den}) {}
  /// Parse "a/b" or "a"; throws std::invalid_argument on malformed input.
  static Rational parse(std::string_view text);
  /// The EXACT value of a double (every finite double is a dyadic rational
  /// m·2^e). Basis of the compiled-plan error certificates (poly/compiled.hpp):
  /// rounding errors |c − double(c)| become exact rationals. Throws
  /// std::invalid_argument on NaN/infinity.
  static Rational from_double(double value);

  [[nodiscard]] const BigInt& num() const noexcept { return num_; }
  [[nodiscard]] const BigInt& den() const noexcept { return den_; }

  [[nodiscard]] bool is_zero() const noexcept { return num_.is_zero(); }
  [[nodiscard]] bool is_integer() const noexcept { return den_ == BigInt{1}; }
  [[nodiscard]] int signum() const noexcept { return num_.signum(); }

  [[nodiscard]] double to_double() const noexcept;
  /// "a/b", or just "a" when the denominator is 1.
  [[nodiscard]] std::string to_string() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Throws std::domain_error when rhs is zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  [[nodiscard]] Rational operator-() const;
  [[nodiscard]] Rational abs() const;
  /// Multiplicative inverse; throws std::domain_error on zero.
  [[nodiscard]] Rational inverse() const;
  /// this^exponent for any integer exponent (negative inverts; 0^negative throws).
  [[nodiscard]] Rational pow(std::int64_t exponent) const;

  /// Largest integer <= value / smallest integer >= value.
  [[nodiscard]] BigInt floor() const;
  [[nodiscard]] BigInt ceil() const;

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b) noexcept;

  friend std::ostream& operator<<(std::ostream& os, const Rational& value);

 private:
  void normalize();

  BigInt num_;
  BigInt den_;
};

/// Convenience factory: r(a, b) == a/b.
[[nodiscard]] inline Rational rat(std::int64_t num, std::int64_t den = 1) {
  return Rational{num, den};
}

}  // namespace ddm::util
