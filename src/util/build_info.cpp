#include "util/build_info.hpp"

namespace ddm::util {

const char* build_type() noexcept {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

}  // namespace ddm::util
