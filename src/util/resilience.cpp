#include "util/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "prob/rng.hpp"

namespace ddm::util {

std::chrono::nanoseconds RetryPolicy::delay_before(unsigned attempt, std::uint64_t stream) const {
  if (base_delay.count() <= 0 || attempt == 0) return std::chrono::nanoseconds::zero();
  // base · growth^(attempt-1), computed in double (the magnitudes are tiny —
  // the clamp below caps the result long before precision matters).
  double nanos = static_cast<double>(base_delay.count()) *
                 std::pow(std::max(growth, 1.0), static_cast<double>(attempt - 1));
  nanos = std::min(nanos, static_cast<double>(max_delay.count()));
  if (jitter > 0.0) {
    // Position `attempt` of the split stream: a pure function of
    // (jitter_seed, stream, attempt) — replays identically, decorrelates
    // across streams. Discarding attempt-1 draws is cheap (attempts are
    // single digits by construction).
    prob::Rng rng = prob::Rng{jitter_seed}.split(stream);
    for (unsigned i = 1; i < attempt; ++i) (void)rng.uniform();
    const double factor = 1.0 - jitter + 2.0 * jitter * rng.uniform();
    nanos *= factor;
  }
  nanos = std::clamp(nanos, 0.0, static_cast<double>(max_delay.count()));
  return std::chrono::nanoseconds{static_cast<std::int64_t>(nanos)};
}

void sleep_with_deadline(std::chrono::nanoseconds duration, const Deadline& deadline) {
  if (duration.count() <= 0) return;
  if (deadline.is_set()) {
    const std::chrono::nanoseconds left = deadline.remaining();
    if (left.count() <= 0) return;
    duration = std::min(duration, left);
  }
  std::this_thread::sleep_for(duration);
}

}  // namespace ddm::util
