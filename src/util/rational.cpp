#include "util/rational.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace ddm::util {

Rational::Rational(BigInt num, BigInt den) : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

Rational Rational::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return Rational{BigInt{text}, BigInt{1}};
  return Rational{BigInt{text.substr(0, slash)}, BigInt{text.substr(slash + 1)}};
}

Rational Rational::from_double(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("Rational::from_double: value is not finite");
  }
  if (value == 0.0) return Rational{};
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // value = mantissa · 2^exponent
  // Scale the mantissa to a 53-bit integer; the pair (scaled, exponent − 53)
  // represents the double exactly (subnormals included — frexp normalizes).
  const auto scaled = static_cast<std::int64_t>(std::ldexp(mantissa, 53));
  exponent -= 53;
  if (exponent >= 0) {
    return Rational{BigInt{scaled} * BigInt::pow(BigInt{2}, static_cast<std::uint64_t>(exponent)),
                    BigInt{1}};
  }
  return Rational{BigInt{scaled}, BigInt::pow(BigInt{2}, static_cast<std::uint64_t>(-exponent))};
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt{1};
    return;
  }
  const BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt{1}) {
    num_ /= g;
    den_ /= g;
  }
}

double Rational::to_double() const noexcept {
  // For extreme magnitudes, shift both parts into a safe exponent range first.
  const std::size_t nb = num_.bit_length();
  const std::size_t db = den_.bit_length();
  if (nb < 900 && db < 900) return num_.to_double() / den_.to_double();
  // Scale: keep ~128 top bits of each.
  const std::size_t drop = std::max(nb, db) - 128;
  const BigInt sn = num_ >> drop;
  const BigInt sd = den_ >> drop;
  if (sd.is_zero()) return num_.is_negative() ? -0.0 : 0.0;
  return sn.to_double() / sd.to_double();
}

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

Rational& Rational::operator+=(const Rational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.is_zero()) throw std::domain_error("Rational: division by zero");
  // Evaluate both products before writing: `rhs` may alias *this (e.g.
  // dividing a polynomial by its own leading coefficient).
  BigInt new_num = num_ * rhs.den_;
  BigInt new_den = den_ * rhs.num_;
  num_ = std::move(new_num);
  den_ = std::move(new_den);
  normalize();
  return *this;
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.num_ = -result.num_;
  return result;
}

Rational Rational::abs() const {
  Rational result = *this;
  result.num_ = result.num_.abs();
  return result;
}

Rational Rational::inverse() const {
  if (is_zero()) throw std::domain_error("Rational: inverse of zero");
  return Rational{den_, num_};
}

Rational Rational::pow(std::int64_t exponent) const {
  if (exponent < 0) return inverse().pow(-exponent);
  return Rational{BigInt::pow(num_, static_cast<std::uint64_t>(exponent)),
                  BigInt::pow(den_, static_cast<std::uint64_t>(exponent))};
}

BigInt Rational::floor() const {
  auto [q, r] = BigInt::div_mod(num_, den_);
  if (r.is_zero() || !num_.is_negative()) return q;
  return q - BigInt{1};
}

BigInt Rational::ceil() const {
  auto [q, r] = BigInt::div_mod(num_, den_);
  if (r.is_zero() || num_.is_negative()) return q;
  return q + BigInt{1};
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) noexcept {
  // Compare a.num * b.den <=> b.num * a.den (denominators positive).
  return (a.num_ * b.den_) <=> (b.num_ * a.den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.to_string();
}

}  // namespace ddm::util
