#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/status.hpp"

namespace ddm::util::simd {

namespace {

// Host CPU support for the widths compiled into this binary. Checked once:
// the answer cannot change while the process runs.
bool cpu_supports_avx2() noexcept {
#if defined(DDM_SIMD_COMPILED_AVX2) && defined(__GNUC__) && defined(__x86_64__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx512() noexcept {
#if defined(DDM_SIMD_COMPILED_AVX512) && defined(__GNUC__) && defined(__x86_64__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

// Cached resolution of DDM_SIMD (0 = not yet resolved). Only a SUCCESSFUL
// parse is cached: a malformed value throws on every call, mirroring how a
// malformed DDM_THREADS resurfaces instead of latching (util/parallel.cpp).
std::atomic<int> g_resolved{0};

// Test/benchmark override (ScopedForceWidth); 0 = no override. Global, not
// thread-local: the batch kernels run on pool threads that must observe the
// benchmark thread's override.
std::atomic<int> g_forced{0};

int clamp_to_native(int width) noexcept {
  const int native = native_width();
  return width < native ? width : native;
}

int resolve_from_env() {
  const char* env = std::getenv("DDM_SIMD");
  if (env == nullptr) return native_width();
  switch (parse_simd_mode("DDM_SIMD", env)) {
    case SimdMode::kOff:
    case SimdMode::kScalar:
      return 1;
    case SimdMode::kNative:
      return native_width();
    case SimdMode::kAvx2:
      return clamp_to_native(4);
    case SimdMode::kNeon:
      return clamp_to_native(2);
  }
  return 1;  // unreachable
}

}  // namespace

SimdMode parse_simd_mode(const char* env_name, const char* text) {
  const std::string value = text == nullptr ? std::string() : std::string(text);
  if (value == "off") return SimdMode::kOff;
  if (value == "scalar") return SimdMode::kScalar;
  if (value == "native") return SimdMode::kNative;
  if (value == "avx2") return SimdMode::kAvx2;
  if (value == "neon") return SimdMode::kNeon;
  throw Error(std::string(env_name) + ": invalid SIMD mode '" + value +
              "' (expected off, scalar, native, avx2, or neon)");
}

int native_width() noexcept {
  static const int width = [] {
    if (cpu_supports_avx512()) return 8;
    if (cpu_supports_avx2()) return 4;
#if defined(DDM_SIMD_HAS_SSE2) || defined(DDM_SIMD_HAS_NEON)
    return 2;
#else
    return 1;
#endif
  }();
  return width;
}

int dispatch_width() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced != 0) return clamp_to_native(forced);
  int cached = g_resolved.load(std::memory_order_relaxed);
  if (cached == 0) {
    cached = resolve_from_env();  // throws on a malformed DDM_SIMD
    g_resolved.store(cached, std::memory_order_relaxed);
  }
  return cached;
}

ScopedForceWidth::ScopedForceWidth(int width) noexcept
    : previous_(g_forced.exchange(width < 1 ? 1 : width, std::memory_order_relaxed)) {}

ScopedForceWidth::~ScopedForceWidth() {
  g_forced.store(previous_, std::memory_order_relaxed);
}

void reset_dispatch_cache_for_testing() noexcept {
  g_resolved.store(0, std::memory_order_relaxed);
}

}  // namespace ddm::util::simd
