#include "util/certify.hpp"

#include <cmath>
#include <string>

namespace ddm {

const char* to_string(EvalTier tier) noexcept {
  switch (tier) {
    case EvalTier::kCompensatedDouble:
      return "compensated-double";
    case EvalTier::kInterval:
      return "interval";
    case EvalTier::kExact:
      return "exact";
  }
  return "unknown";
}

CertifiedValue run_escalation_ladder(const EvalPolicy& policy, const char* label,
                                     std::span<const TierSpec> tiers) {
  const auto bump = [&policy](EvalTier tier) {
    if (policy.stats == nullptr) return;
    switch (tier) {
      case EvalTier::kCompensatedDouble:
        ++policy.stats->double_attempts;
        break;
      case EvalTier::kInterval:
        ++policy.stats->interval_attempts;
        break;
      case EvalTier::kExact:
        ++policy.stats->exact_attempts;
        break;
    }
  };

  bool have_best = false;
  CertifiedValue best;
  std::exception_ptr last_failure;
  bool attempted_before = false;
  for (const TierSpec& spec : tiers) {
    if (spec.tier > policy.max_tier) continue;
    if (attempted_before && policy.stats != nullptr) ++policy.stats->escalations;
    attempted_before = true;
    bump(spec.tier);
    util::RationalInterval enclosure{util::Rational{0}};
    try {
      enclosure = spec.evaluate();
    } catch (const NumericError&) {
      if (policy.stats != nullptr) ++policy.stats->numeric_errors;
      last_failure = std::current_exception();
      continue;
    }
    if (!have_best || enclosure.width() < best.enclosure.width()) {
      have_best = true;
      best.enclosure = enclosure;
      best.tier = spec.tier;
    }
    if (enclosure.width() <= policy.tolerance) {
      best.enclosure = enclosure;
      best.tier = spec.tier;
      best.met_tolerance = true;
      return best;
    }
  }
  if (!have_best) {
    if (last_failure) std::rethrow_exception(last_failure);
    throw NumericError(std::string(label) + ": no evaluation tier available under this policy");
  }
  best.met_tolerance = best.enclosure.width() <= policy.tolerance;
  return best;
}

namespace util {

namespace {
// Absorbs the second-order terms (products of roundoffs, compensated-sum
// O(N·u²) tails) that the first-order running error analyses drop.
constexpr double kTrackedSafety = 4.0;
}  // namespace

RationalInterval tracked_enclosure(const TrackedDouble& tracked, const char* label) {
  const double bound = kTrackedSafety * tracked.error;
  if (!std::isfinite(tracked.value) || !std::isfinite(bound)) {
    throw NumericError(std::string(label) + ": double tier produced a non-finite value or bound");
  }
  const Rational center = exact_rational(tracked.value);
  const Rational radius = exact_rational(bound);
  return RationalInterval{center - radius, center + radius};
}

Rational exact_rational(double x) {
  if (!std::isfinite(x)) {
    throw NumericError("exact_rational: non-finite double " + std::to_string(x));
  }
  if (x == 0.0) return Rational{0};
  int exponent = 0;
  const double mantissa = std::frexp(x, &exponent);  // x = mantissa * 2^exponent
  // 53 mantissa bits: mantissa * 2^53 is an exact integer.
  const auto scaled = static_cast<std::int64_t>(std::ldexp(mantissa, 53));
  exponent -= 53;
  if (exponent >= 0) {
    return Rational{BigInt{scaled} << static_cast<std::size_t>(exponent), BigInt{1}};
  }
  return Rational{BigInt{scaled}, BigInt{1} << static_cast<std::size_t>(-exponent)};
}

bool representable_as_double(const Rational& r) {
  const double d = r.to_double();
  if (!std::isfinite(d)) return false;
  return exact_rational(d) == r;
}

}  // namespace util

}  // namespace ddm
