#include "util/certify.hpp"

#include <cmath>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace ddm {

namespace {

// Ladder metrics: attempt counts mirror EvalStats; the histograms record
// per-tier wall time so `--metrics` shows where certified evaluation spends
// its budget without a trace.
struct CertifyMetrics {
  obs::Counter double_attempts = obs::counter("certify.attempts.double");
  obs::Counter interval_attempts = obs::counter("certify.attempts.interval");
  obs::Counter exact_attempts = obs::counter("certify.attempts.exact");
  obs::Counter escalations = obs::counter("certify.escalations");
  obs::Counter numeric_errors = obs::counter("certify.numeric_errors");
  obs::Histogram double_seconds = obs::histogram("certify.tier_seconds.double");
  obs::Histogram interval_seconds = obs::histogram("certify.tier_seconds.interval");
  obs::Histogram exact_seconds = obs::histogram("certify.tier_seconds.exact");

  [[nodiscard]] obs::Counter attempts(EvalTier tier) const noexcept {
    switch (tier) {
      case EvalTier::kCompensatedDouble: return double_attempts;
      case EvalTier::kInterval: return interval_attempts;
      case EvalTier::kExact: return exact_attempts;
    }
    return double_attempts;
  }

  [[nodiscard]] obs::Histogram seconds(EvalTier tier) const noexcept {
    switch (tier) {
      case EvalTier::kCompensatedDouble: return double_seconds;
      case EvalTier::kInterval: return interval_seconds;
      case EvalTier::kExact: return exact_seconds;
    }
    return double_seconds;
  }

  static const CertifyMetrics& get() {
    static const CertifyMetrics metrics;
    return metrics;
  }
};

}  // namespace

const char* to_string(EvalTier tier) noexcept {
  switch (tier) {
    case EvalTier::kCompensatedDouble:
      return "compensated-double";
    case EvalTier::kInterval:
      return "interval";
    case EvalTier::kExact:
      return "exact";
  }
  return "unknown";
}

CertifiedValue run_escalation_ladder(const EvalPolicy& policy, const char* label,
                                     std::span<const TierSpec> tiers) {
  const CertifyMetrics& metrics = CertifyMetrics::get();
  // Per-evaluation counters; folded into the policy's cumulative view (if
  // attached) and returned as CertifiedValue::stats on every exit path.
  EvalStats local;
  const auto bump = [&local](EvalTier tier) {
    switch (tier) {
      case EvalTier::kCompensatedDouble:
        ++local.double_attempts;
        break;
      case EvalTier::kInterval:
        ++local.interval_attempts;
        break;
      case EvalTier::kExact:
        ++local.exact_attempts;
        break;
    }
  };
  const auto publish = [&policy, &local](CertifiedValue& result) {
    if (policy.stats != nullptr) *policy.stats += local;
    result.stats = local;
  };

  bool have_best = false;
  CertifiedValue best;
  std::exception_ptr last_failure;
  bool attempted_before = false;
  std::size_t tiers_attempted = 0;
  const std::size_t tiers_total = tiers.size();
  for (const TierSpec& spec : tiers) {
    if (spec.tier > policy.max_tier) continue;
    // Cooperative stop: polled before each rung, so a deadline that fires
    // while the double tier is running cuts the ladder before the ~100x
    // interval rung (or the unbounded exact rung) starts. Counters observed
    // so far still reach the policy's stats.
    switch (policy.control.should_stop()) {
      case util::StopReason::kNone:
        break;
      case util::StopReason::kCancelled:
        if (policy.stats != nullptr) *policy.stats += local;
        throw Cancelled(label, tiers_attempted, tiers_total);
      case util::StopReason::kDeadline:
        if (policy.stats != nullptr) *policy.stats += local;
        throw DeadlineExceeded(label, tiers_attempted, tiers_total);
    }
    ++tiers_attempted;
    if (attempted_before) {
      ++local.escalations;
      metrics.escalations.add();
    }
    attempted_before = true;
    bump(spec.tier);
    metrics.attempts(spec.tier).add();
    util::RationalInterval enclosure{util::Rational{0}};
    try {
      DDM_SPAN("certify.tier", {{"label", label}, {"tier", to_string(spec.tier)}});
      obs::ScopedTimer timer(metrics.seconds(spec.tier));
      enclosure = spec.evaluate();
    } catch (const NumericError&) {
      ++local.numeric_errors;
      metrics.numeric_errors.add();
      last_failure = std::current_exception();
      continue;
    }
    if (!have_best || enclosure.width() < best.enclosure.width()) {
      have_best = true;
      best.enclosure = enclosure;
      best.tier = spec.tier;
    }
    if (enclosure.width() <= policy.tolerance) {
      best.enclosure = enclosure;
      best.tier = spec.tier;
      best.met_tolerance = true;
      publish(best);
      return best;
    }
  }
  if (!have_best) {
    if (policy.stats != nullptr) *policy.stats += local;
    if (last_failure) std::rethrow_exception(last_failure);
    throw NumericError(std::string(label) + ": no evaluation tier available under this policy");
  }
  best.met_tolerance = best.enclosure.width() <= policy.tolerance;
  publish(best);
  return best;
}

namespace util {

namespace {
// Absorbs the second-order terms (products of roundoffs, compensated-sum
// O(N·u²) tails) that the first-order running error analyses drop.
constexpr double kTrackedSafety = 4.0;
}  // namespace

RationalInterval tracked_enclosure(const TrackedDouble& tracked, const char* label) {
  const double bound = kTrackedSafety * tracked.error;
  if (!std::isfinite(tracked.value) || !std::isfinite(bound)) {
    throw NumericError(std::string(label) + ": double tier produced a non-finite value or bound");
  }
  const Rational center = exact_rational(tracked.value);
  const Rational radius = exact_rational(bound);
  return RationalInterval{center - radius, center + radius};
}

Rational exact_rational(double x) {
  if (!std::isfinite(x)) {
    throw NumericError("exact_rational: non-finite double " + std::to_string(x));
  }
  if (x == 0.0) return Rational{0};
  int exponent = 0;
  const double mantissa = std::frexp(x, &exponent);  // x = mantissa * 2^exponent
  // 53 mantissa bits: mantissa * 2^53 is an exact integer.
  const auto scaled = static_cast<std::int64_t>(std::ldexp(mantissa, 53));
  exponent -= 53;
  if (exponent >= 0) {
    return Rational{BigInt{scaled} << static_cast<std::size_t>(exponent), BigInt{1}};
  }
  return Rational{BigInt{scaled}, BigInt{1} << static_cast<std::size_t>(-exponent)};
}

bool representable_as_double(const Rational& r) {
  const double d = r.to_double();
  if (!std::isfinite(d)) return false;
  return exact_rational(d) == r;
}

}  // namespace util

}  // namespace ddm
