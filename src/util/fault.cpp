#include "util/fault.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/status.hpp"

namespace ddm::util::fault {

namespace {

struct State {
  std::mutex mutex;
  Plan plan;
  bool env_loaded = false;
};

State& state() {
  static State s;
  return s;
}

// Relaxed fast-path flag: true while any directive has firings left. Kept in
// sync with the plan under State::mutex.
std::atomic<bool> g_active{false};

std::atomic<std::uint64_t> g_throws{0};
std::atomic<std::uint64_t> g_nans{0};
std::atomic<std::uint64_t> g_delays{0};

void refresh_active_locked(const Plan& plan) {
  bool any = false;
  for (const Directive& d : plan.directives) {
    if (d.count > 0) {
      any = true;
      break;
    }
  }
  g_active.store(any, std::memory_order_relaxed);
}

// Fast-path mirror of State::env_loaded so the per-chunk hook skips the lock
// once initialization is settled.
std::atomic<bool> g_env_checked{false};

void ensure_env_loaded() {
  if (g_env_checked.load(std::memory_order_acquire)) return;
  State& s = state();
  std::scoped_lock lock(s.mutex);
  if (!s.env_loaded) {
    s.env_loaded = true;
    if (const char* env = std::getenv("DDM_FAULT_PLAN")) {
      // A malformed plan must not silently disable injection — fail loudly.
      s.plan = Plan::parse(env);
      refresh_active_locked(s.plan);
    }
  }
  g_env_checked.store(true, std::memory_order_release);
}

// Pops one firing of `kind` aimed at `chunk`; returns true when it fired.
bool consume(Kind kind, std::size_t chunk, unsigned* millis_out = nullptr) {
  State& s = state();
  std::scoped_lock lock(s.mutex);
  for (Directive& d : s.plan.directives) {
    if (d.kind != kind || d.chunk != chunk || d.count == 0) continue;
    --d.count;
    if (millis_out != nullptr) *millis_out = d.millis;
    refresh_active_locked(s.plan);
    return true;
  }
  return false;
}

std::size_t parse_number(std::string_view text, std::size_t& pos, const char* what,
                         std::string_view directive) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data() + pos, text.data() + text.size(), value);
  if (ec != std::errc{} || ptr == text.data() + pos) {
    throw FaultPlanError("fault plan: expected " + std::string(what) + " in directive '" +
                         std::string(directive) + "'");
  }
  pos = static_cast<std::size_t>(ptr - text.data());
  return value;
}

Directive parse_directive(std::string_view text) {
  Directive d;
  std::size_t pos = text.find('@');
  const std::string_view kind = text.substr(0, pos == std::string_view::npos ? 0 : pos);
  if (kind == "throw") {
    d.kind = Kind::kThrow;
  } else if (kind == "nan") {
    d.kind = Kind::kNanPoison;
  } else if (kind == "delay") {
    d.kind = Kind::kDelay;
  } else {
    throw FaultPlanError("fault plan: unknown action in directive '" + std::string(text) +
                         "' (expected throw|nan|delay)");
  }
  ++pos;  // skip '@'
  d.chunk = parse_number(text, pos, "chunk ordinal", text);
  if (pos < text.size() && text[pos] == 'x') {
    ++pos;
    const std::size_t count = parse_number(text, pos, "firing count after 'x'", text);
    if (count == 0) {
      throw FaultPlanError("fault plan: zero firing count in directive '" + std::string(text) +
                           "'");
    }
    d.count = static_cast<unsigned>(count);
  }
  if (pos < text.size() && text[pos] == ':') {
    ++pos;
    d.millis = static_cast<unsigned>(parse_number(text, pos, "millisecond delay after ':'", text));
    if (text.substr(pos) != "ms") {
      throw FaultPlanError("fault plan: expected 'ms' suffix in directive '" + std::string(text) +
                           "'");
    }
    pos = text.size();
  }
  if (pos != text.size()) {
    throw FaultPlanError("fault plan: trailing garbage in directive '" + std::string(text) + "'");
  }
  return d;
}

}  // namespace

Plan Plan::parse(std::string_view text) {
  Plan plan;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view piece = text.substr(start, comma - start);
    if (piece.empty()) {
      throw FaultPlanError("fault plan: empty directive in '" + std::string(text) + "'");
    }
    plan.directives.push_back(parse_directive(piece));
    if (comma == text.size()) break;
    start = comma + 1;
  }
  return plan;
}

void set_plan(Plan plan) {
  State& s = state();
  std::scoped_lock lock(s.mutex);
  s.env_loaded = true;  // an explicit plan overrides DDM_FAULT_PLAN
  g_env_checked.store(true, std::memory_order_release);
  s.plan = std::move(plan);
  refresh_active_locked(s.plan);
}

void clear_plan() { set_plan(Plan{}); }

bool active() noexcept { return g_active.load(std::memory_order_relaxed); }

void before_chunk(std::size_t chunk) {
  ensure_env_loaded();
  if (!active()) return;
  unsigned millis = 0;
  if (consume(Kind::kDelay, chunk, &millis)) {
    g_delays.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  }
  if (consume(Kind::kThrow, chunk)) {
    g_throws.fetch_add(1, std::memory_order_relaxed);
    throw TransientFault("injected transient fault (throw@" + std::to_string(chunk) + ")");
  }
}

bool consume_nan(std::size_t chunk) noexcept {
  if (!active()) return false;
  if (consume(Kind::kNanPoison, chunk)) {
    g_nans.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Counters counters() noexcept {
  return Counters{g_throws.load(std::memory_order_relaxed),
                  g_nans.load(std::memory_order_relaxed),
                  g_delays.load(std::memory_order_relaxed)};
}

}  // namespace ddm::util::fault
