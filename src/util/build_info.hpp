// build_info.hpp — build-type provenance compiled into the library itself.
//
// scripts/run_bench.sh refuses benchmark results unless the JSON context
// proves an optimised build. The benchmark binary's own stamp
// (`ddm_build_type`, derived from NDEBUG in bench/perf_kernels.cpp) only
// proves how THAT translation unit was compiled — a mixed tree could still
// link a debug libddm under a release-stamped main(). build_type() closes
// that hole: it is compiled into libddm, so its answer describes the
// library the kernels actually live in, and perf_kernels stamps it as
// `ddm_library_build_type` alongside its own. (The stock
// `library_build_type` context field describes the installed third-party
// google-benchmark library — a debug build on this image, with no source
// available to rebuild — and is deliberately not trusted either way.)
#pragma once

namespace ddm::util {

/// "release" when libddm was compiled with NDEBUG (asserts off, the
/// optimised configuration), "debug" otherwise.
[[nodiscard]] const char* build_type() noexcept;

}  // namespace ddm::util
