// certify.hpp — certified evaluation: enclosures + the escalation ladder.
//
// The fast double kernels (geom/volume.cpp, core/nonoblivious.cpp) evaluate
// alternating inclusion-exclusion sums whose terms can dwarf the result —
// catastrophic cancellation territory. Certified mode never returns a bare
// double: every evaluation produces a rigorous *enclosure* (an exact
// RationalInterval guaranteed to contain the true value) and an automatic
// ladder escalates through progressively more expensive evaluation tiers
// until the enclosure is narrower than the caller's tolerance:
//
//   tier 0  compensated double + running error bound   (~1x the plain kernel)
//   tier 1  dyadic-interval arithmetic                  (outward_round; ~100x)
//   tier 2  exact rational arithmetic                   (point enclosure)
//
// Tier 0 applies only when every input is exactly representable as a double
// (otherwise the double kernel would silently evaluate a *different*
// instance); tiers 1 and 2 handle arbitrary rationals. The ladder is shared
// by certified_threshold_winning_probability,
// certified_symmetric_threshold_winning_probability (core/certified.hpp) and
// certified_simplex_box_volume (geom/volume.hpp), and is exposed on the CLI
// as `ddm_cli --certify`. See docs/robustness.md.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "util/interval.hpp"
#include "util/rational.hpp"
#include "util/resilience.hpp"
#include "util/status.hpp"

namespace ddm {

/// Evaluation tiers, cheapest first. Numeric values order the ladder.
enum class EvalTier : unsigned {
  kCompensatedDouble = 0,  ///< fast double kernel + rigorous running error bound
  kInterval = 1,           ///< dyadic outward-rounded interval arithmetic
  kExact = 2,              ///< exact rational arithmetic (width-0 enclosure)
};

[[nodiscard]] const char* to_string(EvalTier tier) noexcept;

/// Counters a caller can attach to EvalPolicy to observe the ladder.
/// `run_escalation_ladder` also publishes the same counts to the process
/// metrics registry (certify.* — see docs/observability.md), so an attached
/// EvalStats is a convenience view, not the only way to observe the ladder.
struct EvalStats {
  std::uint64_t double_attempts = 0;
  std::uint64_t interval_attempts = 0;
  std::uint64_t exact_attempts = 0;
  std::uint64_t escalations = 0;      ///< tier-to-tier transitions taken
  std::uint64_t numeric_errors = 0;   ///< tiers abandoned via NumericError

  EvalStats& operator+=(const EvalStats& other) noexcept {
    double_attempts += other.double_attempts;
    interval_attempts += other.interval_attempts;
    exact_attempts += other.exact_attempts;
    escalations += other.escalations;
    numeric_errors += other.numeric_errors;
    return *this;
  }
};

/// Caller-supplied certification policy, threaded through the public API.
struct EvalPolicy {
  /// Maximum acceptable enclosure width. The ladder escalates until the
  /// width is <= tolerance or max_tier is reached.
  util::Rational tolerance{1, 1000000000};
  /// Highest tier the ladder may use.
  EvalTier max_tier = EvalTier::kExact;
  /// Fractional bits kept by the interval tier's outward rounding. More bits
  /// = narrower enclosures at higher cost; 320 comfortably absorbs the
  /// term magnitudes of n ~ 60 inclusion-exclusion sums.
  unsigned interval_bits = 320;
  /// Optional observation hook (not owned; may be nullptr).
  EvalStats* stats = nullptr;
  /// Cooperative stop: polled before every tier attempt, so a deadline or
  /// cancellation cuts the ladder mid-escalation (typically before the
  /// expensive interval/exact rungs). A stop surfaces as ddm::Cancelled /
  /// ddm::DeadlineExceeded carrying how many tiers were attempted; counters
  /// accumulated so far are still folded into `stats`. Default-constructed =
  /// run the full ladder.
  util::RunControl control;
};

/// A certified result: an enclosure proven to contain the true value, the
/// tier that produced it, and whether the policy tolerance was met. When
/// met_tolerance is false the enclosure is still valid — just wider than
/// requested (the ladder ran out of allowed tiers).
struct CertifiedValue {
  util::RationalInterval enclosure{util::Rational{0}};
  EvalTier tier = EvalTier::kCompensatedDouble;
  bool met_tolerance = false;
  /// Ladder counters for THIS evaluation only. An EvalStats attached to the
  /// policy keeps its historical accumulate-across-calls semantics; callers
  /// that want per-evaluation numbers (e.g. per sweep point) read this
  /// delta instead.
  EvalStats stats;

  [[nodiscard]] util::Rational width() const { return enclosure.width(); }
  /// Midpoint of the enclosure as a double — the "answer" for callers that
  /// want one number.
  [[nodiscard]] double value() const { return enclosure.midpoint().to_double(); }
};

/// One rung of the ladder: computes an enclosure, or throws ddm::NumericError
/// when this tier cannot evaluate the instance (overflow, unsupported size).
struct TierSpec {
  EvalTier tier;
  std::function<util::RationalInterval()> evaluate;
};

/// Runs `tiers` (ordered cheapest-first) under `policy`: attempts each tier
/// no higher than policy.max_tier, accepts the first enclosure with width <=
/// policy.tolerance, and otherwise returns the narrowest enclosure any tier
/// produced with met_tolerance = false. Throws the last tier's NumericError
/// only if *no* tier produced an enclosure. `label` names the evaluation in
/// error messages.
[[nodiscard]] CertifiedValue run_escalation_ladder(const EvalPolicy& policy, const char* label,
                                                   std::span<const TierSpec> tiers);

namespace util {

/// A double value paired with a first-order bound on its absolute error,
/// maintained by the tier-0 tracked-double kernels.
struct TrackedDouble {
  double value = 0.0;
  double error = 0.0;
};

/// Converts a tracked double into a rigorous enclosure with exact rational
/// endpoints, inflating the bound by a safety factor that absorbs the
/// second-order roundoff terms the running analysis drops. Throws
/// ddm::NumericError when the value or bound is non-finite (the escalation
/// signal of the double tier).
[[nodiscard]] RationalInterval tracked_enclosure(const TrackedDouble& tracked, const char* label);

/// Exact rational value of a finite double (every finite double is a dyadic
/// rational). Throws ddm::NumericError on NaN/inf.
[[nodiscard]] Rational exact_rational(double x);

/// True iff `r` round-trips exactly through double — the precondition for
/// the tier-0 double kernel to evaluate the *same* instance.
[[nodiscard]] bool representable_as_double(const Rational& r);

}  // namespace util

}  // namespace ddm
