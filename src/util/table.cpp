#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ddm::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width does not match header count");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  const auto escape = [](const std::string& cell) -> std::string {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += '"';
    return out;
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace ddm::util
