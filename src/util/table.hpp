// table.hpp — plain-text table rendering for the benchmark harness.
//
// Every bench binary reproduces one of the paper's figures/tables by printing
// aligned rows (paper value next to measured value). This helper keeps the
// output format consistent across all of them and can also emit CSV so the
// series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ddm::util {

/// Column-aligned text table with an optional title, rendered to a stream.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers
  /// (throws std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with box-drawing separators and per-column alignment.
  void print(std::ostream& os) const;
  /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 6), trimming to a stable
/// width for table alignment.
[[nodiscard]] std::string fmt(double value, int precision = 6);

}  // namespace ddm::util
