// checkpoint.hpp — crash-safe, append-only sweep checkpoints.
//
// `ddm_cli sweep` evaluates a β-grid that can run for hours at large n. The
// checkpoint file makes that restartable: a JSONL file whose first line
// records the sweep parameters and every following line one completed row,
// appended (and flushed) as soon as its block finishes. A killed sweep
// resumed with `--resume <file>` skips the completed rows and recomputes
// only the missing ones; because every row goes through the identical serial
// evaluator and doubles are printed at max_digits10 (lossless round-trip),
// the resumed output is byte-identical to an uninterrupted run.
//
// Format (one JSON object per line):
//   {"sweep": {"n": 4, "t": "4/3", "beta_lo": "0", "beta_hi": "1",
//              "steps": 100, "engine": "auto", "resolved": "batch",
//              "shard": "0/1"}}
//   {"k": 0, "beta": 0, "p_win": 0.62}
//   ...
// The header records the FULL identity of the run: the grid, the requested
// engine, the engine that actually produced the rows (auto mode can resolve
// differently across environments, and rows from different engines must
// never be glued together), and the shard assignment for sharded sweeps
// (`ddm_cli sweep --shard=i/k`). A resume validates every field and rejects
// with the first mismatching field NAMED — a checkpoint from a different
// grid, engine, or shard must fail loudly, not silently mix rows.
// A crash can tear at most the final line (appends are single writes); a
// torn trailing line fails to parse and is truncated away on resume, so the
// recomputed row starts on a fresh line. Corruption
// anywhere else raises ddm::CheckpointError. See docs/robustness.md.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

namespace ddm::util {

/// The sweep parameters stamped into the checkpoint header. Rational-valued
/// fields are kept as their exact "a/b" strings so header comparison is
/// exact, not floating-point.
struct SweepParams {
  std::uint32_t n = 0;
  std::string t;
  std::string beta_lo;
  std::string beta_hi;
  std::uint32_t steps = 0;
  /// Engine the caller requested ("auto" or a forced id). Empty in headers
  /// written before the field existed — such checkpoints fail resume
  /// validation by naming the 'engine' field.
  std::string engine;
  /// Engine that actually produced the rows (auto mode resolves to one).
  std::string resolved;
  /// Shard assignment: this file holds grid rows with k % shard_count ==
  /// shard_index. An unsharded sweep is shard 0/1.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Canonical scenario digest of the game the rows evaluate
  /// (engine/scenario.hpp): "homogeneous" for the paper's default, e.g.
  /// "heterogeneous:1/2,1,2" otherwise. Headers written before the field
  /// existed parse as "homogeneous" — exactly the game they were computed
  /// under — so old default-scenario checkpoints keep resuming; rows from
  /// different games can never be glued together.
  std::string scenario = "homogeneous";

  friend bool operator==(const SweepParams&, const SweepParams&) = default;
};

/// One completed sweep row: grid index k and the evaluated point.
struct SweepRow {
  std::uint32_t k = 0;
  double beta = 0.0;
  double p_win = 0.0;
};

/// Append-only checkpoint writer/loader. Not thread-safe; the sweep driver
/// appends from the coordinating thread only.
class SweepCheckpoint {
 public:
  /// Fresh checkpoint: creates/truncates `path` and writes the header line.
  /// Resume (`resume == true`): loads `path`, validates its header against
  /// `params` (ddm::CheckpointError on mismatch or mid-file corruption),
  /// keeps all complete rows, silently discards a torn trailing line, and
  /// reopens the file for appending.
  SweepCheckpoint(std::string path, const SweepParams& params, bool resume);

  /// Rows recovered at construction plus rows appended since, keyed by k.
  [[nodiscard]] const std::map<std::uint32_t, SweepRow>& completed() const noexcept {
    return rows_;
  }
  [[nodiscard]] bool has(std::uint32_t k) const { return rows_.count(k) != 0; }

  /// Appends one row as a single line, flushes, AND fsyncs, so the row is
  /// durable on disk — not just in the OS page cache — before the next block
  /// starts (a machine crash, not merely a killed process, can tear at most
  /// the final line). Throws ddm::CheckpointError on I/O or fsync error.
  void append(const SweepRow& row);

  ~SweepCheckpoint();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  /// Loads and validates the file; returns the byte length of the valid
  /// prefix (header + complete rows), which the constructor uses to truncate
  /// a torn trailing fragment before reopening for append.
  std::uintmax_t load(const SweepParams& params);

  /// Pushes the ofstream buffer to the OS, then fsyncs the file descriptor
  /// so the bytes reach stable storage. Throws ddm::CheckpointError when
  /// either step fails; `what` names the record being persisted.
  void sync_to_disk(const char* what);

  std::string path_;
  std::map<std::uint32_t, SweepRow> rows_;
  std::ofstream out_;
  /// Raw fd on the same file, held only for fsync(2) — std::ofstream offers
  /// no portable way to reach the descriptor. -1 on platforms without fsync.
  int sync_fd_ = -1;
};

/// A checkpoint parsed WITHOUT resuming it: header params plus every
/// complete row. `ddm_cli merge` reads shard checkpoints this way — the file
/// is never opened for writing and a torn trailing fragment is reported, not
/// truncated. Throws ddm::CheckpointError on unreadable files, unparseable
/// headers, mid-file corruption, or out-of-range row indices.
struct LoadedCheckpoint {
  SweepParams params;
  std::map<std::uint32_t, SweepRow> rows;
  bool torn_tail = false;
};

[[nodiscard]] LoadedCheckpoint read_checkpoint(const std::string& path);

}  // namespace ddm::util
