// simd.hpp — the library's portable SIMD layer: fixed-width double packs
// plus the runtime dispatch policy that decides how many lanes the hot
// kernels actually use.
//
// Design (docs/performance.md §4):
//
//   * `Pack<W>` is a W-wide vector of doubles (W = 1, 2, 4, 8) exposing the
//     handful of IEEE-754 operations the kernels need: load/store,
//     broadcast, +, -, *, unary -, abs, a positive clamp, and a per-lane
//     select keyed on |a| >= |b| (the Neumaier compensation branch). Every
//     operation is an element-wise double op with round-to-nearest
//     semantics, so lane l of any Pack expression is BITWISE IDENTICAL to
//     the same scalar expression on lane l's inputs. That identity — not a
//     tolerance — is what lets the vectorized subset walk and vector Horner
//     keep the repo's bitwise-reproducibility contract; the packs therefore
//     never use fused multiply-add (and the AVX2/AVX-512 translation units
//     are compiled with -ffp-contract=off so the compiler cannot fuse
//     behind our back).
//
//   * Width availability is decided at COMPILE TIME per translation unit:
//     Pack<2> maps to SSE2 (x86-64 baseline) or NEON (AArch64 baseline),
//     Pack<4> to AVX2 and Pack<8> to AVX-512F, each guarded by the
//     corresponding predefined macro. The wide kernels live in dedicated
//     *_avx2.cpp / *_avx512.cpp sources that src/CMakeLists.txt compiles
//     with -mavx2 / -mavx512f when the compiler supports the flag
//     (DDM_SIMD_COMPILED_AVX2 / _AVX512 are then defined for the whole
//     library); the rest of the library keeps the default target flags, so
//     the binary stays runnable on machines without those extensions.
//
//   * Which compiled width a call actually uses is decided at RUNTIME by
//     dispatch_width(): the DDM_SIMD environment variable
//     (off|scalar|native|avx2|neon, strict parse, ddm::Error names the
//     variable on garbage — exit 2 from the CLI), clamped to what the
//     binary was compiled with AND what the host CPU reports. `off` and
//     `scalar` force the pre-SIMD scalar paths; `native` (and unset) means
//     "widest compiled width this CPU supports"; `avx2`/`neon` request a
//     specific width (4 / 2) and clamp down when it is not available —
//     the `engine.simd_width` gauge always reports the width actually
//     dispatched, never the one requested or compiled
//     (docs/observability.md).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define DDM_SIMD_HAS_SSE2 1
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#define DDM_SIMD_HAS_AVX2 1
#endif
#if defined(__AVX512F__)
#include <immintrin.h>
#define DDM_SIMD_HAS_AVX512 1
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define DDM_SIMD_HAS_NEON 1
#endif

namespace ddm::util::simd {

/// Lane count of the replicated-coefficient rows used by the vector Horner
/// layout (poly/compiled.hpp): wide enough for the widest supported pack, so
/// one layout serves every dispatch width.
inline constexpr std::size_t kCoeffLanes = 8;

/// Parsed DDM_SIMD request. `kOff` and `kScalar` both force the scalar
/// paths (`off` is the kill-switch spelling, `scalar` the descriptive one);
/// `kAvx2`/`kNeon` request a width (4 / 2) by its common ISA name.
enum class SimdMode { kOff, kScalar, kNative, kAvx2, kNeon };

/// Strict DDM_SIMD parser (same contract as util::parse_thread_count):
/// accepts exactly "off", "scalar", "native", "avx2", or "neon"; anything
/// else — including empty — throws ddm::Error naming `env_name` and the
/// offending text. Exposed for tests.
[[nodiscard]] SimdMode parse_simd_mode(const char* env_name, const char* text);

/// Widest pack width compiled into this binary that the host CPU supports:
/// 8 (AVX-512F), 4 (AVX2), 2 (SSE2/NEON baseline), or 1. Ignores DDM_SIMD.
[[nodiscard]] int native_width() noexcept;

/// The width the hot kernels dispatch on: DDM_SIMD (parsed once, cached on
/// success; a malformed value throws ddm::Error on every call so the CLI
/// rejects it with exit 2 instead of latching) clamped to native_width().
/// Returns 1, 2, 4, or 8.
[[nodiscard]] int dispatch_width();

/// Test/benchmark hook: forces dispatch_width() to `width` (clamped to
/// native_width()) for the lifetime of the object, bypassing DDM_SIMD.
/// Process-global (the batch kernels run on pool threads), so scopes must
/// not be nested concurrently with different widths.
class ScopedForceWidth {
 public:
  explicit ScopedForceWidth(int width) noexcept;
  ~ScopedForceWidth();
  ScopedForceWidth(const ScopedForceWidth&) = delete;
  ScopedForceWidth& operator=(const ScopedForceWidth&) = delete;

 private:
  int previous_ = 0;
};

/// Test hook: drops the cached DDM_SIMD parse so a test can setenv() a new
/// value and observe dispatch_width() re-resolve it.
void reset_dispatch_cache_for_testing() noexcept;

// --- packs ---------------------------------------------------------------
//
// Only the primary template is declared; each width is a specialization
// guarded by its ISA macro, so a translation unit can only name the packs
// its target flags can actually execute. All specializations expose the
// same interface:
//
//   static constexpr std::size_t width;
//   static Pack load(const double* p);       // unaligned
//   static Pack broadcast(double x);
//   void store(double* p) const;             // unaligned
//   friend Pack operator+/-/* (Pack, Pack);  // IEEE, round-to-nearest
//   Pack operator-() const;                  // sign flip (exact)
//   static Pack abs(Pack);
//   static Pack clamp_positive(Pack);        // x > 0 ? x : +0.0 (never -0.0)
//   static Pack select_abs_ge(a, b, x, y);   // |a| >= |b| ? x : y per lane

template <std::size_t W>
struct Pack;

/// Scalar "pack": the W = 1 fallback. Using it in the generic kernels
/// reproduces the plain scalar loops exactly (it IS the pinned scalar tail
/// path the wider kernels use for count % W trailing points).
template <>
struct Pack<1> {
  static constexpr std::size_t width = 1;
  double v;

  static Pack load(const double* p) noexcept { return {*p}; }
  static Pack broadcast(double x) noexcept { return {x}; }
  void store(double* p) const noexcept { *p = v; }
  friend Pack operator+(Pack a, Pack b) noexcept { return {a.v + b.v}; }
  friend Pack operator-(Pack a, Pack b) noexcept { return {a.v - b.v}; }
  friend Pack operator*(Pack a, Pack b) noexcept { return {a.v * b.v}; }
  Pack operator-() const noexcept { return {-v}; }
  static Pack abs(Pack a) noexcept { return {std::abs(a.v)}; }
  // The clamp must produce the literal +0.0 (never -0.0): the batch walk's
  // power phase relies on infeasible points contributing an exact ±0.0 that
  // leaves a Neumaier accumulator bitwise unchanged (docs/performance.md).
  static Pack clamp_positive(Pack a) noexcept { return {a.v > 0.0 ? a.v : 0.0}; }
  static Pack select_abs_ge(Pack a, Pack b, Pack x, Pack y) noexcept {
    return {std::abs(a.v) >= std::abs(b.v) ? x.v : y.v};
  }
};

#if defined(DDM_SIMD_HAS_SSE2)
/// 2-wide pack over SSE2 (__m128d) — always available on x86-64.
template <>
struct Pack<2> {
  static constexpr std::size_t width = 2;
  __m128d v;

  static Pack load(const double* p) noexcept { return {_mm_loadu_pd(p)}; }
  static Pack broadcast(double x) noexcept { return {_mm_set1_pd(x)}; }
  void store(double* p) const noexcept { _mm_storeu_pd(p, v); }
  friend Pack operator+(Pack a, Pack b) noexcept { return {_mm_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) noexcept { return {_mm_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) noexcept { return {_mm_mul_pd(a.v, b.v)}; }
  Pack operator-() const noexcept { return {_mm_xor_pd(v, _mm_set1_pd(-0.0))}; }
  static Pack abs(Pack a) noexcept {
    return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
  }
  static Pack clamp_positive(Pack a) noexcept {
    // AND with the x > 0 mask: kept lanes pass through unchanged, dropped
    // lanes become all-zero bits — the literal +0.0 the contract needs.
    return {_mm_and_pd(a.v, _mm_cmpgt_pd(a.v, _mm_setzero_pd()))};
  }
  static Pack select_abs_ge(Pack a, Pack b, Pack x, Pack y) noexcept {
    const __m128d mask = _mm_cmpge_pd(abs(a).v, abs(b).v);
    return {_mm_or_pd(_mm_and_pd(mask, x.v), _mm_andnot_pd(mask, y.v))};
  }
};
#endif  // DDM_SIMD_HAS_SSE2

#if defined(DDM_SIMD_HAS_NEON)
/// 2-wide pack over NEON (float64x2_t) — always available on AArch64.
template <>
struct Pack<2> {
  static constexpr std::size_t width = 2;
  float64x2_t v;

  static Pack load(const double* p) noexcept { return {vld1q_f64(p)}; }
  static Pack broadcast(double x) noexcept { return {vdupq_n_f64(x)}; }
  void store(double* p) const noexcept { vst1q_f64(p, v); }
  friend Pack operator+(Pack a, Pack b) noexcept { return {vaddq_f64(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) noexcept { return {vsubq_f64(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) noexcept { return {vmulq_f64(a.v, b.v)}; }
  Pack operator-() const noexcept { return {vnegq_f64(v)}; }
  static Pack abs(Pack a) noexcept { return {vabsq_f64(a.v)}; }
  static Pack clamp_positive(Pack a) noexcept {
    const uint64x2_t mask = vcgtq_f64(a.v, vdupq_n_f64(0.0));
    return {vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(a.v), mask))};
  }
  static Pack select_abs_ge(Pack a, Pack b, Pack x, Pack y) noexcept {
    return {vbslq_f64(vcgeq_f64(abs(a).v, abs(b).v), x.v, y.v)};
  }
};
#endif  // DDM_SIMD_HAS_NEON

#if defined(DDM_SIMD_HAS_AVX2)
/// 4-wide pack over AVX2 (__m256d). Only nameable from the *_avx2.cpp
/// translation units compiled with -mavx2 -ffp-contract=off.
template <>
struct Pack<4> {
  static constexpr std::size_t width = 4;
  __m256d v;

  static Pack load(const double* p) noexcept { return {_mm256_loadu_pd(p)}; }
  static Pack broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
  friend Pack operator+(Pack a, Pack b) noexcept { return {_mm256_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) noexcept { return {_mm256_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) noexcept { return {_mm256_mul_pd(a.v, b.v)}; }
  Pack operator-() const noexcept { return {_mm256_xor_pd(v, _mm256_set1_pd(-0.0))}; }
  static Pack abs(Pack a) noexcept {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }
  static Pack clamp_positive(Pack a) noexcept {
    return {_mm256_and_pd(a.v, _mm256_cmp_pd(a.v, _mm256_setzero_pd(), _CMP_GT_OQ))};
  }
  static Pack select_abs_ge(Pack a, Pack b, Pack x, Pack y) noexcept {
    const __m256d mask = _mm256_cmp_pd(abs(a).v, abs(b).v, _CMP_GE_OQ);
    return {_mm256_blendv_pd(y.v, x.v, mask)};
  }
};
#endif  // DDM_SIMD_HAS_AVX2

#if defined(DDM_SIMD_HAS_AVX512)
/// 8-wide pack over AVX-512F (__m512d). Only nameable from the *_avx512.cpp
/// translation units compiled with -mavx512f -ffp-contract=off.
template <>
struct Pack<8> {
  static constexpr std::size_t width = 8;
  __m512d v;

  static Pack load(const double* p) noexcept { return {_mm512_loadu_pd(p)}; }
  static Pack broadcast(double x) noexcept { return {_mm512_set1_pd(x)}; }
  void store(double* p) const noexcept { _mm512_storeu_pd(p, v); }
  friend Pack operator+(Pack a, Pack b) noexcept { return {_mm512_add_pd(a.v, b.v)}; }
  friend Pack operator-(Pack a, Pack b) noexcept { return {_mm512_sub_pd(a.v, b.v)}; }
  friend Pack operator*(Pack a, Pack b) noexcept { return {_mm512_mul_pd(a.v, b.v)}; }
  Pack operator-() const noexcept {
    return {_mm512_castsi512_pd(_mm512_xor_si512(
        _mm512_castpd_si512(v), _mm512_castpd_si512(_mm512_set1_pd(-0.0))))};
  }
  static Pack abs(Pack a) noexcept { return {_mm512_abs_pd(a.v)}; }
  static Pack clamp_positive(Pack a) noexcept {
    const __mmask8 mask = _mm512_cmp_pd_mask(a.v, _mm512_setzero_pd(), _CMP_GT_OQ);
    return {_mm512_maskz_mov_pd(mask, a.v)};
  }
  static Pack select_abs_ge(Pack a, Pack b, Pack x, Pack y) noexcept {
    const __mmask8 mask = _mm512_cmp_pd_mask(abs(a).v, abs(b).v, _CMP_GE_OQ);
    return {_mm512_mask_blend_pd(mask, y.v, x.v)};
  }
};
#endif  // DDM_SIMD_HAS_AVX512

}  // namespace ddm::util::simd
