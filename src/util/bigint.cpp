#include "util/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cctype>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace ddm::util {

namespace {

constexpr std::uint64_t kLimbBase = std::uint64_t{1} << 32;
// Below this limb count Karatsuba overhead dominates.
constexpr std::size_t kKaratsubaThreshold = 32;

}  // namespace

BigInt::BigInt(std::int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1 : static_cast<std::uint64_t>(value);
  limbs_.push_back(static_cast<Limb>(magnitude & 0xffffffffu));
  if (magnitude >> 32) limbs_.push_back(static_cast<Limb>(magnitude >> 32));
}

BigInt::BigInt(std::string_view decimal) {
  std::size_t pos = 0;
  bool neg = false;
  if (pos < decimal.size() && (decimal[pos] == '-' || decimal[pos] == '+')) {
    neg = decimal[pos] == '-';
    ++pos;
  }
  if (pos == decimal.size()) throw std::invalid_argument("BigInt: empty decimal string");
  for (; pos < decimal.size(); ++pos) {
    const char c = decimal[pos];
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt: non-digit in decimal string");
    // *this = *this * 10 + digit, done in-place on limbs.
    DoubleLimb carry = static_cast<DoubleLimb>(c - '0');
    for (Limb& limb : limbs_) {
      const DoubleLimb v = static_cast<DoubleLimb>(limb) * 10 + carry;
      limb = static_cast<Limb>(v & 0xffffffffu);
      carry = v >> 32;
    }
    if (carry != 0) limbs_.push_back(static_cast<Limb>(carry));
  }
  negative_ = neg;
  trim();
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const Limb top = limbs_.back();
  const std::size_t top_bits = 32u - static_cast<std::size_t>(std::countl_zero(top));
  return (limbs_.size() - 1) * 32 + top_bits;
}

bool BigInt::fits_int64() const noexcept {
  const std::size_t bits = bit_length();
  if (bits < 64) return true;
  if (bits > 64) return false;
  // Exactly 64 bits of magnitude only fits for INT64_MIN.
  return negative_ && limbs_[0] == 0 && limbs_[1] == 0x80000000u;
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt::to_int64: value out of range");
  std::uint64_t magnitude = 0;
  if (limbs_.size() > 0) magnitude = limbs_[0];
  if (limbs_.size() > 1) magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) return static_cast<std::int64_t>(~magnitude + 1);
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::to_double() const noexcept {
  double result = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    result = result * static_cast<double>(kLimbBase) + static_cast<double>(*it);
  }
  return negative_ ? -result : result;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeatedly divide the magnitude by 10^9 and emit 9-digit chunks.
  std::vector<Limb> work = limbs_;
  std::string digits;
  constexpr Limb kChunk = 1000000000u;
  while (!work.empty()) {
    DoubleLimb remainder = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const DoubleLimb cur = (remainder << 32) | work[i];
      work[i] = static_cast<Limb>(cur / kChunk);
      remainder = cur % kChunk;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

int BigInt::compare_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) noexcept {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int mag = BigInt::compare_magnitude(a.limbs_, b.limbs_);
  const int sign_adjusted = a.negative_ ? -mag : mag;
  if (sign_adjusted < 0) return std::strong_ordering::less;
  if (sign_adjusted > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::vector<BigInt::Limb> BigInt::add_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  const std::vector<Limb>& longer = a.size() >= b.size() ? a : b;
  const std::vector<Limb>& shorter = a.size() >= b.size() ? b : a;
  std::vector<Limb> result;
  result.reserve(longer.size() + 1);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    DoubleLimb sum = static_cast<DoubleLimb>(longer[i]) + carry;
    if (i < shorter.size()) sum += shorter[i];
    result.push_back(static_cast<Limb>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<Limb>(carry));
  return result;
}

std::vector<BigInt::Limb> BigInt::sub_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  assert(compare_magnitude(a, b) >= 0 && "sub_magnitude requires |a| >= |b|");
  std::vector<Limb> result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= static_cast<std::int64_t>(b[i]);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<Limb>(diff));
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

std::vector<BigInt::Limb> BigInt::mul_schoolbook(const std::vector<Limb>& a,
                                                 const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    DoubleLimb carry = 0;
    const DoubleLimb ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const DoubleLimb cur = static_cast<DoubleLimb>(result[i + j]) + ai * b[j] + carry;
      result[i + j] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    result[i + b.size()] = static_cast<Limb>(carry);
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

std::vector<BigInt::Limb> BigInt::mul_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return mul_schoolbook(a, b);
  }
  // Karatsuba: split at half the longer operand.
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  const auto split = [half](const std::vector<Limb>& v) {
    std::vector<Limb> lo(v.begin(), v.begin() + std::min(half, v.size()));
    std::vector<Limb> hi;
    if (v.size() > half) hi.assign(v.begin() + half, v.end());
    while (!lo.empty() && lo.back() == 0) lo.pop_back();
    return std::pair{std::move(lo), std::move(hi)};
  };
  auto [a_lo, a_hi] = split(a);
  auto [b_lo, b_hi] = split(b);

  std::vector<Limb> z0 = mul_magnitude(a_lo, b_lo);
  std::vector<Limb> z2 = mul_magnitude(a_hi, b_hi);
  std::vector<Limb> z1 = mul_magnitude(add_magnitude(a_lo, a_hi), add_magnitude(b_lo, b_hi));
  z1 = sub_magnitude(z1, z0);
  z1 = sub_magnitude(z1, z2);

  // result = z0 + (z1 << 32*half) + (z2 << 64*half)
  std::vector<Limb> result(std::max({z0.size(), z1.size() + half, z2.size() + 2 * half}) + 1, 0);
  const auto accumulate = [&result](const std::vector<Limb>& source, std::size_t offset) {
    DoubleLimb carry = 0;
    std::size_t i = 0;
    for (; i < source.size(); ++i) {
      const DoubleLimb cur = static_cast<DoubleLimb>(result[offset + i]) + source[i] + carry;
      result[offset + i] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    while (carry != 0) {
      const DoubleLimb cur = static_cast<DoubleLimb>(result[offset + i]) + carry;
      result[offset + i] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++i;
    }
  };
  accumulate(z0, 0);
  accumulate(z1, half);
  accumulate(z2, 2 * half);
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

std::pair<std::vector<BigInt::Limb>, std::vector<BigInt::Limb>> BigInt::divmod_magnitude(
    const std::vector<Limb>& dividend, const std::vector<Limb>& divisor) {
  assert(!divisor.empty() && "division by zero magnitude");
  if (compare_magnitude(dividend, divisor) < 0) return {{}, dividend};

  // Single-limb divisor: simple long division.
  if (divisor.size() == 1) {
    const DoubleLimb d = divisor[0];
    std::vector<Limb> quotient(dividend.size(), 0);
    DoubleLimb remainder = 0;
    for (std::size_t i = dividend.size(); i-- > 0;) {
      const DoubleLimb cur = (remainder << 32) | dividend[i];
      quotient[i] = static_cast<Limb>(cur / d);
      remainder = cur % d;
    }
    while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
    std::vector<Limb> rem;
    if (remainder != 0) rem.push_back(static_cast<Limb>(remainder));
    return {std::move(quotient), std::move(rem)};
  }

  // Knuth TAOCP Vol.2 Algorithm D.
  // D1: normalize so the top divisor limb has its high bit set.
  const int shift = std::countl_zero(divisor.back());
  const auto shift_left = [](const std::vector<Limb>& v, int s) {
    std::vector<Limb> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= static_cast<Limb>(static_cast<DoubleLimb>(v[i]) << s);
      out[i + 1] = s == 0 ? 0 : static_cast<Limb>(static_cast<DoubleLimb>(v[i]) >> (32 - s));
    }
    return out;
  };
  std::vector<Limb> u = shift_left(dividend, shift);  // size n+m+1 with top slack
  std::vector<Limb> v = shift_left(divisor, shift);
  while (!v.empty() && v.back() == 0) v.pop_back();
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n - (u.back() == 0 ? 1 : 0);
  if (u.back() != 0) u.push_back(0);  // ensure u has n+m+1 limbs addressable

  std::vector<Limb> quotient(m + 1, 0);
  const DoubleLimb v_top = v[n - 1];
  const DoubleLimb v_second = n >= 2 ? v[n - 2] : 0;

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat from the top two limbs of the current window.
    const DoubleLimb numerator =
        (static_cast<DoubleLimb>(u[j + n]) << 32) | u[j + n - 1];
    DoubleLimb q_hat = numerator / v_top;
    DoubleLimb r_hat = numerator % v_top;
    while (q_hat >= kLimbBase ||
           q_hat * v_second > ((r_hat << 32) | (n >= 2 ? u[j + n - 2] : 0))) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kLimbBase) break;
    }
    // D4: multiply-and-subtract q_hat * v from the window u[j .. j+n].
    std::int64_t borrow = 0;
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const DoubleLimb product = q_hat * v[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u[j + i]) -
                                static_cast<std::int64_t>(product & 0xffffffffu) - borrow;
      u[j + i] = static_cast<Limb>(diff & 0xffffffff);
      borrow = diff < 0 ? 1 : 0;
    }
    const std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) -
                                  static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<Limb>(top_diff & 0xffffffff);

    if (top_diff < 0) {
      // D6: q_hat was one too large; add v back.
      --q_hat;
      DoubleLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const DoubleLimb sum = static_cast<DoubleLimb>(u[j + i]) + v[i] + add_carry;
        u[j + i] = static_cast<Limb>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<Limb>(u[j + n] + add_carry);
    }
    quotient[j] = static_cast<Limb>(q_hat);
  }

  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
  // D8: denormalize the remainder.
  std::vector<Limb> remainder(u.begin(), u.begin() + n);
  if (shift != 0) {
    for (std::size_t i = 0; i + 1 < remainder.size(); ++i) {
      remainder[i] = static_cast<Limb>((remainder[i] >> shift) |
                                       (static_cast<DoubleLimb>(remainder[i + 1]) << (32 - shift)));
    }
    remainder.back() >>= shift;
  }
  while (!remainder.empty() && remainder.back() == 0) remainder.pop_back();
  return {std::move(quotient), std::move(remainder)};
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    limbs_ = add_magnitude(limbs_, rhs.limbs_);
  } else if (compare_magnitude(limbs_, rhs.limbs_) >= 0) {
    limbs_ = sub_magnitude(limbs_, rhs.limbs_);
  } else {
    limbs_ = sub_magnitude(rhs.limbs_, limbs_);
    negative_ = rhs.negative_;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  if (negative_ != rhs.negative_) {
    limbs_ = add_magnitude(limbs_, rhs.limbs_);
  } else if (compare_magnitude(limbs_, rhs.limbs_) >= 0) {
    limbs_ = sub_magnitude(limbs_, rhs.limbs_);
  } else {
    limbs_ = sub_magnitude(rhs.limbs_, limbs_);
    negative_ = !negative_;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  negative_ = negative_ != rhs.negative_;
  limbs_ = mul_magnitude(limbs_, rhs.limbs_);
  trim();
  return *this;
}

std::pair<BigInt, BigInt> BigInt::div_mod(const BigInt& dividend, const BigInt& divisor) {
  if (divisor.is_zero()) throw std::domain_error("BigInt: division by zero");
  auto [q_mag, r_mag] = divmod_magnitude(dividend.limbs_, divisor.limbs_);
  BigInt quotient;
  quotient.limbs_ = std::move(q_mag);
  quotient.negative_ = dividend.negative_ != divisor.negative_;
  quotient.trim();
  BigInt remainder;
  remainder.limbs_ = std::move(r_mag);
  remainder.negative_ = dividend.negative_;
  remainder.trim();
  return {std::move(quotient), std::move(remainder)};
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  *this = div_mod(*this, rhs).first;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  *this = div_mod(*this, rhs).second;
  return *this;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

BigInt& BigInt::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  std::vector<Limb> result(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    result[i + limb_shift] |=
        static_cast<Limb>(static_cast<DoubleLimb>(limbs_[i]) << bit_shift);
    if (bit_shift != 0) {
      result[i + limb_shift + 1] =
          static_cast<Limb>(static_cast<DoubleLimb>(limbs_[i]) >> (32 - bit_shift));
    }
  }
  limbs_ = std::move(result);
  trim();
  return *this;
}

BigInt& BigInt::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  std::vector<Limb> result(limbs_.begin() + limb_shift, limbs_.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i + 1 < result.size(); ++i) {
      result[i] = static_cast<Limb>((result[i] >> bit_shift) |
                                    (static_cast<DoubleLimb>(result[i + 1]) << (32 - bit_shift)));
    }
    result.back() >>= bit_shift;
  }
  limbs_ = std::move(result);
  trim();
  return *this;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = div_mod(a, b).second;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::pow(const BigInt& base, std::uint64_t exponent) {
  BigInt result{1};
  BigInt acc = base;
  while (exponent != 0) {
    if (exponent & 1) result *= acc;
    exponent >>= 1;
    if (exponent != 0) acc *= acc;
  }
  return result;
}

BigInt BigInt::factorial(std::uint32_t n) {
  BigInt result{1};
  for (std::uint32_t i = 2; i <= n; ++i) result *= BigInt{static_cast<std::int64_t>(i)};
  return result;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

}  // namespace ddm::util
