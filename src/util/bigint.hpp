// bigint.hpp — arbitrary-precision signed integers.
//
// Exact integer arithmetic underpins the whole library: the paper's
// inclusion-exclusion formulas (Proposition 2.2, Theorems 4.1/5.1) and the
// optimality conditions of Section 5 are polynomial identities over the
// rationals, and Sturm-sequence root isolation (used to locate the optimal
// thresholds exactly) grows coefficients exponentially in the degree, far
// beyond what int64 or __int128 can hold.
//
// Representation: sign-magnitude, little-endian limbs in base 2^32.
// Invariant: no trailing zero limbs; zero is represented by an empty limb
// vector with non-negative sign.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ddm::util {

/// Arbitrary-precision signed integer (value type, strongly exception-safe).
class BigInt {
 public:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;

  /// Zero.
  BigInt() = default;

  /// From a native signed integer.
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  /// From a decimal string, with optional leading '-' or '+'.
  /// Throws std::invalid_argument on malformed input (empty, non-digits).
  explicit BigInt(std::string_view decimal);

  // -- observers ------------------------------------------------------------

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  /// True iff the value is strictly negative.
  [[nodiscard]] bool is_negative() const noexcept { return negative_; }
  /// -1, 0, or +1.
  [[nodiscard]] int signum() const noexcept {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }
  /// True iff the value is even.
  [[nodiscard]] bool is_even() const noexcept {
    return limbs_.empty() || (limbs_[0] & 1u) == 0;
  }

  /// Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// True iff the value fits in int64_t.
  [[nodiscard]] bool fits_int64() const noexcept;
  /// Convert to int64_t; throws std::overflow_error if it does not fit.
  [[nodiscard]] std::int64_t to_int64() const;
  /// Convert to double (may lose precision; ±inf on overflow).
  [[nodiscard]] double to_double() const noexcept;
  /// Decimal representation with leading '-' when negative.
  [[nodiscard]] std::string to_string() const;

  // -- arithmetic -----------------------------------------------------------

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Throws std::domain_error on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder of truncated division; sign follows the dividend.
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  /// Shift the magnitude left/right by `bits` (sign preserved; right shift
  /// truncates toward zero on the magnitude).
  BigInt& operator<<=(std::size_t bits);
  BigInt& operator>>=(std::size_t bits);
  friend BigInt operator<<(BigInt lhs, std::size_t bits) { return lhs <<= bits; }
  friend BigInt operator>>(BigInt lhs, std::size_t bits) { return lhs >>= bits; }

  // -- comparison -----------------------------------------------------------

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) noexcept;

  // -- static helpers ---------------------------------------------------------

  /// Quotient and remainder in one division (truncated semantics).
  /// Throws std::domain_error when `divisor` is zero.
  [[nodiscard]] static std::pair<BigInt, BigInt> div_mod(const BigInt& dividend,
                                                         const BigInt& divisor);
  /// Non-negative greatest common divisor; gcd(0, 0) == 0.
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);
  /// `base` raised to `exponent` (exponent >= 0).
  [[nodiscard]] static BigInt pow(const BigInt& base, std::uint64_t exponent);
  /// Exact factorial n!.
  [[nodiscard]] static BigInt factorial(std::uint32_t n);

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

 private:
  // Magnitude comparison ignoring sign: -1, 0, +1.
  static int compare_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept;
  // |a| + |b| -> result magnitude.
  static std::vector<Limb> add_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  // |a| - |b| assuming |a| >= |b|.
  static std::vector<Limb> sub_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  // Schoolbook product of magnitudes.
  static std::vector<Limb> mul_schoolbook(const std::vector<Limb>& a, const std::vector<Limb>& b);
  // Karatsuba product (falls back to schoolbook below a threshold).
  static std::vector<Limb> mul_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  // Knuth Algorithm D on magnitudes; returns {quotient, remainder}.
  static std::pair<std::vector<Limb>, std::vector<Limb>> divmod_magnitude(
      const std::vector<Limb>& dividend, const std::vector<Limb>& divisor);
  // Drop trailing zero limbs and normalize the sign of zero.
  void trim() noexcept;

  std::vector<Limb> limbs_;
  bool negative_ = false;
};

/// Convenience literal-ish factory used in tests: BigInt from decimal text.
[[nodiscard]] inline BigInt big(std::string_view decimal) { return BigInt(decimal); }

}  // namespace ddm::util
