#include "util/parallel.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace ddm::util {

namespace {

unsigned configured_lanes() {
  if (const char* env = std::getenv("DDM_THREADS")) {
    return parse_thread_count("DDM_THREADS", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Engine metrics (docs/observability.md). Handles are registered once per
// process; every bump is gated on the enable flag inside the handle.
struct EngineMetrics {
  obs::Counter chunks_run = obs::counter("parallel.chunks_run");
  obs::Counter chunks_retried = obs::counter("parallel.chunks_retried");
  obs::Counter faults_injected = obs::counter("parallel.faults_injected");
  obs::Counter regions = obs::counter("parallel.regions");
  obs::Counter regions_stopped = obs::counter("parallel.regions_stopped");
  obs::Histogram chunk_seconds = obs::histogram("parallel.chunk_seconds");
  obs::Histogram queue_seconds = obs::histogram("parallel.queue_seconds");
  obs::Histogram backoff_seconds = obs::histogram("parallel.backoff_seconds");

  static const EngineMetrics& get() {
    static const EngineMetrics metrics;
    return metrics;
  }
};

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Global pool of (lanes - 1) workers; the caller of parallel_for is the
// remaining lane. Constructed on first use, joined at static destruction.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  [[nodiscard]] unsigned lanes() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  void submit(std::function<void()> task) {
    {
      std::scoped_lock lock(mutex_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() {
    const unsigned lanes = configured_lanes();
    workers_.reserve(lanes > 0 ? lanes - 1 : 0);
    for (unsigned w = 1; w < lanes; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  void worker_loop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and nothing left to drain
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Builds the typed cooperative-stop exception for `reason`.
[[nodiscard]] std::exception_ptr make_stop_error(StopReason reason, const char* label,
                                                 std::size_t completed, std::size_t total) {
  if (reason == StopReason::kCancelled) {
    return std::make_exception_ptr(Cancelled(label, completed, total));
  }
  return std::make_exception_ptr(DeadlineExceeded(label, completed, total));
}

// Runs one chunk with the fault-injection hook, the caller's validation
// hook, and bounded retry of transient failures (injected TransientFault or
// validation rejection) under the options' RetryPolicy — between attempts
// the retry backoff sleeps (deadline-clamped) and the RunControl is
// re-polled, so a cancel or deadline cuts a retry loop short instead of
// letting it spin. Returns nullptr on success; on failure returns the
// exception to surface — the original exception for non-transient body
// errors, a typed stop error when control fired mid-retry, or a
// ParallelError naming the chunk once retries are exhausted. Bodies must be
// idempotent over [lo, hi): a retry simply re-runs them.
std::exception_ptr attempt_chunk(std::size_t k, std::size_t lo, std::size_t hi,
                                 const std::function<void(std::size_t, std::size_t)>& body,
                                 const ParallelOptions& options, std::size_t completed,
                                 std::size_t total) {
  const EngineMetrics& metrics = EngineMetrics::get();
  std::string transient_cause;
  for (unsigned attempt = 0; attempt <= options.retry.max_retries; ++attempt) {
    if (attempt > 0) {
      // A retry is new work: re-check the stop conditions and apply the
      // deterministic backoff before burning another attempt.
      if (options.control.engaged()) {
        const StopReason reason = options.control.should_stop();
        if (reason != StopReason::kNone) {
          return make_stop_error(reason, options.label, completed, total);
        }
      }
      const std::chrono::nanoseconds delay = options.retry.delay_before(attempt, k);
      if (delay.count() > 0) {
        metrics.backoff_seconds.record(static_cast<double>(delay.count()) * 1e-9);
        sleep_with_deadline(delay, options.control.deadline);
      }
    }
    try {
      DDM_SPAN("parallel.chunk", {{"label", options.label},
                                  {"chunk", static_cast<std::int64_t>(k)},
                                  {"attempt", static_cast<std::int64_t>(attempt)}});
      obs::ScopedTimer timer(metrics.chunk_seconds);
      metrics.chunks_run.add();
      if (attempt > 0) metrics.chunks_retried.add();
      fault::before_chunk(k);
      body(lo, hi);
      if (options.validate && !options.validate(lo, hi)) {
        transient_cause = "chunk results failed validation";
        continue;
      }
      return nullptr;
    } catch (const fault::TransientFault& fault_error) {
      metrics.faults_injected.add();
      transient_cause = fault_error.what();
      continue;
    } catch (...) {
      return std::current_exception();
    }
  }
  return std::make_exception_ptr(ParallelError(options.label, k, lo, hi,
                                               options.retry.max_retries + 1, transient_cause));
}

// Shared bookkeeping for one parallel_for call. Helpers hold the state via
// shared_ptr so a late-waking helper that finds no chunks left can exit
// safely even after the caller has returned.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t chunks = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  // Held by value: a late-waking helper may touch the options after the
  // caller has returned (the body pointer is only dereferenced while the
  // caller still waits, i.e. while undone chunks remain).
  ParallelOptions options;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  // Region start, captured only while metrics are enabled (0 otherwise);
  // run_chunks derives per-chunk queue latency from it.
  std::uint64_t region_start_ns = 0;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::exception_ptr first_error;
  /// First stop reason observed (StopReason as int; 0 = none). Once set,
  /// every not-yet-claimed chunk is skipped — claimed fast, counted done —
  /// so the caller's wait completes promptly while in-flight chunks finish.
  std::atomic<int> stop_reason{0};
  /// Chunks that ran to a successful completion (the partial-progress count
  /// reported by the typed stop errors).
  std::atomic<std::size_t> executed{0};

  void run_chunks() {
    const std::size_t grain = options.grain;
    const bool watched = options.control.engaged();
    while (true) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= chunks) return;
      bool skip = stop_reason.load(std::memory_order_relaxed) != 0;
      if (!skip && watched) {
        const StopReason reason = options.control.should_stop();
        if (reason != StopReason::kNone) {
          int expected = 0;
          stop_reason.compare_exchange_strong(expected, static_cast<int>(reason),
                                              std::memory_order_relaxed);
          skip = true;
        }
      }
      if (!skip) {
        if (region_start_ns != 0 && obs::metrics_enabled()) {
          EngineMetrics::get().queue_seconds.record(
              static_cast<double>(steady_ns() - region_start_ns) * 1e-9);
        }
        const std::size_t lo = begin + k * grain;
        const std::size_t hi = std::min(end, lo + grain);
        if (std::exception_ptr error =
                attempt_chunk(k, lo, hi, *body, options,
                              executed.load(std::memory_order_relaxed), chunks)) {
          std::scoped_lock lock(mutex);
          if (!first_error) first_error = std::move(error);
        } else {
          executed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::scoped_lock lock(mutex);
      if (++done == chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

unsigned parallelism() { return ThreadPool::instance().lanes(); }

unsigned parse_thread_count(const char* env_name, const char* text) {
  const std::string value = text == nullptr ? std::string() : std::string(text);
  unsigned parsed = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed, 10);
  if (value.empty() || ec != std::errc{} || ptr != last || parsed < 1 || parsed > 4096) {
    throw Error(std::string(env_name) + ": invalid thread count '" + value +
                "' (expected a decimal integer in [1, 4096])");
  }
  return parsed;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& chunk_body,
                  std::size_t grain, unsigned max_workers) {
  ParallelOptions options;
  options.grain = grain;
  options.max_workers = max_workers;
  parallel_for(begin, end, chunk_body, options);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& chunk_body,
                  const ParallelOptions& options_in) {
  if (end <= begin) return;
  ParallelOptions options = options_in;
  if (options.grain == 0) options.grain = 1;
  const std::size_t grain = options.grain;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  DDM_SPAN("parallel.region", {{"label", options.label},
                               {"chunks", static_cast<std::int64_t>(chunks)}});
  EngineMetrics::get().regions.add();
  unsigned lanes = parallelism();
  if (options.max_workers != 0 && options.max_workers < lanes) lanes = options.max_workers;
  if (chunks == 1 || lanes <= 1) {
    // Serial path: same per-chunk fault/validate/retry semantics, immediate
    // rethrow (mirrors the pooled first-error contract for a single lane).
    const bool watched = options.control.engaged();
    for (std::size_t k = 0; k < chunks; ++k) {
      if (watched) {
        const StopReason reason = options.control.should_stop();
        if (reason != StopReason::kNone) {
          EngineMetrics::get().regions_stopped.add();
          std::rethrow_exception(make_stop_error(reason, options.label, k, chunks));
        }
      }
      const std::size_t lo = begin + k * grain;
      const std::size_t hi = std::min(end, lo + grain);
      if (std::exception_ptr error = attempt_chunk(k, lo, hi, chunk_body, options, k, chunks)) {
        std::rethrow_exception(error);
      }
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->chunks = chunks;
  state->begin = begin;
  state->end = end;
  state->options = options;
  state->body = &chunk_body;
  if (obs::metrics_enabled()) state->region_start_ns = steady_ns();

  const std::size_t helpers = std::min<std::size_t>(lanes - 1, chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    ThreadPool::instance().submit([state] { state->run_chunks(); });
  }
  state->run_chunks();  // the calling thread is a lane too

  std::unique_lock lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->done == state->chunks; });
  if (state->first_error) std::rethrow_exception(state->first_error);
  const int stopped = state->stop_reason.load(std::memory_order_relaxed);
  if (stopped != 0) {
    EngineMetrics::get().regions_stopped.add();
    std::rethrow_exception(make_stop_error(static_cast<StopReason>(stopped), options.label,
                                           state->executed.load(std::memory_order_relaxed),
                                           chunks));
  }
}

}  // namespace ddm::util
