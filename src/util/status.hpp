// status.hpp — the library's error taxonomy.
//
// Robustness contract (docs/robustness.md): failures are never silent.
// Numerical trouble in the fast double kernels surfaces as NumericError (or
// escalates through the certified ladder, util/certify.hpp), a parallel chunk
// that exhausts its retries surfaces as ParallelError carrying the chunk
// range and root cause, and checkpoint corruption surfaces as
// CheckpointError. All types derive from ddm::Error, itself a
// std::runtime_error, so call sites may catch at whichever granularity they
// need.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ddm {

/// Root of the ddm error hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// A floating-point evaluation produced (or would have produced) a
/// non-finite or otherwise untrustworthy value — e.g. BigInt::to_double
/// overflowed to ±inf inside a kernel prefactor, or an inclusion-exclusion
/// sum lost all significant digits. The certified evaluators catch this and
/// escalate to a more rigorous tier; plain kernels throw it to the caller
/// instead of returning inf/NaN.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& message) : Error(message) {}
};

/// Throws NumericError unless `value` is finite. `what` names the quantity
/// (kernel and operand) for the error message. Returns `value` so guards can
/// wrap expressions in place.
inline double require_finite(double value, const char* what) {
  if (!std::isfinite(value)) {
    throw NumericError(std::string(what) + ": non-finite value " + std::to_string(value) +
                       " (overflow or invalid operand; use the exact or certified evaluator)");
  }
  return value;
}

/// A chunk of a parallel region failed permanently: its body kept throwing
/// transient faults, or its results kept failing the caller's validation,
/// beyond the configured retry budget. Carries the chunk ordinal, the index
/// range it covered, the number of attempts made, and the root-cause message
/// of the final failure.
class ParallelError : public Error {
 public:
  ParallelError(std::string label, std::size_t chunk, std::size_t lo, std::size_t hi,
                unsigned attempts, std::string cause)
      : Error("parallel[" + label + "]: chunk " + std::to_string(chunk) + " [" +
              std::to_string(lo) + ", " + std::to_string(hi) + ") failed after " +
              std::to_string(attempts) + (attempts == 1 ? " attempt: " : " attempts: ") + cause),
        label_(std::move(label)),
        chunk_(chunk),
        lo_(lo),
        hi_(hi),
        attempts_(attempts),
        cause_(std::move(cause)) {}

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::size_t chunk() const noexcept { return chunk_; }
  [[nodiscard]] std::size_t chunk_begin() const noexcept { return lo_; }
  [[nodiscard]] std::size_t chunk_end() const noexcept { return hi_; }
  [[nodiscard]] unsigned attempts() const noexcept { return attempts_; }
  [[nodiscard]] const std::string& cause() const noexcept { return cause_; }

 private:
  std::string label_;
  std::size_t chunk_;
  std::size_t lo_;
  std::size_t hi_;
  unsigned attempts_;
  std::string cause_;
};

/// Partial-progress accounting carried by the cooperative-stop errors: how
/// many work units (parallel chunks, ladder tiers, request attempts — the
/// label says which) completed before the evaluation was cut off.
class StoppedError : public Error {
 public:
  StoppedError(const std::string& message, std::string label, std::size_t completed,
               std::size_t total)
      : Error(message), label_(std::move(label)), completed_(completed), total_(total) {}

  /// Region / ladder / request label the stop struck.
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  /// Work units finished before the stop.
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }
  /// Work units the evaluation would have run.
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  std::string label_;
  std::size_t completed_;
  std::size_t total_;
};

/// An evaluation was cut off because its RunControl deadline passed. The
/// result is *absent*, not approximate: callers that can still answer under
/// pressure degrade explicitly (engine::evaluate_resilient) rather than
/// returning a silently truncated value.
class DeadlineExceeded : public StoppedError {
 public:
  // NB: `label` must not be moved into the base while the sibling argument
  // still reads it — argument evaluation order is unspecified.
  DeadlineExceeded(const std::string& label, std::size_t completed, std::size_t total)
      : StoppedError("deadline exceeded in " + label + " after " + std::to_string(completed) +
                         " of " + std::to_string(total) + " work units",
                     label, completed, total) {}
};

/// An evaluation was cut off because its CancelToken fired. Unlike a missed
/// deadline this is never degraded around — the caller asked for the work to
/// stop, so the error propagates to them as-is.
class Cancelled : public StoppedError {
 public:
  Cancelled(const std::string& label, std::size_t completed, std::size_t total)
      : StoppedError("cancelled in " + label + " after " + std::to_string(completed) + " of " +
                         std::to_string(total) + " work units",
                     label, completed, total) {}
};

/// A sweep checkpoint file could not be used: unreadable, wrong header
/// (parameters differ from the run being resumed), or unparseable row.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& message) : Error(message) {}
};

/// A persisted compiled plan (poly/plan_store.hpp) failed validate-on-load:
/// bad magic/checksum, truncated payload, non-monotonic breakpoints, a
/// certificate that no longer matches the stored bound, or a stale format
/// version. Carries the offending (n, t) so fleet operators can tell WHICH
/// plan file is bad, and `stale()` distinguishes a version skew (safe to
/// re-lower and overwrite) from genuine corruption.
class PlanStoreError : public Error {
 public:
  PlanStoreError(const std::string& reason, std::uint32_t n, std::string t, std::string path,
                 bool stale = false)
      : Error("plan store: plan (n=" + std::to_string(n) + ", t=" + t + ") in '" + path +
              "': " + reason),
        n_(n),
        t_(std::move(t)),
        path_(std::move(path)),
        stale_(stale) {}

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] const std::string& t() const noexcept { return t_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// True when the file merely predates the current format version (the
  /// cache counts these as `engine.store.stale` and re-lowers).
  [[nodiscard]] bool stale() const noexcept { return stale_; }

 private:
  std::uint32_t n_;
  std::string t_;
  std::string path_;
  bool stale_;
};

/// A persisted engine policy table (engine/cost_model.hpp) failed
/// validate-on-load: unreadable file, bad magic line, malformed cell,
/// checksum mismatch, or a truncated table with no checksum trailer. Carries
/// the path and the configuration source that pointed at it ("DDM_POLICY",
/// "--policy", "--policy-table"), so the operator knows WHICH knob to fix;
/// `stale()` distinguishes a format-version skew (safe to re-calibrate and
/// overwrite) from genuine corruption — the same split PlanStoreError makes.
class PolicyError : public Error {
 public:
  PolicyError(const std::string& reason, std::string path, std::string source,
              bool stale = false)
      : Error("policy table (" + source + ") '" + path + "': " + reason),
        path_(std::move(path)),
        source_(std::move(source)),
        stale_(stale) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// The flag or environment variable that named the table.
  [[nodiscard]] const std::string& source() const noexcept { return source_; }
  /// True when the file merely predates the current format version.
  [[nodiscard]] bool stale() const noexcept { return stale_; }

 private:
  std::string path_;
  std::string source_;
  bool stale_;
};

/// A DDM_FAULT_PLAN string (util/fault.hpp) does not match the plan grammar.
class FaultPlanError : public Error {
 public:
  explicit FaultPlanError(const std::string& message) : Error(message) {}
};

}  // namespace ddm
