#include "util/checkpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <iterator>
#include <limits>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace ddm::util {

namespace {

// Extracts the value of `"key": ...` from a single-line JSON object into
// `out` (quotes stripped for string values). Returns false when the key is
// absent or the line is malformed.
bool extract_field(std::string_view line, std::string_view key, std::string& out) {
  const std::string pattern = "\"" + std::string(key) + "\": ";
  const auto pos = line.find(pattern);
  if (pos == std::string_view::npos) return false;
  std::size_t start = pos + pattern.size();
  if (start >= line.size()) return false;
  std::size_t end;
  if (line[start] == '"') {
    ++start;
    end = line.find('"', start);
  } else {
    end = line.find_first_of(",}", start);
  }
  if (end == std::string_view::npos || end < start) return false;
  out = std::string(line.substr(start, end - start));
  return !out.empty() || line[start - 1] == '"';
}

bool parse_u32_field(std::string_view line, std::string_view key, std::uint32_t& out) {
  std::string text;
  if (!extract_field(line, key, text)) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

bool parse_double_field(std::string_view line, std::string_view key, double& out) {
  std::string text;
  if (!extract_field(line, key, text)) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return errno == 0 && end == text.c_str() + text.size() && !text.empty();
}

// Lossless double → text: max_digits10 significant digits round-trip through
// strtod to the identical bit pattern, which is what makes resumed output
// byte-identical (the sweep prints with the same precision).
std::string format_double(double value) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return os.str();
}

std::string header_line(const SweepParams& params) {
  std::ostringstream os;
  os << "{\"sweep\": {\"n\": " << params.n << ", \"t\": \"" << params.t << "\", \"beta_lo\": \""
     << params.beta_lo << "\", \"beta_hi\": \"" << params.beta_hi << "\", \"steps\": "
     << params.steps << ", \"engine\": \"" << params.engine << "\", \"resolved\": \""
     << params.resolved << "\", \"shard\": \"" << params.shard_index << "/"
     << params.shard_count << "\", \"scenario\": \"" << params.scenario << "\"}}";
  return os.str();
}

bool parse_row(std::string_view line, SweepRow& row) {
  return parse_u32_field(line, "k", row.k) && parse_double_field(line, "beta", row.beta) &&
         parse_double_field(line, "p_win", row.p_win);
}

bool parse_header(std::string_view line, SweepParams& params) {
  if (!(parse_u32_field(line, "n", params.n) && extract_field(line, "t", params.t) &&
        extract_field(line, "beta_lo", params.beta_lo) &&
        extract_field(line, "beta_hi", params.beta_hi) &&
        parse_u32_field(line, "steps", params.steps))) {
    return false;
  }
  // Engine/shard fields are parsed leniently so a pre-upgrade header still
  // PARSES — the field-by-field validation then rejects it by naming the
  // empty 'engine' field, which diagnoses far better than "unparseable".
  if (!extract_field(line, "engine", params.engine)) params.engine.clear();
  if (!extract_field(line, "resolved", params.resolved)) params.resolved.clear();
  std::string shard;
  if (extract_field(line, "shard", shard)) {
    const auto slash = shard.find('/');
    if (slash == std::string::npos) return false;
    std::uint32_t index = 0;
    std::uint32_t count = 0;
    const char* ib = shard.data();
    const char* ie = ib + slash;
    const char* cb = ib + slash + 1;
    const char* ce = shard.data() + shard.size();
    if (std::from_chars(ib, ie, index).ptr != ie || std::from_chars(cb, ce, count).ptr != ce ||
        count == 0 || index >= count) {
      return false;
    }
    params.shard_index = index;
    params.shard_count = count;
  } else {
    params.shard_index = 0;
    params.shard_count = 1;
  }
  // A header without the field predates the scenario seam, when every sweep
  // evaluated the homogeneous game — defaulting (rather than rejecting)
  // keeps old default-scenario checkpoints resumable.
  if (!extract_field(line, "scenario", params.scenario)) params.scenario = "homogeneous";
  return true;
}

std::string shard_text(const SweepParams& params) {
  return std::to_string(params.shard_index) + "/" + std::to_string(params.shard_count);
}

// First mismatching field between a parsed header and the requested params,
// as "field 'name': checkpoint X vs requested Y" — or empty when they agree.
std::string describe_mismatch(const SweepParams& header, const SweepParams& requested) {
  const auto field = [](const char* name, const std::string& have, const std::string& want) {
    return "field '" + std::string(name) + "': checkpoint " + (have.empty() ? "<absent>" : have) +
           " vs requested " + want;
  };
  if (header.n != requested.n) {
    return field("n", std::to_string(header.n), std::to_string(requested.n));
  }
  if (header.t != requested.t) return field("t", header.t, requested.t);
  if (header.beta_lo != requested.beta_lo) {
    return field("beta_lo", header.beta_lo, requested.beta_lo);
  }
  if (header.beta_hi != requested.beta_hi) {
    return field("beta_hi", header.beta_hi, requested.beta_hi);
  }
  if (header.steps != requested.steps) {
    return field("steps", std::to_string(header.steps), std::to_string(requested.steps));
  }
  // The scenario outranks the engine fields: a resume posing a different
  // game resolves to a different engine too, and naming the engine first
  // would hide the real disagreement.
  if (header.scenario != requested.scenario) {
    return field("scenario", header.scenario, requested.scenario);
  }
  if (header.engine != requested.engine) return field("engine", header.engine, requested.engine);
  if (header.resolved != requested.resolved) {
    return field("resolved", header.resolved, requested.resolved);
  }
  if (header.shard_index != requested.shard_index ||
      header.shard_count != requested.shard_count) {
    return field("shard", shard_text(header), shard_text(requested));
  }
  return std::string();
}

// Parse core shared by resume (SweepCheckpoint::load) and the read-only
// loader (read_checkpoint): header + complete rows + torn-tail detection.
// Returns the byte length of the valid prefix.
std::uintmax_t parse_checkpoint_file(const std::string& path, LoadedCheckpoint& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint: cannot read '" + path + "' (--resume needs an existing file)");
  }
  const std::string content{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  // Only newline-TERMINATED lines are complete records. Splitting on '\n'
  // (rather than std::getline, which silently accepts an unterminated final
  // line) is what catches the subtle torn case: a crash after writing a
  // record's bytes but before its newline. Such a record parses fine, but
  // keeping it would make valid_bytes exceed the data we can safely append
  // after — the next append would glue onto it, corrupting the file for the
  // resume after that. Any unterminated tail is a torn fragment: discarded
  // here, truncated away by the resume constructor.
  std::vector<std::string_view> lines;
  const std::string_view view{content};
  std::size_t pos = 0;
  while (pos < view.size()) {
    const std::size_t nl = view.find('\n', pos);
    if (nl == std::string_view::npos) break;
    lines.push_back(view.substr(pos, nl - pos));
    pos = nl + 1;
  }
  out.torn_tail = pos < view.size();
  if (lines.empty()) {
    throw CheckpointError("checkpoint: '" + path + "' is empty (missing header)");
  }
  if (!parse_header(lines.front(), out.params)) {
    throw CheckpointError("checkpoint: '" + path + "' has an unparseable header line");
  }
  std::uintmax_t valid_bytes = lines.front().size() + 1;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    SweepRow row;
    // A newline-terminated line that fails to parse was written whole — that
    // is mid-file corruption, not a torn append, so it is an error anywhere.
    if (!parse_row(lines[i], row)) {
      throw CheckpointError("checkpoint: '" + path + "' line " + std::to_string(i + 1) +
                            " is corrupt");
    }
    if (row.k > out.params.steps) {
      throw CheckpointError("checkpoint: '" + path + "' line " + std::to_string(i + 1) +
                            " has k out of range");
    }
    if (row.k % out.params.shard_count != out.params.shard_index) {
      throw CheckpointError("checkpoint: '" + path + "' line " + std::to_string(i + 1) +
                            " has k " + std::to_string(row.k) + " outside shard " +
                            shard_text(out.params));
    }
    out.rows[row.k] = row;
    valid_bytes += lines[i].size() + 1;
  }
  return valid_bytes;
}

}  // namespace

SweepCheckpoint::SweepCheckpoint(std::string path, const SweepParams& params, bool resume)
    : path_(std::move(path)) {
  bool need_header = true;
  if (resume) {
    const std::uintmax_t valid_bytes = load(params);
    // Drop a torn trailing fragment (crash mid-append, no newline) so the
    // next append starts on a fresh line; a second resume then sees only
    // complete rows.
    std::error_code ec;
    if (std::filesystem::file_size(path_, ec) > valid_bytes && !ec) {
      std::filesystem::resize_file(path_, valid_bytes, ec);
      if (ec) {
        throw CheckpointError("checkpoint: cannot truncate torn line in '" + path_ + "'");
      }
    }
    need_header = false;
  }
  out_.open(path_, resume ? (std::ios::out | std::ios::app) : (std::ios::out | std::ios::trunc));
  if (!out_) {
    throw CheckpointError("checkpoint: cannot open '" + path_ + "' for writing");
  }
#if defined(__unix__) || defined(__APPLE__)
  sync_fd_ = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (sync_fd_ < 0) {
    throw CheckpointError("checkpoint: cannot open '" + path_ + "' for fsync");
  }
#endif
  if (need_header) {
    out_ << header_line(params) << "\n" << std::flush;
    if (!out_) throw CheckpointError("checkpoint: failed to write header to '" + path_ + "'");
    // The header must hit stable storage before any row: a resume that finds
    // rows but no header line rejects the whole file as corrupt.
    sync_to_disk("header");
  }
}

SweepCheckpoint::~SweepCheckpoint() {
#if defined(__unix__) || defined(__APPLE__)
  if (sync_fd_ >= 0) ::close(sync_fd_);
#endif
}

void SweepCheckpoint::sync_to_disk(const char* what) {
  out_.flush();
  if (!out_) {
    throw CheckpointError("checkpoint: failed to flush " + std::string(what) + " to '" + path_ +
                          "'");
  }
#if defined(__unix__) || defined(__APPLE__)
  // std::flush above only hands the bytes to the kernel; fsync is what makes
  // the append-then-crash contract hold across power loss, not just process
  // death. Regression note: before this existed, a host crash could lose
  // rows the sweep driver had already counted as durable, so a resume
  // recomputed nothing and the output silently missed blocks.
  if (::fsync(sync_fd_) != 0) {
    throw CheckpointError("checkpoint: fsync of " + std::string(what) + " failed for '" + path_ +
                          "'");
  }
  if (obs::metrics_enabled()) {
    static const obs::Counter fsyncs = obs::counter("checkpoint.fsyncs");
    fsyncs.add();
  }
#endif
}

std::uintmax_t SweepCheckpoint::load(const SweepParams& params) {
  DDM_SPAN("checkpoint.load");
  LoadedCheckpoint loaded;
  const std::uintmax_t valid_bytes = parse_checkpoint_file(path_, loaded);
  // Field-by-field identity check: the first mismatch is NAMED so the
  // operator learns exactly what differs (a resume under a different engine
  // or shard must not silently glue rows from a different sweep).
  const std::string mismatch = describe_mismatch(loaded.params, params);
  if (!mismatch.empty()) {
    throw CheckpointError("checkpoint: '" + path_ + "' was written by a different sweep (" +
                          mismatch + ")");
  }
  rows_ = std::move(loaded.rows);
  if (obs::metrics_enabled()) {
    static const obs::Counter loaded_counter = obs::counter("checkpoint.records_loaded");
    static const obs::Counter truncated = obs::counter("checkpoint.records_truncated");
    loaded_counter.add(rows_.size());
    if (loaded.torn_tail) truncated.add();
  }
  return valid_bytes;
}

LoadedCheckpoint read_checkpoint(const std::string& path) {
  DDM_SPAN("checkpoint.read");
  LoadedCheckpoint loaded;
  parse_checkpoint_file(path, loaded);
  return loaded;
}

void SweepCheckpoint::append(const SweepRow& row) {
  out_ << "{\"k\": " << row.k << ", \"beta\": " << format_double(row.beta)
       << ", \"p_win\": " << format_double(row.p_win) << "}\n";
  if (!out_) throw CheckpointError("checkpoint: failed to append row to '" + path_ + "'");
  sync_to_disk("row");
  rows_[row.k] = row;
  static const obs::Counter written = obs::counter("checkpoint.records_written");
  written.add();
}

}  // namespace ddm::util
