#include "util/interval.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace ddm::util {

RationalInterval::RationalInterval(Rational lo, Rational hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  if (lo_ > hi_) throw std::invalid_argument("RationalInterval: lo > hi");
}

RationalInterval& RationalInterval::operator+=(const RationalInterval& rhs) {
  lo_ += rhs.lo_;
  hi_ += rhs.hi_;
  return *this;
}

RationalInterval& RationalInterval::operator-=(const RationalInterval& rhs) {
  const Rational new_lo = lo_ - rhs.hi_;
  hi_ -= rhs.lo_;
  lo_ = new_lo;
  return *this;
}

RationalInterval& RationalInterval::operator*=(const RationalInterval& rhs) {
  const Rational a = lo_ * rhs.lo_;
  const Rational b = lo_ * rhs.hi_;
  const Rational c = hi_ * rhs.lo_;
  const Rational d = hi_ * rhs.hi_;
  lo_ = std::min(std::min(a, b), std::min(c, d));
  hi_ = std::max(std::max(a, b), std::max(c, d));
  return *this;
}

namespace {

// Largest multiple of 2^-bits that is <= v (round_up = false), or smallest
// multiple >= v (round_up = true).
Rational round_dyadic(const Rational& v, unsigned bits, bool round_up) {
  const Rational scaled{v.num() << bits, v.den()};
  const BigInt quantized = round_up ? scaled.ceil() : scaled.floor();
  return Rational{quantized, BigInt{1} << bits};
}

}  // namespace

RationalInterval outward_round(const RationalInterval& x, unsigned bits) {
  return RationalInterval{round_dyadic(x.lo(), bits, /*round_up=*/false),
                          round_dyadic(x.hi(), bits, /*round_up=*/true)};
}

RationalInterval pow_outward(const RationalInterval& x, std::uint32_t exp, unsigned bits) {
  RationalInterval result{Rational{1}};
  RationalInterval base = outward_round(x, bits);
  while (exp != 0) {
    if (exp & 1u) result = outward_round(result * base, bits);
    exp >>= 1;
    if (exp != 0) base = outward_round(base * base, bits);
  }
  return result;
}

std::string RationalInterval::to_string() const {
  return "[" + lo_.to_string() + ", " + hi_.to_string() + "]";
}

std::ostream& operator<<(std::ostream& os, const RationalInterval& interval) {
  return os << interval.to_string();
}

}  // namespace ddm::util
