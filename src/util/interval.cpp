#include "util/interval.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace ddm::util {

RationalInterval::RationalInterval(Rational lo, Rational hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  if (lo_ > hi_) throw std::invalid_argument("RationalInterval: lo > hi");
}

RationalInterval& RationalInterval::operator+=(const RationalInterval& rhs) {
  lo_ += rhs.lo_;
  hi_ += rhs.hi_;
  return *this;
}

RationalInterval& RationalInterval::operator-=(const RationalInterval& rhs) {
  const Rational new_lo = lo_ - rhs.hi_;
  hi_ -= rhs.lo_;
  lo_ = new_lo;
  return *this;
}

RationalInterval& RationalInterval::operator*=(const RationalInterval& rhs) {
  const Rational a = lo_ * rhs.lo_;
  const Rational b = lo_ * rhs.hi_;
  const Rational c = hi_ * rhs.lo_;
  const Rational d = hi_ * rhs.hi_;
  lo_ = std::min(std::min(a, b), std::min(c, d));
  hi_ = std::max(std::max(a, b), std::max(c, d));
  return *this;
}

std::string RationalInterval::to_string() const {
  return "[" + lo_.to_string() + ", " + hi_.to_string() + "]";
}

std::ostream& operator<<(std::ostream& os, const RationalInterval& interval) {
  return os << interval.to_string();
}

}  // namespace ddm::util
