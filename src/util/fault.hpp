// fault.hpp — deterministic fault injection for the parallel engine.
//
// Testing the unhappy paths of util/parallel requires failures that strike a
// *specific* chunk a *specific* number of times, regardless of which worker
// thread happens to run it. This module holds a process-wide fault plan —
// parsed from the DDM_FAULT_PLAN environment variable or installed
// programmatically by tests — that the engine consults at deterministic
// points:
//
//   throw@K   before chunk K's body runs, throw TransientFault
//   delay@K   before chunk K's body runs, sleep (default 10 ms)
//   nan@K     poison chunk K's output with a quiet NaN (applied by
//             cooperating kernels via consume_nan; detected by the caller's
//             ParallelOptions::validate hook)
//
// Grammar (see docs/robustness.md):
//   plan      := directive (',' directive)*
//   directive := ('throw' | 'nan' | 'delay') '@' chunk ['x' count] [':' millis 'ms']
// `chunk` is the chunk ordinal within the deterministic (range, grain)
// partition; `count` is how many times the directive fires before it is
// spent (default 1, i.e. a transient fault that a single retry clears);
// `millis` applies to delay only. Examples: "throw@3", "nan@0x2",
// "delay@5:50ms", "throw@1,nan@4".
//
// Every directive carries a finite firing budget, so a retried chunk
// eventually runs clean and the overall results are bit-identical to a
// fault-free run — the property the fault-injection test matrix asserts.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ddm::util::fault {

/// Exception thrown by an injected `throw` directive. The parallel engine
/// retries chunks that fail with this type (up to ParallelOptions::
/// max_retries); anything else propagates immediately.
class TransientFault : public std::runtime_error {
 public:
  explicit TransientFault(const std::string& message) : std::runtime_error(message) {}
};

enum class Kind { kThrow, kNanPoison, kDelay };

struct Directive {
  Kind kind = Kind::kThrow;
  std::size_t chunk = 0;   ///< chunk ordinal the fault targets
  unsigned count = 1;      ///< firings before the directive is spent
  unsigned millis = 10;    ///< sleep length (delay directives)
};

/// A parsed fault plan. `parse` throws ddm::FaultPlanError on grammar
/// violations, naming the offending directive.
struct Plan {
  std::vector<Directive> directives;

  [[nodiscard]] static Plan parse(std::string_view text);
  [[nodiscard]] bool empty() const noexcept { return directives.empty(); }
};

/// Installs `plan` as the process-wide active plan (replacing any previous
/// one, including a plan loaded from DDM_FAULT_PLAN). Thread-safe.
void set_plan(Plan plan);

/// Removes the active plan (subsequent hooks are no-ops).
void clear_plan();

/// True while any directive still has firings left. Cheap (one relaxed
/// atomic load) — the engine calls this on every chunk attempt.
[[nodiscard]] bool active() noexcept;

/// Engine hook, called before each attempt at chunk `chunk`: applies a
/// pending delay directive (sleeps) and/or throw directive (throws
/// TransientFault). Loads DDM_FAULT_PLAN on first use.
void before_chunk(std::size_t chunk);

/// Kernel hook for nan-poison directives: returns true (consuming one
/// firing) when chunk `chunk` should emit a poisoned value. Cooperating
/// kernels (e.g. threshold_winning_probability_batch) overwrite one output
/// with a quiet NaN when this fires; the caller's validate hook then fails
/// the chunk and the engine retries it.
[[nodiscard]] bool consume_nan(std::size_t chunk) noexcept;

/// Cumulative injection counters (process-wide, never reset by
/// set_plan/clear_plan); used by tests to assert that faults actually fired.
struct Counters {
  std::uint64_t throws_injected = 0;
  std::uint64_t nans_injected = 0;
  std::uint64_t delays_injected = 0;
};
[[nodiscard]] Counters counters() noexcept;

}  // namespace ddm::util::fault
