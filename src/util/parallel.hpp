// parallel.hpp — the library's shared parallel-execution engine.
//
// Every evaluation surface that fans independent work across cores (Monte
// Carlo trial blocks, compass-search probes, batch grid evaluation) goes
// through this module instead of spawning ad-hoc std::threads. A single
// lazily-initialized global thread pool amortizes thread creation across
// calls; `parallel_for` hands out fixed-grain index chunks from a shared
// atomic counter, and `parallel_reduce` combines per-chunk partials in chunk
// order. Because the chunk decomposition depends only on (range, grain) —
// never on the number of workers — any reduction over chunk results is
// bitwise identical for every thread count, which is what makes the Monte
// Carlo wins tally and the double-precision batch evaluators reproducible.
// See docs/performance.md for the design rationale.
//
// Nested use is safe: the calling thread always participates in executing
// chunks, so a pool worker that itself calls parallel_for drains the inner
// range even when every other worker is busy.
//
// Fault tolerance (docs/robustness.md): each chunk attempt first passes
// through the fault-injection hook (util/fault.hpp), and a chunk that fails
// with a fault::TransientFault — or whose results fail the caller's
// `validate` hook, e.g. a NaN-poisoned output — is retried under
// ParallelOptions::retry (bounded attempts, deterministic exponential
// backoff) before the call fails with a ddm::ParallelError naming the chunk.
// Any other exception from the body propagates immediately (first error
// wins), preserving the pre-existing rethrow contract.
//
// Cooperative stop (ParallelOptions::control): when a CancelToken or
// Deadline is attached, it is polled once per chunk claim (and between retry
// attempts). A stop skips every not-yet-claimed chunk, lets in-flight chunks
// finish, and surfaces as ddm::Cancelled / ddm::DeadlineExceeded carrying
// how many chunks completed out of how many. Unset control costs one
// `engaged()` check per chunk — no clock reads, no atomics.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/resilience.hpp"

namespace ddm::util {

/// Tuning and robustness knobs for parallel_for / parallel_reduce.
struct ParallelOptions {
  /// Indices per chunk (the deterministic partition unit).
  std::size_t grain = 1;
  /// Cap on concurrent lanes (0 = all of parallelism()).
  unsigned max_workers = 0;
  /// Per-chunk retry policy for transient failures (an injected
  /// fault::TransientFault or a `validate` rejection). The default keeps the
  /// historical behaviour: up to 2 immediate retries (no backoff sleeps), so
  /// a chunk may run up to 3 times before the region fails with
  /// ddm::ParallelError. Serving callers attach real backoff per request.
  RetryPolicy retry;
  /// Cooperative stop: polled at chunk claims and between retry attempts.
  /// Default-constructed = run to completion.
  RunControl control;
  /// Region name used in ParallelError messages.
  const char* label = "parallel_for";
  /// Optional post-chunk acceptance check over the chunk's index range
  /// (e.g. "every output in [lo, hi) is finite"). A false return counts as a
  /// transient failure: the chunk body is re-run (bodies must therefore be
  /// idempotent — every production body recomputes its outputs from scratch).
  std::function<bool(std::size_t, std::size_t)> validate;
};

/// Number of usable execution lanes (pool workers + the calling thread).
/// Defaults to std::thread::hardware_concurrency(); override with the
/// DDM_THREADS environment variable (read once at pool construction). A
/// malformed DDM_THREADS value (non-numeric, zero, out of range) throws
/// ddm::Error naming the variable — the pool is not constructed, so the
/// error is surfaced again on the next call rather than latched.
[[nodiscard]] unsigned parallelism();

/// Strict thread-count parser used for DDM_THREADS: accepts only a plain
/// decimal integer in [1, 4096] with no trailing characters; anything else
/// ("abc", "0", "1e9", "") throws ddm::Error naming `env_name` and the
/// offending text. Exposed for tests and for other env-tunable knobs.
[[nodiscard]] unsigned parse_thread_count(const char* env_name, const char* text);

/// Runs `chunk_body(lo, hi)` over the partition of [begin, end) into
/// consecutive chunks of `grain` indices (the last chunk may be short).
/// Chunks execute concurrently on the global pool; the call blocks until all
/// chunks finish. The first exception thrown by a chunk is rethrown here
/// (remaining chunks still run to completion). `max_workers` caps the number
/// of lanes used (0 = use all of parallelism()). Serial fallback when the
/// range is a single chunk or only one lane is available.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& chunk_body,
                  std::size_t grain = 1, unsigned max_workers = 0);

/// Options-based overload with retry/validation semantics (see
/// ParallelOptions). The two-knob overload above forwards here with default
/// robustness settings.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& chunk_body,
                  const ParallelOptions& options);

/// Deterministic parallel reduction: partitions [begin, end) exactly like
/// parallel_for(grain), computes `chunk_fn(lo, hi)` per chunk concurrently,
/// then folds the partials IN CHUNK ORDER:
///   acc = init; for each chunk k: acc = combine(acc, partial[k]).
/// The fold order is a pure function of (begin, end, grain), so the result —
/// including floating-point rounding — is independent of the thread count.
template <typename T>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                const std::function<T(std::size_t, std::size_t)>& chunk_fn,
                                const std::function<T(T, T)>& combine, T init,
                                ParallelOptions options) {
  if (end <= begin) return init;
  if (options.grain == 0) options.grain = 1;
  const std::size_t grain = options.grain;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(chunks, init);
  parallel_for(
      begin, end,
      [&](std::size_t lo, std::size_t hi) { partial[(lo - begin) / grain] = chunk_fn(lo, hi); },
      options);
  T acc = std::move(init);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

template <typename T>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                                const std::function<T(std::size_t, std::size_t)>& chunk_fn,
                                const std::function<T(T, T)>& combine, T init,
                                unsigned max_workers = 0) {
  ParallelOptions options;
  options.grain = grain;
  options.max_workers = max_workers;
  options.label = "parallel_reduce";
  return parallel_reduce<T>(begin, end, chunk_fn, combine, std::move(init), std::move(options));
}

}  // namespace ddm::util
