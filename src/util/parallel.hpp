// parallel.hpp — the library's shared parallel-execution engine.
//
// Every evaluation surface that fans independent work across cores (Monte
// Carlo trial blocks, compass-search probes, batch grid evaluation) goes
// through this module instead of spawning ad-hoc std::threads. A single
// lazily-initialized global thread pool amortizes thread creation across
// calls; `parallel_for` hands out fixed-grain index chunks from a shared
// atomic counter, and `parallel_reduce` combines per-chunk partials in chunk
// order. Because the chunk decomposition depends only on (range, grain) —
// never on the number of workers — any reduction over chunk results is
// bitwise identical for every thread count, which is what makes the Monte
// Carlo wins tally and the double-precision batch evaluators reproducible.
// See docs/performance.md for the design rationale.
//
// Nested use is safe: the calling thread always participates in executing
// chunks, so a pool worker that itself calls parallel_for drains the inner
// range even when every other worker is busy.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace ddm::util {

/// Number of usable execution lanes (pool workers + the calling thread).
/// Defaults to std::thread::hardware_concurrency(); override with the
/// DDM_THREADS environment variable (clamped to >= 1, read once at pool
/// construction).
[[nodiscard]] unsigned parallelism() noexcept;

/// Runs `chunk_body(lo, hi)` over the partition of [begin, end) into
/// consecutive chunks of `grain` indices (the last chunk may be short).
/// Chunks execute concurrently on the global pool; the call blocks until all
/// chunks finish. The first exception thrown by a chunk is rethrown here
/// (remaining chunks still run to completion). `max_workers` caps the number
/// of lanes used (0 = use all of parallelism()). Serial fallback when the
/// range is a single chunk or only one lane is available.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& chunk_body,
                  std::size_t grain = 1, unsigned max_workers = 0);

/// Deterministic parallel reduction: partitions [begin, end) exactly like
/// parallel_for(grain), computes `chunk_fn(lo, hi)` per chunk concurrently,
/// then folds the partials IN CHUNK ORDER:
///   acc = init; for each chunk k: acc = combine(acc, partial[k]).
/// The fold order is a pure function of (begin, end, grain), so the result —
/// including floating-point rounding — is independent of the thread count.
template <typename T>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                                const std::function<T(std::size_t, std::size_t)>& chunk_fn,
                                const std::function<T(T, T)>& combine, T init,
                                unsigned max_workers = 0) {
  if (end <= begin) return init;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(chunks, init);
  parallel_for(
      begin, end,
      [&](std::size_t lo, std::size_t hi) { partial[(lo - begin) / grain] = chunk_fn(lo, hi); },
      grain, max_workers);
  T acc = std::move(init);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace ddm::util
