// resilience.hpp — deadlines, cooperative cancellation, and retry backoff.
//
// The serving story (tools/serve/, docs/robustness.md) turns evaluations
// into *requests*: work that arrives with a time budget, can be abandoned by
// its caller, and must never wedge the worker that runs it. This module
// holds the three primitives that make that possible:
//
//   * CancelToken — a shared cancellation flag. The issuing side keeps a
//     copy and calls cancel(); every evaluation layer polls it at natural
//     boundaries (parallel chunk starts, ladder tier transitions, Monte
//     Carlo blocks). A default-constructed token is *inert*: it can never
//     fire and costs one null check to poll, so unset control is zero-cost.
//   * Deadline — an absolute steady-clock cutoff. Derived once from a
//     relative budget (`Deadline::after`), then polled like the token.
//     Absolute form means nested layers all race the same wall-clock instant
//     instead of each granting themselves a fresh budget.
//   * RetryPolicy — bounded attempts with deterministic exponential backoff.
//     The jitter factor is drawn from the library's split-RNG streams
//     (prob::Rng, the same machinery that keeps Monte Carlo reproducible)
//     keyed on (seed, stream, attempt), so a retried run backs off by the
//     exact same schedule every time — tests stay reproducible, yet
//     concurrent retries of *different* chunks decorrelate.
//
// RunControl bundles token + deadline and is what threads through
// util::parallel (ParallelOptions::control), the certified ladder
// (EvalPolicy::control), and the engine seam (EvalRequest::control). A
// stopped evaluation surfaces as the typed ddm::Cancelled /
// ddm::DeadlineExceeded errors (util/status.hpp) carrying partial-progress
// counts — never as a silent truncation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace ddm::util {

/// Shared cooperative-cancellation flag. Copies alias one flag; a
/// default-constructed token is inert (never cancelled, nothing to poll).
class CancelToken {
 public:
  CancelToken() = default;

  /// An armed token (distinct flag per call).
  [[nodiscard]] static CancelToken create() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Requests cancellation. No-op on an inert token. Thread-safe; idempotent.
  void cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  /// True once cancel() has been called. One relaxed load (after a null
  /// check), so polling on chunk boundaries is essentially free.
  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// True for tokens created via create() (i.e. cancellation is possible).
  [[nodiscard]] bool armed() const noexcept { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// An absolute steady-clock cutoff. Default-constructed = unset (never
/// expires, zero polling cost beyond one comparison against the sentinel).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// Deadline `budget` from now. A non-positive budget is already expired.
  [[nodiscard]] static Deadline after(std::chrono::nanoseconds budget) {
    Deadline deadline;
    deadline.at_ = Clock::now() + budget;
    return deadline;
  }

  [[nodiscard]] static Deadline at(Clock::time_point when) {
    Deadline deadline;
    deadline.at_ = when;
    return deadline;
  }

  [[nodiscard]] bool is_set() const noexcept { return at_ != Clock::time_point::max(); }

  /// True when set and in the past. Reads the clock only when set.
  [[nodiscard]] bool expired() const noexcept { return is_set() && Clock::now() >= at_; }

  /// Time left (clamped at zero); nanoseconds::max() when unset.
  [[nodiscard]] std::chrono::nanoseconds remaining() const noexcept {
    if (!is_set()) return std::chrono::nanoseconds::max();
    const auto left = at_ - Clock::now();
    return left.count() > 0 ? std::chrono::duration_cast<std::chrono::nanoseconds>(left)
                            : std::chrono::nanoseconds::zero();
  }

  [[nodiscard]] Clock::time_point time_point() const noexcept { return at_; }

 private:
  Clock::time_point at_ = Clock::time_point::max();
};

/// Why an evaluation stopped early.
enum class StopReason : unsigned {
  kNone = 0,       ///< keep going
  kCancelled,      ///< CancelToken fired
  kDeadline,       ///< Deadline passed
};

/// Token + deadline, threaded together through every evaluation layer.
/// Default-constructed = run to completion (both members inert/unset);
/// `engaged()` lets hot paths skip even the cheap polls in that case.
struct RunControl {
  CancelToken token;
  Deadline deadline;

  [[nodiscard]] bool engaged() const noexcept { return token.armed() || deadline.is_set(); }

  /// Polls both conditions. Cancellation wins over an expired deadline (the
  /// caller explicitly asked; the distinction matters for retry decisions —
  /// a cancelled request must not degrade to a cheaper engine).
  [[nodiscard]] StopReason should_stop() const noexcept {
    if (token.cancel_requested()) return StopReason::kCancelled;
    if (deadline.expired()) return StopReason::kDeadline;
    return StopReason::kNone;
  }
};

/// Bounded retry with deterministic exponential backoff.
///
/// Attempt a (1-based, i.e. the a-th *retry*) of stream s sleeps
///   base_delay · growth^(a−1), capped at max_delay,
/// scaled by a jitter factor in [1 − jitter, 1 + jitter) drawn from
/// prob::Rng{jitter_seed}.split(s) at position a — a pure function of
/// (jitter_seed, s, a), so schedules replay bit-identically while distinct
/// chunks/requests decorrelate. The library default keeps base_delay at
/// zero: retries stay immediate (the pre-existing engine behaviour and what
/// the fault-injection matrix times); the serving layer opts into real
/// backoff per request.
struct RetryPolicy {
  /// Additional attempts after the first failure. 2 ⇒ a chunk/request may
  /// run up to 3 times before the failure is permanent.
  unsigned max_retries = 2;
  /// First-retry sleep. Zero = no sleeping at all (jitter included).
  std::chrono::nanoseconds base_delay{0};
  /// Exponential growth factor between consecutive retries.
  double growth = 2.0;
  /// Upper clamp applied before jitter.
  std::chrono::nanoseconds max_delay{std::chrono::seconds(1)};
  /// Jitter fraction in [0, 1): the backoff is scaled by a factor drawn
  /// uniformly from [1 − jitter, 1 + jitter).
  double jitter = 0.0;
  /// Seed of the jitter stream family (split per `stream`).
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;

  /// Deterministic sleep before retry `attempt` (1-based) of `stream`
  /// (e.g. the chunk ordinal or a request id). Zero when base_delay is zero.
  [[nodiscard]] std::chrono::nanoseconds delay_before(unsigned attempt,
                                                      std::uint64_t stream) const;
};

/// Sleeps for `duration`, but never past `deadline` (returns early instead;
/// the caller's next should_stop() poll then reports the expiry). No-op for
/// non-positive durations.
void sleep_with_deadline(std::chrono::nanoseconds duration, const Deadline& deadline);

}  // namespace ddm::util
