// interval.hpp — exact rational interval arithmetic.
//
// Certification tool: the optimal thresholds of Section 5.2 are algebraic
// numbers known only through isolating intervals. To compare the winning
// probability at two such points *rigorously*, we evaluate the piece
// polynomials in interval arithmetic over the isolating intervals: if the
// value intervals are disjoint, the comparison is proven; if they overlap,
// the isolating intervals are refined and the evaluation repeated. Because
// endpoints are exact rationals there is no rounding anywhere.
//
// The certified evaluation ladder (util/certify.hpp) additionally uses
// *dyadic outward rounding*: after each exact interval operation the
// endpoints are widened to the nearest dyadic rationals with a fixed number
// of fractional bits (outward_round below). That caps the bit growth of the
// endpoints — the cost driver of exact rational arithmetic in deep
// inclusion-exclusion sums — while keeping every intermediate a rigorous
// enclosure, which is what makes the interval tier strictly cheaper than the
// exact tier yet never wrong. See docs/robustness.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/rational.hpp"

namespace ddm::util {

/// Closed interval [lo, hi] with exact rational endpoints.
class RationalInterval {
 public:
  /// Degenerate interval [v, v].
  explicit RationalInterval(Rational value) : lo_(value), hi_(std::move(value)) {}
  /// [lo, hi]; throws std::invalid_argument when lo > hi.
  RationalInterval(Rational lo, Rational hi);

  [[nodiscard]] const Rational& lo() const noexcept { return lo_; }
  [[nodiscard]] const Rational& hi() const noexcept { return hi_; }
  [[nodiscard]] Rational width() const { return hi_ - lo_; }
  [[nodiscard]] Rational midpoint() const { return (lo_ + hi_) * Rational{1, 2}; }
  [[nodiscard]] bool is_point() const noexcept { return lo_ == hi_; }
  [[nodiscard]] bool contains(const Rational& x) const { return lo_ <= x && x <= hi_; }
  [[nodiscard]] bool contains_zero() const {
    return lo_.signum() <= 0 && hi_.signum() >= 0;
  }

  RationalInterval& operator+=(const RationalInterval& rhs);
  RationalInterval& operator-=(const RationalInterval& rhs);
  RationalInterval& operator*=(const RationalInterval& rhs);

  friend RationalInterval operator+(RationalInterval lhs, const RationalInterval& rhs) {
    return lhs += rhs;
  }
  friend RationalInterval operator-(RationalInterval lhs, const RationalInterval& rhs) {
    return lhs -= rhs;
  }
  friend RationalInterval operator*(RationalInterval lhs, const RationalInterval& rhs) {
    return lhs *= rhs;
  }
  [[nodiscard]] RationalInterval operator-() const { return {-hi_, -lo_}; }

  /// Certified order: true iff every point of *this is strictly below every
  /// point of other (hi < other.lo).
  [[nodiscard]] bool certainly_less_than(const RationalInterval& other) const {
    return hi_ < other.lo_;
  }
  /// True iff the two intervals share at least one point.
  [[nodiscard]] bool overlaps(const RationalInterval& other) const {
    return !(hi_ < other.lo_ || other.hi_ < lo_);
  }

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const RationalInterval& interval);

  friend bool operator==(const RationalInterval& a, const RationalInterval& b) = default;

 private:
  Rational lo_;
  Rational hi_;
};

/// Enclosing interval whose endpoints are dyadic rationals with at most
/// `bits` fractional bits: lo is rounded down to a multiple of 2^-bits, hi
/// rounded up. Never shrinks the interval; widens it by at most 2·2^-bits.
[[nodiscard]] RationalInterval outward_round(const RationalInterval& x, unsigned bits);

/// x^exp by binary exponentiation with outward rounding after every
/// multiplication, so endpoint sizes stay bounded by `bits` fractional bits
/// plus the magnitude of the powers. Sound for any interval (enclosure may
/// be loose for even powers of sign-crossing intervals).
[[nodiscard]] RationalInterval pow_outward(const RationalInterval& x, std::uint32_t exp,
                                           unsigned bits);

}  // namespace ddm::util
