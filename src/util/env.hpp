// env.hpp — strict parsing for numeric environment knobs.
//
// Every DDM_* environment variable in the library follows one convention
// (established by DDM_THREADS and DDM_SIMD): a malformed value is rejected
// up front with a ddm::Error that NAMES the variable and the offending text
// — never silently clamped, defaulted, or atoi-truncated. This header is
// the shared implementation for the serve-daemon knobs (DDM_SERVE_PORT,
// DDM_SERVE_BACKLOG, DDM_SERVE_QUEUE, DDM_SERVE_DEADLINE_MS) and any future
// numeric knob; DDM_THREADS keeps its dedicated parse_thread_count wrapper
// (util/parallel.hpp) for compatibility with existing call sites.
#pragma once

#include <cstdint>

namespace ddm::util {

/// Parses `text` as a plain decimal integer in [min_value, max_value] with
/// no sign, whitespace, or trailing characters; anything else ("abc", "",
/// "1e9", "-1", out-of-range) throws ddm::Error naming `env_name` and the
/// offending text plus the accepted range. `text == nullptr` (variable
/// unset) returns `fallback` — so call sites read
/// `parse_env_u64("DDM_SERVE_QUEUE", std::getenv(...), 1, 1000000, 256)`.
[[nodiscard]] std::uint64_t parse_env_u64(const char* env_name, const char* text,
                                          std::uint64_t min_value, std::uint64_t max_value,
                                          std::uint64_t fallback);

}  // namespace ddm::util
