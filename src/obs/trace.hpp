// trace.hpp — scoped tracing spans with a Chrome trace_event exporter.
//
// The second half of ddm::obs: RAII spans that time a region of code on the
// steady clock and deposit completed intervals into per-thread ring buffers.
// Like the metrics registry, the subsystem is zero-cost when disabled — a
// Span's constructor is one relaxed atomic load and an early return, so
// `DDM_SPAN("kernel.gray_ie", ...)` may sit on any per-call (never per-subset)
// hot path.
//
// Completed spans are exported in Chrome's trace_event JSON format (the
// `{"traceEvents": [...]}` object form, "ph":"X" complete events) which
// chrome://tracing and Perfetto load directly. Because spans are closed by
// RAII on one thread, the intervals recorded for a given tid always nest
// properly; `scripts/run_trace_check.sh` validates exactly that invariant.
//
// The ring buffers overwrite-oldest when full (capacity 8192 spans/thread,
// drops counted in `trace_dropped()`): a trace is a diagnostic window, not an
// audit log, and a suffix of properly nested intervals is still properly
// nested.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ddm::obs {

/// Global tracing switch — one relaxed load, safe on hot paths.
[[nodiscard]] bool tracing_enabled() noexcept;

/// Clears any previously collected spans and enables collection.
void start_tracing();

/// Disables collection. Collected spans remain available for export.
void stop_tracing() noexcept;

/// Number of spans currently held across all ring buffers.
[[nodiscard]] std::size_t trace_span_count();

/// Number of spans overwritten because a thread's ring buffer was full.
[[nodiscard]] std::uint64_t trace_dropped() noexcept;

/// Writes all collected spans as Chrome trace_event JSON to `path`.
/// Throws ddm::Error when the file cannot be written.
void export_chrome_trace(const std::string& path);

/// One key/value annotation attached to a span; shows up under "args" in the
/// Chrome trace. Small-string keys/values only — keys must be string
/// literals (the span stores the pointer).
struct SpanArg {
  enum class Kind : std::uint8_t { kNone, kInt, kDouble, kString };

  constexpr SpanArg() = default;
  constexpr SpanArg(const char* key, std::int64_t value)
      : key_(key), kind_(Kind::kInt), int_(value) {}
  constexpr SpanArg(const char* key, int value)
      : SpanArg(key, static_cast<std::int64_t>(value)) {}
  constexpr SpanArg(const char* key, unsigned value)
      : SpanArg(key, static_cast<std::int64_t>(value)) {}
  constexpr SpanArg(const char* key, std::uint64_t value)
      : SpanArg(key, static_cast<std::int64_t>(value)) {}
  constexpr SpanArg(const char* key, double value)
      : key_(key), kind_(Kind::kDouble), double_(value) {}
  constexpr SpanArg(const char* key, const char* value)
      : key_(key), kind_(Kind::kString), string_(value) {}

  const char* key_ = nullptr;
  Kind kind_ = Kind::kNone;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  const char* string_ = nullptr;
};

/// RAII tracing span. `name` must be a string literal (stored by pointer).
/// Construction records the start timestamp; destruction deposits the
/// completed interval into this thread's ring buffer. Both ends are no-ops
/// while tracing is disabled — a span that straddles stop_tracing() is
/// simply not recorded.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  Span(const char* name, std::initializer_list<SpanArg> args) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
  SpanArg args_[4];
  std::uint8_t n_args_ = 0;
};

// DDM_SPAN("certify.tier", {{"tier", 1}}) — names a unique local so several
// spans can share a scope.
#define DDM_OBS_CONCAT_INNER(a, b) a##b
#define DDM_OBS_CONCAT(a, b) DDM_OBS_CONCAT_INNER(a, b)
#define DDM_SPAN(...) \
  ::ddm::obs::Span DDM_OBS_CONCAT(ddm_obs_span_, __LINE__)(__VA_ARGS__)

}  // namespace ddm::obs
