// metrics_registry.hpp — the process-wide metrics registry of ddm::obs.
//
// A zero-cost-when-disabled observability primitive: library code obtains
// cheap value-type handles (Counter, Gauge, Histogram) from the registry once
// (typically via a function-local static) and bumps them on the hot path.
// Every bump is gated on one relaxed atomic load of the global enable flag —
// when metrics are off (the default) the entire subsystem costs a predicted
// branch per instrumentation point and touches no shared cache lines.
//
// When enabled, counters and histograms write to *per-thread shards*: each
// thread owns a fixed slot array that only it writes (relaxed atomic stores,
// no read-modify-write contention); `scrape()` merges all live shards plus
// the folded totals of exited threads under the registry mutex. Gauges are
// set-semantics (last write wins), so they live directly in the registry as
// plain atomics rather than in shards.
//
// Histograms are fixed-bucket base-2 exponential: bucket i counts values in
// (2^(kHistMinExp+i-1), 2^(kHistMinExp+i)], wide enough to span both
// sub-nanosecond Kahan compensation magnitudes (~1e-17) and multi-second
// span latencies in one layout. Recording is two shard stores plus a
// compensation-free double add into the shard-local sum.
//
// Exposition: `write_text` (human-readable, the `ddm_cli --metrics` default),
// `write_json`, and `write_prometheus` (text exposition format 0.0.4-style)
// — see docs/observability.md for the naming scheme and format samples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ddm::obs {

/// Global metrics switch. Off by default; `ddm_cli --metrics` and the obs
/// tests turn it on. One relaxed load — safe to call on hot paths.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Monotonic counter handle. Copyable, trivially destructible; obtain from
/// obs::counter(name) and keep in a function-local static at the use site.
class Counter {
 public:
  Counter() = default;
  /// Adds `delta` to this thread's shard. No-op while metrics are disabled.
  void add(std::uint64_t delta = 1) const noexcept;

 private:
  friend class Registry;
  explicit Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = 0;
};

/// Gauge handle: a settable signed value (last write wins process-wide).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t value) const noexcept;
  void add(std::int64_t delta) const noexcept;

 private:
  friend class Registry;
  explicit Gauge(std::uint32_t index) : index_(index) {}
  std::uint32_t index_ = 0;
};

/// Fixed-bucket base-2 exponential histogram handle.
class Histogram {
 public:
  Histogram() = default;
  /// Records one observation (values <= 0 land in the first bucket). No-op
  /// while metrics are disabled.
  void record(double value) const noexcept;

 private:
  friend class Registry;
  friend class ScopedTimer;
  explicit Histogram(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = 0;
};

/// One scraped metric. For histograms, `buckets` holds only the non-empty
/// buckets as (upper bound, count) pairs in increasing bound order.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  std::uint64_t histogram_count = 0;
  double histogram_sum = 0.0;
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// The process-wide registry. A leaked singleton (never destroyed), so
/// thread-local shard destructors and the CLI's at-exit dump can never
/// outlive it.
class Registry {
 public:
  [[nodiscard]] static Registry& instance();

  /// Registers (or looks up — same name returns the same handle) a metric.
  /// Throws ddm::Error when `name` is already registered as a different kind
  /// or the fixed slot space is exhausted.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  /// Merges all shards (live + retired) into a snapshot, sorted by name.
  [[nodiscard]] std::vector<MetricSample> scrape() const;

  /// Zeroes every counter, gauge, and histogram (test hook).
  void reset() noexcept;

  void write_text(std::ostream& os) const;
  void write_json(std::ostream& os) const;
  void write_prometheus(std::ostream& os) const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  struct Impl;  // public only so the implementation's free helpers can name it

 private:
  Registry();
  ~Registry() = delete;  // leaked singleton
  Impl* impl_;
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
};

/// Convenience wrappers over Registry::instance().
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name);

/// RAII wall-time recorder: on destruction records the elapsed seconds into
/// `hist`. Reads the steady clock only while metrics are enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram hist) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram hist_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace ddm::obs
