#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "util/status.hpp"

namespace ddm::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

// Fixed shard geometry. 4096 slots cover a few hundred counters plus a
// couple dozen histograms; registration throws before ever overrunning.
constexpr std::uint32_t kMaxSlots = 4096;

// Histogram layout inside the slot array: [count][sum][bucket 0..kHistBuckets).
constexpr std::uint32_t kHistBuckets = 64;
constexpr std::uint32_t kHistSlots = kHistBuckets + 2;
// Bucket i spans (2^(kHistMinExp+i-1), 2^(kHistMinExp+i)]; values at or
// below the bottom land in bucket 0, values above the top in the last.
constexpr int kHistMinExp = -59;  // first upper bound 2^-59 ~ 1.7e-18

std::uint32_t bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;  // zero, negatives, NaN → first bucket
  const int exp = std::ilogb(value);
  // value in (2^exp, 2^(exp+1)] up to the boundary case value == 2^exp,
  // which ilogb reports as exp; both placements are within one bucket.
  const int index = exp - kHistMinExp + 1;
  if (index < 0) return 0;
  if (index >= static_cast<int>(kHistBuckets)) return kHistBuckets - 1;
  return static_cast<std::uint32_t>(index);
}

double bucket_upper_bound(std::uint32_t index) noexcept {
  return std::ldexp(1.0, kHistMinExp + static_cast<int>(index));
}

// One thread's slot array. Only the owning thread writes (relaxed stores);
// scrape/reset read and write under the registry mutex with relaxed loads —
// per-slot totals are monotone counters, so a torn snapshot is at worst one
// bump stale, never corrupt.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
};

void shard_add_u64(Shard& shard, std::uint32_t slot, std::uint64_t delta) noexcept {
  auto& cell = shard.slots[slot];
  cell.store(cell.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

void shard_add_double(Shard& shard, std::uint32_t slot, double delta) noexcept {
  auto& cell = shard.slots[slot];
  const double current = std::bit_cast<double>(cell.load(std::memory_order_relaxed));
  cell.store(std::bit_cast<std::uint64_t>(current + delta), std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus metric names use [a-zA-Z0-9_:]; the registry's dotted names map
// '.' and any other outsider to '_'.
std::string prometheus_name(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string format_value(double value) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return os.str();
}

}  // namespace

bool metrics_enabled() noexcept { return g_metrics_enabled.load(std::memory_order_relaxed); }

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

struct Registry::Impl {
  struct MetricInfo {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    std::uint32_t slot = 0;       // base slot (counters, histograms)
    std::uint32_t gauge_index = 0;
  };

  mutable std::mutex mutex;
  std::map<std::string, MetricInfo, std::less<>> metrics;
  std::uint32_t next_slot = 0;
  std::vector<std::shared_ptr<Shard>> shards;
  // Totals folded out of shards whose owning thread has exited.
  std::array<std::uint64_t, kMaxSlots> retired{};
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauges;

  std::uint64_t slot_total(std::uint32_t slot) const {
    std::uint64_t total = retired[slot];
    for (const auto& shard : shards) {
      total += shard->slots[slot].load(std::memory_order_relaxed);
    }
    return total;
  }

  double slot_total_double(std::uint32_t slot) const {
    double total = std::bit_cast<double>(retired[slot]);
    for (const auto& shard : shards) {
      total += std::bit_cast<double>(shard->slots[slot].load(std::memory_order_relaxed));
    }
    return total;
  }
};

namespace {

Registry::Impl& impl_of(Registry& registry);

// Thread-local shard lifecycle: registered with the (leaked) registry on
// first use, folded into the retired totals and dropped from the live list
// when the thread exits.
struct ShardHolder {
  std::shared_ptr<Shard> shard;
  Registry::Impl* impl = nullptr;

  ShardHolder() {
    impl = &impl_of(Registry::instance());
    shard = std::make_shared<Shard>();
    std::scoped_lock lock(impl->mutex);
    impl->shards.push_back(shard);
  }

  ~ShardHolder() {
    std::scoped_lock lock(impl->mutex);
    for (std::uint32_t s = 0; s < kMaxSlots; ++s) {
      const std::uint64_t value = shard->slots[s].load(std::memory_order_relaxed);
      if (value == 0) continue;
      // Provisional integer fold; histogram sum slots (bit-cast doubles)
      // are fixed up below, once the metrics table tells us which they are.
      impl->retired[s] += value;
    }
    for (const auto& [name, info] : impl->metrics) {
      (void)name;
      if (info.kind != MetricSample::Kind::kHistogram) continue;
      const std::uint32_t sum_slot = info.slot + 1;
      const std::uint64_t value = shard->slots[sum_slot].load(std::memory_order_relaxed);
      if (value == 0) continue;
      impl->retired[sum_slot] -= value;  // undo the provisional integer fold
      const double merged = std::bit_cast<double>(impl->retired[sum_slot]) +
                            std::bit_cast<double>(value);
      impl->retired[sum_slot] = std::bit_cast<std::uint64_t>(merged);
    }
    std::erase(impl->shards, shard);
  }
};

Shard& local_shard() {
  thread_local ShardHolder holder;
  return *holder.shard;
}

Registry::Impl* g_registry_impl = nullptr;

Registry::Impl& impl_of(Registry&) { return *g_registry_impl; }

}  // namespace

Registry::Registry() : impl_(new Impl) { g_registry_impl = impl_; }

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leaked: see class comment
  return *registry;
}

Counter Registry::counter(std::string_view name) {
  std::scoped_lock lock(impl_->mutex);
  if (const auto it = impl_->metrics.find(name); it != impl_->metrics.end()) {
    if (it->second.kind != MetricSample::Kind::kCounter) {
      throw Error("metrics registry: '" + std::string(name) + "' is not a counter");
    }
    return Counter{it->second.slot};
  }
  if (impl_->next_slot + 1 > kMaxSlots) {
    throw Error("metrics registry: slot space exhausted");
  }
  const std::uint32_t slot = impl_->next_slot++;
  impl_->metrics.emplace(std::string(name),
                         Impl::MetricInfo{MetricSample::Kind::kCounter, slot, 0});
  return Counter{slot};
}

Gauge Registry::gauge(std::string_view name) {
  std::scoped_lock lock(impl_->mutex);
  if (const auto it = impl_->metrics.find(name); it != impl_->metrics.end()) {
    if (it->second.kind != MetricSample::Kind::kGauge) {
      throw Error("metrics registry: '" + std::string(name) + "' is not a gauge");
    }
    return Gauge{it->second.gauge_index};
  }
  const auto index = static_cast<std::uint32_t>(impl_->gauges.size());
  impl_->gauges.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  impl_->metrics.emplace(std::string(name),
                         Impl::MetricInfo{MetricSample::Kind::kGauge, 0, index});
  return Gauge{index};
}

Histogram Registry::histogram(std::string_view name) {
  std::scoped_lock lock(impl_->mutex);
  if (const auto it = impl_->metrics.find(name); it != impl_->metrics.end()) {
    if (it->second.kind != MetricSample::Kind::kHistogram) {
      throw Error("metrics registry: '" + std::string(name) + "' is not a histogram");
    }
    return Histogram{it->second.slot};
  }
  if (impl_->next_slot + kHistSlots > kMaxSlots) {
    throw Error("metrics registry: slot space exhausted");
  }
  const std::uint32_t slot = impl_->next_slot;
  impl_->next_slot += kHistSlots;
  impl_->metrics.emplace(std::string(name),
                         Impl::MetricInfo{MetricSample::Kind::kHistogram, slot, 0});
  return Histogram{slot};
}

std::vector<MetricSample> Registry::scrape() const {
  std::scoped_lock lock(impl_->mutex);
  std::vector<MetricSample> samples;
  samples.reserve(impl_->metrics.size());
  for (const auto& [name, info] : impl_->metrics) {
    MetricSample sample;
    sample.name = name;
    sample.kind = info.kind;
    switch (info.kind) {
      case MetricSample::Kind::kCounter:
        sample.counter_value = impl_->slot_total(info.slot);
        break;
      case MetricSample::Kind::kGauge:
        sample.gauge_value = impl_->gauges[info.gauge_index]->load(std::memory_order_relaxed);
        break;
      case MetricSample::Kind::kHistogram: {
        sample.histogram_count = impl_->slot_total(info.slot);
        sample.histogram_sum = impl_->slot_total_double(info.slot + 1);
        for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
          const std::uint64_t count = impl_->slot_total(info.slot + 2 + b);
          if (count != 0) sample.buckets.emplace_back(bucket_upper_bound(b), count);
        }
        break;
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

void Registry::reset() noexcept {
  std::scoped_lock lock(impl_->mutex);
  impl_->retired.fill(0);
  for (const auto& shard : impl_->shards) {
    for (auto& cell : shard->slots) cell.store(0, std::memory_order_relaxed);
  }
  for (const auto& gauge : impl_->gauges) gauge->store(0, std::memory_order_relaxed);
}

void Registry::write_text(std::ostream& os) const {
  os << "# ddm metrics\n";
  for (const MetricSample& sample : scrape()) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        os << sample.name << " " << sample.counter_value << "\n";
        break;
      case MetricSample::Kind::kGauge:
        os << sample.name << " " << sample.gauge_value << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        os << sample.name << " count=" << sample.histogram_count
           << " sum=" << format_value(sample.histogram_sum);
        if (sample.histogram_count != 0) {
          os << " mean="
             << format_value(sample.histogram_sum /
                             static_cast<double>(sample.histogram_count));
        }
        os << "\n";
        break;
    }
  }
}

void Registry::write_json(std::ostream& os) const {
  os << "{\n";
  bool first = true;
  for (const MetricSample& sample : scrape()) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << json_escape(sample.name) << "\": ";
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        os << sample.counter_value;
        break;
      case MetricSample::Kind::kGauge:
        os << sample.gauge_value;
        break;
      case MetricSample::Kind::kHistogram: {
        os << "{\"count\": " << sample.histogram_count
           << ", \"sum\": " << format_value(sample.histogram_sum) << ", \"buckets\": [";
        bool first_bucket = true;
        for (const auto& [bound, count] : sample.buckets) {
          if (!first_bucket) os << ", ";
          first_bucket = false;
          os << "{\"le\": " << format_value(bound) << ", \"count\": " << count << "}";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n}\n";
}

void Registry::write_prometheus(std::ostream& os) const {
  for (const MetricSample& sample : scrape()) {
    const std::string name = prometheus_name(sample.name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        os << "# TYPE " << name << " counter\n" << name << " " << sample.counter_value << "\n";
        break;
      case MetricSample::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n" << name << " " << sample.gauge_value << "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (const auto& [bound, count] : sample.buckets) {
          cumulative += count;
          os << name << "_bucket{le=\"" << format_value(bound) << "\"} " << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << sample.histogram_count << "\n"
           << name << "_sum " << format_value(sample.histogram_sum) << "\n"
           << name << "_count " << sample.histogram_count << "\n";
        break;
      }
    }
  }
}

void Counter::add(std::uint64_t delta) const noexcept {
  if (!metrics_enabled()) return;
  shard_add_u64(local_shard(), slot_, delta);
}

void Gauge::set(std::int64_t value) const noexcept {
  if (!metrics_enabled()) return;
  g_registry_impl->gauges[index_]->store(value, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) const noexcept {
  if (!metrics_enabled()) return;
  g_registry_impl->gauges[index_]->fetch_add(delta, std::memory_order_relaxed);
}

void Histogram::record(double value) const noexcept {
  if (!metrics_enabled()) return;
  Shard& shard = local_shard();
  shard_add_u64(shard, slot_, 1);
  shard_add_double(shard, slot_ + 1, value);
  shard_add_u64(shard, slot_ + 2 + bucket_index(value), 1);
}

Counter counter(std::string_view name) { return Registry::instance().counter(name); }
Gauge gauge(std::string_view name) { return Registry::instance().gauge(name); }
Histogram histogram(std::string_view name) { return Registry::instance().histogram(name); }

ScopedTimer::ScopedTimer(Histogram hist) noexcept : hist_(hist) {
  if (!metrics_enabled()) return;
  active_ = true;
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!active_ || !metrics_enabled()) return;
  hist_.record(static_cast<double>(now_ns() - start_ns_) * 1e-9);
}

}  // namespace ddm::obs
