#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/status.hpp"

namespace ddm::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};
std::atomic<std::uint64_t> g_dropped{0};

constexpr std::size_t kRingCapacity = 8192;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  SpanArg args[4];
  std::uint8_t n_args = 0;
};

// One thread's span sink: a fixed-capacity overwrite-oldest ring. The owning
// thread appends; export reads under the same mutex. Contention is one
// uncontended lock per completed span — spans are per-call (chunk, tier,
// kernel invocation), never per-subset, so this is far off the hot path.
struct Ring {
  std::mutex mutex;
  std::vector<SpanRecord> records;  // capacity kRingCapacity, ring once full
  std::size_t head = 0;             // next write position once wrapped
  bool wrapped = false;
  std::uint32_t tid = 0;

  void push(const SpanRecord& record) {
    std::scoped_lock lock(mutex);
    if (records.size() < kRingCapacity) {
      records.push_back(record);
      return;
    }
    wrapped = true;
    records[head] = record;
    head = (head + 1) % kRingCapacity;
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }

  void clear() {
    std::scoped_lock lock(mutex);
    records.clear();
    head = 0;
    wrapped = false;
  }

  // Oldest-first snapshot.
  std::vector<SpanRecord> snapshot() {
    std::scoped_lock lock(mutex);
    if (!wrapped) return records;
    std::vector<SpanRecord> out;
    out.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      out.push_back(records[(head + i) % kRingCapacity]);
    }
    return out;
  }
};

// Leaked trace registry: rings are shared_ptrs so a ring outlives its thread
// (export after a pool thread retires) and the registry itself is never
// destroyed (pool threads join during static destruction).
struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
  std::uint32_t next_tid = 1;

  static TraceRegistry& instance() {
    static TraceRegistry* registry = new TraceRegistry();
    return *registry;
  }
};

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    TraceRegistry& registry = TraceRegistry::instance();
    std::scoped_lock lock(registry.mutex);
    r->tid = registry.next_tid++;
    registry.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_args(std::ostream& os, const SpanArg* args, std::uint8_t n_args) {
  os << "{";
  for (std::uint8_t i = 0; i < n_args; ++i) {
    if (i != 0) os << ", ";
    const SpanArg& arg = args[i];
    os << "\"" << json_escape(arg.key_ != nullptr ? arg.key_ : "") << "\": ";
    switch (arg.kind_) {
      case SpanArg::Kind::kInt:
        os << arg.int_;
        break;
      case SpanArg::Kind::kDouble: {
        const double v = arg.double_;
        if (v == v && v != std::numeric_limits<double>::infinity() &&
            v != -std::numeric_limits<double>::infinity()) {
          os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
        } else {
          os << "\"" << (v == v ? (v > 0 ? "inf" : "-inf") : "nan") << "\"";
        }
        break;
      }
      case SpanArg::Kind::kString:
        os << "\"" << json_escape(arg.string_ != nullptr ? arg.string_ : "") << "\"";
        break;
      case SpanArg::Kind::kNone:
        os << "null";
        break;
    }
  }
  os << "}";
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void start_tracing() {
  TraceRegistry& registry = TraceRegistry::instance();
  {
    std::scoped_lock lock(registry.mutex);
    for (const auto& ring : registry.rings) ring->clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
  g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void stop_tracing() noexcept {
  g_tracing_enabled.store(false, std::memory_order_relaxed);
}

std::size_t trace_span_count() {
  TraceRegistry& registry = TraceRegistry::instance();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::scoped_lock lock(registry.mutex);
    rings = registry.rings;
  }
  std::size_t total = 0;
  for (const auto& ring : rings) {
    std::scoped_lock lock(ring->mutex);
    total += ring->records.size();
  }
  return total;
}

std::uint64_t trace_dropped() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

void export_chrome_trace(const std::string& path) {
  TraceRegistry& registry = TraceRegistry::instance();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::scoped_lock lock(registry.mutex);
    rings = registry.rings;
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw Error("trace: cannot open '" + path + "' for writing");
  }
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& ring : rings) {
    for (const SpanRecord& record : ring->snapshot()) {
      if (!first) out << ",";
      first = false;
      // Chrome trace "X" (complete) events; ts/dur in microseconds with
      // fractional-ns precision preserved.
      const double ts_us = static_cast<double>(record.start_ns) / 1000.0;
      const double dur_us =
          static_cast<double>(record.end_ns - record.start_ns) / 1000.0;
      out << "\n  {\"name\": \"" << json_escape(record.name) << "\", "
          << "\"cat\": \"ddm\", \"ph\": \"X\", "
          << "\"ts\": " << std::setprecision(3) << std::fixed << ts_us
          << ", \"dur\": " << dur_us << std::defaultfloat
          << ", \"pid\": 1, \"tid\": " << ring->tid << ", \"args\": ";
      write_args(out, record.args, record.n_args);
      out << "}";
    }
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  out.flush();
  if (!out) {
    throw Error("trace: write to '" + path + "' failed");
  }
}

Span::Span(const char* name) noexcept {
  if (!tracing_enabled()) return;
  name_ = name;
  active_ = true;
  start_ns_ = now_ns();
}

Span::Span(const char* name, std::initializer_list<SpanArg> args) noexcept {
  if (!tracing_enabled()) return;
  name_ = name;
  for (const SpanArg& arg : args) {
    if (n_args_ >= 4) break;
    args_[n_args_++] = arg;
  }
  active_ = true;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_ || !tracing_enabled()) return;
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.end_ns = now_ns();
  record.n_args = n_args_;
  for (std::uint8_t i = 0; i < n_args_; ++i) record.args[i] = args_[i];
  local_ring().push(record);
}

}  // namespace ddm::obs
