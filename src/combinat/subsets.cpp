#include "combinat/subsets.hpp"

#include <stdexcept>

namespace ddm::combinat {

void for_each_subset_mask(std::uint32_t n, const std::function<void(std::uint64_t)>& visit) {
  if (n > 63) throw std::invalid_argument("for_each_subset_mask: ground set too large (n > 63)");
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) visit(mask);
}

void for_each_k_subset(std::uint32_t n, std::uint32_t k,
                       const std::function<void(std::span<const std::uint32_t>)>& visit) {
  if (k > n) return;
  std::vector<std::uint32_t> idx(k);
  for (std::uint32_t i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) {
    visit(std::span<const std::uint32_t>{idx.data(), 0});
    return;
  }
  while (true) {
    visit(std::span<const std::uint32_t>{idx});
    int i = static_cast<int>(k) - 1;
    while (i >= 0 &&
           idx[static_cast<std::uint32_t>(i)] == static_cast<std::uint32_t>(i) + n - k) {
      --i;
    }
    if (i < 0) return;
    ++idx[static_cast<std::uint32_t>(i)];
    for (std::uint32_t j = static_cast<std::uint32_t>(i) + 1; j < k; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
}

}  // namespace ddm::combinat
