// subsets.hpp — subset enumeration for inclusion-exclusion sums.
//
// Proposition 2.2 and Theorem 5.1 sum over all subsets I of an index set,
// with sign (-1)^|I| and a per-subset feasibility guard. These helpers drive
// those sums without materializing the power set.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace ddm::combinat {

/// Calls `visit(mask)` for every subset mask of an n-element ground set
/// (including the empty set), for n <= 63. Throws std::invalid_argument when
/// n > 63.
void for_each_subset_mask(std::uint32_t n, const std::function<void(std::uint64_t)>& visit);

/// Calls `visit(indices)` for every k-subset of {0, .., n-1} in lexicographic
/// order. `indices` is reused between calls; copy it if you need to keep it.
void for_each_k_subset(std::uint32_t n, std::uint32_t k,
                       const std::function<void(std::span<const std::uint32_t>)>& visit);

/// Popcount of a mask (subset cardinality).
[[nodiscard]] inline std::uint32_t popcount(std::uint64_t mask) noexcept {
  return static_cast<std::uint32_t>(__builtin_popcountll(mask));
}

/// The i-th mask of the reflected Gray code: i XOR (i >> 1). Successive codes
/// differ in exactly one bit, which lets inclusion-exclusion kernels maintain
/// a running subset sum with one add/subtract per visited subset instead of
/// an O(n) inner loop. See docs/performance.md for the derivation.
[[nodiscard]] constexpr std::uint64_t gray_code(std::uint64_t i) noexcept { return i ^ (i >> 1); }

/// Bit position that flips between gray_code(i-1) and gray_code(i), for
/// i >= 1: the index of the lowest set bit of i.
[[nodiscard]] inline std::uint32_t gray_flip_bit(std::uint64_t i) noexcept {
  return static_cast<std::uint32_t>(__builtin_ctzll(i));
}

/// Parity of |gray_code(i)| — the inclusion-exclusion sign (-1)^|I| of the
/// i-th visited subset. Because each Gray step flips exactly one bit, the
/// parity simply alternates: it equals i mod 2.
[[nodiscard]] constexpr bool gray_parity_odd(std::uint64_t i) noexcept { return (i & 1) != 0; }

/// Generic inclusion-exclusion accumulator over subsets of `items`:
/// returns sum over subsets S of (-1)^|S| * term(S), where `term` receives the
/// selected elements. T must be an additive group (Rational, double, ...).
template <typename T, typename Item>
[[nodiscard]] T inclusion_exclusion(std::span<const Item> items,
                                    const std::function<T(std::span<const Item>)>& term) {
  const std::uint32_t n = static_cast<std::uint32_t>(items.size());
  T total{};
  std::vector<Item> selected;
  selected.reserve(n);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    selected.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) selected.push_back(items[i]);
    }
    const T value = term(std::span<const Item>{selected});
    if (popcount(mask) % 2 == 0) {
      total += value;
    } else {
      total -= value;
    }
  }
  return total;
}

/// All distinct sums of k-subsets of `values`, with multiplicity, visited as
/// (sum, count-of-subsets) pairs. Used by the symmetric evaluators where the
/// subset sum only depends on the multiset of chosen values.
template <typename T>
void for_each_k_subset_sum(std::span<const T> values, std::uint32_t k,
                           const std::function<void(const T&)>& visit) {
  const std::uint32_t n = static_cast<std::uint32_t>(values.size());
  if (k > n) return;
  if (k == 0) {
    visit(T{});
    return;
  }
  std::vector<std::uint32_t> idx(k);
  for (std::uint32_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    T sum{};
    for (std::uint32_t i = 0; i < k; ++i) sum += values[idx[i]];
    visit(sum);
    // Advance to the next combination in lexicographic order.
    int i = static_cast<int>(k) - 1;
    while (i >= 0 && idx[static_cast<std::uint32_t>(i)] ==
                         static_cast<std::uint32_t>(i) + n - k) {
      --i;
    }
    if (i < 0) return;
    ++idx[static_cast<std::uint32_t>(i)];
    for (std::uint32_t j = static_cast<std::uint32_t>(i) + 1; j < k; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
}

}  // namespace ddm::combinat
