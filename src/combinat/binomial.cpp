#include "combinat/binomial.hpp"

#include <mutex>
#include <vector>

namespace ddm::combinat {

util::BigInt binomial(std::uint32_t n, std::uint32_t k) {
  if (k > n) return util::BigInt{0};
  if (k > n - k) k = n - k;
  // Multiplicative formula keeps intermediate values integral:
  // C(n, k) = prod_{i=1..k} (n - k + i) / i, exact at each step.
  util::BigInt result{1};
  for (std::uint32_t i = 1; i <= k; ++i) {
    result *= util::BigInt{static_cast<std::int64_t>(n - k + i)};
    result /= util::BigInt{static_cast<std::int64_t>(i)};
  }
  return result;
}

util::Rational inverse_factorial(std::uint32_t n) {
  return util::Rational{util::BigInt{1}, util::BigInt::factorial(n)};
}

namespace {

// Pascal-triangle cache guarded by a mutex; rows are extended on demand.
class PascalCache {
 public:
  double at(std::uint32_t n, std::uint32_t k) {
    std::scoped_lock lock(mutex_);
    while (rows_.size() <= n) {
      const std::size_t r = rows_.size();
      std::vector<double> row(r + 1, 1.0);
      for (std::size_t i = 1; i < r; ++i) row[i] = rows_[r - 1][i - 1] + rows_[r - 1][i];
      rows_.push_back(std::move(row));
    }
    return rows_[n][k];
  }

 private:
  std::mutex mutex_;
  std::vector<std::vector<double>> rows_ = {{1.0}};
};

PascalCache& pascal_cache() {
  static PascalCache cache;
  return cache;
}

}  // namespace

double binomial_double(std::uint32_t n, std::uint32_t k) {
  if (k > n) return 0.0;
  return pascal_cache().at(n, k);
}

double inverse_factorial_double(std::uint32_t n) {
  static constexpr std::uint32_t kMax = 170;  // 171! overflows double
  double result = 1.0;
  for (std::uint32_t i = 2; i <= n && i <= kMax; ++i) result /= static_cast<double>(i);
  if (n > kMax) return 0.0;
  return result;
}

}  // namespace ddm::combinat
