#include "combinat/binomial.hpp"

#include <array>
#include <mutex>
#include <vector>

namespace ddm::combinat {

util::BigInt binomial(std::uint32_t n, std::uint32_t k) {
  if (k > n) return util::BigInt{0};
  if (k > n - k) k = n - k;
  // Multiplicative formula keeps intermediate values integral:
  // C(n, k) = prod_{i=1..k} (n - k + i) / i, exact at each step.
  util::BigInt result{1};
  for (std::uint32_t i = 1; i <= k; ++i) {
    result *= util::BigInt{static_cast<std::int64_t>(n - k + i)};
    result /= util::BigInt{static_cast<std::int64_t>(i)};
  }
  return result;
}

namespace {

// Memoized 1/n! rationals, extended on demand. The exact kernels request the
// same handful of values 2^n times per evaluation; recomputing n! each call
// was pure waste. Mutex-guarded because the parallel engine evaluates
// kernels from pool workers.
class InverseFactorialCache {
 public:
  util::Rational at(std::uint32_t n) {
    std::scoped_lock lock(mutex_);
    while (values_.size() <= n) {
      const auto next = static_cast<std::int64_t>(values_.size());
      values_.push_back(values_.back() * util::Rational{1, next});
    }
    return values_[n];
  }

 private:
  std::mutex mutex_;
  std::vector<util::Rational> values_ = {util::Rational{1}};
};

InverseFactorialCache& inverse_factorial_cache() {
  static InverseFactorialCache cache;
  return cache;
}

}  // namespace

util::Rational inverse_factorial(std::uint32_t n) { return inverse_factorial_cache().at(n); }

namespace {

// Pascal-triangle cache guarded by a mutex; rows are extended on demand.
class PascalCache {
 public:
  double at(std::uint32_t n, std::uint32_t k) {
    std::scoped_lock lock(mutex_);
    while (rows_.size() <= n) {
      const std::size_t r = rows_.size();
      std::vector<double> row(r + 1, 1.0);
      for (std::size_t i = 1; i < r; ++i) row[i] = rows_[r - 1][i - 1] + rows_[r - 1][i];
      rows_.push_back(std::move(row));
    }
    return rows_[n][k];
  }

 private:
  std::mutex mutex_;
  std::vector<std::vector<double>> rows_ = {{1.0}};
};

PascalCache& pascal_cache() {
  static PascalCache cache;
  return cache;
}

}  // namespace

double binomial_double(std::uint32_t n, std::uint32_t k) {
  if (k > n) return 0.0;
  return pascal_cache().at(n, k);
}

double inverse_factorial_double(std::uint32_t n) {
  static constexpr std::uint32_t kMax = 170;  // 171! overflows double
  // The kernels call this once per bracket; a one-time table beats the old
  // O(n) division loop. Thread-safe: initialization of a function-local
  // static is synchronized by the runtime.
  static const std::array<double, kMax + 1> kTable = [] {
    std::array<double, kMax + 1> table{};
    table[0] = 1.0;
    for (std::uint32_t i = 1; i <= kMax; ++i) table[i] = table[i - 1] / static_cast<double>(i);
    return table;
  }();
  if (n > kMax) return 0.0;
  return kTable[n];
}

}  // namespace ddm::combinat
