// binomial.hpp — exact binomial coefficients and factorials.
//
// Every formula in the paper is built from binomials and factorials
// (Corollary 2.6, Theorems 4.1/5.1, the optimality polynomials). The exact
// versions return BigInt/Rational; a cached double version serves the fast
// floating-point evaluation paths.
#pragma once

#include <cstdint>

#include "util/bigint.hpp"
#include "util/rational.hpp"

namespace ddm::combinat {

/// Exact C(n, k); 0 when k > n. Throws nothing; n, k are small in practice.
[[nodiscard]] util::BigInt binomial(std::uint32_t n, std::uint32_t k);

/// Exact 1/n! as a rational.
[[nodiscard]] util::Rational inverse_factorial(std::uint32_t n);

/// C(n, k) as a double, memoized via Pascal's triangle (exact for n <= 56
/// where all entries fit in the 53-bit mantissa).
[[nodiscard]] double binomial_double(std::uint32_t n, std::uint32_t k);

/// 1/n! as a double, served from a precomputed table (0 for n > 170 where
/// n! overflows double).
[[nodiscard]] double inverse_factorial_double(std::uint32_t n);

/// base^exp by binary exponentiation — the kernels raise to small integer
/// powers (the dimension m), where this beats std::pow by a wide margin and
/// is exactly reproducible across libm implementations.
[[nodiscard]] inline double pow_uint(double base, std::uint32_t exp) noexcept {
  double result = 1.0;
  while (exp != 0) {
    if (exp & 1u) result *= base;
    base *= base;
    exp >>= 1;
  }
  return result;
}

}  // namespace ddm::combinat
