// ndjson.hpp — the flat JSON codec of the ddm_serve wire protocol.
//
// The serving protocol (docs/robustness.md, "Operating ddm_serve") is
// newline-delimited JSON: one request object per line in, one reply object
// per line out. Every object is FLAT — string / number / bool / null fields
// only, no nesting, no arrays — which keeps the codec small enough to audit
// and removes any recursion-depth or allocation-amplification surface from
// the network boundary. parse_flat_object rejects everything outside that
// profile with a ddm::Error naming the offending construct; callers turn
// that into a structured `bad_request` reply rather than a dropped
// connection.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ddm::net {

/// One decoded field value.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
};

/// A decoded flat object. Transparent comparator so lookups take
/// string_view keys without allocating.
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

/// Parses one flat JSON object (the whole line must be the object, modulo
/// surrounding whitespace). Throws ddm::Error on malformed input, nesting,
/// arrays, duplicate keys, or trailing garbage.
[[nodiscard]] JsonObject parse_flat_object(std::string_view text);

/// Field lookup; nullptr when absent or JSON null.
[[nodiscard]] const JsonValue* find(const JsonObject& object, std::string_view key);

/// Typed accessors. The `get_*` forms return the fallback when the field is
/// absent/null; the `require_*` forms throw ddm::Error naming the field when
/// it is absent or has the wrong type. Numbers are validated against the
/// target range (require_u64 rejects negatives, non-integers, overflow).
[[nodiscard]] std::string get_string(const JsonObject& object, std::string_view key,
                                     std::string_view fallback);
[[nodiscard]] double get_number(const JsonObject& object, std::string_view key, double fallback);
[[nodiscard]] std::uint64_t get_u64(const JsonObject& object, std::string_view key,
                                    std::uint64_t fallback);
[[nodiscard]] std::string require_string(const JsonObject& object, std::string_view key);
[[nodiscard]] double require_number(const JsonObject& object, std::string_view key);
[[nodiscard]] std::uint64_t require_u64(const JsonObject& object, std::string_view key);

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string escape(std::string_view text);

/// Builder for one flat reply object. Fields appear in insertion order;
/// doubles print with enough digits to round-trip (%.17g).
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view{value});
  }
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, bool value);

  /// The finished object, e.g. `{"ok":true,"value":0.5}`.
  [[nodiscard]] std::string str() const;

 private:
  void begin_field(std::string_view key);
  std::string body_;
};

}  // namespace ddm::net
