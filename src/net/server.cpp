#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/status.hpp"

namespace ddm::net {

namespace {

constexpr std::size_t kMaxLineBytes = 64 * 1024;

[[noreturn]] void socket_error(const char* what) {
  throw Error(std::string("ddm_serve: ") + what + ": " + std::strerror(errno));
}

}  // namespace

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) socket_error("socket");
  // Crash-tolerant restart: a killed server leaves TIME_WAIT sockets behind,
  // and the replacement must be able to bind the same port immediately.
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    socket_error("bind");
  }
  if (::listen(fd_, backlog) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    socket_error("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    socket_error("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

int TcpListener::accept_connection() const noexcept {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;  // a non-fatal signal; retry
    return -1;                     // shutdown_listener_fd fired (or hard error)
  }
}

void shutdown_listener_fd(int fd) noexcept {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::set_timeout(std::chrono::milliseconds timeout) noexcept {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool Connection::read_line(std::string& line) {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer_.size() > kMaxLineBytes) return false;
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // EOF, timeout, or error
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

bool Connection::write_all(std::string_view data) noexcept {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-reply yields EPIPE, not SIGPIPE —
    // the serving process must never die to a disconnecting client.
    const ssize_t wrote =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) {
      if (wrote < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

void Connection::shutdown_now() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace ddm::net
