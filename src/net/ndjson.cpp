#include "net/ndjson.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/status.hpp"

namespace ddm::net {

namespace {

/// Hand-rolled recursive-descent-without-the-recursion parser for the flat
/// profile. Tracks position for error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonObject parse() {
    JsonObject object;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        skip_ws();
        std::string key = parse_string("object key");
        skip_ws();
        expect(':');
        skip_ws();
        JsonValue value = parse_value(key);
        if (!object.emplace(std::move(key), std::move(value)).second) {
          fail("duplicate key");
        }
        skip_ws();
        const char c = next("',' or '}'");
        if (c == '}') break;
        if (c != ',') fail("expected ',' or '}'");
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after object");
    return object;
  }

 private:
  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char next(const char* what) {
    if (pos_ >= text_.size()) fail(std::string("unexpected end of input, wanted ") + what);
    return text_[pos_++];
  }

  void expect(char c) {
    if (next("a structural character") != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw Error("ndjson: " + why + " at offset " + std::to_string(pos_));
  }

  std::string parse_string(const char* what) {
    if (next(what) != '"') fail(std::string("expected string for ") + what);
    std::string out;
    while (true) {
      const char c = next("string content");
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next("escape character");
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next("\\u escape digit");
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs rejected: the
          // serving protocol carries identifiers and numbers, not emoji).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_value(const std::string& key) {
    JsonValue value;
    const char c = peek();
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string("value");
      return value;
    }
    if (c == '{' || c == '[') {
      fail("nested objects/arrays are not supported (field '" + key + "')");
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      value.kind = JsonValue::Kind::kNull;
      return value;
    }
    // Number: delegate validation to from_chars over the JSON charset.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) fail("invalid value (field '" + key + "')");
    double parsed = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + pos_, text_.data() + end, parsed);
    if (ec != std::errc{} || ptr != text_.data() + end || !std::isfinite(parsed)) {
      fail("invalid number (field '" + key + "')");
    }
    pos_ = end;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void field_error(std::string_view key, const char* why) {
  throw Error("ndjson: field '" + std::string(key) + "' " + why);
}

}  // namespace

JsonObject parse_flat_object(std::string_view text) { return Parser{text}.parse(); }

const JsonValue* find(const JsonObject& object, std::string_view key) {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind == JsonValue::Kind::kNull) return nullptr;
  return &it->second;
}

std::string get_string(const JsonObject& object, std::string_view key, std::string_view fallback) {
  const JsonValue* value = find(object, key);
  if (value == nullptr) return std::string(fallback);
  if (value->kind != JsonValue::Kind::kString) field_error(key, "must be a string");
  return value->string;
}

double get_number(const JsonObject& object, std::string_view key, double fallback) {
  const JsonValue* value = find(object, key);
  if (value == nullptr) return fallback;
  if (value->kind != JsonValue::Kind::kNumber) field_error(key, "must be a number");
  return value->number;
}

std::uint64_t get_u64(const JsonObject& object, std::string_view key, std::uint64_t fallback) {
  const JsonValue* value = find(object, key);
  if (value == nullptr) return fallback;
  if (value->kind != JsonValue::Kind::kNumber) field_error(key, "must be a number");
  const double number = value->number;
  if (number < 0.0 || number != std::floor(number) || number > 1.8e19) {
    field_error(key, "must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

std::string require_string(const JsonObject& object, std::string_view key) {
  if (find(object, key) == nullptr) field_error(key, "is required");
  return get_string(object, key, "");
}

double require_number(const JsonObject& object, std::string_view key) {
  if (find(object, key) == nullptr) field_error(key, "is required");
  return get_number(object, key, 0.0);
}

std::uint64_t require_u64(const JsonObject& object, std::string_view key) {
  if (find(object, key) == nullptr) field_error(key, "is required");
  return get_u64(object, key, 0);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::begin_field(std::string_view key) {
  if (!body_.empty()) body_.push_back(',');
  body_.push_back('"');
  body_ += escape(key);
  body_ += "\":";
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  begin_field(key);
  body_.push_back('"');
  body_ += escape(value);
  body_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  begin_field(key);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  body_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::int64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  begin_field(key);
  body_ += value ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const { return "{" + body_ + "}"; }

}  // namespace ddm::net
