#include "net/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <utility>

#include "core/symmetric_threshold.hpp"
#include "engine/cost_model.hpp"
#include "net/ndjson.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace ddm::net {

namespace {

struct ServeMetrics {
  obs::Counter requests = obs::counter("serve.requests");
  obs::Counter shed = obs::counter("serve.shed");
  obs::Counter degraded = obs::counter("serve.degraded");
  obs::Counter deadline_exceeded = obs::counter("serve.deadline_exceeded");
  obs::Counter cancelled = obs::counter("serve.cancelled");
  obs::Counter bad_requests = obs::counter("serve.bad_requests");
  obs::Counter coalesced_batches = obs::counter("serve.coalesced_batches");
  obs::Counter batch_points = obs::counter("serve.batch_points");
  obs::Histogram request_seconds = obs::histogram("serve.request_seconds");
  obs::Gauge queue_depth = obs::gauge("serve.queue_depth");

  static const ServeMetrics& get() {
    static const ServeMetrics metrics;
    return metrics;
  }
};

/// Caps on wire-supplied parameters: generous for real use, tight enough
/// that one request cannot buy unbounded memory or compute by itself (the
/// deadline is the real backstop for compute).
constexpr std::uint64_t kMaxN = 1000;
constexpr std::uint64_t kMaxTrials = 100'000'000;

[[noreturn]] void reject(const std::string& why) { throw Error(why); }

/// Folds one measured evaluation into the loaded policy table — the live,
/// worker-safe half of profile-guided dispatch: a long-running daemon keeps
/// refining its calibrated cells (EWMA) as the machine's real latency
/// drifts. No-op when no table is configured; best-effort by design (an
/// observation must never fail a request that was already answered).
void observe_policy(const engine::EvalRequest& request, const std::string& engine_id,
                    std::chrono::steady_clock::duration elapsed) {
  std::shared_ptr<engine::CostModel> model;
  try {
    model = engine::CostModel::configured();
  } catch (const std::exception&) {
    return;  // a bad DDM_POLICY fails loudly at startup, not per-request
  }
  if (model == nullptr || request.betas.empty()) return;
  const double seconds = std::chrono::duration<double>(elapsed).count();
  // Samples measured under a generalized game refine that game's own
  // "engine@digest" row, never the homogeneous cells (engine/cost_model.hpp).
  model->observe(engine_id, request.n, request.betas.size(),
                 seconds / static_cast<double>(request.betas.size()),
                 request.scenario.digest());
}

[[nodiscard]] util::Rational parse_t(const JsonObject& request) {
  const JsonValue* value = find(request, "t");
  if (value == nullptr) reject("field 't' is required");
  util::Rational t;
  if (value->kind == JsonValue::Kind::kString) {
    try {
      t = util::Rational::parse(value->string);
    } catch (const std::exception&) {
      reject("field 't' is not a valid rational ('a/b' or integer): '" + value->string + "'");
    }
  } else if (value->kind == JsonValue::Kind::kNumber) {
    t = util::Rational::from_double(value->number);
  } else {
    reject("field 't' must be a number or an 'a/b' string");
  }
  if (t.signum() <= 0) reject("field 't' must be positive");
  return t;
}

/// True for engines whose per-point answers do not depend on request seeds,
/// so jobs from different clients can share one batched evaluation.
[[nodiscard]] bool coalescable_engine(const std::string& engine) {
  return engine.empty() || engine == "auto" || engine == "batch" || engine == "compiled" ||
         engine == "kernel";
}

}  // namespace

struct EvalService::Job {
  std::string id;
  std::string op;
  std::string engine;  // forced engine id, or "" for the service policy
  std::uint32_t n = 0;
  util::Rational t;
  std::string t_key;  // canonical t text, part of the coalescing key
  /// The game the request is posed over; the wire field is the canonical
  /// descriptor text (engine/scenario.hpp), strictly validated at parse
  /// time. The digest joins the coalescing key, so jobs for different games
  /// never share a batch.
  engine::Scenario scenario;
  double beta = 0.0;
  util::Rational tolerance{1, 1000000000};
  std::uint64_t trials = 200000;
  std::uint64_t seed = 42;
  util::RunControl control;
  std::promise<std::string> done;
};

EvalService::EvalService(ServiceConfig config) : config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.coalesce_limit == 0) config_.coalesce_limit = 1;
  workers_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

EvalService::~EvalService() { drain(); }

bool EvalService::draining() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::size_t EvalService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void EvalService::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::string EvalService::serve_health() {
  JsonWriter reply;
  reply.field("ok", true)
      .field("op", "health")
      .field("status", draining() ? "draining" : "serving")
      .field("queue_depth", static_cast<std::uint64_t>(queue_depth()))
      .field("workers", static_cast<std::uint64_t>(config_.workers));
  return reply.str();
}

std::string EvalService::handle_line(const std::string& line) {
  const ServeMetrics& metrics = ServeMetrics::get();
  metrics.requests.add();
  obs::ScopedTimer timer(metrics.request_seconds);
  DDM_SPAN("serve.request");

  auto job = std::make_shared<Job>();
  try {
    const JsonObject request = parse_flat_object(line);
    job->id = get_string(request, "id", "");
    job->op = require_string(request, "op");
    if (job->op == "health") return serve_health();
    if (job->op != "threshold" && job->op != "certify" && job->op != "analyze") {
      reject("unknown op '" + job->op + "' (expected threshold, certify, analyze, health)");
    }
    const std::uint64_t n = require_u64(request, "n");
    if (n < 1 || n > kMaxN) {
      reject("field 'n' out of range [1, " + std::to_string(kMaxN) + "]");
    }
    job->n = static_cast<std::uint32_t>(n);
    job->t = parse_t(request);
    job->t_key = job->t.to_string();
    job->engine = get_string(request, "engine", "");
    if (const std::string descriptor = get_string(request, "scenario", "");
        !descriptor.empty()) {
      // Strict: a malformed or player-count-mismatched scenario is a
      // bad_request, never a silently homogeneous evaluation.
      try {
        job->scenario = engine::Scenario::parse(descriptor);
        job->scenario.check_players(job->n, "scenario");
      } catch (const Error& error) {
        reject(std::string("field 'scenario' is invalid: ") + error.what());
      }
      if (job->op == "analyze" && !job->scenario.is_default()) {
        reject("op 'analyze' serves the homogeneous game only (the Section 5.2 "
               "closed form); evaluate generalized scenarios via op 'threshold'");
      }
    }
    if (job->op != "analyze") {
      job->beta = require_number(request, "beta");
      if (!(job->beta >= 0.0 && job->beta <= 1.0)) reject("field 'beta' must be in [0, 1]");
    }
    if (const JsonValue* tol = find(request, "tol"); tol != nullptr) {
      const double tolerance = get_number(request, "tol", 0.0);
      if (!(tolerance > 0.0)) reject("field 'tol' must be a positive number");
      job->tolerance = util::Rational::from_double(tolerance);
    }
    job->trials = get_u64(request, "trials", job->trials);
    if (job->trials < 1 || job->trials > kMaxTrials) {
      reject("field 'trials' out of range [1, " + std::to_string(kMaxTrials) + "]");
    }
    job->seed = get_u64(request, "seed", job->seed);
    const std::uint64_t deadline_ms = get_u64(request, "deadline_ms", 0);
    if (deadline_ms > 0) {
      job->control.deadline = util::Deadline::after(std::chrono::milliseconds(deadline_ms));
    } else if (config_.default_deadline.count() > 0) {
      job->control.deadline = util::Deadline::after(config_.default_deadline);
    }
  } catch (const std::exception& parse_error) {
    metrics.bad_requests.add();
    JsonWriter reply;
    if (!job->id.empty()) reply.field("id", job->id);
    reply.field("ok", false).field("error", "bad_request").field("detail", parse_error.what());
    return reply.str();
  }

  std::future<std::string> reply = job->done.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      JsonWriter shed_reply;
      if (!job->id.empty()) shed_reply.field("id", job->id);
      shed_reply.field("ok", false).field("error", "draining");
      return shed_reply.str();
    }
    if (queue_.size() >= config_.queue_capacity) {
      metrics.shed.add();
      JsonWriter shed_reply;
      if (!job->id.empty()) shed_reply.field("id", job->id);
      shed_reply.field("ok", false)
          .field("error", "overloaded")
          .field("queue_depth", static_cast<std::uint64_t>(queue_.size()));
      return shed_reply.str();
    }
    queue_.push_back(job);
    metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return reply.get();
}

void EvalService::worker_loop() {
  const ServeMetrics& metrics = ServeMetrics::get();
  while (true) {
    std::vector<std::shared_ptr<Job>> group;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      group.push_back(queue_.front());
      queue_.pop_front();
      const Job& head = *group.front();
      if (head.op == "threshold" && coalescable_engine(head.engine)) {
        // Fold queued twins of the head — same instance (n, t), same engine
        // choice — into one batched evaluation.
        for (auto it = queue_.begin();
             it != queue_.end() && group.size() < config_.coalesce_limit;) {
          const Job& candidate = **it;
          if (candidate.op == "threshold" && candidate.n == head.n &&
              candidate.t_key == head.t_key && candidate.engine == head.engine &&
              candidate.scenario.digest() == head.scenario.digest()) {
            group.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    serve_group(group);
  }
}

void EvalService::serve_group(std::vector<std::shared_ptr<Job>>& group) {
  const ServeMetrics& metrics = ServeMetrics::get();
  if (group.size() > 1) {
    metrics.coalesced_batches.add();
    metrics.batch_points.add(group.size());
    DDM_SPAN("serve.coalesced", {{"points", static_cast<std::int64_t>(group.size())}});
    const Job& head = *group.front();
    engine::EvalRequest request;
    request.n = head.n;
    request.t = head.t;
    request.scenario = head.scenario;
    request.betas.reserve(group.size());
    for (const auto& job : group) request.betas.push_back(job->beta);
    // The batch runs under the group's TIGHTEST remaining budget: if that
    // suffices, everyone wins the amortization; if it fires, each job falls
    // back to its own evaluation below, under its own control.
    bool any_deadline = false;
    auto min_remaining = std::chrono::nanoseconds::max();
    for (const auto& job : group) {
      if (job->control.deadline.is_set()) {
        any_deadline = true;
        min_remaining = std::min(min_remaining, job->control.deadline.remaining());
      }
    }
    engine::ResilientOptions options;
    options.policy = config_.policy;
    if (!head.engine.empty()) options.policy.engine = head.engine;
    options.retry = config_.retry;
    if (any_deadline) options.control.deadline = util::Deadline::after(min_remaining);
    try {
      const auto started = std::chrono::steady_clock::now();
      const engine::EvalOutcome outcome = engine::evaluate_resilient(options, request);
      observe_policy(request, outcome.engine_id, std::chrono::steady_clock::now() - started);
      if (outcome.degraded) metrics.degraded.add();
      for (std::size_t k = 0; k < group.size(); ++k) {
        JsonWriter reply;
        if (!group[k]->id.empty()) reply.field("id", group[k]->id);
        reply.field("ok", true)
            .field("op", "threshold")
            .field("value", outcome.values[k])
            .field("engine", outcome.engine_id)
            .field("coalesced", true);
        if (!head.scenario.is_default()) reply.field("scenario", head.scenario.digest());
        if (outcome.degraded) {
          reply.field("degraded", true).field("degradation", outcome.degradation_note);
        }
        group[k]->done.set_value(reply.str());
      }
      return;
    } catch (const std::exception&) {
      // Deadline cut or chain failure on the shared batch: isolate the jobs
      // so one poisoned or impatient request cannot fail its queue-mates.
    }
  }
  for (const auto& job : group) job->done.set_value(serve_job(*job));
}

std::string EvalService::serve_job(const Job& job) const {
  const ServeMetrics& metrics = ServeMetrics::get();
  JsonWriter reply;
  if (!job.id.empty()) reply.field("id", job.id);
  try {
    if (job.op == "analyze") {
      // The symbolic analysis does not poll mid-build; honor an already
      // spent budget before starting.
      switch (job.control.should_stop()) {
        case util::StopReason::kNone:
          break;
        case util::StopReason::kCancelled:
          throw Cancelled("serve.analyze", 0, 1);
        case util::StopReason::kDeadline:
          throw DeadlineExceeded("serve.analyze", 0, 1);
      }
      const auto analysis = core::SymmetricThresholdAnalysis::build(job.n, job.t);
      const auto opt = analysis.optimize();
      reply.field("ok", true)
          .field("op", "analyze")
          .field("beta_star", opt.beta.approx())
          .field("value", opt.value.to_double())
          .field("certified", opt.certified);
      return reply.str();
    }

    engine::EvalRequest request;
    request.n = job.n;
    request.t = job.t;
    request.scenario = job.scenario;
    request.betas = {job.beta};
    request.tolerance = job.tolerance;
    request.trials = job.trials;
    request.seed = job.seed;
    engine::ResilientOptions options;
    options.policy = config_.policy;
    if (job.op == "certify") options.policy.engine = "certified";
    if (!job.engine.empty()) options.policy.engine = job.engine;
    options.control = job.control;
    options.retry = config_.retry;
    const auto started = std::chrono::steady_clock::now();
    const engine::EvalOutcome outcome = engine::evaluate_resilient(options, request);
    observe_policy(request, outcome.engine_id, std::chrono::steady_clock::now() - started);
    if (outcome.degraded) metrics.degraded.add();
    reply.field("ok", true)
        .field("op", job.op)
        .field("value", outcome.values.at(0))
        .field("engine", outcome.engine_id);
    if (!job.scenario.is_default()) reply.field("scenario", job.scenario.digest());
    if (outcome.degraded) {
      reply.field("degraded", true).field("degradation", outcome.degradation_note);
    }
    if (job.op == "certify") {
      if (!outcome.certificates.empty()) {
        const CertifiedValue& certificate = outcome.certificates.front();
        reply.field("width", certificate.width().to_double())
            .field("tier", to_string(certificate.tier))
            .field("met_tolerance", certificate.met_tolerance);
      } else {
        // A degraded certify (the certified -> mc chain) has no enclosure;
        // say so instead of inventing one.
        reply.field("met_tolerance", false);
      }
    }
    return reply.str();
  } catch (const Cancelled& stop) {
    metrics.cancelled.add();
    reply.field("ok", false).field("error", "cancelled").field("detail", stop.what());
    return reply.str();
  } catch (const DeadlineExceeded& stop) {
    metrics.deadline_exceeded.add();
    reply.field("ok", false).field("error", "deadline_exceeded").field("detail", stop.what());
    return reply.str();
  } catch (const std::exception& failure) {
    reply.field("ok", false).field("error", "evaluation_failed").field("detail", failure.what());
    return reply.str();
  }
}

}  // namespace ddm::net
