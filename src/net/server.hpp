// server.hpp — minimal POSIX TCP plumbing for ddm_serve.
//
// Deliberately small: a loopback-only listener with a shutdown hook that
// unblocks accept() (the SIGTERM drain path needs to interrupt the accept
// loop from a signal handler, so shutdown_listener_fd() is a single
// async-signal-safe syscall), and a buffered line-oriented connection
// wrapper with socket timeouts (a stuck peer must never pin a service
// thread forever — see docs/robustness.md, "Operating ddm_serve").
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace ddm::net {

/// Loopback TCP listener. Binds 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port, reported by port()); throws ddm::Error on any socket
/// failure. The fd is CLOEXEC so a crash-restart supervisor never inherits
/// the socket.
class TcpListener {
 public:
  TcpListener(std::uint16_t port, int backlog);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (resolves port 0 to the actual ephemeral port).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Raw listening fd, for shutdown_listener_fd from a signal handler.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Blocks for the next connection; returns the connected fd, or -1 once
  /// the listener has been shut down (the drain signal).
  [[nodiscard]] int accept_connection() const noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Unblocks every accept_connection() on `fd` with an error return.
/// Async-signal-safe (one shutdown(2) call) — THE way the SIGTERM handler
/// initiates the drain.
void shutdown_listener_fd(int fd) noexcept;

/// Buffered line I/O over a connected socket; owns and closes the fd.
class Connection {
 public:
  explicit Connection(int fd) noexcept : fd_(fd) {}
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// SO_RCVTIMEO/SO_SNDTIMEO on the socket: a peer that stops reading or
  /// writing for this long makes the I/O calls fail instead of hanging.
  void set_timeout(std::chrono::milliseconds timeout) noexcept;

  /// Reads the next '\n'-terminated line (terminator stripped, CR trimmed).
  /// Returns false on EOF, timeout, error, or a line exceeding the 64 KiB
  /// bound (an unframed peer must not grow the buffer without limit).
  [[nodiscard]] bool read_line(std::string& line);

  /// Writes all of `data`; false on error/timeout.
  [[nodiscard]] bool write_all(std::string_view data) noexcept;

  /// Forces subsequent reads on this connection to fail (used to kick
  /// connection threads loose during drain). Async-signal-safe.
  void shutdown_now() noexcept;

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace ddm::net
