// service.hpp — the request-serving core of ddm_serve.
//
// EvalService sits between the TCP front (net/server.hpp, one thread per
// connection calling handle_line) and the engine layer. It owns a BOUNDED
// admission queue and a small worker pool:
//
//   * Admission is load-shedding, not blocking: a full queue answers
//     `{"ok":false,"error":"overloaded"}` immediately (serve.shed counter)
//     instead of letting latency grow without bound. Connection threads
//     block only on their own job's completion.
//   * Workers COALESCE: when the queue holds several `threshold` requests
//     for the same (n, t), one worker folds up to ServiceConfig::
//     coalesce_limit of them into a single batched EvalRequest — the batch
//     kernel amortizes one Gray-code subset walk across the group
//     (serve.coalesced_batches / serve.batch_points). The batch runs under
//     the group's tightest deadline; if that cuts it off, each job is
//     re-evaluated individually under its own control, so one impatient
//     client cannot fail its queue-mates.
//   * Every job evaluates through engine::evaluate_resilient, so per-request
//     deadlines, retry-with-backoff, and the degradation chain all apply;
//     degraded answers carry `"degraded":true` plus the chain note.
//   * Requests may carry an optional `scenario` field (the canonical
//     descriptor of engine/scenario.hpp, e.g. "heterogeneous:1/2,1,2" or
//     "deviating:2") posing the evaluation over a generalized game. The
//     field is validated strictly at admission — malformed descriptors and
//     player-count mismatches are `bad_request`, never a silently
//     homogeneous answer — the digest joins the coalescing key, and replies
//     echo it back.
//   * Drain (the SIGTERM path) stops admission — late arrivals get a
//     structured `draining` reply — serves everything already queued, then
//     lets the workers exit.
//
// The wire protocol and operational guidance live in docs/robustness.md
// ("Operating ddm_serve").
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/resilient.hpp"
#include "util/resilience.hpp"

namespace ddm::net {

/// Serving knobs; the ddm_serve main populates these from DDM_SERVE_* /
/// command-line flags (strictly parsed — see util/env.hpp).
struct ServiceConfig {
  /// Admission-queue bound; arrivals beyond it are shed.
  std::size_t queue_capacity = 64;
  /// Worker threads popping the queue.
  unsigned workers = 2;
  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; zero = no default deadline.
  std::chrono::milliseconds default_deadline{0};
  /// Max `threshold` jobs folded into one coalesced batch.
  std::size_t coalesce_limit = 16;
  /// Engine-selection policy for every request (requests may force an
  /// engine with an `engine` field).
  engine::EnginePolicy policy;
  /// Request-level retry/backoff handed to evaluate_resilient.
  util::RetryPolicy retry{.max_retries = 1,
                          .base_delay = std::chrono::milliseconds(1),
                          .jitter = 0.1};
};

class EvalService {
 public:
  explicit EvalService(ServiceConfig config);
  ~EvalService();
  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Serves one request line and returns the reply object (no trailing
  /// newline). Never throws: malformed input, shedding, deadline cuts, and
  /// evaluation failures all come back as structured error replies. Blocks
  /// the calling (connection) thread until the job completes; `health` is
  /// answered inline without touching the queue.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Stops admission (new work is answered with `draining`), serves the
  /// queued jobs, and joins the workers. Idempotent.
  void drain();

  [[nodiscard]] bool draining() const noexcept;

  /// Current queue depth (also exported as the serve.queue_depth gauge).
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Job;

  [[nodiscard]] std::string serve_health();
  void worker_loop();
  void serve_group(std::vector<std::shared_ptr<Job>>& group);
  [[nodiscard]] std::string serve_job(const Job& job) const;

  ServiceConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool draining_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ddm::net
