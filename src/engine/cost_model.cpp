#include "engine/cost_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>

#include "engine/registry.hpp"
#include "engine/scenario.hpp"
#include "obs/metrics_registry.hpp"
#include "poly/plan_store.hpp"
#include "util/rational.hpp"
#include "util/status.hpp"

namespace ddm::engine {

namespace {

struct PolicyMetrics {
  obs::Counter refreshes = obs::counter("engine.policy.refreshes");
  obs::Gauge loaded = obs::gauge("engine.policy.loaded");

  static const PolicyMetrics& get() {
    static const PolicyMetrics metrics;
    return metrics;
  }
};

constexpr double kEwmaAlpha = 0.2;
/// Live observation stops CREATING cells past this total so a long-running
/// daemon's table stays bounded; existing cells keep refining forever.
constexpr std::size_t kMaxLiveCells = 4096;

std::mutex g_configured_mutex;
std::shared_ptr<CostModel> g_configured;  // NOLINT: guarded global
bool g_configured_resolved = false;       // NOLINT: guarded global

[[nodiscard]] std::uint64_t cell_key(std::uint32_t n, std::uint32_t batch) noexcept {
  return (static_cast<std::uint64_t>(n) << 32) | batch;
}

/// Keeps `axis` sorted and unique under cell insertion.
void insert_axis(std::vector<std::uint32_t>& axis, std::uint32_t value) {
  const auto it = std::lower_bound(axis.begin(), axis.end(), value);
  if (it == axis.end() || *it != value) axis.insert(it, value);
}

/// The two axis values bracketing `value` (equal when `value` is outside the
/// grid or hits a grid point — prediction clamps at the edges).
[[nodiscard]] std::pair<std::uint32_t, std::uint32_t> bracket(
    const std::vector<std::uint32_t>& axis, std::uint32_t value) {
  if (value <= axis.front()) return {axis.front(), axis.front()};
  if (value >= axis.back()) return {axis.back(), axis.back()};
  const auto hi = std::lower_bound(axis.begin(), axis.end(), value);
  if (*hi == value) return {value, value};
  return {*(hi - 1), *hi};
}

/// Interpolation weight for `value` between lo and hi on a log2 axis.
[[nodiscard]] double log_weight(std::uint32_t lo, std::uint32_t hi, std::uint32_t value) {
  if (hi == lo) return 0.0;
  return (std::log2(static_cast<double>(value)) - std::log2(static_cast<double>(lo))) /
         (std::log2(static_cast<double>(hi)) - std::log2(static_cast<double>(lo)));
}

/// True for the digests that mean the paper's default game: the homogeneous
/// digest and the legacy empty string both map to the bare engine row, so
/// every pre-scenario table row, caller, and byte of saved output is
/// unchanged.
[[nodiscard]] bool is_default_scenario(std::string_view scenario) noexcept {
  return scenario.empty() || scenario == "homogeneous";
}

/// The row key a (engine, scenario) pair measures under: the bare engine id
/// for the default game, "engine@digest" otherwise. The digest is
/// whitespace-free by construction (engine/scenario.hpp), so the composite
/// token survives the table's whitespace-delimited cell lines verbatim.
[[nodiscard]] std::string scenario_row_key(std::string_view engine, std::string_view scenario) {
  std::string key(engine);
  if (!is_default_scenario(scenario)) {
    key += '@';
    key += scenario;
  }
  return key;
}

}  // namespace

void CostModel::set_cell(const std::string& engine, std::uint32_t n, std::uint32_t batch,
                         double seconds_per_point) {
  if (engine.empty() || n == 0 || batch == 0 || !std::isfinite(seconds_per_point) ||
      seconds_per_point <= 0.0) {
    throw Error("CostModel::set_cell: invalid cell (engine '" + engine + "', n=" +
                std::to_string(n) + ", batch=" + std::to_string(batch) + ", seconds_per_point=" +
                std::to_string(seconds_per_point) + ")");
  }
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  set_cell_locked(engine, n, batch, seconds_per_point);
}

void CostModel::set_cell_locked(const std::string& engine, std::uint32_t n, std::uint32_t batch,
                                double seconds_per_point) {
  EngineGrid& grid = engines_[engine];
  grid.cells[cell_key(n, batch)] = seconds_per_point;
  insert_axis(grid.ns, n);
  insert_axis(grid.batches, batch);
}

double CostModel::predict(std::string_view engine, std::uint32_t n, std::size_t batch,
                          std::string_view scenario) const {
  const bool generalized = !is_default_scenario(scenario);
  const std::string key = generalized ? scenario_row_key(engine, scenario) : std::string{};
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = engines_.find(generalized ? std::string_view{key} : engine);
  if (it == engines_.end() || it->second.cells.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const auto clamped_batch = static_cast<std::uint32_t>(
      std::min<std::size_t>(std::max<std::size_t>(batch, 1), 0xffffffffu));
  return std::exp(predict_log_locked(it->second, std::max<std::uint32_t>(n, 1), clamped_batch));
}

std::size_t CostModel::cheapest(const std::string_view* engines, std::size_t count,
                                std::uint32_t n, std::size_t batch,
                                std::string_view scenario) const {
  const auto clamped_batch = static_cast<std::uint32_t>(
      std::min<std::size_t>(std::max<std::size_t>(batch, 1), 0xffffffffu));
  const std::uint32_t clamped_n = std::max<std::uint32_t>(n, 1);
  const bool generalized = !is_default_scenario(scenario);
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::size_t best = count;
  double best_log = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    const auto it = generalized ? engines_.find(scenario_row_key(engines[i], scenario))
                                : engines_.find(engines[i]);
    if (it == engines_.end() || it->second.cells.empty()) continue;
    const double log_cost = predict_log_locked(it->second, clamped_n, clamped_batch);
    // `< infinity`, not isfinite: a log-cost of -infinity is a (degenerate)
    // zero-seconds prediction and must still qualify, exactly as a predict()
    // of 0.0 passed the isfinite gate before this fast path existed.
    if (log_cost < best_log) {
      best = i;
      best_log = log_cost;
    }
  }
  return best;
}

double CostModel::predict_log_locked(const EngineGrid& grid, std::uint32_t n,
                                     std::uint32_t batch) const {
  const auto [n0, n1] = bracket(grid.ns, n);
  const auto [b0, b1] = bracket(grid.batches, batch);
  const std::uint32_t corner_n[2] = {n0, n1};
  const std::uint32_t corner_b[2] = {b0, b1};
  double log_cost[2][2];
  bool complete = true;
  for (int i = 0; i < 2 && complete; ++i) {
    for (int j = 0; j < 2 && complete; ++j) {
      const auto cell = grid.cells.find(cell_key(corner_n[i], corner_b[j]));
      if (cell == grid.cells.end()) {
        complete = false;
      } else {
        log_cost[i][j] = std::log(cell->second);
      }
    }
  }
  if (complete) {
    // Bilinear in (log2 n, log2 batch) over LOG seconds-per-point: engine
    // cost grows geometrically in n (O(3^n) kernels), so interpolating the
    // logarithm is the model that matches the mechanism.
    const double wn = log_weight(n0, n1, std::min(std::max(n, n0), n1));
    const double wb = log_weight(b0, b1, std::min(std::max(batch, b0), b1));
    const double low = log_cost[0][0] * (1.0 - wb) + log_cost[0][1] * wb;
    const double high = log_cost[1][0] * (1.0 - wb) + log_cost[1][1] * wb;
    return low * (1.0 - wn) + high * wn;
  }
  // Ragged grid (a calibration budget skip or live-created cell): nearest
  // measured cell by log-distance. The grids are tiny, a scan is fine.
  double best_distance = std::numeric_limits<double>::infinity();
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& [key, seconds] : grid.cells) {
    const auto cell_n = static_cast<double>(key >> 32);
    const auto cell_b = static_cast<double>(key & 0xffffffffu);
    const double dn = std::log2(cell_n) - std::log2(static_cast<double>(n));
    const double db = std::log2(cell_b) - std::log2(static_cast<double>(batch));
    const double distance = dn * dn + db * db;
    if (distance < best_distance) {
      best_distance = distance;
      best_cost = seconds;
    }
  }
  return std::log(best_cost);
}

bool CostModel::empty() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [engine, grid] : engines_) {
    if (!grid.cells.empty()) return false;
  }
  return true;
}

std::size_t CostModel::cell_count() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [engine, grid] : engines_) count += grid.cells.size();
  return count;
}

std::vector<CostCell> CostModel::cells() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<CostCell> result;
  for (const auto& [engine, grid] : engines_) {
    for (const auto& [key, seconds] : grid.cells) {
      result.push_back(CostCell{engine, static_cast<std::uint32_t>(key >> 32),
                                static_cast<std::uint32_t>(key & 0xffffffffu), seconds});
    }
  }
  return result;  // map iteration order == (engine, n, batch) sort order
}

void CostModel::observe(std::string_view engine, std::uint32_t n, std::size_t batch,
                        double seconds_per_point, std::string_view scenario) {
  if (engine.empty() || n == 0 || batch == 0 || !std::isfinite(seconds_per_point) ||
      seconds_per_point <= 0.0) {
    return;  // live refinement never throws on a weird sample, it drops it
  }
  // Generalized-game samples refine (and create) their own scenario-keyed
  // rows — a daemon serving mixed games never pollutes the homogeneous cells
  // the calibrated table shipped with.
  const std::string row = scenario_row_key(engine, scenario);
  // Bucket the batch size to the geometrically nearest power of two so live
  // observations land on (and refine) a bounded cell grid.
  std::uint32_t bucket = 1;
  while (bucket < 0x80000000u && static_cast<std::size_t>(bucket) * 2 <= batch) bucket <<= 1;
  if (bucket < 0x80000000u &&
      static_cast<double>(batch) > static_cast<double>(bucket) * 1.5) {
    bucket <<= 1;
  }
  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    const auto it = engines_.find(row);
    auto* grid = it != engines_.end() ? &it->second : nullptr;
    const auto key = cell_key(n, bucket);
    if (grid != nullptr) {
      if (const auto cell = grid->cells.find(key); cell != grid->cells.end()) {
        cell->second = (1.0 - kEwmaAlpha) * cell->second + kEwmaAlpha * seconds_per_point;
        PolicyMetrics::get().refreshes.add();
        return;
      }
    }
    std::size_t total = 0;
    for (const auto& [id, engine_grid] : engines_) total += engine_grid.cells.size();
    if (total >= kMaxLiveCells) return;
    set_cell_locked(row, n, bucket, seconds_per_point);
  }
  PolicyMetrics::get().refreshes.add();
}

void CostModel::save(const std::string& path) const {
  std::ostringstream body;
  body << "ddmpolicy v" << kPolicyFormatVersion << "\n";
  body << "origin calibrate\n";
  body << "t_regime n/3\n";
  {
    std::ostringstream cell_text;
    cell_text.precision(17);
    for (const CostCell& cell : cells()) {
      cell_text << "cell " << cell.engine << ' ' << cell.n << ' ' << cell.batch << ' '
                << cell.seconds_per_point << "\n";
    }
    body << cell_text.str();
  }
  const std::string text = body.str();
  const std::uint64_t checksum = poly::plan_store_checksum(text.data(), text.size());
  std::ostringstream trailer;
  trailer << "checksum " << std::hex;
  trailer.width(16);
  trailer.fill('0');
  trailer << checksum << "\n";

  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    out << text << trailer.str();
    if (!out.good()) {
      std::remove(temp.c_str());
      throw PolicyError("cannot write table", path, "save");
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::remove(temp.c_str());
    throw PolicyError("cannot rename temp file into place: " + ec.message(), path, "save");
  }
}

std::shared_ptr<CostModel> CostModel::load(const std::string& path, const std::string& source) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw PolicyError("cannot open file", path, source);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // The checksum trailer must be the final line; everything before it is the
  // checksummed body.
  const std::size_t trailer_at = text.rfind("checksum ");
  if (trailer_at == std::string::npos ||
      (trailer_at != 0 && text[trailer_at - 1] != '\n')) {
    throw PolicyError("missing checksum trailer (truncated file?)", path, source);
  }
  const std::string trailer = text.substr(trailer_at);
  std::istringstream trailer_in(trailer);
  std::string keyword, hex_digits, extra;
  trailer_in >> keyword >> hex_digits;
  if (keyword != "checksum" || hex_digits.size() != 16 || (trailer_in >> extra)) {
    throw PolicyError("malformed checksum trailer '" + trailer + "'", path, source);
  }
  std::uint64_t recorded = 0;
  for (const char digit : hex_digits) {
    const auto value = static_cast<unsigned>(
        digit >= '0' && digit <= '9'   ? digit - '0'
        : digit >= 'a' && digit <= 'f' ? digit - 'a' + 10
        : digit >= 'A' && digit <= 'F' ? digit - 'A' + 10
                                       : 16);
    if (value == 16) {
      throw PolicyError("malformed checksum trailer '" + trailer + "'", path, source);
    }
    recorded = (recorded << 4) | value;
  }
  const std::uint64_t actual = poly::plan_store_checksum(text.data(), trailer_at);
  if (actual != recorded) {
    throw PolicyError("checksum mismatch (file corrupt?)", path, source);
  }

  std::istringstream lines(text.substr(0, trailer_at));
  std::string line;
  if (!std::getline(lines, line) || line.rfind("ddmpolicy v", 0) != 0) {
    throw PolicyError("not a policy table (bad magic line '" + line + "')", path, source);
  }
  const std::string version_text = line.substr(11);
  std::uint32_t version = 0;
  try {
    std::size_t used = 0;
    version = static_cast<std::uint32_t>(std::stoul(version_text, &used));
    if (used != version_text.size()) throw std::invalid_argument(version_text);
  } catch (const std::exception&) {
    throw PolicyError("malformed version '" + version_text + "'", path, source);
  }
  if (version != kPolicyFormatVersion) {
    throw PolicyError("format version " + std::to_string(version) + " (current " +
                          std::to_string(kPolicyFormatVersion) + "; re-run ddm_cli calibrate)",
                      path, source, /*stale=*/true);
  }

  auto model = std::make_shared<CostModel>();
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head == "origin" || head == "t_regime") {
      std::string value;
      if (!(fields >> value) || (fields >> value)) {
        throw PolicyError("malformed header line '" + line + "'", path, source);
      }
      continue;
    }
    if (head != "cell") {
      throw PolicyError("unknown line '" + line + "'", path, source);
    }
    std::string engine;
    std::uint32_t n = 0;
    std::uint32_t batch = 0;
    double seconds = 0.0;
    std::string tail;
    if (!(fields >> engine >> n >> batch >> seconds) || (fields >> tail) || engine.empty() ||
        n == 0 || batch == 0 || !std::isfinite(seconds) || seconds <= 0.0) {
      throw PolicyError("malformed cell line '" + line + "'", path, source);
    }
    // A scenario-keyed row carries its game as an "engine@digest" token
    // (ddm_serve's live-refined saves). The digest must parse — a corrupt
    // suffix would otherwise create an unreachable row that silently never
    // matches any request.
    if (const std::size_t at = engine.find('@'); at != std::string::npos) {
      if (at == 0) {
        throw PolicyError("malformed cell line '" + line + "' (empty engine)", path, source);
      }
      try {
        (void)Scenario::parse(std::string_view(engine).substr(at + 1));
      } catch (const Error& error) {
        throw PolicyError(
            "malformed scenario in cell line '" + line + "': " + error.what(), path, source);
      }
    }
    if (std::isfinite(model->predict(engine, n, batch)) &&
        model->engines_[engine].cells.count(cell_key(n, batch)) != 0) {
      throw PolicyError("duplicate cell line '" + line + "'", path, source);
    }
    model->set_cell(engine, n, batch, seconds);
  }
  if (model->empty()) {
    throw PolicyError("table has no cells", path, source);
  }
  return model;
}

std::shared_ptr<CostModel> CostModel::calibrate(const CalibrationOptions& options) {
  auto model = std::make_shared<CostModel>();
  Registry& registry = Registry::instance();
  std::vector<std::uint32_t> batches = options.batches;
  std::sort(batches.begin(), batches.end());
  for (const std::string& engine_id : options.engines) {
    const Evaluator& evaluator = registry.require(engine_id);
    for (const std::uint32_t n : options.ns) {
      if (n == 0) continue;
      double base_per_point = std::numeric_limits<double>::quiet_NaN();
      for (const std::uint32_t batch : batches) {
        if (batch == 0) continue;
        // Budget gate: once a smaller batch at this n has measured the
        // per-point cost, skip batches whose projected total would dwarf the
        // cell budget — the nearest-cell fallback in predict() covers them.
        if (std::isfinite(base_per_point) &&
            base_per_point * static_cast<double>(batch) > 10.0 * options.cell_budget_seconds) {
          continue;
        }
        EvalRequest request;
        request.n = n;
        request.t = util::Rational(n, 3);  // the paper's t-regime (see header)
        request.betas.reserve(batch);
        for (std::uint32_t k = 0; k < batch; ++k) {
          request.betas.push_back(static_cast<double>(k + 1) / static_cast<double>(batch + 1));
        }
        if (!evaluator.supports(request)) continue;
        const auto run_once = [&evaluator, &request]() {
          const auto start = std::chrono::steady_clock::now();
          (void)evaluator.evaluate(request);
          return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        };
        try {
          double last_warmup = 0.0;
          for (unsigned w = 0; w < std::max(options.warmup, 1u); ++w) last_warmup = run_once();
          double measured;
          if (last_warmup > options.cell_budget_seconds) {
            // Over budget already: the warmup run (which for a slow kernel
            // IS steady state — there is no lowering to absorb) is the one
            // sample this cell gets.
            measured = last_warmup;
          } else {
            std::vector<double> samples;
            samples.reserve(options.repeats);
            for (unsigned r = 0; r < std::max(options.repeats, 1u); ++r) {
              samples.push_back(run_once());
            }
            std::sort(samples.begin(), samples.end());
            measured = samples[samples.size() / 2];
          }
          const double per_point = measured / static_cast<double>(batch);
          if (std::isfinite(per_point) && per_point > 0.0) {
            model->set_cell(engine_id, n, batch, per_point);
            if (!std::isfinite(base_per_point)) base_per_point = per_point;
          }
        } catch (const std::exception&) {
          // An engine that cannot answer this cell (lowering failure, size
          // cap) simply leaves it unmeasured; prediction falls back to the
          // nearest measured neighbor.
        }
      }
    }
  }
  return model;
}

std::shared_ptr<CostModel> CostModel::configured() {
  const std::lock_guard<std::mutex> lock(g_configured_mutex);
  if (!g_configured_resolved) {
    if (const char* path = std::getenv("DDM_POLICY"); path != nullptr && *path != '\0') {
      // NB: resolved is only latched on success — a bad DDM_POLICY throws on
      // EVERY consultation rather than silently dispatching cold after the
      // first one.
      g_configured = load(path, "DDM_POLICY");
    }
    g_configured_resolved = true;
  }
  // Refresh the gauge on every resolution, not just the first: Gauge::set is
  // dropped while metrics are disabled, and ddm_serve installs its table at
  // config-parse time — before --metrics/… enables the registry. Re-setting
  // here means the first consultation after enablement reports the truth,
  // and an unconfigured process exposes engine.policy.loaded = 0 rather than
  // omitting the metric (dashboards read absence as "old binary", not "no
  // table").
  PolicyMetrics::get().loaded.set(g_configured != nullptr ? 1 : 0);
  return g_configured;
}

void CostModel::set_configured(std::shared_ptr<CostModel> model) {
  const std::lock_guard<std::mutex> lock(g_configured_mutex);
  g_configured_resolved = true;
  g_configured = std::move(model);
  PolicyMetrics::get().loaded.set(g_configured != nullptr ? 1 : 0);
}

}  // namespace ddm::engine
