// policy.hpp — the engine-selection policy of ddm::engine.
//
// Home of the constants that used to live as ad-hoc branching in
// tools/ddm_cli.cpp (`kCompiledAutoTolerance`, `kCompiledAutoMaxN`): they are
// library policy, shared by the CLI, the examples, and the tests, so they
// live in the library. An EnginePolicy names either a concrete engine id or
// "auto"; engine::select (engine/registry.hpp) resolves it against a request.
//
// The auto rule (unchanged from the pre-engine CLI, byte-compatible):
//   * general (non-symmetric) requests  → batch kernel
//   * n > compiled_max_n                → batch kernel (the exact piecewise
//     build grows combinatorially and its certified bound blows past the
//     tolerance anyway)
//   * otherwise lower the exact Theorem 5.1 polynomial (through the plan
//     cache) and use the compiled plan iff its certified max-error bound is
//     within compiled_tolerance; else fall back to the batch kernel —
//     *visibly*: the Selection carries a fallback note the caller surfaces
//     (the CLI prints it to stderr and stamps the engine into sweep JSON).
#pragma once

#include <cstdint>
#include <string>

namespace ddm::engine {

/// Tolerance the auto policy holds the compiled plan's certificate to.
inline constexpr double kCompiledAutoTolerance = 1e-9;

/// The n cap past which auto does not even attempt the symbolic lowering;
/// forcing engine "compiled" still tries.
inline constexpr std::uint32_t kCompiledAutoMaxN = 16;

/// Caller-supplied selection policy. Default-constructed == today's CLI
/// default (`--engine=auto`).
struct EnginePolicy {
  /// Registry id to force, or "auto" to let the policy decide.
  std::string engine = "auto";
  /// Auto mode: maximum compiled-plan certificate accepted.
  double compiled_tolerance = kCompiledAutoTolerance;
  /// Auto mode: n cap for attempting the symbolic lowering.
  std::uint32_t compiled_max_n = kCompiledAutoMaxN;

  [[nodiscard]] bool is_auto() const noexcept { return engine == "auto"; }
};

}  // namespace ddm::engine
