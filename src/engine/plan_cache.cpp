#include "engine/plan_cache.hpp"

#include "core/symmetric_threshold.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"

namespace ddm::engine {

namespace {

struct CacheMetrics {
  obs::Counter hits = obs::counter("engine.cache.hits");
  obs::Counter misses = obs::counter("engine.cache.misses");
  obs::Counter evictions = obs::counter("engine.cache.evictions");

  static const CacheMetrics& get() {
    static const CacheMetrics metrics;
    return metrics;
  }
};

std::string cache_key(std::uint32_t n, const util::Rational& t) {
  return std::to_string(n) + "|" + t.to_string();
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

PlanCache& PlanCache::instance() {
  static PlanCache* cache = new PlanCache();  // leaked: outlives late callers
  return *cache;
}

std::shared_ptr<const poly::CompiledPiecewise> PlanCache::get_or_lower(
    std::uint32_t n, const util::Rational& t) {
  const CacheMetrics& metrics = CacheMetrics::get();
  const std::string key = cache_key(n, t);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
      lru_.splice(lru_.begin(), lru_, found->second);
      ++stats_.hits;
      metrics.hits.add();
      DDM_SPAN("engine.cache", {{"n", static_cast<std::int64_t>(n)}, {"hit", 1}});
      return found->second->plan;
    }
  }
  // Miss: lower outside the lock. The fault hook runs first so injected
  // transient faults strike before any state changes — a throw here leaves
  // the cache exactly as it was.
  DDM_SPAN("engine.cache", {{"n", static_cast<std::int64_t>(n)}, {"hit", 0}});
  // Unconditional: before_chunk is the call that loads DDM_FAULT_PLAN on
  // first use (active() alone does not), and it is a no-op without a plan.
  util::fault::before_chunk(kLoweringFaultChunk);
  const auto analysis = core::SymmetricThresholdAnalysis::build(n, t);
  auto plan = std::make_shared<const poly::CompiledPiecewise>(
      poly::CompiledPiecewise::lower(analysis.winning_probability()));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  metrics.misses.add();
  const auto raced = index_.find(key);
  if (raced != index_.end()) {
    // Another thread inserted while we lowered; adopt its (identical) plan
    // so every caller shares one copy.
    lru_.splice(lru_.begin(), lru_, raced->second);
    return raced->second->plan;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  evict_excess_locked();
  return lru_.front().plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  evict_excess_locked();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanCache::evict_excess_locked() {
  const CacheMetrics& metrics = CacheMetrics::get();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    metrics.evictions.add();
  }
}

}  // namespace ddm::engine
