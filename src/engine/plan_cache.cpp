#include "engine/plan_cache.hpp"

#include <utility>

#include "core/symmetric_threshold.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "poly/plan_store.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace ddm::engine {

namespace {

struct CacheMetrics {
  obs::Counter hits = obs::counter("engine.cache.hits");
  obs::Counter misses = obs::counter("engine.cache.misses");
  obs::Counter evictions = obs::counter("engine.cache.evictions");
  obs::Counter races = obs::counter("engine.cache.races");
  obs::Counter store_hits = obs::counter("engine.store.hits");
  obs::Counter store_stale = obs::counter("engine.store.stale");
  obs::Counter store_rejects = obs::counter("engine.store.rejects");

  static const CacheMetrics& get() {
    static const CacheMetrics metrics;
    return metrics;
  }
};

// Canonical cache key. Rational maintains the lowest-terms/positive-
// denominator invariant on every construction and parse, so to_string() of
// equal values is identical ("2/6" parses to the same key as "1/3") — the
// key is spelled num/den explicitly so the canonicalization is this
// function's contract, not an accident of a remote invariant, and
// tests/test_engine.cpp pins it with non-canonical inputs.
//
// A non-default scenario digest joins the key as a third segment, so a plan
// lowered for one game can never satisfy a lookup for another. The
// homogeneous digest (and the legacy empty digest) keeps the two-segment
// form, so every pre-scenario key — including persisted plan-store entries —
// stays byte-identical.
std::string cache_key(std::uint32_t n, const util::Rational& t,
                      std::string_view scenario_digest) {
  std::string key = std::to_string(n) + "|" + t.num().to_string() + "/" + t.den().to_string();
  if (!scenario_digest.empty() && scenario_digest != "homogeneous") {
    key += '|';
    key += scenario_digest;
  }
  return key;
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

PlanCache& PlanCache::instance() {
  static PlanCache* cache = new PlanCache();  // leaked: outlives late callers
  return *cache;
}

std::shared_ptr<const poly::CompiledPiecewise> PlanCache::get_or_lower(
    std::uint32_t n, const util::Rational& t, std::string_view scenario_digest) {
  const bool default_scenario = scenario_digest.empty() || scenario_digest == "homogeneous";
  const CacheMetrics& metrics = CacheMetrics::get();
  const std::string key = cache_key(n, t, scenario_digest);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
      lru_.splice(lru_.begin(), lru_, found->second);
      ++stats_.hits;
      metrics.hits.add();
      DDM_SPAN("engine.cache", {{"n", static_cast<std::int64_t>(n)}, {"hit", 1}});
      return found->second->plan;
    }
  }
  DDM_SPAN("engine.cache", {{"n", static_cast<std::int64_t>(n)}, {"hit", 0}});

  // Miss: consult the persistent plan store first. A validated hit skips the
  // lowering path entirely (warm start); version skew and validation
  // failures are counted and fall through to lowering — the store can only
  // ever cost latency, never correctness.
  // The persistent store holds homogeneous Theorem 5.1 plans only; a
  // generalized-scenario key never consults it, so the on-disk format needs
  // no scenario column until a generalized lowering actually exists.
  std::shared_ptr<const poly::CompiledPiecewise> plan;
  const auto store = default_scenario ? poly::PlanStore::configured() : nullptr;
  if (store != nullptr) {
    try {
      plan = store->load(n, t);
      if (plan != nullptr) {
        metrics.store_hits.add();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.store_hits;
      }
    } catch (const PlanStoreError& error) {
      if (error.stale()) {
        metrics.store_stale.add();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.store_stale;
      } else {
        metrics.store_rejects.add();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.store_rejects;
      }
      plan = nullptr;
    }
  }

  if (plan == nullptr) {
    // Lower outside the lock. The fault hook runs first so injected
    // transient faults strike before any state changes — a throw here leaves
    // the cache exactly as it was. Unconditional: before_chunk is the call
    // that loads DDM_FAULT_PLAN on first use (active() alone does not), and
    // it is a no-op without a plan.
    util::fault::before_chunk(kLoweringFaultChunk);
    const auto analysis = core::SymmetricThresholdAnalysis::build(n, t);
    plan = std::make_shared<const poly::CompiledPiecewise>(
        poly::CompiledPiecewise::lower(analysis.winning_probability()));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  metrics.misses.add();
  const auto raced = index_.find(key);
  if (raced != index_.end()) {
    // Another thread inserted while we lowered (or loaded); adopt its
    // identical plan so every caller shares one copy, and count the
    // discarded duplicate. The splice only reorders the LRU list — entry
    // count is unchanged, so no eviction sweep is needed here; run it anyway
    // so a concurrent set_capacity shrink can never leave the list over
    // budget.
    lru_.splice(lru_.begin(), lru_, raced->second);
    ++stats_.races;
    metrics.races.add();
    auto winner = raced->second->plan;
    evict_excess_locked();
    return winner;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  evict_excess_locked();
  return lru_.front().plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  evict_excess_locked();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanCache::evict_excess_locked() {
  const CacheMetrics& metrics = CacheMetrics::get();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    metrics.evictions.add();
  }
}

}  // namespace ddm::engine
