// evaluator.hpp — the unified evaluation-engine interface of ddm::engine.
//
// Several backends can evaluate the Theorem 5.1 winning probability of a
// threshold protocol: exact rational arithmetic, the O(3^n) Gray-code double
// kernel (serial or block-amortized/batched), compiled Horner plans lowered
// from the exact piecewise polynomial, the certified escalation ladder, and
// Monte Carlo simulation. Before this layer existed, the policy choosing
// among them lived as ad-hoc branching inside ddm_cli. ddm::engine puts all
// of them behind ONE seam: a request describes *what* to evaluate (a
// symmetric β-grid or general threshold vectors, plus capacity t and a
// tolerance), an Evaluator adapter describes *how*, and the process-wide
// registry (engine/registry.hpp) owns the which — including the automatic
// compiled-vs-kernel policy (engine/policy.hpp) and the LRU plan cache
// (engine/plan_cache.hpp). New backends register once and every caller (CLI
// subcommands, the threshold optimizer, examples) picks them up for free.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/scenario.hpp"
#include "util/certify.hpp"
#include "util/rational.hpp"
#include "util/resilience.hpp"
#include "util/status.hpp"

namespace ddm::engine {

/// What kind of answer an engine produces. Used by callers to decide how to
/// present results (e.g. whether a tolerance or a confidence interval makes
/// sense) — never to silently change them.
enum class Determinism {
  /// Bitwise-reproducible double evaluation: same request, same bits, for
  /// any thread count (kernel, batch, compiled, exact).
  kDeterministic,
  /// Rigorous enclosure semantics: every value carries a proven interval
  /// (the certified escalation ladder).
  kCertified,
  /// Seeded pseudo-random estimation: reproducible for a fixed seed, but an
  /// estimate, not a computation (Monte Carlo).
  kRandomized,
};

[[nodiscard]] const char* to_string(Determinism determinism) noexcept;

/// One batch of evaluation work. Either a symmetric β-grid (`betas`, all n
/// players sharing each threshold) or general per-player threshold vectors
/// (`points`); `points` non-empty means general. The symmetric form may also
/// carry the exact rational image of the grid (`exact_betas`) for engines
/// that evaluate in exact arithmetic on the caller's *intended* grid points
/// (the certified sweep); engines without such a grid evaluate the double
/// values exactly via util::exact_rational.
struct EvalRequest {
  std::uint32_t n = 0;                      ///< players (symmetric form)
  util::Rational t;                         ///< bin capacity
  std::vector<double> betas;                ///< symmetric grid, double image
  std::vector<util::Rational> exact_betas;  ///< optional exact grid, parallel to betas
  std::vector<std::vector<double>> points;  ///< general per-player vectors
  /// Target enclosure width for certified evaluation.
  util::Rational tolerance{1, 1000000000};
  /// Trial count / base seed for randomized engines. Point k of a request
  /// draws from a stream keyed on seed + point_ids[k] (seed + k when
  /// point_ids is empty), so estimates are reproducible and independent of
  /// evaluation order.
  std::uint64_t trials = 200000;
  std::uint64_t seed = 42;
  /// Optional stable per-point identities, parallel to betas/points. Callers
  /// that split one logical grid across several requests (checkpoint blocks,
  /// sweep shards) pass the GLOBAL grid indices here so randomized engines
  /// key their streams on the point's identity, not its position within the
  /// request — a sharded or checkpointed Monte Carlo sweep then reproduces
  /// the unsharded run bit for bit. Deterministic engines ignore it.
  std::vector<std::uint64_t> point_ids;
  /// Cooperative stop for THIS request: engines poll it at their natural
  /// work boundaries (parallel chunks, escalation-ladder rungs, per-point
  /// loops) and surface a fired deadline/cancellation as
  /// ddm::DeadlineExceeded / ddm::Cancelled with partial-progress counts.
  /// Default-constructed = run to completion at zero polling cost.
  util::RunControl control;
  /// The game this request is posed over (engine/scenario.hpp). Defaults to
  /// the paper's homogeneous U[0,1] game; engines that cannot serve a
  /// generalized game decline it via supports(). The scenario's canonical
  /// digest joins every derived cache key, so artifacts computed for one
  /// game are never replayed for another.
  Scenario scenario;

  [[nodiscard]] static EvalRequest symmetric(std::uint32_t n, util::Rational t,
                                             std::vector<double> betas) {
    EvalRequest request;
    request.n = n;
    request.t = std::move(t);
    request.betas = std::move(betas);
    return request;
  }

  /// General per-player threshold vectors. Every point must have the same
  /// length (that length becomes `n`); a ragged batch throws ddm::Error
  /// naming the first offending point index rather than silently taking
  /// points.front().size() as n and mis-evaluating the rest.
  [[nodiscard]] static EvalRequest general(std::vector<std::vector<double>> points,
                                           util::Rational t) {
    EvalRequest request;
    request.n = points.empty() ? 0 : static_cast<std::uint32_t>(points.front().size());
    for (std::size_t k = 0; k < points.size(); ++k) {
      if (points[k].size() != points.front().size()) {
        throw Error("EvalRequest::general: point " + std::to_string(k) + " has " +
                    std::to_string(points[k].size()) + " thresholds, expected " +
                    std::to_string(points.front().size()) + " (ragged batch)");
      }
    }
    request.t = std::move(t);
    request.points = std::move(points);
    return request;
  }

  [[nodiscard]] bool is_symmetric() const noexcept { return points.empty(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return is_symmetric() ? betas.size() : points.size();
  }
};

/// The answer to an EvalRequest. `values[k]` corresponds to point k of the
/// request; the remaining fields say how much to trust it.
struct EvalOutcome {
  std::vector<double> values;
  /// Per-point rigorous enclosures; empty unless the engine is
  /// certificate-bearing (exact, certified).
  std::vector<CertifiedValue> certificates;
  /// Registry id of the engine that actually produced the values.
  std::string engine_id;
  /// Uniform bound on |values[k] − exact| when the engine carries one:
  /// 0 for exact evaluation, the plan certificate for compiled plans,
  /// +inf when no a-priori bound exists (double kernels, Monte Carlo).
  double certificate_bound = std::numeric_limits<double>::infinity();
  /// Escalation-ladder counters accumulated across the request (certified
  /// engine only; zero elsewhere).
  EvalStats stats;
  /// True when the answer was produced by a weaker engine than the request
  /// asked for (deadline pressure or a failing preferred engine made
  /// engine::evaluate_resilient walk its fallback chain). `degradation_note`
  /// then records the chain walked, e.g. "compiled: lowering failed ->
  /// batch". Plain Evaluator::evaluate never sets these.
  bool degraded = false;
  std::string degradation_note;
};

/// One evaluation backend. Implementations are stateless (any per-instance
/// artifacts such as compiled plans live in the shared plan cache), so a
/// single registered instance serves concurrent callers.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Stable registry id ("exact", "kernel", "batch", "compiled",
  /// "certified", "mc"). Must point at storage with static lifetime.
  [[nodiscard]] virtual std::string_view id() const noexcept = 0;

  [[nodiscard]] virtual Determinism determinism() const noexcept = 0;

  /// One-line human-readable description for help text and docs.
  [[nodiscard]] virtual std::string_view describe() const noexcept = 0;

  /// True when this engine can serve `request` (shape and size limits).
  /// evaluate() on an unsupported request throws ddm::Error naming the
  /// limit; supports() lets policy code skip the attempt.
  [[nodiscard]] virtual bool supports(const EvalRequest& request) const = 0;

  /// Evaluates the request. Throws on unsupported requests, lowering
  /// failures (compiled), or evaluation errors; never returns partial
  /// results.
  [[nodiscard]] virtual EvalOutcome evaluate(const EvalRequest& request) const = 0;
};

}  // namespace ddm::engine
