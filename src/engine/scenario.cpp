#include "engine/scenario.hpp"

#include <stdexcept>
#include <string>

#include "util/status.hpp"

namespace ddm::engine {

namespace {

[[nodiscard]] std::string ranges_digest(const std::vector<util::Rational>& ranges) {
  std::string digest = "heterogeneous:";
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i != 0) digest += ',';
    digest += ranges[i].to_string();
  }
  return digest;
}

}  // namespace

Scenario Scenario::heterogeneous(std::vector<util::Rational> ranges) {
  if (ranges.empty()) {
    throw Error("Scenario::heterogeneous: need >= 1 range");
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].signum() <= 0) {
      throw Error("Scenario::heterogeneous: range " + std::to_string(i) + " is " +
                  ranges[i].to_string() + "; every range must be > 0");
    }
  }
  Scenario scenario;
  scenario.kind_ = Kind::kHeterogeneous;
  scenario.ranges_ = std::move(ranges);
  scenario.digest_ = ranges_digest(scenario.ranges_);
  return scenario;
}

Scenario Scenario::deviating(std::uint32_t deviators) {
  if (deviators == 0) {
    throw Error("Scenario::deviating: need >= 1 deviating player");
  }
  Scenario scenario;
  scenario.kind_ = Kind::kDeviating;
  scenario.deviators_ = deviators;
  scenario.digest_ = "deviating:" + std::to_string(deviators);
  return scenario;
}

void Scenario::check_players(std::uint32_t n, const char* what) const {
  switch (kind_) {
    case Kind::kHomogeneous:
      return;
    case Kind::kHeterogeneous:
      if (ranges_.size() != n) {
        throw Error(std::string(what) + ": scenario has " + std::to_string(ranges_.size()) +
                    " ranges but the request has " + std::to_string(n) + " players");
      }
      return;
    case Kind::kDeviating:
      if (deviators_ >= n) {
        throw Error(std::string(what) + ": " + std::to_string(deviators_) +
                    " deviating players need n > " + std::to_string(deviators_) +
                    " (got n = " + std::to_string(n) + ")");
      }
      return;
  }
}

Scenario Scenario::parse(std::string_view descriptor) {
  if (descriptor.empty()) {
    throw Error("scenario: empty descriptor");
  }
  const std::size_t colon = descriptor.find(':');
  const std::string_view id = descriptor.substr(0, colon);
  const std::string_view detail =
      colon == std::string_view::npos ? std::string_view{} : descriptor.substr(colon + 1);
  if (id == "homogeneous") {
    if (colon != std::string_view::npos) {
      throw Error("scenario 'homogeneous' takes no parameter (got '" + std::string(descriptor) +
                  "')");
    }
    return homogeneous();
  }
  if (id == "heterogeneous") {
    if (colon == std::string_view::npos) {
      throw Error("scenario 'heterogeneous' needs ranges: use "
                  "'heterogeneous:c1,c2,...' or pass --ranges=");
    }
    return heterogeneous(parse_ranges(detail));
  }
  if (id == "deviating") {
    if (colon == std::string_view::npos) {
      throw Error("scenario 'deviating' needs a deviator count: use 'deviating:<k>'");
    }
    std::uint32_t k = 0;
    for (const char c : detail) {
      if (c < '0' || c > '9') {
        throw Error("scenario 'deviating': bad deviator count '" + std::string(detail) + "'");
      }
      const std::uint64_t next = std::uint64_t{k} * 10 + static_cast<std::uint64_t>(c - '0');
      if (next > 0xffffffffULL) {
        throw Error("scenario 'deviating': deviator count '" + std::string(detail) +
                    "' out of range");
      }
      k = static_cast<std::uint32_t>(next);
    }
    if (detail.empty()) {
      throw Error("scenario 'deviating': bad deviator count ''");
    }
    return deviating(k);
  }
  throw Error("unknown scenario '" + std::string(id) +
              "' (known: homogeneous, heterogeneous, deviating)");
}

std::vector<util::Rational> Scenario::parse_ranges(std::string_view text) {
  std::vector<util::Rational> ranges;
  std::size_t index = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = text.find(',', start);
    const std::string_view entry = text.substr(
        start, comma == std::string_view::npos ? std::string_view::npos : comma - start);
    util::Rational value;
    try {
      value = util::Rational::parse(entry);
    } catch (const std::exception&) {
      throw Error("ranges: entry " + std::to_string(index) + " ('" + std::string(entry) +
                  "') is not a rational");
    }
    if (value.signum() <= 0) {
      throw Error("ranges: entry " + std::to_string(index) + " is " + value.to_string() +
                  "; every range must be > 0");
    }
    ranges.push_back(std::move(value));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
    ++index;
  }
  return ranges;
}

const char* to_string(Scenario::Kind kind) noexcept {
  switch (kind) {
    case Scenario::Kind::kHomogeneous:
      return "homogeneous";
    case Scenario::Kind::kHeterogeneous:
      return "heterogeneous";
    case Scenario::Kind::kDeviating:
      return "deviating";
  }
  return "unknown";
}

}  // namespace ddm::engine
