#include "engine/resilient.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <string>

#include "engine/cost_model.hpp"
#include "engine/registry.hpp"
#include "obs/metrics_registry.hpp"
#include "util/fault.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace ddm::engine {

namespace {

struct ResilienceMetrics {
  obs::Counter degraded = obs::counter("engine.degraded");
  obs::Counter retries = obs::counter("engine.retries");
  obs::Counter chain_exhausted = obs::counter("engine.chain_exhausted");

  static const ResilienceMetrics& get() {
    static const ResilienceMetrics metrics;
    return metrics;
  }
};

/// The control an individual attempt runs under. An engine that still has a
/// fallback behind it gets a soft deadline at half the remaining budget, so
/// being cut off leaves time for the chain to answer; the last engine gets
/// the caller's real deadline. Cancellation always passes through verbatim.
[[nodiscard]] util::RunControl attempt_control(const util::RunControl& control,
                                              bool has_fallback) {
  if (!has_fallback || !control.deadline.is_set()) return control;
  util::RunControl soft = control;
  soft.deadline = util::Deadline::after(control.deadline.remaining() / 2);
  return soft;
}

}  // namespace

std::vector<std::string_view> fallback_chain(std::string_view id) {
  return fallback_chain(id, Scenario{});
}

std::vector<std::string_view> fallback_chain(std::string_view id, const Scenario& scenario) {
  if (!scenario.is_default()) {
    // Generalized games: the exact rational evaluators degrade to seeded
    // Monte Carlo (an estimate — honestly flagged via `degraded`); mc is
    // already the last resort. The homogeneous-only double kernels never
    // serve these requests, so they get no chain.
    if (id == "exact" || id == "certified") return {"mc"};
    return {};
  }
  if (id == "compiled") return {"batch", "kernel"};
  if (id == "batch") return {"kernel"};
  if (id == "certified") return {"mc"};
  return {};
}

EvalOutcome evaluate_resilient(const ResilientOptions& options, const EvalRequest& request) {
  const ResilienceMetrics& metrics = ResilienceMetrics::get();
  const Selection selection = select(options.policy, request);

  std::vector<std::string_view> chain;
  chain.push_back(selection.id());
  for (const std::string_view id : fallback_chain(selection.id(), request.scenario)) {
    chain.push_back(id);
  }
  // With a policy table loaded, try the fallbacks cheapest-predicted-first:
  // the chain HEAD is the selection contract and never moves, but the order
  // we burn the remaining deadline budget in is a pure latency question.
  // Engines without table data predict +infinity and keep the static order
  // (stable sort), so a sparse table cannot reshuffle what it never measured.
  if (chain.size() > 2) {
    if (const std::shared_ptr<CostModel> model = CostModel::configured();
        model != nullptr && !model->empty()) {
      const std::string& scenario = request.scenario.digest();
      std::stable_sort(chain.begin() + 1, chain.end(),
                       [&model, &request, &scenario](std::string_view lhs, std::string_view rhs) {
                         return model->predict(lhs, request.n, request.size(), scenario) <
                                model->predict(rhs, request.n, request.size(), scenario);
                       });
    }
  }

  Registry& registry = Registry::instance();
  std::string note;
  std::exception_ptr last_error;
  for (std::size_t stage = 0; stage < chain.size(); ++stage) {
    const Evaluator* evaluator = registry.find(chain[stage]);
    if (evaluator == nullptr || !evaluator->supports(request)) continue;
    const bool has_fallback = stage + 1 < chain.size();

    EvalRequest attempt = request;
    for (unsigned tries = 0;; ++tries) {
      // Poll the REAL control before every attempt: a cancelled request or a
      // spent budget must not start (or re-start) work.
      switch (options.control.should_stop()) {
        case util::StopReason::kNone:
          break;
        case util::StopReason::kCancelled:
          throw Cancelled("engine.resilient", stage, chain.size());
        case util::StopReason::kDeadline:
          throw DeadlineExceeded("engine.resilient", stage, chain.size());
      }
      attempt.control = attempt_control(options.control, has_fallback);
      try {
        // Engine ids are literal-backed (Evaluator::id contract), so .data()
        // is a valid C string for the span attribute.
        DDM_SPAN("engine.attempt",
                 {{"engine", chain[stage].data()}, {"stage", static_cast<std::int64_t>(stage)}});
        EvalOutcome outcome = evaluator->evaluate(attempt);
        if (stage > 0) {
          outcome.degraded = true;
          outcome.degradation_note = note + " -> " + std::string(chain[stage]);
          metrics.degraded.add();
        }
        return outcome;
      } catch (const Cancelled&) {
        throw;  // never serve a cancelled request from a fallback
      } catch (const DeadlineExceeded&) {
        // Real deadline spent: propagate. Soft deadline: fall through to the
        // next engine with the remaining (real) budget.
        if (options.control.should_stop() == util::StopReason::kDeadline) throw;
        last_error = std::current_exception();
        if (!note.empty()) note += " -> ";
        note += std::string(chain[stage]) + ": deadline pressure";
        break;
      } catch (const ParallelError&) {
        // A chunk exhausted its in-region retries — transient territory, so
        // retry the whole request under the backoff policy before degrading.
        last_error = std::current_exception();
        if (tries >= options.retry.max_retries) {
          if (!note.empty()) note += " -> ";
          note += std::string(chain[stage]) + ": evaluation failed";
          break;
        }
        metrics.retries.add();
        util::sleep_with_deadline(options.retry.delay_before(tries + 1, stage),
                                  options.control.deadline);
      } catch (const util::fault::TransientFault&) {
        // An injected fault outside any parallel region (e.g. striking plan
        // lowering) — same transient treatment as ParallelError.
        last_error = std::current_exception();
        if (tries >= options.retry.max_retries) {
          if (!note.empty()) note += " -> ";
          note += std::string(chain[stage]) + ": evaluation failed";
          break;
        }
        metrics.retries.add();
        util::sleep_with_deadline(options.retry.delay_before(tries + 1, stage),
                                  options.control.deadline);
      } catch (const Error&) {
        // Lowering failure, unsupported edge, injected hard fault: move down
        // the chain immediately — repeating a deterministic failure is waste.
        last_error = std::current_exception();
        if (!note.empty()) note += " -> ";
        note += std::string(chain[stage]) + ": evaluation failed";
        break;
      }
    }
  }
  metrics.chain_exhausted.add();
  if (last_error) std::rethrow_exception(last_error);
  throw Error("engine.resilient: no registered engine supports this request (chain head '" +
              std::string(chain.front()) + "')");
}

}  // namespace ddm::engine
