// cost_model.hpp — the measured per-engine latency model behind `auto`.
//
// engine::select()'s static rule decides compiled-vs-batch with two
// hard-coded constants (engine/policy.hpp). On the serving path that is
// conservative exactly where the paper's workload lives: the mid-n band
// where the compiled plan's certificate exceeds the fixed 1e-9 bound but
// easily clears the tolerance the REQUEST actually asked for, and the plan
// — once cached — is orders of magnitude faster per point than the O(3^n)
// batch kernel. A CostModel turns dispatch into a measurement problem: a
// log-spaced table of per-engine seconds-per-point cells, calibrated on the
// machine that will serve (`ddm_cli calibrate`), persisted next to the plan
// store as a versioned + checksummed text table, and consulted by select()
// to pick the predicted-fastest engine whose accuracy contract still meets
// the request tolerance. No table loaded → select() takes the static rule's
// exact code path, byte for byte.
//
// Table format (text, line-based; checksummed with the plan store's FNV-1a):
//
//   ddmpolicy v1
//   origin calibrate
//   t_regime n/3
//   cell <engine> <n> <batch> <seconds_per_point>
//   ...
//   checksum <16 hex digits>
//
// The <engine> token of a cell row is either a bare registry id (the
// homogeneous default game) or "engine@<scenario digest>" for rows measured
// under a generalized scenario (engine/scenario.hpp) — ddm_serve's live
// refinement writes such rows when it serves heterogeneous or deviating
// requests. Both forms are plain v1: a pre-scenario loader reads the
// composite token as an opaque engine name, and this loader validates the
// digest suffix strictly, so no cached cost measured for one game can ever
// rank engines for another.
//
// The `checksum` trailer is poly::plan_store_checksum over every byte that
// precedes its own line, so truncation, bit rot, and hand-edits are all
// caught on load (ddm::PolicyError naming the file AND the knob that pointed
// at it; a bumped version line is the one soft failure, stale() == true).
//
// Prediction interpolates bilinearly in (log2 n, log2 batch) between the
// measured cells, clamped at the grid edges; engines the table has no data
// for predict +infinity (select() then keeps the static fallback for them).
// The live refinement path (`observe`, used by ddm_serve's workers) folds
// measured request latencies into the matching cell with an EWMA, so a
// long-running daemon tracks thermal drift and noisy-neighbor effects
// without re-calibrating. All methods are thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ddm::engine {

/// Current table format version; tables stamped with any other version are
/// rejected as stale (PolicyError::stale() == true), mirroring
/// poly::kPlanStoreFormatVersion.
inline constexpr std::uint32_t kPolicyFormatVersion = 1;

/// One measured grid cell: seconds per evaluated point for `engine` on an
/// n-player instance answered in batches of `batch` points.
struct CostCell {
  std::string engine;
  std::uint32_t n = 0;
  std::uint32_t batch = 0;
  double seconds_per_point = 0.0;
};

/// Knobs for CostModel::calibrate. The defaults produce a log-spaced
/// (n, batch) grid over the three interchangeable-value engines in a few
/// seconds on a release build.
struct CalibrationOptions {
  /// Engines to measure, in measurement order.
  std::vector<std::string> engines{"compiled", "batch", "kernel"};
  /// n grid (log-spaced by default; calibrate() clamps per-engine support).
  std::vector<std::uint32_t> ns{1, 2, 4, 8, 12};
  /// Batch-size grid (points per request).
  std::vector<std::uint32_t> batches{1, 16, 256};
  /// Timed samples per cell; the recorded value is their median.
  unsigned repeats = 3;
  /// Unrecorded runs per cell before sampling (absorbs plan lowering, pool
  /// spin-up, and cache effects).
  unsigned warmup = 1;
  /// When the warmup run alone exceeds this budget the cell records the
  /// warmup sample and larger batches at the same n are extrapolated, so a
  /// slow serial engine cannot stretch calibration into minutes.
  double cell_budget_seconds = 0.25;
};

class CostModel {
 public:
  CostModel() = default;

  /// Inserts or overwrites one cell. Throws ddm::Error when
  /// `seconds_per_point` is not finite and positive or `n`/`batch` is zero.
  void set_cell(const std::string& engine, std::uint32_t n, std::uint32_t batch,
                double seconds_per_point);

  /// Predicted seconds-per-point for `engine` at (n, batch): bilinear
  /// interpolation in (log2 n, log2 batch) over the engine's cells, clamped
  /// at the grid edges. +infinity when the table has no cell for the engine.
  /// `scenario` selects the row the pair measures under (see the class
  /// comment): the homogeneous digest and the legacy empty default both read
  /// the bare engine row, any other digest reads "engine@digest".
  [[nodiscard]] double predict(std::string_view engine, std::uint32_t n, std::size_t batch,
                               std::string_view scenario = {}) const;

  /// Index into `engines[0..count)` of the candidate with the smallest
  /// predicted cost at (n, batch), or `count` when no candidate has any
  /// measured data. Ties break toward the earlier index. Equivalent to
  /// calling predict() per engine and taking the argmin, but ranks in log
  /// space under a single lock — the per-request hot path of the
  /// model-consulting auto rule, where an exp() per candidate is measurable.
  [[nodiscard]] std::size_t cheapest(const std::string_view* engines, std::size_t count,
                                     std::uint32_t n, std::size_t batch,
                                     std::string_view scenario = {}) const;

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t cell_count() const;
  /// Every cell, sorted by (engine, n, batch) — the save/inspect order.
  [[nodiscard]] std::vector<CostCell> cells() const;

  /// Live refinement: folds one measured seconds-per-point into the cell at
  /// (n, round-to-power-of-two(batch)) with an EWMA (alpha = 0.2), creating
  /// the cell on first observation. Counted as `engine.policy.refreshes`.
  /// Worker-safe; a bounded cell budget keeps a long-running daemon's table
  /// from growing without limit. Samples measured under a non-default
  /// scenario land in their own "engine@digest" row, never in the
  /// homogeneous cells.
  void observe(std::string_view engine, std::uint32_t n, std::size_t batch,
               double seconds_per_point, std::string_view scenario = {});

  /// Serializes the table atomically (temp file + rename), versioned and
  /// checksummed. Throws ddm::PolicyError on I/O failure.
  void save(const std::string& path) const;

  /// Loads and validates a table. `source` names the knob that pointed at
  /// the file ("DDM_POLICY", "--policy", "--policy-table") for the error
  /// message. Throws ddm::PolicyError on any validation failure; never
  /// returns a partially parsed table.
  [[nodiscard]] static std::shared_ptr<CostModel> load(const std::string& path,
                                                       const std::string& source);

  /// Runs the deterministic calibration protocol against the process engine
  /// registry: for every (engine, n, batch) cell, `warmup` unrecorded runs
  /// followed by `repeats` timed runs of a fixed β-grid request at the
  /// paper's t = n/3 regime, recording the median seconds-per-point.
  /// Throws ddm::Error when an engine id is unknown.
  [[nodiscard]] static std::shared_ptr<CostModel> calibrate(const CalibrationOptions& options);

  /// The process-wide model consulted by engine::select, lazily resolved
  /// from DDM_POLICY on first call (strict: a set but unloadable variable
  /// throws ddm::PolicyError naming it — a misconfigured policy must fail
  /// loudly, never silently dispatch cold). nullptr when unconfigured.
  [[nodiscard]] static std::shared_ptr<CostModel> configured();

  /// Overrides the process-wide model (tests, --policy, ddm_serve
  /// --policy-table). nullptr disables model consultation; the
  /// `engine.policy.loaded` gauge tracks the transition.
  static void set_configured(std::shared_ptr<CostModel> model);

 private:
  /// Cells for one engine: key = (n << 32) | batch, plus the sorted axis
  /// values predict() brackets against.
  struct EngineGrid {
    std::map<std::uint64_t, double> cells;
    std::vector<std::uint32_t> ns;
    std::vector<std::uint32_t> batches;
  };

  /// Log of the predicted seconds-per-point (predict() is exp of this);
  /// +infinity when the grid cannot cover (n, batch). Log space keeps the
  /// ranking in cheapest() exp-free.
  [[nodiscard]] double predict_log_locked(const EngineGrid& grid, std::uint32_t n,
                                          std::uint32_t batch) const;
  void set_cell_locked(const std::string& engine, std::uint32_t n, std::uint32_t batch,
                       double seconds_per_point);

  mutable std::shared_mutex mutex_;
  std::map<std::string, EngineGrid, std::less<>> engines_;
};

}  // namespace ddm::engine
