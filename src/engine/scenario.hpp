// scenario.hpp — the decision game an EvalRequest is posed over.
//
// The paper's base model is n players with x_i ~ U[0, 1] dropping into two
// bins of capacity t. Its probabilistic machinery (Lemma 2.4/2.7) is stated
// for arbitrary ranges U[0, π_i], and core/heterogeneous.cpp implements the
// generalized Theorems 4.1/5.1 exactly — but until this seam existed the
// engine layer hard-coded the homogeneous game. A Scenario makes "what game
// is being evaluated" an explicit, digestible part of every EvalRequest:
//
//   homogeneous              x_i ~ U[0, 1]                     (the default)
//   heterogeneous:<ranges>   x_i ~ U[0, c_i], per-player c_i > 0
//   deviating:<k>            k of the n players deviate adversarially from
//                            the symmetric threshold protocol; the reported
//                            value is the worst case over their (oblivious)
//                            strategies
//
// The canonical digest is a short, whitespace-free text form of the scenario
// (ranges in lowest terms, comma-separated) that doubles as the wire/CLI
// descriptor syntax: it keys the plan cache, the compiled-bound memo, the
// cost-model table rows, and the sweep checkpoint header, so no cached
// artifact computed for one game can ever be replayed for another.
// Evaluators advertise scenario support through Evaluator::supports(); the
// engines that cannot serve a generalized game (kernel, batch, compiled)
// decline honestly, keeping select() and the evaluate_resilient fallback
// chains correct without special cases.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rational.hpp"

namespace ddm::engine {

/// The game family an evaluation request is posed over. Value type; the
/// default-constructed Scenario is the paper's homogeneous U[0,1] game.
class Scenario {
 public:
  enum class Kind : std::uint8_t {
    kHomogeneous,    ///< x_i ~ U[0, 1] — the paper's base model
    kHeterogeneous,  ///< x_i ~ U[0, c_i] with per-player ranges c_i > 0
    kDeviating,      ///< k players deviate adversarially; worst-case value
  };

  Scenario() = default;

  [[nodiscard]] static Scenario homogeneous() { return Scenario{}; }
  /// Heterogeneous ranges c_i > 0. Throws ddm::Error naming the offending
  /// index when a range is not positive, or when `ranges` is empty.
  [[nodiscard]] static Scenario heterogeneous(std::vector<util::Rational> ranges);
  /// k >= 1 adversarially deviating players. Throws ddm::Error on k == 0.
  [[nodiscard]] static Scenario deviating(std::uint32_t deviators);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_default() const noexcept { return kind_ == Kind::kHomogeneous; }
  /// Per-player ranges (heterogeneous only; empty otherwise).
  [[nodiscard]] const std::vector<util::Rational>& ranges() const noexcept { return ranges_; }
  /// Deviator count (deviating only; 0 otherwise).
  [[nodiscard]] std::uint32_t deviators() const noexcept { return deviators_; }

  /// Stable canonical digest: "homogeneous", "heterogeneous:1/2,1,2" (ranges
  /// in lowest terms, comma-separated, order-preserving), or "deviating:2".
  /// Whitespace-free by construction, so it is safe as a cache-key segment,
  /// a cost-model row token, and a checkpoint header value. Two scenarios
  /// are the same game iff their digests are byte-equal.
  [[nodiscard]] const std::string& digest() const noexcept { return digest_; }

  /// Validates this scenario against an n-player request: heterogeneous
  /// needs exactly n ranges, deviating needs k < n. Throws ddm::Error with
  /// `what` as the message prefix.
  void check_players(std::uint32_t n, const char* what) const;

  /// Parses a canonical descriptor (the digest syntax above). Throws
  /// ddm::Error naming the malformed part.
  [[nodiscard]] static Scenario parse(std::string_view descriptor);

  /// Parses a comma-separated rational ranges list ("1/2,1,2"). Throws
  /// ddm::Error naming the offending entry index (empty entries included).
  [[nodiscard]] static std::vector<util::Rational> parse_ranges(std::string_view text);

  friend bool operator==(const Scenario& a, const Scenario& b) noexcept {
    return a.digest_ == b.digest_;
  }

 private:
  Kind kind_ = Kind::kHomogeneous;
  std::vector<util::Rational> ranges_;
  std::uint32_t deviators_ = 0;
  std::string digest_ = "homogeneous";
};

[[nodiscard]] const char* to_string(Scenario::Kind kind) noexcept;

}  // namespace ddm::engine
