// engines.cpp — the built-in Evaluator adapters.
//
// Each adapter wraps one pre-existing backend behind the engine seam without
// changing a single floating-point operation: the forced-engine CLI outputs
// are pinned byte-identical to the pre-engine ddm_cli by tests/golden_cli/.
// The adapters are stateless; compiled plans live in the shared PlanCache.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/certified.hpp"
#include "core/deviating.hpp"
#include "core/heterogeneous.hpp"
#include "core/nonoblivious.hpp"
#include "core/protocol.hpp"
#include "engine/engines.hpp"
#include "engine/evaluator.hpp"
#include "engine/plan_cache.hpp"
#include "prob/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace ddm::engine {

namespace {

/// The O(3^n) double kernels cap n at 20 (core/nonoblivious.cpp).
constexpr std::uint32_t kKernelMaxN = 20;

[[nodiscard]] std::uint32_t request_n(const EvalRequest& request) {
  if (request.is_symmetric()) return request.n;
  std::uint32_t n = 0;
  for (const std::vector<double>& point : request.points) {
    n = std::max(n, static_cast<std::uint32_t>(point.size()));
  }
  return n;
}

/// Per-point cooperative-stop poll for the serial engines (kernel, mc): a
/// fired deadline/cancellation surfaces with how many points were finished.
void throw_if_stopped(const EvalRequest& request, const char* label, std::size_t completed) {
  switch (request.control.should_stop()) {
    case util::StopReason::kNone:
      return;
    case util::StopReason::kCancelled:
      throw Cancelled(label, completed, request.size());
    case util::StopReason::kDeadline:
      throw DeadlineExceeded(label, completed, request.size());
  }
}

/// The exact rational image of grid point k: the caller's exact grid when
/// provided, else the (exactly representable) double itself.
[[nodiscard]] util::Rational exact_point(const EvalRequest& request, std::size_t k) {
  if (k < request.exact_betas.size()) return request.exact_betas[k];
  return util::exact_rational(request.betas[k]);
}

/// Largest n the exact/certified generalized-scenario paths accept: the
/// heterogeneous Theorem 5.1 and the deviating worst case both run O(2^n)
/// inclusion-exclusion sums (core/heterogeneous.cpp, core/deviating.cpp).
constexpr std::uint32_t kScenarioExactMaxN = 14;

/// True when the request is a well-formed instance of its generalized
/// scenario that the exact rational paths can serve. The homogeneous default
/// never reaches this helper — each engine's supports() keeps its original
/// predicate for the default scenario, byte for byte.
[[nodiscard]] bool supports_scenario_exact(const EvalRequest& request) {
  const std::uint32_t n = request_n(request);
  if (n < 1 || n > kScenarioExactMaxN) return false;
  switch (request.scenario.kind()) {
    case Scenario::Kind::kHomogeneous:
      return true;
    case Scenario::Kind::kHeterogeneous:
      return request.scenario.ranges().size() == n;
    case Scenario::Kind::kDeviating:
      // The deviating game is defined for the symmetric protocol only.
      return request.is_symmetric() && request.scenario.deviators() < n;
  }
  return false;
}

/// The exact per-player thresholds of point k under a heterogeneous
/// scenario: a symmetric grid beta is RELATIVE (a_i = beta * c_i, so the
/// [0,1] grid stays meaningful for any ranges), a general point is the
/// absolute per-player threshold vector.
[[nodiscard]] std::vector<util::Rational> heterogeneous_point(const EvalRequest& request,
                                                              std::size_t k) {
  const std::vector<util::Rational>& ranges = request.scenario.ranges();
  std::vector<util::Rational> thresholds;
  thresholds.reserve(ranges.size());
  if (request.is_symmetric()) {
    const util::Rational beta = exact_point(request, k);
    for (const util::Rational& range : ranges) thresholds.push_back(beta * range);
  } else {
    for (const double a : request.points[k]) thresholds.push_back(util::exact_rational(a));
  }
  return thresholds;
}

/// One exact rational evaluation of point k under the request's generalized
/// scenario (heterogeneous or deviating). Shared by the exact and certified
/// adapters: the generalized formulas are already exact, so "certified"
/// means a width-0 exact-tier enclosure.
[[nodiscard]] util::Rational exact_scenario_value(const EvalRequest& request, std::size_t k) {
  if (request.scenario.kind() == Scenario::Kind::kHeterogeneous) {
    const std::vector<util::Rational> thresholds = heterogeneous_point(request, k);
    return core::heterogeneous_threshold_winning_probability(thresholds,
                                                             request.scenario.ranges(),
                                                             request.t);
  }
  return core::worst_case_deviating_winning_probability(
      request_n(request), request.scenario.deviators(), exact_point(request, k), request.t);
}

/// Exact-tier certificate for an exactly computed value.
[[nodiscard]] CertifiedValue exact_certificate(util::Rational value) {
  CertifiedValue certificate;
  certificate.enclosure = util::RationalInterval{std::move(value)};
  certificate.tier = EvalTier::kExact;
  certificate.met_tolerance = true;
  return certificate;
}

/// exact — exact Rational Theorem 5.1 on the symmetric grid. O(n²) terms per
/// point, so it scales to any n; the answer is the ground truth the parity
/// suite measures every other engine against.
class ExactEvaluator final : public Evaluator {
 public:
  std::string_view id() const noexcept override { return "exact"; }
  Determinism determinism() const noexcept override { return Determinism::kDeterministic; }
  std::string_view describe() const noexcept override {
    return "exact rational Theorem 5.1 (symmetric, O(n^2) terms per point; "
           "generalized scenarios up to n = 14)";
  }
  bool supports(const EvalRequest& request) const override {
    if (request.scenario.is_default()) return request.is_symmetric() && request.n >= 1;
    return supports_scenario_exact(request);
  }
  EvalOutcome evaluate(const EvalRequest& request) const override {
    if (!supports(request)) {
      throw Error("engine 'exact' cannot serve this request (scenario '" +
                  request.scenario.digest() + "')");
    }
    EvalOutcome outcome;
    outcome.engine_id = "exact";
    outcome.certificate_bound = 0.0;
    outcome.values.resize(request.size(), 0.0);
    outcome.certificates.resize(request.size());
    util::ParallelOptions options;
    options.grain = 1;
    options.label = "engine.exact";
    options.control = request.control;
    util::parallel_for(
        0, request.size(),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            const util::Rational value =
                request.scenario.is_default()
                    ? core::symmetric_threshold_winning_probability(
                          request.n, exact_point(request, k), request.t)
                    : exact_scenario_value(request, k);
            outcome.values[k] = value.to_double();
            outcome.certificates[k] = exact_certificate(value);
          }
        },
        options);
    return outcome;
  }
};

/// kernel — the serial Gray-code double kernel, one O(3^n) inclusion-
/// exclusion walk per point. Bitwise equal to `batch` point for point (the
/// batch kernel's documented contract); registered separately so callers can
/// pin the unamortized, single-threaded reference path.
class KernelEvaluator final : public Evaluator {
 public:
  std::string_view id() const noexcept override { return "kernel"; }
  Determinism determinism() const noexcept override { return Determinism::kDeterministic; }
  std::string_view describe() const noexcept override {
    return "serial Gray-code double kernel, O(3^n) per point (n <= 20, homogeneous only)";
  }
  bool supports(const EvalRequest& request) const override {
    // The Gray-code walk hard-codes the U[0,1] two-bin game; generalized
    // scenarios are declined honestly so policy code routes around it.
    if (!request.scenario.is_default()) return false;
    const std::uint32_t n = request_n(request);
    return n >= 1 && n <= kKernelMaxN;
  }
  EvalOutcome evaluate(const EvalRequest& request) const override {
    EvalOutcome outcome;
    outcome.engine_id = "kernel";
    outcome.values.resize(request.size(), 0.0);
    const double t_d = request.t.to_double();
    if (request.is_symmetric()) {
      std::vector<double> point(request.n, 0.0);
      for (std::size_t k = 0; k < request.betas.size(); ++k) {
        throw_if_stopped(request, "engine.kernel", k);
        point.assign(request.n, request.betas[k]);
        outcome.values[k] = core::threshold_winning_probability(point, t_d);
      }
    } else {
      for (std::size_t k = 0; k < request.points.size(); ++k) {
        throw_if_stopped(request, "engine.kernel", k);
        outcome.values[k] = core::threshold_winning_probability(request.points[k], t_d);
      }
    }
    return outcome;
  }
};

/// batch — the block-amortized parallel batch kernel: one Gray-code subset
/// walk per run of same-size points within a block, fanned across the thread
/// pool, bitwise equal to single-point calls. The universal fallback of the
/// auto policy.
class BatchEvaluator final : public Evaluator {
 public:
  std::string_view id() const noexcept override { return "batch"; }
  Determinism determinism() const noexcept override { return Determinism::kDeterministic; }
  std::string_view describe() const noexcept override {
    return "block-amortized parallel Gray-code batch kernel (n <= 20, homogeneous only)";
  }
  bool supports(const EvalRequest& request) const override {
    if (!request.scenario.is_default()) return false;
    const std::uint32_t n = request_n(request);
    return n >= 1 && n <= kKernelMaxN;
  }
  EvalOutcome evaluate(const EvalRequest& request) const override {
    EvalOutcome outcome;
    outcome.engine_id = "batch";
    const double t_d = request.t.to_double();
    if (request.is_symmetric()) {
      // Point construction mirrors the pre-engine sweep loop exactly
      // (points[k].assign(n, beta)) — pinned byte-identical by golden tests.
      std::vector<std::vector<double>> points(request.betas.size());
      for (std::size_t k = 0; k < request.betas.size(); ++k) {
        points[k].assign(request.n, request.betas[k]);
      }
      outcome.values = core::threshold_winning_probability_batch(points, t_d, request.control);
    } else {
      outcome.values = core::threshold_winning_probability_batch(request.points, t_d,
                                                                 request.control);
    }
    return outcome;
  }
};

/// compiled — certified Horner plans through the process-wide LRU plan
/// cache: repeated sweeps, checkpoint blocks, and optimizer runs re-use one
/// lowering per (n, t).
class CompiledEvaluator final : public Evaluator {
 public:
  std::string_view id() const noexcept override { return "compiled"; }
  Determinism determinism() const noexcept override { return Determinism::kDeterministic; }
  std::string_view describe() const noexcept override {
    return "compiled Horner plan (certified lowering, LRU plan cache, homogeneous only)";
  }
  bool supports(const EvalRequest& request) const override {
    // Plans are lowered from the homogeneous Theorem 5.1 piecewise
    // polynomial; no compiled artifact exists for a generalized game.
    return request.scenario.is_default() && request.is_symmetric() && request.n >= 1;
  }
  EvalOutcome evaluate(const EvalRequest& request) const override {
    if (!supports(request)) throw Error("engine 'compiled' evaluates homogeneous symmetric grids only");
    const auto plan = PlanCache::instance().get_or_lower(request.n, request.t);
    EvalOutcome outcome;
    outcome.engine_id = "compiled";
    outcome.values = plan->eval_grid(request.betas, request.control);
    outcome.certificate_bound = plan->max_error_bound();
    return outcome;
  }
};

/// certified — the escalation ladder on the exact grid: every value carries
/// a rigorous enclosure, escalating double → interval → exact until the
/// request tolerance is met.
class CertifiedEvaluator final : public Evaluator {
 public:
  std::string_view id() const noexcept override { return "certified"; }
  Determinism determinism() const noexcept override { return Determinism::kCertified; }
  std::string_view describe() const noexcept override {
    return "certified escalation ladder (rigorous enclosures per point)";
  }
  bool supports(const EvalRequest& request) const override {
    if (request.scenario.is_default()) return request.is_symmetric() && request.n >= 1;
    return supports_scenario_exact(request);
  }
  EvalOutcome evaluate(const EvalRequest& request) const override {
    if (!supports(request)) {
      throw Error("engine 'certified' cannot serve this request (scenario '" +
                  request.scenario.digest() + "')");
    }
    // Generalized scenarios evaluate in exact rational arithmetic directly
    // (core/heterogeneous, core/deviating) — there is no double/interval
    // ladder for them, so every certificate is an exact-tier width-0
    // enclosure that trivially meets any tolerance.
    if (!request.scenario.is_default()) {
      EvalOutcome outcome;
      outcome.engine_id = "certified";
      outcome.certificate_bound = 0.0;
      outcome.values.resize(request.size(), 0.0);
      outcome.certificates.resize(request.size());
      util::ParallelOptions options;
      options.grain = 1;
      options.label = "engine.certified";
      options.control = request.control;
      util::parallel_for(
          0, request.size(),
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k) {
              CertifiedValue certificate = exact_certificate(exact_scenario_value(request, k));
              certificate.stats.exact_attempts = 1;
              outcome.values[k] = certificate.value();
              outcome.certificates[k] = std::move(certificate);
            }
          },
          options);
      for (const CertifiedValue& certificate : outcome.certificates) {
        outcome.stats += certificate.stats;
      }
      return outcome;
    }
    EvalPolicy policy;
    policy.tolerance = request.tolerance;
    // The ladder polls the same control mid-escalation, so a deadline cuts a
    // point before its interval/exact rungs, not just between points.
    policy.control = request.control;
    EvalOutcome outcome;
    outcome.engine_id = "certified";
    outcome.values.resize(request.size(), 0.0);
    outcome.certificates.resize(request.size());
    util::ParallelOptions options;
    options.grain = 1;
    options.label = "engine.certified";
    options.control = request.control;
    util::parallel_for(
        0, request.size(),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            // Fresh evaluation per attempt: idempotent under engine retry,
            // and CertifiedValue::stats carries this point's counters only.
            outcome.certificates[k] = core::certified_symmetric_threshold_winning_probability(
                request.n, exact_point(request, k), request.t, policy);
            outcome.values[k] = outcome.certificates[k].value();
          }
        },
        options);
    for (const CertifiedValue& certificate : outcome.certificates) {
      outcome.stats += certificate.stats;
    }
    return outcome;
  }
};

/// mc — seeded Monte Carlo estimation. Point k draws from its own stream
/// (seed + point_ids[k], defaulting to seed + k) and each point's trial
/// blocks fan across the pool, so the estimate is reproducible for any
/// thread count, evaluation order, and request partitioning.
class MonteCarloEvaluator final : public Evaluator {
 public:
  std::string_view id() const noexcept override { return "mc"; }
  Determinism determinism() const noexcept override { return Determinism::kRandomized; }
  std::string_view describe() const noexcept override {
    return "seeded Monte Carlo estimation (reproducible per seed; all scenarios)";
  }
  bool supports(const EvalRequest& request) const override {
    const std::uint32_t n = request_n(request);
    if (n < 1) return false;
    switch (request.scenario.kind()) {
      case Scenario::Kind::kHomogeneous:
        return true;
      case Scenario::Kind::kHeterogeneous:
        return request.scenario.ranges().size() == n;
      case Scenario::Kind::kDeviating:
        return request.is_symmetric() && request.scenario.deviators() < n;
    }
    return false;
  }
  EvalOutcome evaluate(const EvalRequest& request) const override {
    if (!supports(request)) {
      throw Error("engine 'mc' cannot serve this request (scenario '" +
                  request.scenario.digest() + "')");
    }
    EvalOutcome outcome;
    outcome.engine_id = "mc";
    outcome.values.resize(request.size(), 0.0);
    const double t_d = request.t.to_double();
    for (std::size_t k = 0; k < request.size(); ++k) {
      throw_if_stopped(request, "engine.mc", k);
      const std::uint64_t point_id =
          k < request.point_ids.size() ? request.point_ids[k] : static_cast<std::uint64_t>(k);
      prob::Rng rng{request.seed + point_id};
      switch (request.scenario.kind()) {
        case Scenario::Kind::kHomogeneous: {
          std::vector<util::Rational> thresholds;
          if (request.is_symmetric()) {
            thresholds.assign(request.n, util::exact_rational(request.betas[k]));
          } else {
            thresholds.reserve(request.points[k].size());
            for (const double a : request.points[k]) {
              thresholds.push_back(util::exact_rational(a));
            }
          }
          const core::SingleThresholdProtocol protocol{std::move(thresholds)};
          outcome.values[k] =
              sim::estimate_winning_probability(protocol, t_d, request.trials, rng,
                                                util::parallelism(), request.control)
                  .estimate;
          break;
        }
        case Scenario::Kind::kHeterogeneous:
          outcome.values[k] = heterogeneous_estimate(request, k, t_d, rng);
          break;
        case Scenario::Kind::kDeviating:
          outcome.values[k] = core::estimate_worst_case_deviating(
                                  request_n(request), request.scenario.deviators(),
                                  request.betas[k], t_d, request.trials, rng)
                                  .estimate;
          break;
      }
    }
    return outcome;
  }

 private:
  /// Heterogeneous estimation: per-player absolute thresholds (relative
  /// beta * c_i on the symmetric grid) as a FunctorProtocol —
  /// SingleThresholdProtocol caps thresholds at 1, which ranges above 1
  /// legitimately exceed — driven through the core simulation cross-check.
  static double heterogeneous_estimate(const EvalRequest& request, std::size_t k, double t_d,
                                       prob::Rng& rng) {
    const std::vector<util::Rational>& ranges = request.scenario.ranges();
    std::vector<double> ranges_d;
    ranges_d.reserve(ranges.size());
    for (const util::Rational& range : ranges) ranges_d.push_back(range.to_double());
    std::vector<core::FunctorProtocol::Rule> rules;
    rules.reserve(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      const double threshold =
          request.is_symmetric() ? request.betas[k] * ranges_d[i] : request.points[k][i];
      rules.push_back([threshold](double input, prob::Rng&) {
        return input <= threshold ? core::kBin0 : core::kBin1;
      });
    }
    const core::FunctorProtocol protocol{std::move(rules), "heterogeneous-threshold"};
    return core::estimate_heterogeneous_winning_probability(protocol, ranges_d, t_d,
                                                            request.trials, rng)
        .estimate;
  }
};

}  // namespace

void register_builtin_engines(Registry& registry) {
  registry.register_engine(std::make_unique<BatchEvaluator>());
  registry.register_engine(std::make_unique<CertifiedEvaluator>());
  registry.register_engine(std::make_unique<CompiledEvaluator>());
  registry.register_engine(std::make_unique<ExactEvaluator>());
  registry.register_engine(std::make_unique<KernelEvaluator>());
  registry.register_engine(std::make_unique<MonteCarloEvaluator>());
}

}  // namespace ddm::engine
