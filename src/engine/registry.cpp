#include "engine/registry.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "engine/engines.hpp"
#include "engine/plan_cache.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace ddm::engine {

namespace {

struct SelectMetrics {
  obs::Counter selects = obs::counter("engine.selects");
  obs::Counter fallbacks = obs::counter("engine.fallbacks");

  static const SelectMetrics& get() {
    static const SelectMetrics metrics;
    return metrics;
  }
};

}  // namespace

const char* to_string(Determinism determinism) noexcept {
  switch (determinism) {
    case Determinism::kDeterministic:
      return "deterministic";
    case Determinism::kCertified:
      return "certified";
    case Determinism::kRandomized:
      return "randomized";
  }
  return "unknown";
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* fresh = new Registry();  // leaked: outlives late callers
    register_builtin_engines(*fresh);
    return fresh;
  }();
  return *registry;
}

void Registry::register_engine(std::unique_ptr<Evaluator> evaluator) {
  if (evaluator == nullptr || evaluator->id().empty()) {
    throw Error("Registry::register_engine: engine with empty id");
  }
  if (find(evaluator->id()) != nullptr) {
    throw Error("Registry::register_engine: duplicate engine id '" +
                std::string(evaluator->id()) + "'");
  }
  engines_.push_back(std::move(evaluator));
}

const Evaluator* Registry::find(std::string_view id) const noexcept {
  for (const std::unique_ptr<Evaluator>& evaluator : engines_) {
    if (evaluator->id() == id) return evaluator.get();
  }
  return nullptr;
}

const Evaluator& Registry::require(std::string_view id) const {
  if (const Evaluator* evaluator = find(id)) return *evaluator;
  std::string message = "unknown engine '" + std::string(id) + "' (registered:";
  for (const std::string_view known : ids()) {
    message += ' ';
    message += known;
  }
  message += ')';
  throw Error(std::move(message));
}

std::vector<std::string_view> Registry::ids() const {
  std::vector<std::string_view> result;
  result.reserve(engines_.size());
  for (const std::unique_ptr<Evaluator>& evaluator : engines_) {
    result.push_back(evaluator->id());
  }
  std::sort(result.begin(), result.end());
  return result;
}

Selection select(const EnginePolicy& policy, const EvalRequest& request) {
  const SelectMetrics& metrics = SelectMetrics::get();
  Registry& registry = Registry::instance();
  Selection selection;
  selection.requested = policy.engine;

  if (!policy.is_auto()) {
    const Evaluator& evaluator = registry.require(policy.engine);
    if (!evaluator.supports(request)) {
      throw Error("engine '" + std::string(evaluator.id()) +
                  "' does not support this request (" + std::string(evaluator.describe()) + ")");
    }
    selection.evaluator = &evaluator;
    metrics.selects.add();
    // Span string args must outlive the trace export; the adapter ids are
    // string literals, so they qualify (policy.engine would not).
    DDM_SPAN("engine.select",
             {{"requested", evaluator.id().data()}, {"chosen", evaluator.id().data()}});
    return selection;
  }

  selection.auto_mode = true;
  // The auto rule, byte-compatible with the pre-engine CLI: try the compiled
  // plan for small symmetric grids, hold its certificate to the tolerance,
  // fall back to the batch kernel otherwise — visibly, via Selection::note.
  if (request.is_symmetric() && request.n >= 1 && request.n <= policy.compiled_max_n) {
    try {
      const auto plan = PlanCache::instance().get_or_lower(request.n, request.t);
      selection.compiled_bound = plan->max_error_bound();
      if (selection.compiled_bound <= policy.compiled_tolerance) {
        selection.evaluator = &registry.require("compiled");
      } else {
        selection.fallback = true;
        std::ostringstream note;
        note << "compiled plan certificate " << selection.compiled_bound
             << " exceeds tolerance " << policy.compiled_tolerance
             << "; using the batch kernel";
        selection.note = note.str();
      }
    } catch (const std::exception& error) {
      selection.fallback = true;
      selection.note = std::string("compiled lowering failed (") + error.what() +
                       "); using the batch kernel";
    }
  }
  if (selection.evaluator == nullptr) selection.evaluator = &registry.require("batch");
  metrics.selects.add();
  if (selection.fallback) metrics.fallbacks.add();
  DDM_SPAN("engine.select", {{"requested", "auto"},
                             {"chosen", selection.evaluator->id().data()},
                             {"fallback", selection.fallback ? std::int64_t{1} : std::int64_t{0}}});
  return selection;
}

core::BatchObjective batch_objective(std::string_view engine_id) {
  // Resolve eagerly so a bad id fails at wiring time, not mid-search.
  const Evaluator& evaluator = Registry::instance().require(engine_id);
  return [&evaluator](const std::vector<std::vector<double>>& points, double t) {
    EvalRequest request = EvalRequest::general(points, util::exact_rational(t));
    return evaluator.evaluate(request).values;
  };
}

}  // namespace ddm::engine
