#include "engine/registry.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <sstream>
#include <utility>

#include "engine/bound_memo.hpp"
#include "engine/cost_model.hpp"
#include "engine/engines.hpp"
#include "engine/plan_cache.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace ddm::engine {

namespace {

struct SelectMetrics {
  obs::Counter selects = obs::counter("engine.selects");
  obs::Counter fallbacks = obs::counter("engine.fallbacks");
  obs::Counter policy_consults = obs::counter("engine.policy.consults");
  obs::Counter policy_model_wins = obs::counter("engine.policy.model_wins");
  obs::Counter policy_static_wins = obs::counter("engine.policy.static_wins");

  static const SelectMetrics& get() {
    static const SelectMetrics metrics;
    return metrics;
  }
};

/// The model-consulting auto rule. Candidates are the interchangeable-value
/// engines: compiled joins only when its certificate clears the REQUEST
/// tolerance (that is the accuracy contract — the static rule's fixed
/// compiled_tolerance does not apply here), batch and kernel compute the
/// inclusion-exclusion sum in plain doubles and always qualify. The
/// predicted-fastest candidate wins; engines the table has no data for
/// predict +infinity and drop out; when NO candidate has data the choice
/// degrades to exactly what the static rule would have picked, so a sparse
/// table can only ever refine dispatch, not break it.
void apply_model(const CostModel& model, const EnginePolicy& policy, const EvalRequest& request,
                 Registry& registry, Selection& selection) {
  const SelectMetrics& metrics = SelectMetrics::get();
  selection.model_consulted = true;
  metrics.policy_consults.add();

  const Evaluator* compiled = nullptr;
  bool static_compiled = false;
  if (request.scenario.is_default() && request.is_symmetric() && request.n >= 1 &&
      request.n <= policy.compiled_max_n) {
    BoundMemo& memo = BoundMemo::get();
    const std::string& digest = request.scenario.digest();
    std::optional<double> bound = memo.lookup(request.n, request.t, digest);
    if (!bound.has_value()) {
      try {
        const auto plan = PlanCache::instance().get_or_lower(request.n, request.t, digest);
        bound = plan->max_error_bound();
        memo.store(request.n, request.t, digest, *bound);
      } catch (const std::exception& error) {
        selection.fallback = true;
        selection.note = std::string("compiled lowering failed (") + error.what() +
                         "); ranking the double kernels";
      }
    }
    if (bound.has_value()) {
      selection.compiled_bound = *bound;
      static_compiled = *bound <= policy.compiled_tolerance;
      const double tolerance = request.tolerance.to_double();
      if (*bound <= tolerance) {
        compiled = &registry.require("compiled");
      } else {
        selection.fallback = true;
        std::ostringstream note;
        note << "compiled plan certificate " << *bound << " exceeds request tolerance "
             << tolerance << "; ranking the double kernels";
        selection.note = note.str();
      }
    }
  }

  // One ranking call for all candidates: CostModel::cheapest takes the table
  // lock once and compares in log space, so the per-request model overhead
  // stays a small fraction of even the fastest engine's evaluation.
  std::array<const Evaluator*, 3> pool;  // compiled, batch, kernel — never more
  std::array<std::string_view, 3> ids;
  std::size_t pool_count = 0;
  const auto consider = [&](const Evaluator* evaluator) {
    if (evaluator == nullptr || !evaluator->supports(request)) return;
    pool[pool_count] = evaluator;
    ids[pool_count] = evaluator->id();
    ++pool_count;
  };
  consider(compiled);
  consider(registry.find("batch"));
  consider(registry.find("kernel"));

  const Evaluator& static_choice =
      static_compiled && compiled != nullptr ? *compiled : registry.require("batch");
  const std::size_t best = model.cheapest(ids.data(), pool_count, request.n, request.size(),
                                          request.scenario.digest());
  if (best == pool_count) {
    selection.evaluator = &static_choice;  // no data: degrade to the static rule
    metrics.policy_static_wins.add();
    return;
  }
  selection.evaluator = pool[best];
  if (selection.evaluator == &static_choice) {
    metrics.policy_static_wins.add();
  } else {
    metrics.policy_model_wins.add();
  }
}

}  // namespace

const char* to_string(Determinism determinism) noexcept {
  switch (determinism) {
    case Determinism::kDeterministic:
      return "deterministic";
    case Determinism::kCertified:
      return "certified";
    case Determinism::kRandomized:
      return "randomized";
  }
  return "unknown";
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* fresh = new Registry();  // leaked: outlives late callers
    register_builtin_engines(*fresh);
    return fresh;
  }();
  return *registry;
}

void Registry::register_engine(std::unique_ptr<Evaluator> evaluator) {
  if (evaluator == nullptr || evaluator->id().empty()) {
    throw Error("Registry::register_engine: engine with empty id");
  }
  if (find(evaluator->id()) != nullptr) {
    throw Error("Registry::register_engine: duplicate engine id '" +
                std::string(evaluator->id()) + "'");
  }
  engines_.push_back(std::move(evaluator));
}

const Evaluator* Registry::find(std::string_view id) const noexcept {
  for (const std::unique_ptr<Evaluator>& evaluator : engines_) {
    if (evaluator->id() == id) return evaluator.get();
  }
  return nullptr;
}

const Evaluator& Registry::require(std::string_view id) const {
  if (const Evaluator* evaluator = find(id)) return *evaluator;
  std::string message = "unknown engine '" + std::string(id) + "' (registered:";
  for (const std::string_view known : ids()) {
    message += ' ';
    message += known;
  }
  message += ')';
  throw Error(std::move(message));
}

std::vector<std::string_view> Registry::ids() const {
  std::vector<std::string_view> result;
  result.reserve(engines_.size());
  for (const std::unique_ptr<Evaluator>& evaluator : engines_) {
    result.push_back(evaluator->id());
  }
  std::sort(result.begin(), result.end());
  return result;
}

Selection select(const EnginePolicy& policy, const EvalRequest& request) {
  const SelectMetrics& metrics = SelectMetrics::get();
  Registry& registry = Registry::instance();
  Selection selection;
  selection.requested = policy.engine;

  if (!policy.is_auto()) {
    const Evaluator& evaluator = registry.require(policy.engine);
    if (!evaluator.supports(request)) {
      throw Error("engine '" + std::string(evaluator.id()) +
                  "' does not support this request (" + std::string(evaluator.describe()) + ")");
    }
    selection.evaluator = &evaluator;
    metrics.selects.add();
    // Span string args must outlive the trace export; the adapter ids are
    // string literals, so they qualify (policy.engine would not).
    DDM_SPAN("engine.select",
             {{"requested", evaluator.id().data()}, {"chosen", evaluator.id().data()}});
    return selection;
  }

  selection.auto_mode = true;
  // Generalized scenarios route around the compiled/batch/kernel pool
  // entirely (none of them supports a non-default game): exact rational
  // evaluation where the O(2^n) formulas are affordable, seeded Monte Carlo
  // beyond the cap — visibly, via Selection::note.
  if (!request.scenario.is_default()) {
    const Evaluator* exact = registry.find("exact");
    const Evaluator* mc = registry.find("mc");
    if (exact != nullptr && exact->supports(request)) {
      selection.evaluator = exact;
    } else if (mc != nullptr && mc->supports(request)) {
      selection.evaluator = mc;
      selection.fallback = true;
      selection.note = "scenario '" + request.scenario.digest() +
                       "' exceeds the exact-evaluation cap; using seeded Monte Carlo";
    } else {
      throw Error("no engine supports scenario '" + request.scenario.digest() +
                  "' for this request");
    }
    metrics.selects.add();
    if (selection.fallback) metrics.fallbacks.add();
    DDM_SPAN("engine.select",
             {{"requested", "auto"},
              {"chosen", selection.evaluator->id().data()},
              {"fallback", selection.fallback ? std::int64_t{1} : std::int64_t{0}}});
    return selection;
  }
  // A loaded policy table (strictly resolved: a bad DDM_POLICY throws here
  // rather than silently dispatching cold) reroutes auto through the model.
  const std::shared_ptr<CostModel> model = CostModel::configured();
  if (model != nullptr && !model->empty()) {
    apply_model(*model, policy, request, registry, selection);
    metrics.selects.add();
    if (selection.fallback) metrics.fallbacks.add();
    DDM_SPAN("engine.select",
             {{"requested", "auto"},
              {"chosen", selection.evaluator->id().data()},
              {"fallback", selection.fallback ? std::int64_t{1} : std::int64_t{0}}});
    return selection;
  }
  // The auto rule, byte-compatible with the pre-engine CLI: try the compiled
  // plan for small symmetric grids, hold its certificate to the tolerance,
  // fall back to the batch kernel otherwise — visibly, via Selection::note.
  if (request.is_symmetric() && request.n >= 1 && request.n <= policy.compiled_max_n) {
    try {
      const auto plan =
          PlanCache::instance().get_or_lower(request.n, request.t, request.scenario.digest());
      selection.compiled_bound = plan->max_error_bound();
      if (selection.compiled_bound <= policy.compiled_tolerance) {
        selection.evaluator = &registry.require("compiled");
      } else {
        selection.fallback = true;
        std::ostringstream note;
        note << "compiled plan certificate " << selection.compiled_bound
             << " exceeds tolerance " << policy.compiled_tolerance
             << "; using the batch kernel";
        selection.note = note.str();
      }
    } catch (const std::exception& error) {
      selection.fallback = true;
      selection.note = std::string("compiled lowering failed (") + error.what() +
                       "); using the batch kernel";
    }
  }
  if (selection.evaluator == nullptr) selection.evaluator = &registry.require("batch");
  metrics.selects.add();
  if (selection.fallback) metrics.fallbacks.add();
  DDM_SPAN("engine.select", {{"requested", "auto"},
                             {"chosen", selection.evaluator->id().data()},
                             {"fallback", selection.fallback ? std::int64_t{1} : std::int64_t{0}}});
  return selection;
}

core::BatchObjective batch_objective(std::string_view engine_id) {
  // Resolve eagerly so a bad id fails at wiring time, not mid-search.
  const Evaluator& evaluator = Registry::instance().require(engine_id);
  return [&evaluator](const std::vector<std::vector<double>>& points, double t) {
    EvalRequest request = EvalRequest::general(points, util::exact_rational(t));
    return evaluator.evaluate(request).values;
  };
}

}  // namespace ddm::engine
