// bound_memo.hpp — direct-mapped memo of compiled-plan certificate bounds.
//
// Lowering is deterministic, so the bound for a given (n, t) never changes —
// but the model-consulting select() path needs it on EVERY call, and a
// PlanCache::get_or_lower round trip (string key construction, LRU splice
// under the cache mutex) costs about as much as ranking all three
// candidates. Only successful lowerings land here; failures keep throwing
// through the lowering probe, so fault injection (DDM_FAULT_PLAN) stays
// visible to the model path. The static auto rule does not use the memo —
// its branch is pinned byte-identical to the pre-model CLI, plan-cache hit
// counters included.
//
// Slots are keyed by (n, t, scenario digest): compiled plans exist only for
// the homogeneous game today, but the digest is part of the slot identity so
// a future generalized lowering can never satisfy a lookup for a different
// game — the scenario-keyed caching property tests/test_scenario.cpp pins.
// Extracted from registry.cpp (where it was file-local) precisely so that
// property is directly testable.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "util/rational.hpp"

namespace ddm::engine {

class BoundMemo {
 public:
  BoundMemo() = default;

  /// The process-wide instance used by the model-consulting select() path.
  static BoundMemo& get() {
    static BoundMemo memo;
    return memo;
  }

  [[nodiscard]] std::optional<double> lookup(std::uint32_t n, const util::Rational& t,
                                             std::string_view scenario_digest) const {
    const Slot& slot = slots_[index(n, t)];
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (slot.valid && slot.n == n && slot.t == t && slot.scenario_digest == scenario_digest) {
      return slot.bound;
    }
    return std::nullopt;
  }

  void store(std::uint32_t n, const util::Rational& t, std::string_view scenario_digest,
             double bound) {
    Slot& slot = slots_[index(n, t)];
    std::unique_lock<std::shared_mutex> lock(mutex_);
    slot.n = n;
    slot.t = t;
    slot.scenario_digest = std::string(scenario_digest);
    slot.bound = bound;
    slot.valid = true;
  }

  BoundMemo(const BoundMemo&) = delete;
  BoundMemo& operator=(const BoundMemo&) = delete;

 private:
  struct Slot {
    bool valid = false;
    std::uint32_t n = 0;
    util::Rational t;
    std::string scenario_digest;
    double bound = 0.0;
  };
  static constexpr std::size_t kSlots = 64;

  // Collisions are harmless: the full (n, t, digest) comparison above
  // rejects them and the slot is simply re-used by whichever key stored
  // last. The digest stays out of the hash — same-slot traffic across
  // scenarios costs a re-store, never a wrong answer.
  static std::size_t index(std::uint32_t n, const util::Rational& t) {
    const double approx = t.to_double();
    std::uint64_t bits = 0;
    std::memcpy(&bits, &approx, sizeof(bits));
    bits ^= bits >> 17;
    bits ^= static_cast<std::uint64_t>(n) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(bits % kSlots);
  }

  mutable std::shared_mutex mutex_;
  std::array<Slot, kSlots> slots_;
};

}  // namespace ddm::engine
