// resilient.hpp — resilient evaluation: retry, degradation chain, deadlines.
//
// engine::select (registry.hpp) answers "which engine SHOULD serve this
// request"; evaluate_resilient answers "get me an answer anyway". It resolves
// the policy, then walks a documented degradation chain when the preferred
// engine fails or runs out of time:
//
//   preferred engine        fallback chain (homogeneous default scenario)
//   ----------------        -----------------------------------------------
//   compiled                batch, then kernel   (deterministic, same bits)
//   batch                   kernel               (bitwise-equal by contract)
//   certified               mc                   (estimate under deadline
//                                                 pressure — honestly flagged)
//   exact / kernel / mc     none                 (already the last resort)
//
// Under a generalized scenario (engine/scenario.hpp) the chains reshape:
// exact and certified degrade to mc (the only other engine that serves
// those games), everything else has no chain. Engines that decline a
// scenario via supports() are skipped inside the walk, so the two views
// stay consistent by construction.
//
// Per attempt, a ddm::ParallelError (a chunk exhausted its in-region
// retries) is retried at request level under ResilientOptions::retry —
// bounded attempts with deterministic exponential backoff, the sleeps capped
// by the request deadline. A ddm::Error failure (lowering failure, injected
// fault surviving retries) moves to the next engine in the chain. Deadline
// handling splits the remaining budget: an engine with a fallback runs under
// a *soft* deadline at half the remaining time, so when it is cut off the
// chain still has budget to produce a degraded answer; only when the real
// deadline fires does ddm::DeadlineExceeded propagate to the caller.
// ddm::Cancelled always propagates immediately — a cancelled request is
// never served by a fallback.
//
// Any answer produced below the preferred engine sets EvalOutcome::degraded
// and records the chain walked in degradation_note; when nothing fires the
// result is bitwise identical to `selection.evaluator->evaluate(request)`.
// Counters: engine.degraded, engine.retries, engine.chain_exhausted.
// See docs/robustness.md ("Degradation chain").
#pragma once

#include <string_view>
#include <vector>

#include "engine/evaluator.hpp"
#include "engine/policy.hpp"
#include "util/resilience.hpp"

namespace ddm::engine {

/// The documented fallback chain for a preferred engine id (see the table
/// above); empty for engines that are already the last resort. The
/// one-argument form is the homogeneous default scenario's chain.
[[nodiscard]] std::vector<std::string_view> fallback_chain(std::string_view id);
[[nodiscard]] std::vector<std::string_view> fallback_chain(std::string_view id,
                                                           const Scenario& scenario);

/// Knobs for evaluate_resilient.
struct ResilientOptions {
  /// Engine-selection policy, resolved via engine::select.
  EnginePolicy policy;
  /// Request deadline + cancellation; propagated into every attempt (and
  /// tightened to a soft deadline for engines that still have a fallback).
  util::RunControl control;
  /// Request-level retry for ddm::ParallelError failures. The default
  /// disables request-level retries (the parallel region already retried
  /// each chunk); serving callers attach real backoff.
  util::RetryPolicy retry{.max_retries = 0};
};

/// Evaluates `request` with retry + degradation as documented above. Throws
/// ddm::Cancelled on cancellation, ddm::DeadlineExceeded when the deadline
/// fires with no fallback able to answer in time, and the last engine's
/// error when the whole chain fails.
[[nodiscard]] EvalOutcome evaluate_resilient(const ResilientOptions& options,
                                             const EvalRequest& request);

}  // namespace ddm::engine
