// plan_cache.hpp — process-wide LRU cache of compiled Horner plans.
//
// Lowering the exact Theorem 5.1 piecewise polynomial to a compiled plan
// (poly/compiled.hpp) costs O(#breakpoints · n²) exact rational algebra —
// trivially amortized over one dense sweep, but repeated sweeps, checkpoint
// blocks, and optimizer runs used to re-derive the identical plan every
// call. The cache keys plans by (n, t) and hands out shared_ptr handles, so
// a plan stays valid for callers that still hold it even after eviction.
//
// Concurrency: lookups and insertions take one mutex; the lowering itself
// runs OUTSIDE the lock (lowering is the expensive part — serializing it
// would make the cache a bottleneck). When two threads race to lower the
// same key, both lower and the first insertion wins; the loser adopts the
// winner's plan (identical by construction — lowering is deterministic) and
// the discarded duplicate is counted (`engine.cache.races`, Stats::races) so
// a fleet that keeps re-lowering concurrently is visible, not silent.
//
// Persistence: before lowering, a miss consults the process-wide plan store
// (poly/plan_store.hpp, configured via DDM_PLAN_STORE or
// PlanStore::set_configured). A validated store hit skips the lowering
// entirely (`engine.store.hits`); a stale-format file falls through to
// lowering (`engine.store.stale`), and a file that fails validate-on-load is
// counted (`engine.store.rejects`) and likewise re-lowered — a corrupt store
// degrades cold-start latency, never correctness.
//
// Fault injection: the miss path passes through the fault hook
// (util/fault.hpp) as pseudo-chunk kLoweringFaultChunk before lowering, so
// `throw@0` plans exercise the cache's exception safety: a failed lowering
// must leave the cache unpoisoned — no entry, same stats discipline — and
// the next call re-lowers successfully. tests/test_engine.cpp matrix-tests
// exactly that under DDM_THREADS=1/4.
//
// Observability: every lookup emits an `engine.cache` span (args: n, hit)
// and bumps `engine.cache.hits` / `engine.cache.misses` /
// `engine.cache.evictions` (docs/observability.md).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "poly/compiled.hpp"
#include "util/rational.hpp"

namespace ddm::engine {

/// Chunk ordinal the cache's lowering path presents to the fault-injection
/// hook (util::fault::before_chunk). Lowering is serial, so the ordinal is
/// always 0 — directives like "throw@0" target it deterministically.
inline constexpr std::size_t kLoweringFaultChunk = 0;

class PlanCache {
 public:
  /// Default capacity: distinct (n, t) pairs held. Sweeps and optimizer runs
  /// touch a handful of instances; 32 plans of degree <= ~16 are a few
  /// hundred KB.
  static constexpr std::size_t kDefaultCapacity = 32;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Misses whose lowering lost the insert race and was discarded in
    /// favor of the winner's identical plan. Invariant: races == misses −
    /// entries inserted, deterministically, for any interleaving.
    std::uint64_t races = 0;
    /// Misses served from the plan store without lowering.
    std::uint64_t store_hits = 0;
    /// Store files skipped for a stale format version (re-lowered).
    std::uint64_t store_stale = 0;
    /// Store files rejected by validate-on-load (re-lowered).
    std::uint64_t store_rejects = 0;
  };

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// The process-wide instance (shared by the registry's compiled engine and
  /// the auto selection policy).
  [[nodiscard]] static PlanCache& instance();

  /// Returns the cached plan for (n, t) under `scenario_digest`
  /// (engine/scenario.hpp), lowering and inserting on miss. The digest joins
  /// the cache key, so plans for different games never collide; the
  /// homogeneous digest (or the legacy empty string) maps to the original
  /// two-segment key, keeping every pre-scenario key and plan-store path
  /// byte-identical. Exceptions from the lowering (invalid instance,
  /// injected fault) propagate and leave the cache untouched.
  [[nodiscard]] std::shared_ptr<const poly::CompiledPiecewise> get_or_lower(
      std::uint32_t n, const util::Rational& t, std::string_view scenario_digest = {});

  /// Entries currently held.
  [[nodiscard]] std::size_t size() const;

  /// Drops every entry (outstanding shared_ptr handles stay valid).
  void clear();

  /// Shrinks/grows the capacity, evicting LRU entries as needed. Capacity 0
  /// is treated as 1.
  void set_capacity(std::size_t capacity);

  [[nodiscard]] Stats stats() const;

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const poly::CompiledPiecewise> plan;
  };

  void evict_excess_locked();

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t capacity_;
  Stats stats_;
};

}  // namespace ddm::engine
