// registry.hpp — the process-wide engine registry and selection policy.
//
// Registry::instance() owns one Evaluator per backend (engine/evaluator.hpp)
// and registers the six built-ins on first use:
//
//   id          determinism     backend
//   ---------   -------------   ----------------------------------------------
//   exact       deterministic   exact Rational Theorem 5.1 (O(n²) symmetric)
//   kernel      deterministic   serial Gray-code double kernel, O(3^n)/point
//   batch       deterministic   block-amortized parallel batch kernel
//                               (bitwise equal to `kernel`, point for point)
//   compiled    deterministic   certified Horner plan via the LRU plan cache
//   certified   certified       escalation ladder (rigorous enclosures)
//   mc          randomized      seeded Monte Carlo estimation
//
// `select` resolves an EnginePolicy against a request: a concrete id is
// looked up directly, "auto" applies the compiled-vs-batch policy
// (engine/policy.hpp) through the plan cache. The selection is returned —
// never applied silently: when auto declines the compiled plan the Selection
// carries a human-readable note so callers can surface the fallback (the
// CLI prints it to stderr and stamps the winning engine into sweep JSON).
//
// When a policy table is loaded (engine/cost_model.hpp — `ddm_cli calibrate`
// output via --policy / DDM_POLICY / --policy-table), "auto" instead ranks
// the interchangeable-value engines by predicted latency and picks the
// fastest one whose accuracy contract still meets the REQUEST tolerance
// (the compiled plan's certificate is held to request.tolerance, not the
// static rule's fixed bound). Forced engine ids never consult the model,
// and with no table loaded the static rule runs unchanged, byte for byte.
//
// Observability: `engine.select` spans (args: requested id, chosen id) and
// `engine.selects` / `engine.fallbacks` counters; model consultation adds
// `engine.policy.{consults,model_wins,static_wins}`; the plan cache adds
// `engine.cache` spans and hit/miss/eviction counters.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/threshold_optimizer.hpp"
#include "engine/evaluator.hpp"
#include "engine/policy.hpp"

namespace ddm::engine {

class Registry {
 public:
  /// The process-wide registry, with the built-in engines registered.
  [[nodiscard]] static Registry& instance();

  /// Adds an engine. Throws ddm::Error when the id is empty or already
  /// taken. Thread-compatible: registration happens at startup / test setup,
  /// not concurrently with lookups.
  void register_engine(std::unique_ptr<Evaluator> evaluator);

  /// Engine by id, or nullptr.
  [[nodiscard]] const Evaluator* find(std::string_view id) const noexcept;

  /// Engine by id; throws ddm::Error listing the registered ids when absent.
  [[nodiscard]] const Evaluator& require(std::string_view id) const;

  /// Registered ids, sorted.
  [[nodiscard]] std::vector<std::string_view> ids() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;
  std::vector<std::unique_ptr<Evaluator>> engines_;
};

/// The outcome of resolving an EnginePolicy against a request.
struct Selection {
  const Evaluator* evaluator = nullptr;
  /// What the policy asked for ("auto" or a concrete id).
  std::string requested;
  /// True when the policy was "auto" (the chosen engine then appears in
  /// per-point reporting and fallbacks carry a note).
  bool auto_mode = false;
  /// True when auto considered the compiled plan and declined it (certificate
  /// over tolerance, or the lowering failed).
  bool fallback = false;
  /// One-line reason for the fallback, empty otherwise.
  std::string note;
  /// The compiled plan's certified max-error bound when auto lowered one
  /// (NaN when lowering was not attempted or failed).
  double compiled_bound = std::numeric_limits<double>::quiet_NaN();
  /// True when auto ranked candidates through a loaded CostModel instead of
  /// the static rule (forced engines and table-less processes never set it).
  bool model_consulted = false;

  [[nodiscard]] std::string_view id() const noexcept { return evaluator->id(); }
};

/// Resolves `policy` against `request` on the process registry. Forced ids
/// throw ddm::Error when unknown or unsupported for the request's shape;
/// "auto" never throws for a well-formed request (the batch kernel is the
/// universal fallback).
[[nodiscard]] Selection select(const EnginePolicy& policy, const EvalRequest& request);

/// Adapts a registered engine into the threshold optimizer's batch-objective
/// seam (core::BatchObjective): probe batches evaluate through the engine
/// instead of a hard-wired kernel call. With the default "batch" id the
/// iterate sequence is bitwise identical to the built-in objective.
[[nodiscard]] core::BatchObjective batch_objective(std::string_view engine_id = "batch");

}  // namespace ddm::engine
