// engines.hpp — registration hook for the built-in evaluation engines.
//
// The six adapters themselves are implementation details of engines.cpp;
// callers reach them by id through the registry (engine/registry.hpp).
// Registry::instance() calls register_builtin_engines once on first use, so
// only tests building private registries need this header.
#pragma once

#include "engine/registry.hpp"

namespace ddm::engine {

/// Registers the built-in engines (batch, certified, compiled, exact,
/// kernel, mc) on `registry`. Throws ddm::Error if any id is already taken.
void register_builtin_engines(Registry& registry);

}  // namespace ddm::engine
