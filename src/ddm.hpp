// ddm.hpp — umbrella header for the ddm library.
//
// Reproduction of Georgiades, Mavronicolas, Spirakis, "Optimal, Distributed
// Decision-Making: The Case of No Communication" (FCT'99 / full version
// 2000). See README.md for the API tour and DESIGN.md for the module map.
#pragma once

#include "combinat/binomial.hpp"     // IWYU pragma: export
#include "combinat/subsets.hpp"      // IWYU pragma: export
#include "core/baselines.hpp"        // IWYU pragma: export
#include "core/certified.hpp"        // IWYU pragma: export
#include "core/communication.hpp"    // IWYU pragma: export
#include "core/heterogeneous.hpp"    // IWYU pragma: export
#include "core/interval_rules.hpp"   // IWYU pragma: export
#include "core/metrics.hpp"          // IWYU pragma: export
#include "core/nonoblivious.hpp"     // IWYU pragma: export
#include "core/oblivious.hpp"        // IWYU pragma: export
#include "core/optimality.hpp"       // IWYU pragma: export
#include "core/protocol.hpp"         // IWYU pragma: export
#include "core/randomized_rules.hpp"     // IWYU pragma: export
#include "core/symmetric_threshold.hpp"  // IWYU pragma: export
#include "core/threshold_optimizer.hpp"  // IWYU pragma: export
#include "engine/engines.hpp"        // IWYU pragma: export
#include "engine/evaluator.hpp"      // IWYU pragma: export
#include "engine/plan_cache.hpp"     // IWYU pragma: export
#include "engine/policy.hpp"         // IWYU pragma: export
#include "engine/registry.hpp"       // IWYU pragma: export
#include "geom/mc_volume.hpp"        // IWYU pragma: export
#include "geom/polytope.hpp"         // IWYU pragma: export
#include "geom/volume.hpp"           // IWYU pragma: export
#include "poly/compiled.hpp"         // IWYU pragma: export
#include "poly/interpolate.hpp"      // IWYU pragma: export
#include "poly/multilinear.hpp"      // IWYU pragma: export
#include "poly/piecewise.hpp"        // IWYU pragma: export
#include "poly/polynomial.hpp"       // IWYU pragma: export
#include "poly/roots.hpp"            // IWYU pragma: export
#include "poly/sturm.hpp"            // IWYU pragma: export
#include "prob/cdf_poly.hpp"         // IWYU pragma: export
#include "prob/empirical.hpp"        // IWYU pragma: export
#include "prob/rng.hpp"              // IWYU pragma: export
#include "prob/uniform_sum.hpp"      // IWYU pragma: export
#include "sim/monte_carlo.hpp"       // IWYU pragma: export
#include "util/bigint.hpp"           // IWYU pragma: export
#include "util/certify.hpp"          // IWYU pragma: export
#include "util/checkpoint.hpp"       // IWYU pragma: export
#include "util/fault.hpp"            // IWYU pragma: export
#include "util/interval.hpp"         // IWYU pragma: export
#include "util/parallel.hpp"         // IWYU pragma: export
#include "util/rational.hpp"         // IWYU pragma: export
#include "util/status.hpp"           // IWYU pragma: export
#include "util/table.hpp"            // IWYU pragma: export
