// monte_carlo.hpp — simulation harness for arbitrary protocols.
//
// Draws input vectors x ~ U[0,1]^n, runs the protocol, counts wins
// (Σ_0 <= t and Σ_1 <= t), and reports the estimate with a Wilson confidence
// interval. Used throughout as the independent cross-check of every exact
// formula (Theorems 4.1 and 5.1) and to evaluate protocols with no closed
// form (e.g. the full-information oracle and multi-interval extensions).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/protocol.hpp"
#include "prob/rng.hpp"
#include "util/resilience.hpp"

namespace ddm::sim {

/// Estimated probability with uncertainty.
struct SimResult {
  double estimate = 0.0;
  double standard_error = 0.0;
  double ci_low = 0.0;   ///< 95% Wilson interval, lower bound
  double ci_high = 0.0;  ///< 95% Wilson interval, upper bound
  std::uint64_t wins = 0;
  std::uint64_t trials = 0;

  /// True iff `p` lies inside the 95% interval.
  [[nodiscard]] bool covers(double p) const noexcept { return ci_low <= p && p <= ci_high; }
};

/// Wilson 95% score interval for `wins` successes out of `trials`.
[[nodiscard]] SimResult wilson_interval(std::uint64_t wins, std::uint64_t trials);

/// Estimate the winning probability of `protocol` at capacity `t` over
/// `trials` random input vectors. The trial range is cut into fixed blocks,
/// each driven by its own split rng stream keyed on the block index, and
/// blocks are scheduled onto the shared thread pool (util::parallel_for)
/// with `threads` as the concurrency cap (pass util::parallelism() to use
/// every core; 0 is treated as 1). Because the block partition and streams
/// depend only on `trials` and the seed, the wins tally is bitwise identical
/// for every thread count.
/// `control` is polled at trial-block boundaries (ddm::DeadlineExceeded /
/// ddm::Cancelled on a fired deadline/cancellation, with completed-block
/// counts); the default runs every block.
[[nodiscard]] SimResult estimate_winning_probability(const core::Protocol& protocol, double t,
                                                     std::uint64_t trials, prob::Rng& rng,
                                                     unsigned threads = 1,
                                                     const util::RunControl& control = {});

/// Estimate the probability that `win(x)` holds for x ~ U[0,1]^n — the
/// generic version used for the full-information oracle and other win
/// predicates that are not per-player protocols.
[[nodiscard]] SimResult estimate_event_probability(
    std::size_t n, const std::function<bool(std::span<const double>)>& win, std::uint64_t trials,
    prob::Rng& rng);

}  // namespace ddm::sim
