#include "sim/monte_carlo.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace ddm::sim {

SimResult wilson_interval(std::uint64_t wins, std::uint64_t trials) {
  if (trials == 0) throw std::invalid_argument("wilson_interval: zero trials");
  if (wins > trials) throw std::invalid_argument("wilson_interval: wins > trials");
  constexpr double z = 1.959963984540054;  // 97.5th percentile of N(0,1)
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(wins) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));

  SimResult result;
  result.estimate = p;
  result.standard_error = std::sqrt(p * (1.0 - p) / n);
  result.ci_low = std::max(0.0, center - half);
  result.ci_high = std::min(1.0, center + half);
  result.wins = wins;
  result.trials = trials;
  return result;
}

namespace {

/// Trials per scheduling block. The partition of the trial range into blocks
/// — and the RNG stream each block uses — depends only on `trials`, never on
/// the thread count, so the wins tally is bitwise identical for any number
/// of workers. 16384 trials keep a block in the microsecond range: small
/// enough to load-balance across the pool, large enough to amortize
/// scheduling.
constexpr std::uint64_t kTrialsPerBlock = 16384;

}  // namespace

SimResult estimate_winning_probability(const core::Protocol& protocol, double t,
                                       std::uint64_t trials, prob::Rng& rng, unsigned threads,
                                       const util::RunControl& control) {
  if (trials == 0) throw std::invalid_argument("estimate_winning_probability: zero trials");
  if (threads == 0) threads = 1;
  const std::size_t n = protocol.size();
  DDM_SPAN("mc.estimate", {{"trials", static_cast<std::int64_t>(trials)},
                           {"n", static_cast<std::int64_t>(n)}});

  // Block b covers trials [b·B, min((b+1)·B, trials)) with RNG stream
  // rng.split(b); `threads` only caps how many blocks run concurrently.
  const std::uint64_t blocks = (trials + kTrialsPerBlock - 1) / kTrialsPerBlock;
  std::vector<std::uint64_t> wins(static_cast<std::size_t>(blocks), 0);
  util::parallel_for(
      0, static_cast<std::size_t>(blocks),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> inputs(n);
        for (std::size_t b = lo; b < hi; ++b) {
          prob::Rng block_rng = rng.split(static_cast<std::uint64_t>(b));
          const std::uint64_t begin = static_cast<std::uint64_t>(b) * kTrialsPerBlock;
          const std::uint64_t end = std::min(trials, begin + kTrialsPerBlock);
          std::uint64_t block_wins = 0;
          for (std::uint64_t trial = begin; trial < end; ++trial) {
            for (double& x : inputs) x = block_rng.uniform();
            if (core::wins(protocol, inputs, t, block_rng)) ++block_wins;
          }
          wins[b] = block_wins;
        }
      },
      [&] {
        util::ParallelOptions options;
        options.max_workers = threads;
        options.label = "monte_carlo";
        options.control = control;
        // Blocks recreate their split RNG stream on every attempt, so a
        // retried chunk (transient fault or failed validation) recomputes
        // the identical tally.
        options.validate = [&wins](std::size_t lo, std::size_t hi) {
          for (std::size_t b = lo; b < hi; ++b) {
            if (wins[b] > kTrialsPerBlock) return false;
          }
          return true;
        };
        return options;
      }());
  std::uint64_t total_wins = 0;
  for (const std::uint64_t w : wins) total_wins += w;
  if (obs::metrics_enabled()) {
    static const obs::Counter mc_trials = obs::counter("mc.trials");
    static const obs::Counter mc_blocks = obs::counter("mc.blocks");
    static const obs::Counter mc_wins = obs::counter("mc.wins");
    mc_trials.add(trials);
    mc_blocks.add(blocks);
    mc_wins.add(total_wins);
  }
  return wilson_interval(total_wins, trials);
}

SimResult estimate_event_probability(std::size_t n,
                                     const std::function<bool(std::span<const double>)>& win,
                                     std::uint64_t trials, prob::Rng& rng) {
  if (trials == 0) throw std::invalid_argument("estimate_event_probability: zero trials");
  if (!win) throw std::invalid_argument("estimate_event_probability: empty predicate");
  std::vector<double> inputs(n);
  std::uint64_t wins = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    for (double& x : inputs) x = rng.uniform();
    if (win(inputs)) ++wins;
  }
  return wilson_interval(wins, trials);
}

}  // namespace ddm::sim
