#include "sim/monte_carlo.hpp"

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ddm::sim {

SimResult wilson_interval(std::uint64_t wins, std::uint64_t trials) {
  if (trials == 0) throw std::invalid_argument("wilson_interval: zero trials");
  if (wins > trials) throw std::invalid_argument("wilson_interval: wins > trials");
  constexpr double z = 1.959963984540054;  // 97.5th percentile of N(0,1)
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(wins) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));

  SimResult result;
  result.estimate = p;
  result.standard_error = std::sqrt(p * (1.0 - p) / n);
  result.ci_low = std::max(0.0, center - half);
  result.ci_high = std::min(1.0, center + half);
  result.wins = wins;
  result.trials = trials;
  return result;
}

SimResult estimate_winning_probability(const core::Protocol& protocol, double t,
                                       std::uint64_t trials, prob::Rng& rng, unsigned threads) {
  if (trials == 0) throw std::invalid_argument("estimate_winning_probability: zero trials");
  if (threads == 0) threads = 1;
  const std::size_t n = protocol.size();

  const auto run_block = [&protocol, t, n](prob::Rng worker_rng, std::uint64_t block_trials,
                                           std::uint64_t& wins_out) {
    std::vector<double> inputs(n);
    std::uint64_t wins = 0;
    for (std::uint64_t trial = 0; trial < block_trials; ++trial) {
      for (double& x : inputs) x = worker_rng.uniform();
      if (core::wins(protocol, inputs, t, worker_rng)) ++wins;
    }
    wins_out = wins;
  };

  std::uint64_t total_wins = 0;
  if (threads == 1) {
    run_block(rng.split(0), trials, total_wins);
  } else {
    std::vector<std::uint64_t> wins(threads, 0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::uint64_t base = trials / threads;
    const std::uint64_t extra = trials % threads;
    for (unsigned w = 0; w < threads; ++w) {
      const std::uint64_t block = base + (w < extra ? 1 : 0);
      workers.emplace_back(run_block, rng.split(w), block, std::ref(wins[w]));
    }
    for (std::thread& worker : workers) worker.join();
    for (const std::uint64_t w : wins) total_wins += w;
  }
  return wilson_interval(total_wins, trials);
}

SimResult estimate_event_probability(std::size_t n,
                                     const std::function<bool(std::span<const double>)>& win,
                                     std::uint64_t trials, prob::Rng& rng) {
  if (trials == 0) throw std::invalid_argument("estimate_event_probability: zero trials");
  if (!win) throw std::invalid_argument("estimate_event_probability: empty predicate");
  std::vector<double> inputs(n);
  std::uint64_t wins = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    for (double& x : inputs) x = rng.uniform();
    if (win(inputs)) ++wins;
  }
  return wilson_interval(wins, trials);
}

}  // namespace ddm::sim
