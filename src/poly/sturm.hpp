// sturm.hpp — Sturm sequences for exact real-root counting.
//
// The optimal thresholds of Section 5 are algebraic numbers (roots of the
// derivative of the piecewise winning-probability polynomial). Sturm's
// theorem lets us count and isolate them exactly over the rationals, with no
// floating-point doubt: the number of distinct real roots of a square-free
// polynomial in (a, b] equals V(a) - V(b), where V(x) counts sign changes
// along the Sturm chain evaluated at x.
#pragma once

#include <vector>

#include "poly/polynomial.hpp"
#include "util/rational.hpp"

namespace ddm::poly {

/// Sturm chain of a polynomial: p0 = p, p1 = p', p_{k+1} = -rem(p_{k-1}, p_k).
class SturmSequence {
 public:
  /// Builds the chain. The input need not be square-free; root *counting*
  /// then reports distinct roots (the chain ends at gcd(p, p')).
  explicit SturmSequence(QPoly p);

  /// Number of sign changes of the chain at x.
  [[nodiscard]] int sign_changes_at(const util::Rational& x) const;
  /// Sign changes at -inf / +inf (using leading coefficients).
  [[nodiscard]] int sign_changes_at_negative_infinity() const;
  [[nodiscard]] int sign_changes_at_positive_infinity() const;

  /// Count of distinct real roots in the half-open interval (a, b].
  /// Requires a <= b (throws std::invalid_argument otherwise).
  [[nodiscard]] int count_roots(const util::Rational& a, const util::Rational& b) const;
  /// Count of all distinct real roots.
  [[nodiscard]] int count_all_roots() const;

  [[nodiscard]] const std::vector<QPoly>& chain() const noexcept { return chain_; }

 private:
  std::vector<QPoly> chain_;
};

/// Cauchy root bound: all real roots of p lie in [-B, B] with
/// B = 1 + max_i |a_i| / |a_n|. Throws std::invalid_argument on zero input.
[[nodiscard]] util::Rational cauchy_root_bound(const QPoly& p);

}  // namespace ddm::poly
