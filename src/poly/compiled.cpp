#include "poly/compiled.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "poly/compiled_detail.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace ddm::poly {

using util::Rational;

namespace {

struct CompiledMetrics {
  obs::Counter lowerings = obs::counter("compiled.lowerings");
  obs::Counter points = obs::counter("compiled.points");
  obs::Gauge simd_width = obs::gauge("engine.simd_width");
  obs::Counter vector_lanes = obs::counter("kernel.vector_lanes");

  static const CompiledMetrics& get() {
    static const CompiledMetrics metrics;
    return metrics;
  }
};

// Points per parallel chunk in eval_grid. One compiled evaluation is a few
// nanoseconds, so chunks must carry enough points to amortize the engine's
// dispatch; the chunk ordinal seen by fault directives is lo / kGridGrain.
constexpr std::size_t kGridGrain = 256;

// Σ_i |c_i| · M^i for exact coefficients (used with both the exact and the
// lowered-then-re-exactified coefficient vectors).
Rational weighted_abs_sum(const std::vector<Rational>& coeffs, const Rational& m) {
  Rational sum{0};
  Rational power{1};
  for (const Rational& c : coeffs) {
    sum += c.abs() * power;
    power *= m;
  }
  return sum;
}

// Sup bound on |p'| over |x| <= M: Σ_{i>=1} i · |c_i| · M^(i-1).
Rational derivative_sup(const std::vector<Rational>& coeffs, const Rational& m) {
  Rational sum{0};
  Rational power{1};
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    sum += Rational{static_cast<std::int64_t>(i)} * coeffs[i].abs() * power;
    power *= m;
  }
  return sum;
}

// Exact Horner evaluation of an exact coefficient vector.
Rational exact_eval(const std::vector<Rational>& coeffs, const Rational& x) {
  Rational result{0};
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    result = result * x + coeffs[i];
  }
  return result;
}

// γ_k = k·u / (1 − k·u), u = 2^-53 — the standard Horner roundoff factor
// (k = 2·deg rounding operations): |horner(ĉ, x) − p_ĉ(x)| <= γ_k Σ|ĉ_i||x|^i.
Rational gamma_factor(std::size_t ops) {
  if (ops == 0) return Rational{0};
  const Rational u{util::BigInt{1}, util::BigInt::pow(util::BigInt{2}, 53)};
  const Rational ku = Rational{static_cast<std::int64_t>(ops)} * u;
  return ku / (Rational{1} - ku);
}

double horner(const double* coeffs, std::size_t count, double x) {
  double result = 0.0;
  for (std::size_t i = count; i-- > 0;) {
    result = result * x + coeffs[i];
  }
  return result;
}

// Non-template entry points for the widths compiled into every translation
// unit (the AVX2/AVX-512 ones live in compiled_simd_*.cpp), so eval_grid can
// pick a run evaluator with one switch per call.
using HornerRunFn = void (*)(const double*, std::size_t, const double*, double*, std::size_t);

void horner_run_scalar(const double* rows, std::size_t coeff_count, const double* xs,
                       double* out, std::size_t n) {
  detail::horner_run_pack<ddm::util::simd::Pack<1>>(rows, coeff_count, xs, out, n);
}

#if defined(DDM_SIMD_HAS_SSE2) || defined(DDM_SIMD_HAS_NEON)
void horner_run_w2(const double* rows, std::size_t coeff_count, const double* xs,
                   double* out, std::size_t n) {
  detail::horner_run_pack<ddm::util::simd::Pack<2>>(rows, coeff_count, xs, out, n);
}
#endif

HornerRunFn pick_horner_run(int width) {
  switch (width) {
#if defined(DDM_SIMD_COMPILED_AVX512)
    case 8:
      return detail::horner_run_avx512;
#endif
#if defined(DDM_SIMD_COMPILED_AVX2)
    case 4:
      return detail::horner_run_avx2;
#endif
#if defined(DDM_SIMD_HAS_SSE2) || defined(DDM_SIMD_HAS_NEON)
    case 2:
      return horner_run_w2;
#endif
    default:
      return horner_run_scalar;
  }
}

}  // namespace

// Rational::to_double makes no directed-rounding promise, so step upward
// until the exact comparison (via the exact dyadic value of the candidate)
// confirms an upper bound. Terminates in a step or two.
double certificate_round_up(const Rational& value) {
  double candidate = value.to_double();
  while (Rational::from_double(candidate) < value) {
    candidate = std::nextafter(candidate, std::numeric_limits<double>::infinity());
  }
  return candidate;
}

CompiledPiecewise CompiledPiecewise::lower(const PiecewisePolynomial& source) {
  DDM_SPAN("compiled.lower",
           {{"pieces", static_cast<std::int64_t>(source.pieces().size())}});
  CompiledMetrics::get().lowerings.add();

  const std::vector<Piece>& pieces = source.pieces();
  const std::size_t count = pieces.size();

  CompiledPiecewise plan;
  plan.breaks_.reserve(count + 1);
  plan.pieces_.reserve(count);

  // Pass 1: lower breakpoints and coefficients. The double breakpoint table
  // must stay strictly increasing or the binary-search selection rule could
  // land arbitrarily far from the exact piece — refuse to certify that.
  plan.breaks_.push_back(pieces.front().lo.to_double());
  for (const Piece& piece : pieces) {
    const double hi = piece.hi.to_double();
    if (!(hi > plan.breaks_.back())) {
      throw std::invalid_argument("CompiledPiecewise: breakpoints collapse in double");
    }
    CompiledPiece compiled;
    compiled.lo = plan.breaks_.back();
    compiled.hi = hi;
    compiled.coeff_begin = plan.coeffs_.size();
    compiled.coeff_count = piece.poly.coefficients().size();
    for (const Rational& c : piece.poly.coefficients()) {
      plan.coeffs_.push_back(c.to_double());
    }
    plan.breaks_.push_back(hi);
    plan.pieces_.push_back(compiled);
  }

  // Per-boundary rounding distance δ = |b − b̂| (exact; 0 when the breakpoint
  // is exactly representable, e.g. 0, 1, 1/2, 3/4 — the common case).
  std::vector<Rational> delta(count + 1, Rational{0});
  for (std::size_t b = 0; b <= count; ++b) {
    const Rational exact = b == 0 ? pieces.front().lo : pieces[b - 1].hi;
    delta[b] = (exact - Rational::from_double(plan.breaks_[b])).abs();
  }

  // Pass 2: certified per-piece bounds, all in exact rational arithmetic.
  std::vector<std::vector<Rational>> lowered_exact(count);  // exact values of ĉ
  std::vector<Rational> widened_m(count);                   // sup |x| incl. δ slack
  for (std::size_t p = 0; p < count; ++p) {
    const CompiledPiece& cp = plan.pieces_[p];
    lowered_exact[p].reserve(cp.coeff_count);
    for (std::size_t i = 0; i < cp.coeff_count; ++i) {
      lowered_exact[p].push_back(Rational::from_double(plan.coeffs_[cp.coeff_begin + i]));
    }
    const Rational m = std::max(pieces[p].lo.abs(), pieces[p].hi.abs());
    widened_m[p] = m + delta[p] + delta[p + 1];
  }

  for (std::size_t p = 0; p < count; ++p) {
    CompiledPiece& cp = plan.pieces_[p];
    const std::vector<Rational>& exact_coeffs = pieces[p].poly.coefficients();
    const Rational& m = widened_m[p];

    // 1. Coefficient rounding: Σ |c_i − ĉ_i| · M^i.
    Rational bound{0};
    {
      Rational power{1};
      for (std::size_t i = 0; i < cp.coeff_count; ++i) {
        bound += (exact_coeffs[i] - lowered_exact[p][i]).abs() * power;
        power *= m;
      }
    }

    // 2. Horner roundoff on the lowered coefficients: γ_{2d} · Σ |ĉ_i| · M^i.
    if (cp.coeff_count >= 2) {
      bound += gamma_factor(2 * (cp.coeff_count - 1)) * weighted_abs_sum(lowered_exact[p], m);
    }

    // 3. Breakpoint rounding: a double x the compiled table assigns to this
    // piece satisfies b̂_lo < x <= b̂_hi, so its exact value can stray past an
    // exact breakpoint by at most that boundary's δ — into the immediate
    // neighbour only, provided δ does not swallow the neighbour. The defect
    // there is the neighbours' exact jump at the breakpoint (zero for a
    // continuous source) plus a Lipschitz term over the δ-overlap.
    const auto selection_term = [&](std::size_t boundary, std::size_t neighbour) {
      const Rational& d = delta[boundary];
      if (d.signum() == 0) return Rational{0};
      if (neighbour >= count) {
        // Domain end: certificate is vs the exact function at the clamped
        // exact position, so only this piece's own Lipschitz slack applies.
        return derivative_sup(exact_coeffs, m) * d;
      }
      const Rational neighbour_width = pieces[neighbour].hi - pieces[neighbour].lo;
      if (d > neighbour_width) {
        throw std::invalid_argument(
            "CompiledPiecewise: breakpoint rounding exceeds a neighbouring piece");
      }
      const Rational b = boundary == p ? pieces[p].lo : pieces[p].hi;
      const Rational jump =
          (exact_eval(exact_coeffs, b) - exact_eval(pieces[neighbour].poly.coefficients(), b))
              .abs();
      const Rational lipschitz = derivative_sup(exact_coeffs, m) +
                                 derivative_sup(pieces[neighbour].poly.coefficients(),
                                                widened_m[neighbour]);
      return jump + lipschitz * d;
    };
    bound += std::max(selection_term(p, p == 0 ? count : p - 1),
                      selection_term(p + 1, p + 1 < count ? p + 1 : count));

    // Keep the EXACT bound alongside its rounded-up double image: the plan
    // store persists the rational string and re-derives the double on load,
    // so a stored certificate can always be re-verified bit for bit.
    plan.piece_certs_.push_back(bound.to_string());
    cp.error_bound = certificate_round_up(bound);
    plan.max_error_ = std::max(plan.max_error_, cp.error_bound);
  }

  // Transposed vector-Horner layout: the SAME doubles as coeffs_, each
  // replicated across a kCoeffLanes-wide row (compiled_detail.hpp), so the
  // vector runs stay bitwise identical to scalar Horner by construction.
  plan.lane_coeffs_.resize(plan.coeffs_.size() * util::simd::kCoeffLanes);
  for (std::size_t i = 0; i < plan.coeffs_.size(); ++i) {
    for (std::size_t lane = 0; lane < util::simd::kCoeffLanes; ++lane) {
      plan.lane_coeffs_[i * util::simd::kCoeffLanes + lane] = plan.coeffs_[i];
    }
  }

  return plan;
}

std::size_t CompiledPiecewise::piece_index(double x) const {
  if (!(x >= breaks_.front()) || !(x <= breaks_.back())) {
    throw std::out_of_range("CompiledPiecewise: x outside the compiled domain");
  }
  // First boundary >= x (skipping the domain start); at a shared breakpoint
  // this selects the left piece, mirroring PiecewisePolynomial::operator().
  const auto it = std::lower_bound(breaks_.begin() + 1, breaks_.end(), x);
  return static_cast<std::size_t>(it - (breaks_.begin() + 1));
}

double CompiledPiecewise::eval(double x) const {
  const CompiledPiece& piece = pieces_[piece_index(x)];
  return horner(coeff_data() + piece.coeff_begin, piece.coeff_count, x);
}

double CompiledPiecewise::error_bound(double x) const {
  return pieces_[piece_index(x)].error_bound;
}

void CompiledPiecewise::eval_grid(std::span<const double> xs, std::span<double> out,
                                  const util::RunControl& control) const {
  if (xs.size() != out.size()) {
    throw std::invalid_argument("CompiledPiecewise::eval_grid: output span size mismatch");
  }
  if (xs.empty()) return;
  DDM_SPAN("compiled.eval_grid", {{"points", static_cast<std::int64_t>(xs.size())},
                                  {"pieces", static_cast<std::int64_t>(pieces_.size())}});
  const CompiledMetrics& metrics = CompiledMetrics::get();
  metrics.points.add(xs.size());
  // Resolve the SIMD width once, on the calling thread (a malformed DDM_SIMD
  // throws ddm::Error here, before any chunk runs), and report the width
  // actually dispatched — never the compiled maximum.
  const int simd_width = util::simd::dispatch_width();
  const HornerRunFn run_fn = pick_horner_run(simd_width);
  if (obs::metrics_enabled()) {
    metrics.simd_width.set(simd_width);
    if (simd_width > 1) {
      metrics.vector_lanes.add(xs.size() - xs.size() % static_cast<std::size_t>(simd_width));
    }
  }
  // Same robustness shape as the batch kernel: per-point evaluation is
  // self-contained (bitwise identical to eval() for any thread count and
  // any dispatch width), nan fault directives poison a chunk's first output,
  // and the finiteness validate hook makes the engine recompute a poisoned
  // chunk.
  util::ParallelOptions options;
  options.grain = kGridGrain;
  options.label = "compiled_grid";
  options.control = control;
  options.validate = [out](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (!std::isfinite(out[i])) return false;
    }
    return true;
  };
  util::parallel_for(
      0, xs.size(),
      [this, xs, out, run_fn](std::size_t lo, std::size_t hi) {
        // Decompose the chunk into piece-runs: piece_index (one binary
        // search) for the run head, then extend while the selection rule
        // keeps choosing the same piece — for piece p that is
        // breaks_[p] < x <= breaks_[p+1], with the domain's left endpoint
        // admitted into piece 0 (exactly lower_bound's verdict, so the run
        // decomposition can never disagree with eval()). A sorted sweep
        // grid crosses each piece once; unsorted input degrades to runs of
        // length 1, i.e. the old per-point cost. A NaN fails every
        // comparison, ends the run, and throws out_of_range at its own
        // piece_index call, exactly like per-point eval.
        std::size_t i = lo;
        while (i < hi) {
          const std::size_t p = piece_index(xs[i]);
          const double piece_lo = breaks_[p];
          const double piece_hi = breaks_[p + 1];
          std::size_t end = i + 1;
          if (p == 0) {
            while (end < hi && xs[end] >= piece_lo && xs[end] <= piece_hi) ++end;
          } else {
            while (end < hi && xs[end] > piece_lo && xs[end] <= piece_hi) ++end;
          }
          const CompiledPiece& piece = pieces_[p];
          run_fn(lane_data() + piece.coeff_begin * util::simd::kCoeffLanes,
                 piece.coeff_count, xs.data() + i, out.data() + i, end - i);
          i = end;
        }
        if (util::fault::active() && util::fault::consume_nan(lo / kGridGrain)) {
          out[lo] = std::numeric_limits<double>::quiet_NaN();
        }
      },
      options);
}

std::vector<double> CompiledPiecewise::eval_grid(std::span<const double> xs,
                                                 const util::RunControl& control) const {
  std::vector<double> out(xs.size(), 0.0);
  eval_grid(xs, out, control);
  return out;
}

std::span<const double> CompiledPiecewise::lane_coefficients() const noexcept {
  return {lane_data(), coeff_total() * util::simd::kCoeffLanes};
}

CompiledPiecewise CompiledPiecewise::from_stored(StoredParts parts) {
  const auto reject = [](const char* reason) {
    throw std::invalid_argument(std::string("CompiledPiecewise::from_stored: ") + reason);
  };
  const std::size_t count = parts.pieces.size();
  if (count == 0) reject("empty piece table");
  if (parts.breaks.size() != count + 1) reject("breakpoint table size != piece_count + 1");
  if (parts.piece_certs.size() != count) reject("certificate count != piece count");
  if (parts.coeffs == nullptr || parts.lane_coeffs == nullptr) reject("null coefficient arrays");
  for (std::size_t b = 0; b + 1 < parts.breaks.size(); ++b) {
    if (!(parts.breaks[b + 1] > parts.breaks[b])) reject("breakpoints not strictly increasing");
  }
  std::size_t expected_begin = 0;
  double max_bound = 0.0;
  for (std::size_t p = 0; p < count; ++p) {
    const CompiledPiece& piece = parts.pieces[p];
    if (piece.coeff_begin != expected_begin) reject("coefficient windows not contiguous");
    if (piece.coeff_count == 0) reject("piece with no coefficients");
    expected_begin += piece.coeff_count;
    if (piece.lo != parts.breaks[p] || piece.hi != parts.breaks[p + 1]) {
      reject("piece bounds disagree with the breakpoint table");
    }
    if (!(piece.error_bound >= 0.0)) reject("negative or NaN error bound");
    max_bound = std::max(max_bound, piece.error_bound);
  }
  if (expected_begin != parts.coeff_total) reject("coefficient total disagrees with windows");
  if (max_bound != parts.max_error) reject("max_error disagrees with the piece bounds");

  CompiledPiecewise plan;
  plan.breaks_ = std::move(parts.breaks);
  plan.pieces_ = std::move(parts.pieces);
  plan.piece_certs_ = std::move(parts.piece_certs);
  plan.ext_coeffs_ = parts.coeffs;
  plan.ext_lane_coeffs_ = parts.lane_coeffs;
  plan.storage_ = std::move(parts.storage);
  plan.max_error_ = parts.max_error;
  return plan;
}

}  // namespace ddm::poly
