#include "poly/compiled.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace ddm::poly {

using util::Rational;

namespace {

struct CompiledMetrics {
  obs::Counter lowerings = obs::counter("compiled.lowerings");
  obs::Counter points = obs::counter("compiled.points");

  static const CompiledMetrics& get() {
    static const CompiledMetrics metrics;
    return metrics;
  }
};

// Points per parallel chunk in eval_grid. One compiled evaluation is a few
// nanoseconds, so chunks must carry enough points to amortize the engine's
// dispatch; the chunk ordinal seen by fault directives is lo / kGridGrain.
constexpr std::size_t kGridGrain = 256;

// Smallest double that provably dominates the exact rational value:
// Rational::to_double makes no directed-rounding promise, so step upward
// until the exact comparison (via the exact dyadic value of the candidate)
// confirms an upper bound. Terminates in a step or two.
double round_up(const Rational& value) {
  double candidate = value.to_double();
  while (Rational::from_double(candidate) < value) {
    candidate = std::nextafter(candidate, std::numeric_limits<double>::infinity());
  }
  return candidate;
}

// Σ_i |c_i| · M^i for exact coefficients (used with both the exact and the
// lowered-then-re-exactified coefficient vectors).
Rational weighted_abs_sum(const std::vector<Rational>& coeffs, const Rational& m) {
  Rational sum{0};
  Rational power{1};
  for (const Rational& c : coeffs) {
    sum += c.abs() * power;
    power *= m;
  }
  return sum;
}

// Sup bound on |p'| over |x| <= M: Σ_{i>=1} i · |c_i| · M^(i-1).
Rational derivative_sup(const std::vector<Rational>& coeffs, const Rational& m) {
  Rational sum{0};
  Rational power{1};
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    sum += Rational{static_cast<std::int64_t>(i)} * coeffs[i].abs() * power;
    power *= m;
  }
  return sum;
}

// Exact Horner evaluation of an exact coefficient vector.
Rational exact_eval(const std::vector<Rational>& coeffs, const Rational& x) {
  Rational result{0};
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    result = result * x + coeffs[i];
  }
  return result;
}

// γ_k = k·u / (1 − k·u), u = 2^-53 — the standard Horner roundoff factor
// (k = 2·deg rounding operations): |horner(ĉ, x) − p_ĉ(x)| <= γ_k Σ|ĉ_i||x|^i.
Rational gamma_factor(std::size_t ops) {
  if (ops == 0) return Rational{0};
  const Rational u{util::BigInt{1}, util::BigInt::pow(util::BigInt{2}, 53)};
  const Rational ku = Rational{static_cast<std::int64_t>(ops)} * u;
  return ku / (Rational{1} - ku);
}

double horner(const double* coeffs, std::size_t count, double x) {
  double result = 0.0;
  for (std::size_t i = count; i-- > 0;) {
    result = result * x + coeffs[i];
  }
  return result;
}

}  // namespace

CompiledPiecewise CompiledPiecewise::lower(const PiecewisePolynomial& source) {
  DDM_SPAN("compiled.lower",
           {{"pieces", static_cast<std::int64_t>(source.pieces().size())}});
  CompiledMetrics::get().lowerings.add();

  const std::vector<Piece>& pieces = source.pieces();
  const std::size_t count = pieces.size();

  CompiledPiecewise plan;
  plan.breaks_.reserve(count + 1);
  plan.pieces_.reserve(count);

  // Pass 1: lower breakpoints and coefficients. The double breakpoint table
  // must stay strictly increasing or the binary-search selection rule could
  // land arbitrarily far from the exact piece — refuse to certify that.
  plan.breaks_.push_back(pieces.front().lo.to_double());
  for (const Piece& piece : pieces) {
    const double hi = piece.hi.to_double();
    if (!(hi > plan.breaks_.back())) {
      throw std::invalid_argument("CompiledPiecewise: breakpoints collapse in double");
    }
    CompiledPiece compiled;
    compiled.lo = plan.breaks_.back();
    compiled.hi = hi;
    compiled.coeff_begin = plan.coeffs_.size();
    compiled.coeff_count = piece.poly.coefficients().size();
    for (const Rational& c : piece.poly.coefficients()) {
      plan.coeffs_.push_back(c.to_double());
    }
    plan.breaks_.push_back(hi);
    plan.pieces_.push_back(compiled);
  }

  // Per-boundary rounding distance δ = |b − b̂| (exact; 0 when the breakpoint
  // is exactly representable, e.g. 0, 1, 1/2, 3/4 — the common case).
  std::vector<Rational> delta(count + 1, Rational{0});
  for (std::size_t b = 0; b <= count; ++b) {
    const Rational exact = b == 0 ? pieces.front().lo : pieces[b - 1].hi;
    delta[b] = (exact - Rational::from_double(plan.breaks_[b])).abs();
  }

  // Pass 2: certified per-piece bounds, all in exact rational arithmetic.
  std::vector<std::vector<Rational>> lowered_exact(count);  // exact values of ĉ
  std::vector<Rational> widened_m(count);                   // sup |x| incl. δ slack
  for (std::size_t p = 0; p < count; ++p) {
    const CompiledPiece& cp = plan.pieces_[p];
    lowered_exact[p].reserve(cp.coeff_count);
    for (std::size_t i = 0; i < cp.coeff_count; ++i) {
      lowered_exact[p].push_back(Rational::from_double(plan.coeffs_[cp.coeff_begin + i]));
    }
    const Rational m = std::max(pieces[p].lo.abs(), pieces[p].hi.abs());
    widened_m[p] = m + delta[p] + delta[p + 1];
  }

  for (std::size_t p = 0; p < count; ++p) {
    CompiledPiece& cp = plan.pieces_[p];
    const std::vector<Rational>& exact_coeffs = pieces[p].poly.coefficients();
    const Rational& m = widened_m[p];

    // 1. Coefficient rounding: Σ |c_i − ĉ_i| · M^i.
    Rational bound{0};
    {
      Rational power{1};
      for (std::size_t i = 0; i < cp.coeff_count; ++i) {
        bound += (exact_coeffs[i] - lowered_exact[p][i]).abs() * power;
        power *= m;
      }
    }

    // 2. Horner roundoff on the lowered coefficients: γ_{2d} · Σ |ĉ_i| · M^i.
    if (cp.coeff_count >= 2) {
      bound += gamma_factor(2 * (cp.coeff_count - 1)) * weighted_abs_sum(lowered_exact[p], m);
    }

    // 3. Breakpoint rounding: a double x the compiled table assigns to this
    // piece satisfies b̂_lo < x <= b̂_hi, so its exact value can stray past an
    // exact breakpoint by at most that boundary's δ — into the immediate
    // neighbour only, provided δ does not swallow the neighbour. The defect
    // there is the neighbours' exact jump at the breakpoint (zero for a
    // continuous source) plus a Lipschitz term over the δ-overlap.
    const auto selection_term = [&](std::size_t boundary, std::size_t neighbour) {
      const Rational& d = delta[boundary];
      if (d.signum() == 0) return Rational{0};
      if (neighbour >= count) {
        // Domain end: certificate is vs the exact function at the clamped
        // exact position, so only this piece's own Lipschitz slack applies.
        return derivative_sup(exact_coeffs, m) * d;
      }
      const Rational neighbour_width = pieces[neighbour].hi - pieces[neighbour].lo;
      if (d > neighbour_width) {
        throw std::invalid_argument(
            "CompiledPiecewise: breakpoint rounding exceeds a neighbouring piece");
      }
      const Rational b = boundary == p ? pieces[p].lo : pieces[p].hi;
      const Rational jump =
          (exact_eval(exact_coeffs, b) - exact_eval(pieces[neighbour].poly.coefficients(), b))
              .abs();
      const Rational lipschitz = derivative_sup(exact_coeffs, m) +
                                 derivative_sup(pieces[neighbour].poly.coefficients(),
                                                widened_m[neighbour]);
      return jump + lipschitz * d;
    };
    bound += std::max(selection_term(p, p == 0 ? count : p - 1),
                      selection_term(p + 1, p + 1 < count ? p + 1 : count));

    cp.error_bound = round_up(bound);
    plan.max_error_ = std::max(plan.max_error_, cp.error_bound);
  }

  return plan;
}

std::size_t CompiledPiecewise::piece_index(double x) const {
  if (!(x >= breaks_.front()) || !(x <= breaks_.back())) {
    throw std::out_of_range("CompiledPiecewise: x outside the compiled domain");
  }
  // First boundary >= x (skipping the domain start); at a shared breakpoint
  // this selects the left piece, mirroring PiecewisePolynomial::operator().
  const auto it = std::lower_bound(breaks_.begin() + 1, breaks_.end(), x);
  return static_cast<std::size_t>(it - (breaks_.begin() + 1));
}

double CompiledPiecewise::eval(double x) const {
  const CompiledPiece& piece = pieces_[piece_index(x)];
  return horner(coeffs_.data() + piece.coeff_begin, piece.coeff_count, x);
}

double CompiledPiecewise::error_bound(double x) const {
  return pieces_[piece_index(x)].error_bound;
}

void CompiledPiecewise::eval_grid(std::span<const double> xs, std::span<double> out) const {
  if (xs.size() != out.size()) {
    throw std::invalid_argument("CompiledPiecewise::eval_grid: output span size mismatch");
  }
  if (xs.empty()) return;
  DDM_SPAN("compiled.eval_grid", {{"points", static_cast<std::int64_t>(xs.size())},
                                  {"pieces", static_cast<std::int64_t>(pieces_.size())}});
  CompiledMetrics::get().points.add(xs.size());
  // Same robustness shape as the batch kernel: per-point evaluation is
  // self-contained (bitwise identical to eval() for any thread count), nan
  // fault directives poison a chunk's first output, and the finiteness
  // validate hook makes the engine recompute a poisoned chunk.
  util::ParallelOptions options;
  options.grain = kGridGrain;
  options.label = "compiled_grid";
  options.validate = [out](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (!std::isfinite(out[i])) return false;
    }
    return true;
  };
  util::parallel_for(
      0, xs.size(),
      [this, xs, out](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = eval(xs[i]);
        }
        if (util::fault::active() && util::fault::consume_nan(lo / kGridGrain)) {
          out[lo] = std::numeric_limits<double>::quiet_NaN();
        }
      },
      options);
}

std::vector<double> CompiledPiecewise::eval_grid(std::span<const double> xs) const {
  std::vector<double> out(xs.size(), 0.0);
  eval_grid(xs, out);
  return out;
}

}  // namespace ddm::poly
