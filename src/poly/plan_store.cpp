#include "poly/plan_store.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/simd.hpp"
#include "util/status.hpp"

namespace ddm::poly {

namespace {

constexpr char kMagic[8] = {'D', 'D', 'M', 'P', 'L', 'A', 'N', '\n'};

// Fixed header byte offsets — save and load compute the identical layout.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffN = 12;
constexpr std::size_t kOffPieceCount = 16;
constexpr std::size_t kOffCoeffTotal = 24;
constexpr std::size_t kOffTLen = 32;
constexpr std::size_t kOffCertLen = 40;
constexpr std::size_t kOffMaxError = 48;
constexpr std::size_t kOffTolerance = 56;
constexpr std::size_t kOffPayloadBytes = 64;
constexpr std::size_t kOffPayloadChecksum = 72;
constexpr std::size_t kOffHeaderChecksum = 80;
constexpr std::size_t kHeaderSize = 88;

// Doubles live at 64-byte-aligned file offsets so the mapped arrays are
// cache-line aligned exactly like the vectors lower() produces.
constexpr std::size_t kAlign = 64;

constexpr std::size_t align_up(std::size_t offset) {
  return (offset + kAlign - 1) / kAlign * kAlign;
}

// On-disk piece record: five 8-byte fields, 40 bytes, no padding.
constexpr std::size_t kPieceRecordSize = 40;

template <typename T>
void put(std::vector<char>& buffer, std::size_t offset, const T& value) {
  std::memcpy(buffer.data() + offset, &value, sizeof(T));
}

template <typename T>
T get(const char* data, std::size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

struct StoreMetrics {
  obs::Counter saves = obs::counter("plan_store.saves");
  obs::Counter loads = obs::counter("plan_store.loads");

  static const StoreMetrics& get() {
    static const StoreMetrics metrics;
    return metrics;
  }
};

// Keeps a loaded file's bytes alive for the borrowed coefficient views: a
// read-only mmap on POSIX, an owned heap buffer elsewhere (or when mmap
// fails, e.g. on filesystems without mmap support).
struct FileBytes {
  const char* data = nullptr;
  std::size_t size = 0;
  std::vector<char> owned;
#if defined(__unix__) || defined(__APPLE__)
  void* base = nullptr;
  std::size_t map_len = 0;
  ~FileBytes() {
    if (base != nullptr) ::munmap(base, map_len);
  }
  FileBytes() = default;
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;
#endif
};

std::shared_ptr<FileBytes> read_file(const std::string& path, std::uint32_t n,
                                     const std::string& t) {
  auto bytes = std::make_shared<FileBytes>();
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw PlanStoreError("cannot open file for reading", n, t, path);
  }
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                        fd, 0);
    if (base != MAP_FAILED) {
      bytes->base = base;
      bytes->map_len = static_cast<std::size_t>(st.st_size);
      bytes->data = static_cast<const char*>(base);
      bytes->size = bytes->map_len;
      ::close(fd);
      return bytes;
    }
  }
  ::close(fd);
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw PlanStoreError("cannot open file for reading", n, t, path);
  }
  bytes->owned.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  bytes->data = bytes->owned.data();
  bytes->size = bytes->owned.size();
  return bytes;
}

// Filename-safe canonical key: "n4_t4_3.plan" for (4, 4/3), "n6_t2.plan"
// for (6, 2). Rational::to_string is canonical by construction (the type
// normalizes on every mutation), so equal rationals map to one file.
std::string file_name(std::uint32_t n, const std::string& t_text) {
  std::string name = "n" + std::to_string(n) + "_t";
  for (const char c : t_text) name += c == '/' ? '_' : c;
  return name + ".plan";
}

// The process-wide store slot (PlanCache's fallthrough target). Guarded by a
// mutex: get_or_lower is called concurrently and the first call does the
// DDM_PLAN_STORE env read.
std::mutex g_configured_mutex;
std::shared_ptr<PlanStore> g_configured;  // NOLINT: guarded global
bool g_configured_resolved = false;       // NOLINT: guarded global

}  // namespace

std::uint64_t plan_store_checksum(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

PlanStore::PlanStore(std::string directory) : directory_(std::move(directory)) {}

std::shared_ptr<PlanStore> PlanStore::open_directory(const std::string& directory,
                                                     const std::string& what) {
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    throw Error(what + ": plan store directory '" + directory +
                "' does not exist or is not a directory");
  }
  return std::make_shared<PlanStore>(directory);
}

std::shared_ptr<PlanStore> PlanStore::create_directory(const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec || !std::filesystem::is_directory(directory)) {
    throw Error("plan store: cannot create directory '" + directory + "'");
  }
  return std::make_shared<PlanStore>(directory);
}

std::string PlanStore::path_for(std::uint32_t n, const util::Rational& t) const {
  return (std::filesystem::path(directory_) / file_name(n, t.to_string())).string();
}

void PlanStore::save(std::uint32_t n, const util::Rational& t, const CompiledPiecewise& plan,
                     double tolerance) const {
  const std::string t_text = t.to_string();
  const std::string path = path_for(n, t);
  DDM_SPAN("plan_store.save", {{"n", static_cast<std::int64_t>(n)}});
  if (!(plan.max_error_bound() <= tolerance)) {
    throw PlanStoreError("plan certificate " + std::to_string(plan.max_error_bound()) +
                             " does not clear the requested tolerance " +
                             std::to_string(tolerance) + "; refusing to persist",
                         n, t_text, path);
  }
  const std::vector<double>& breaks = plan.breakpoints();
  const std::vector<CompiledPiece>& pieces = plan.pieces();
  const std::vector<std::string>& certs = plan.piece_certificates();
  if (certs.size() != pieces.size()) {
    throw PlanStoreError("plan carries no per-piece certificates (not produced by lower()?)", n,
                         t_text, path);
  }
  std::string cert_blob;
  for (const std::string& cert : certs) {
    cert_blob += cert;
    cert_blob += '\n';
  }
  const std::span<const double> coeffs = plan.coefficients();
  const std::span<const double> lanes = plan.lane_coefficients();

  const std::size_t breaks_off = align_up(kHeaderSize + t_text.size() + cert_blob.size());
  const std::size_t pieces_off = breaks_off + breaks.size() * sizeof(double);
  const std::size_t coeffs_off = align_up(pieces_off + pieces.size() * kPieceRecordSize);
  const std::size_t lanes_off = align_up(coeffs_off + coeffs.size() * sizeof(double));
  const std::size_t total = lanes_off + lanes.size() * sizeof(double);

  std::vector<char> buffer(total, '\0');
  std::memcpy(buffer.data() + kOffMagic, kMagic, sizeof(kMagic));
  put(buffer, kOffVersion, kPlanStoreFormatVersion);
  put(buffer, kOffN, n);
  put(buffer, kOffPieceCount, static_cast<std::uint64_t>(pieces.size()));
  put(buffer, kOffCoeffTotal, static_cast<std::uint64_t>(coeffs.size()));
  put(buffer, kOffTLen, static_cast<std::uint64_t>(t_text.size()));
  put(buffer, kOffCertLen, static_cast<std::uint64_t>(cert_blob.size()));
  put(buffer, kOffMaxError, plan.max_error_bound());
  put(buffer, kOffTolerance, tolerance);
  put(buffer, kOffPayloadBytes, static_cast<std::uint64_t>(total - kHeaderSize));

  std::memcpy(buffer.data() + kHeaderSize, t_text.data(), t_text.size());
  std::memcpy(buffer.data() + kHeaderSize + t_text.size(), cert_blob.data(), cert_blob.size());
  std::memcpy(buffer.data() + breaks_off, breaks.data(), breaks.size() * sizeof(double));
  for (std::size_t p = 0; p < pieces.size(); ++p) {
    const std::size_t off = pieces_off + p * kPieceRecordSize;
    put(buffer, off, pieces[p].lo);
    put(buffer, off + 8, pieces[p].hi);
    put(buffer, off + 16, static_cast<std::uint64_t>(pieces[p].coeff_begin));
    put(buffer, off + 24, static_cast<std::uint64_t>(pieces[p].coeff_count));
    put(buffer, off + 32, pieces[p].error_bound);
  }
  std::memcpy(buffer.data() + coeffs_off, coeffs.data(), coeffs.size() * sizeof(double));
  std::memcpy(buffer.data() + lanes_off, lanes.data(), lanes.size() * sizeof(double));

  put(buffer, kOffPayloadChecksum,
      plan_store_checksum(buffer.data() + kHeaderSize, total - kHeaderSize));
  put(buffer, kOffHeaderChecksum, plan_store_checksum(buffer.data(), kOffHeaderChecksum));

  // Atomic publish: a crashed save leaves at worst a stale .tmp, never a
  // half-written .plan a reader could map.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    out.flush();
    if (!out) {
      throw PlanStoreError("cannot write temporary file '" + tmp + "'", n, t_text, path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw PlanStoreError("cannot rename '" + tmp + "' into place", n, t_text, path);
  }
  if (obs::metrics_enabled()) StoreMetrics::get().saves.add();
}

namespace {

// Shared validate-on-load core. `expected_t` empty means "take the identity
// from the file" (the plans validate/list path).
LoadedPlan load_and_validate(const std::string& path, std::uint32_t expected_n,
                             const std::string& expected_t) {
  std::uint32_t n = expected_n;
  std::string t = expected_t.empty() ? "?" : expected_t;
  const auto reject = [&](const std::string& reason, bool stale = false) -> void {
    throw PlanStoreError(reason, n, t, path, stale);
  };

  const std::shared_ptr<FileBytes> bytes = read_file(path, n, t);
  const char* data = bytes->data;
  if (bytes->size < kHeaderSize) reject("truncated file (shorter than the header)");
  if (std::memcmp(data + kOffMagic, kMagic, sizeof(kMagic)) != 0) {
    reject("bad magic (not a ddm plan file)");
  }
  // Version precedes the checksum check on purpose: a future format is
  // allowed to relayout the header, so all we can trust about it is the
  // magic + version prefix — and the caller needs stale vs corrupt anyway.
  const auto version = get<std::uint32_t>(data, kOffVersion);
  if (version != kPlanStoreFormatVersion) {
    reject("stale format version " + std::to_string(version) + " (current " +
               std::to_string(kPlanStoreFormatVersion) + ")",
           /*stale=*/true);
  }
  if (get<std::uint64_t>(data, kOffHeaderChecksum) !=
      plan_store_checksum(data, kOffHeaderChecksum)) {
    reject("header checksum mismatch");
  }

  const auto file_n = get<std::uint32_t>(data, kOffN);
  const auto piece_count = get<std::uint64_t>(data, kOffPieceCount);
  const auto coeff_total = get<std::uint64_t>(data, kOffCoeffTotal);
  const auto t_len = get<std::uint64_t>(data, kOffTLen);
  const auto cert_len = get<std::uint64_t>(data, kOffCertLen);
  const double max_error = get<double>(data, kOffMaxError);
  const double tolerance = get<double>(data, kOffTolerance);
  const auto payload_bytes = get<std::uint64_t>(data, kOffPayloadBytes);

  // Size sanity BEFORE any offset arithmetic: all section sizes must be
  // consistent with the actual byte count, so a truncated payload can never
  // send a reader past the end of the mapping.
  constexpr std::uint64_t kSaneLimit = 1ULL << 40;
  if (piece_count == 0 || piece_count > kSaneLimit || coeff_total > kSaneLimit ||
      t_len > kSaneLimit || cert_len > kSaneLimit) {
    reject("implausible section sizes (corrupt header)");
  }
  if (expected_t.empty() && t_len > 0 && bytes->size >= kHeaderSize + t_len) {
    n = file_n;
    t.assign(data + kHeaderSize, static_cast<std::size_t>(t_len));
  }
  const std::size_t breaks_off =
      align_up(kHeaderSize + static_cast<std::size_t>(t_len) + static_cast<std::size_t>(cert_len));
  const std::size_t pieces_off = breaks_off + (piece_count + 1) * sizeof(double);
  const std::size_t coeffs_off = align_up(pieces_off + piece_count * kPieceRecordSize);
  const std::size_t lanes_off = align_up(coeffs_off + coeff_total * sizeof(double));
  const std::size_t total = lanes_off + coeff_total * util::simd::kCoeffLanes * sizeof(double);
  if (kHeaderSize + payload_bytes != total) {
    reject("payload size field disagrees with the section layout");
  }
  if (bytes->size < total) reject("truncated file (payload cut short)");
  if (bytes->size != total) reject("trailing bytes after the payload");
  if (get<std::uint64_t>(data, kOffPayloadChecksum) !=
      plan_store_checksum(data + kHeaderSize, total - kHeaderSize)) {
    reject("payload checksum mismatch (corrupt plan data)");
  }

  const std::string file_t(data + kHeaderSize, static_cast<std::size_t>(t_len));
  if (expected_t.empty()) {
    n = file_n;
    t = file_t;
  } else if (file_n != expected_n || file_t != expected_t) {
    reject("file names a different plan (n=" + std::to_string(file_n) + ", t=" + file_t + ")");
  }

  // Certificate blob: exactly piece_count newline-terminated rational lines.
  std::vector<std::string> certs;
  certs.reserve(piece_count);
  {
    const char* cert_begin = data + kHeaderSize + t_len;
    std::size_t pos = 0;
    while (pos < cert_len) {
      const char* nl = static_cast<const char*>(
          std::memchr(cert_begin + pos, '\n', static_cast<std::size_t>(cert_len - pos)));
      if (nl == nullptr) break;
      certs.emplace_back(cert_begin + pos, nl);
      pos = static_cast<std::size_t>(nl - cert_begin) + 1;
    }
    if (pos != cert_len || certs.size() != piece_count) {
      reject("certificate blob does not hold one line per piece");
    }
  }

  CompiledPiecewise::StoredParts parts;
  parts.breaks.resize(piece_count + 1);
  std::memcpy(parts.breaks.data(), data + breaks_off, parts.breaks.size() * sizeof(double));
  parts.pieces.resize(piece_count);
  for (std::size_t p = 0; p < piece_count; ++p) {
    const std::size_t off = pieces_off + p * kPieceRecordSize;
    parts.pieces[p].lo = get<double>(data, off);
    parts.pieces[p].hi = get<double>(data, off + 8);
    parts.pieces[p].coeff_begin = static_cast<std::size_t>(get<std::uint64_t>(data, off + 16));
    parts.pieces[p].coeff_count = static_cast<std::size_t>(get<std::uint64_t>(data, off + 24));
    parts.pieces[p].error_bound = get<double>(data, off + 32);
  }

  // The certificate chain: every stored double bound must be EXACTLY the
  // directed round-up of its stored exact rational bound, the header
  // max_error their maximum, and the maximum must still clear the recorded
  // tolerance. This is what "never serve a wrong plan" means: a bound edited
  // after the fact (or a tolerance the plan no longer meets) is caught even
  // when the checksums are internally consistent.
  double recomputed_max = 0.0;
  for (std::size_t p = 0; p < piece_count; ++p) {
    util::Rational cert;
    try {
      cert = util::Rational::parse(certs[p]);
    } catch (const std::exception&) {
      reject("piece " + std::to_string(p) + " carries an unparseable certificate");
    }
    if (cert.signum() < 0) reject("piece " + std::to_string(p) + " has a negative certificate");
    if (certificate_round_up(cert) != parts.pieces[p].error_bound) {
      reject("piece " + std::to_string(p) +
             " certificate does not reproduce the stored error bound");
    }
    recomputed_max = std::max(recomputed_max, parts.pieces[p].error_bound);
  }
  if (recomputed_max != max_error) {
    reject("header max_error disagrees with the per-piece bounds");
  }
  if (!(max_error <= tolerance)) {
    reject("certificate " + std::to_string(max_error) +
           " no longer clears the stored tolerance " + std::to_string(tolerance));
  }

  parts.piece_certs = std::move(certs);
  parts.coeffs = reinterpret_cast<const double*>(data + coeffs_off);
  parts.lane_coeffs = reinterpret_cast<const double*>(data + lanes_off);
  parts.coeff_total = static_cast<std::size_t>(coeff_total);
  parts.max_error = max_error;
  parts.storage = bytes;
  LoadedPlan loaded;
  loaded.n = n;
  loaded.t = t;
  loaded.tolerance = tolerance;
  try {
    loaded.plan =
        std::make_shared<const CompiledPiecewise>(CompiledPiecewise::from_stored(std::move(parts)));
  } catch (const std::invalid_argument& error) {
    reject(error.what());
  }
  if (obs::metrics_enabled()) StoreMetrics::get().loads.add();
  return loaded;
}

}  // namespace

std::shared_ptr<const CompiledPiecewise> PlanStore::load(std::uint32_t n,
                                                         const util::Rational& t) const {
  const std::string path = path_for(n, t);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return nullptr;
  DDM_SPAN("plan_store.load", {{"n", static_cast<std::int64_t>(n)}});
  return load_and_validate(path, n, t.to_string()).plan;
}

LoadedPlan PlanStore::load_path(const std::string& path) const {
  return load_and_validate(path, 0, std::string());
}

std::vector<std::string> PlanStore::list_paths() const {
  std::vector<std::string> paths;
  std::error_code ec;
  std::filesystem::directory_iterator it(directory_, ec);
  if (ec) return paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".plan") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::shared_ptr<PlanStore> PlanStore::configured() {
  std::lock_guard<std::mutex> lock(g_configured_mutex);
  if (!g_configured_resolved) {
    g_configured_resolved = true;
    if (const char* dir = std::getenv("DDM_PLAN_STORE")) {
      if (*dir != '\0') g_configured = open_directory(dir, "DDM_PLAN_STORE");
    }
  }
  return g_configured;
}

void PlanStore::set_configured(std::shared_ptr<PlanStore> store) {
  std::lock_guard<std::mutex> lock(g_configured_mutex);
  g_configured = std::move(store);
  g_configured_resolved = true;
}

}  // namespace ddm::poly
