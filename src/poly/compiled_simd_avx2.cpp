// compiled_simd_avx2.cpp — the 4-wide AVX2 instantiation of the vector
// Horner run. Compiled with -mavx2 -ffp-contract=off (src/CMakeLists.txt);
// contract-off keeps `r = r * x + c` two rounded ops per lane, preserving
// the bitwise identity with scalar Horner and the γ_{2d} certificate term.
#include "poly/compiled_detail.hpp"

namespace ddm::poly::detail {

void horner_run_avx2(const double* rows, std::size_t coeff_count, const double* xs,
                     double* out, std::size_t n) {
  horner_run_pack<util::simd::Pack<4>>(rows, coeff_count, xs, out, n);
}

}  // namespace ddm::poly::detail
