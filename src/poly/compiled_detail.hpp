// compiled_detail.hpp — internal detail header for CompiledPiecewise's
// vector Horner runs (poly/compiled.cpp), shared with the SIMD-specialized
// translation units (compiled_simd_avx2.cpp / compiled_simd_avx512.cpp).
//
// `rows` is the plan's replicated-coefficient layout: coefficient i of the
// piece lives at rows[i · util::simd::kCoeffLanes], replicated across all
// kCoeffLanes slots, so a W-wide unaligned load from the row start yields
// the broadcast [c_i, …, c_i] without a gather or a per-iteration broadcast
// shuffle. Lanes run ACROSS GRID POINTS of one piece-run: lane l executes
// `r = r * x_l + c_i` in exactly the scalar Horner order (no FMA — the wide
// TUs compile with -ffp-contract=off), so every output is bitwise identical
// to CompiledPiecewise::eval and the certificate's γ_{2d} Horner-roundoff
// term covers the vector evaluation order verbatim (docs/performance.md §4).
// The n % W trailing points run the pinned scalar tail loop.
//
// Anonymous namespace for the same reason as core/batch_walk.hpp: each
// differently-flagged translation unit must keep its own internal-linkage
// instantiations, or the linker could leak AVX code into the scalar path.
#pragma once

#include <cstddef>

#include "util/simd.hpp"

namespace ddm::poly::detail {

#if defined(DDM_SIMD_COMPILED_AVX2)
/// horner_run_pack<Pack<4>>, instantiated in compiled_simd_avx2.cpp
/// (compiled with -mavx2 -ffp-contract=off). Call only when
/// util::simd::dispatch_width() says the host executes AVX2.
void horner_run_avx2(const double* rows, std::size_t coeff_count, const double* xs,
                     double* out, std::size_t n);
#endif
#if defined(DDM_SIMD_COMPILED_AVX512)
/// horner_run_pack<Pack<8>>, instantiated in compiled_simd_avx512.cpp
/// (compiled with -mavx512f -ffp-contract=off).
void horner_run_avx512(const double* rows, std::size_t coeff_count, const double* xs,
                       double* out, std::size_t n);
#endif

namespace {

/// Horner-evaluates one piece's replicated coefficient rows at the `n`
/// points `xs`, W lanes at a time, writing out[p] bitwise equal to the
/// scalar horner(coeffs, x) of poly/compiled.cpp.
template <class P>
void horner_run_pack(const double* rows, std::size_t coeff_count, const double* xs,
                     double* out, std::size_t n) {
  constexpr std::size_t W = P::width;
  const std::size_t vec = n - n % W;
  for (std::size_t p = 0; p < vec; p += W) {
    const P x = P::load(xs + p);
    P r = P::broadcast(0.0);
    for (std::size_t i = coeff_count; i-- > 0;) {
      r = r * x + P::load(rows + i * util::simd::kCoeffLanes);
    }
    r.store(out + p);
  }
  for (std::size_t p = vec; p < n; ++p) {
    const double x = xs[p];
    double r = 0.0;
    for (std::size_t i = coeff_count; i-- > 0;) {
      r = r * x + rows[i * util::simd::kCoeffLanes];
    }
    out[p] = r;
  }
}

}  // namespace

}  // namespace ddm::poly::detail
