#include "poly/sturm.hpp"

#include <stdexcept>

namespace ddm::poly {

namespace {

// Count sign changes in a sequence of signs (-1, 0, +1), skipping zeros.
int count_changes(const std::vector<int>& signs) {
  int changes = 0;
  int previous = 0;
  for (const int s : signs) {
    if (s == 0) continue;
    if (previous != 0 && s != previous) ++changes;
    previous = s;
  }
  return changes;
}

}  // namespace

SturmSequence::SturmSequence(QPoly p) {
  if (p.is_zero()) {
    chain_.push_back(std::move(p));
    return;
  }
  chain_.push_back(p);
  QPoly d = p.derivative();
  if (d.is_zero()) return;  // constant polynomial
  chain_.push_back(std::move(d));
  while (true) {
    const QPoly& a = chain_[chain_.size() - 2];
    const QPoly& b = chain_.back();
    QPoly r = QPoly::div_mod(a, b).second;
    if (r.is_zero()) break;
    chain_.push_back(-r);
  }
}

int SturmSequence::sign_changes_at(const util::Rational& x) const {
  std::vector<int> signs;
  signs.reserve(chain_.size());
  for (const QPoly& p : chain_) signs.push_back(p.is_zero() ? 0 : p(x).signum());
  return count_changes(signs);
}

int SturmSequence::sign_changes_at_negative_infinity() const {
  std::vector<int> signs;
  signs.reserve(chain_.size());
  for (const QPoly& p : chain_) {
    if (p.is_zero()) {
      signs.push_back(0);
      continue;
    }
    const int lead = p.leading_coefficient().signum();
    signs.push_back(p.degree() % 2 == 0 ? lead : -lead);
  }
  return count_changes(signs);
}

int SturmSequence::sign_changes_at_positive_infinity() const {
  std::vector<int> signs;
  signs.reserve(chain_.size());
  for (const QPoly& p : chain_) {
    signs.push_back(p.is_zero() ? 0 : p.leading_coefficient().signum());
  }
  return count_changes(signs);
}

int SturmSequence::count_roots(const util::Rational& a, const util::Rational& b) const {
  if (a > b) throw std::invalid_argument("SturmSequence::count_roots: requires a <= b");
  return sign_changes_at(a) - sign_changes_at(b);
}

int SturmSequence::count_all_roots() const {
  return sign_changes_at_negative_infinity() - sign_changes_at_positive_infinity();
}

util::Rational cauchy_root_bound(const QPoly& p) {
  if (p.is_zero()) throw std::invalid_argument("cauchy_root_bound: zero polynomial");
  const util::Rational lead = p.leading_coefficient().abs();
  util::Rational max_ratio{0};
  for (int i = 0; i < p.degree(); ++i) {
    const util::Rational ratio = p.coefficient(static_cast<std::size_t>(i)).abs() / lead;
    if (ratio > max_ratio) max_ratio = ratio;
  }
  return util::Rational{1} + max_ratio;
}

}  // namespace ddm::poly
