// compiled_simd_avx512.cpp — the 8-wide AVX-512F instantiation of the
// vector Horner run. Compiled with -mavx512f -ffp-contract=off; see
// compiled_simd_avx2.cpp for why contract-off is load-bearing.
#include "poly/compiled_detail.hpp"

namespace ddm::poly::detail {

void horner_run_avx512(const double* rows, std::size_t coeff_count, const double* xs,
                       double* out, std::size_t n) {
  horner_run_pack<util::simd::Pack<8>>(rows, coeff_count, xs, out, n);
}

}  // namespace ddm::poly::detail
