#include "poly/interpolate.hpp"

#include <stdexcept>

namespace ddm::poly {

using util::Rational;

QPoly lagrange_interpolate(std::span<const std::pair<Rational, Rational>> points) {
  if (points.empty()) throw std::invalid_argument("lagrange_interpolate: no points");
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (points[i].first == points[j].first) {
        throw std::invalid_argument("lagrange_interpolate: duplicate x values");
      }
    }
  }
  QPoly result;
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Basis polynomial L_i(x) = Π_{j≠i} (x − x_j)/(x_i − x_j), scaled by y_i.
    QPoly basis{points[i].second};
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      const Rational denominator = points[i].first - points[j].first;
      basis = basis * QPoly{std::vector<Rational>{-points[j].first / denominator,
                                                  Rational{1} / denominator}};
    }
    result += basis;
  }
  return result;
}

}  // namespace ddm::poly
