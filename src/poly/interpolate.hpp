// interpolate.hpp — exact Lagrange interpolation over the rationals.
//
// Validation tool: the winning probability P(β) of Theorem 5.1 restricted to
// one breakpoint interval is a degree-≤n polynomial, so sampling the
// *numeric* evaluator at n+1 rational points inside the interval and
// interpolating must reproduce the *symbolic* piece coefficient-by-
// coefficient. This gives a derivation-independent check of the whole
// Section 5.2 pipeline (used in tests), and is generally useful for
// reconstructing any exact polynomial from point evaluations.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "poly/polynomial.hpp"
#include "util/rational.hpp"

namespace ddm::poly {

/// Exact Lagrange interpolation through the given (x, y) points. The x
/// values must be pairwise distinct (throws std::invalid_argument). The
/// result has degree < points.size() and passes through every point exactly.
[[nodiscard]] QPoly lagrange_interpolate(
    std::span<const std::pair<util::Rational, util::Rational>> points);

/// Convenience: interpolate a callable f at `count` equally spaced rational
/// nodes inside [lo, hi] (endpoints excluded to stay inside an open piece).
template <typename F>
[[nodiscard]] QPoly interpolate_on(const util::Rational& lo, const util::Rational& hi,
                                   std::size_t count, F&& f) {
  std::vector<std::pair<util::Rational, util::Rational>> points;
  points.reserve(count);
  const util::Rational width = hi - lo;
  for (std::size_t i = 1; i <= count; ++i) {
    const util::Rational x =
        lo + width * util::Rational{static_cast<std::int64_t>(i),
                                    static_cast<std::int64_t>(count + 1)};
    points.emplace_back(x, f(x));
  }
  return lagrange_interpolate(points);
}

}  // namespace ddm::poly
