// multilinear.hpp — exact multilinear polynomials in several variables.
//
// Theorem 4.1 expresses the oblivious winning probability as a MULTILINEAR
// form in the probability vector α:
//   P_A(t) = Σ_{b} φ_t(|b|) Π_i α_i^{(b_i)}  =  Σ_{S ⊆ [n]} c_S Π_{i∈S} α_i,
// and Corollary 4.2's optimality conditions are its partial derivatives.
// This module makes that object first-class: exact coefficients on the
// subset basis, evaluation, symbolic partial derivatives, and variable
// substitution. Multilinearity is preserved by construction — products are
// only defined for factors with disjoint variable supports (which is all the
// paper's formulas need, since each player's factor involves only α_i).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "util/rational.hpp"

namespace ddm::poly {

/// Exact multilinear polynomial over at most 20 variables, stored as a map
/// from variable-subset masks to rational coefficients.
class MultilinearPolynomial {
 public:
  /// The zero polynomial in `variables` variables (throws for > 20).
  explicit MultilinearPolynomial(std::size_t variables);

  /// Constant c.
  [[nodiscard]] static MultilinearPolynomial constant(std::size_t variables,
                                                      util::Rational c);
  /// The variable α_i.
  [[nodiscard]] static MultilinearPolynomial variable(std::size_t variables, std::size_t i);
  /// 1 − α_i.
  [[nodiscard]] static MultilinearPolynomial one_minus_variable(std::size_t variables,
                                                                std::size_t i);

  [[nodiscard]] std::size_t variables() const noexcept { return variables_; }
  /// Coefficient of Π_{i∈mask} α_i (zero if absent).
  [[nodiscard]] util::Rational coefficient(std::uint32_t mask) const;
  /// Number of nonzero terms.
  [[nodiscard]] std::size_t term_count() const noexcept { return terms_.size(); }
  [[nodiscard]] bool is_zero() const noexcept { return terms_.empty(); }
  /// Union of the variable supports of all nonzero terms.
  [[nodiscard]] std::uint32_t support() const noexcept;

  MultilinearPolynomial& operator+=(const MultilinearPolynomial& rhs);
  MultilinearPolynomial& operator-=(const MultilinearPolynomial& rhs);
  MultilinearPolynomial& operator*=(const util::Rational& scalar);
  friend MultilinearPolynomial operator+(MultilinearPolynomial lhs,
                                         const MultilinearPolynomial& rhs) {
    return lhs += rhs;
  }
  friend MultilinearPolynomial operator-(MultilinearPolynomial lhs,
                                         const MultilinearPolynomial& rhs) {
    return lhs -= rhs;
  }
  friend MultilinearPolynomial operator*(MultilinearPolynomial lhs,
                                         const util::Rational& scalar) {
    return lhs *= scalar;
  }

  /// Product, defined only when the supports are disjoint (preserves
  /// multilinearity); throws std::domain_error otherwise.
  [[nodiscard]] MultilinearPolynomial disjoint_product(
      const MultilinearPolynomial& rhs) const;

  /// Exact evaluation at a point (size must match; throws otherwise).
  [[nodiscard]] util::Rational operator()(std::span<const util::Rational> point) const;

  /// ∂/∂α_i — for a multilinear P = A + α_i B this is B.
  [[nodiscard]] MultilinearPolynomial partial_derivative(std::size_t i) const;

  /// Substitute α_i = value, producing a polynomial that no longer involves
  /// variable i (the variable count is unchanged).
  [[nodiscard]] MultilinearPolynomial substitute(std::size_t i,
                                                 const util::Rational& value) const;

  /// Human-readable form, e.g. "1/6 + 1/3*a0*a1 - a2".
  [[nodiscard]] std::string to_string(const std::string& var_prefix = "a") const;

  friend bool operator==(const MultilinearPolynomial& a,
                         const MultilinearPolynomial& b) = default;

 private:
  void set(std::uint32_t mask, util::Rational value);

  std::size_t variables_;
  std::map<std::uint32_t, util::Rational> terms_;  // mask → nonzero coefficient
};

}  // namespace ddm::poly
