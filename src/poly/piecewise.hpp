// piecewise.hpp — piecewise polynomials over the rationals with exact
// global maximization.
//
// The winning probability P(β) of the symmetric single-threshold protocol is
// a piecewise polynomial in the common threshold β: each indicator condition
// in Theorem 5.1 (e.g. "t − lβ > 0") toggles at a rational breakpoint, and
// between consecutive breakpoints P is a single polynomial. Section 5.2
// derives those pieces by hand for n = 3 and n = 4; this class holds them in
// exact form and finds the global maximum certifiably: the optimum is either
// a breakpoint or an isolated root of a piece's derivative.
#pragma once

#include <vector>

#include "poly/polynomial.hpp"
#include "poly/roots.hpp"
#include "util/interval.hpp"
#include "util/rational.hpp"

namespace ddm::poly {

/// A polynomial valid on the closed interval [lo, hi].
struct Piece {
  util::Rational lo;
  util::Rational hi;
  QPoly poly;
};

/// Location and value of a maximum candidate.
struct MaxCandidate {
  /// Isolating interval for the maximizing point (exact when lo == hi,
  /// e.g. at breakpoints).
  RootInterval location;
  /// Value of the piece polynomial at location.midpoint() — exact there, and
  /// within Lipschitz(piece) * location.width() of the value at the true
  /// critical point.
  util::Rational value;
  /// Index of the piece the candidate lives on.
  std::size_t piece_index = 0;
  /// True when the candidate is an interior critical point (root of the
  /// derivative), false for an interval endpoint.
  bool interior_critical = false;
  /// Certified enclosure of the piece value over `location` (interval
  /// Horner); for endpoint candidates this is the exact point value.
  util::RationalInterval value_bounds{util::Rational{0}};
  /// True when interval refinement PROVED this candidate is the global
  /// maximum (its value enclosure separates from, or exactly ties, every
  /// other candidate's). maximize() leaves this false only if the round
  /// limit was reached before separation — e.g. two genuinely equal interior
  /// maxima at distinct algebraic points.
  bool certified = false;
};

/// Piecewise polynomial on a closed interval, pieces meeting at breakpoints.
class PiecewisePolynomial {
 public:
  /// Pieces must be non-empty, contiguous (piece[i].hi == piece[i+1].lo) and
  /// increasing; throws std::invalid_argument otherwise. Pieces are expected
  /// to agree at shared breakpoints if the function is continuous; that is
  /// validated by `is_continuous()` rather than enforced here.
  explicit PiecewisePolynomial(std::vector<Piece> pieces);

  [[nodiscard]] const std::vector<Piece>& pieces() const noexcept { return pieces_; }
  [[nodiscard]] const util::Rational& domain_lo() const noexcept { return pieces_.front().lo; }
  [[nodiscard]] const util::Rational& domain_hi() const noexcept { return pieces_.back().hi; }

  /// Exact evaluation; throws std::out_of_range outside the domain.
  /// At a shared breakpoint, the left piece wins (they agree if continuous).
  [[nodiscard]] util::Rational operator()(const util::Rational& x) const;
  /// Fast double evaluation (same piece-selection rule).
  [[nodiscard]] double eval_double(double x) const;

  /// True iff adjacent pieces agree exactly at every shared breakpoint.
  [[nodiscard]] bool is_continuous() const;

  /// Piecewise formal derivative (same breakpoints).
  [[nodiscard]] PiecewisePolynomial derivative() const;

  /// Exact integral over [a, b] ⊆ domain (throws std::out_of_range
  /// otherwise; a <= b required).
  [[nodiscard]] util::Rational integral(const util::Rational& a,
                                        const util::Rational& b) const;

  /// Global maximum over the full domain, CERTIFIED by interval arithmetic:
  /// interior critical points are isolated with Sturm sequences, refined to
  /// `refine_width`, then candidates' value enclosures (interval Horner over
  /// the isolating intervals) are separated by further bisection until one
  /// candidate provably dominates (or exactly ties) all others — see
  /// MaxCandidate::certified. Returns the best candidate; `all_candidates`
  /// (when non-null) receives every candidate examined, sorted by location.
  [[nodiscard]] MaxCandidate maximize(
      const util::Rational& refine_width = util::Rational{util::BigInt{1},
                                                          util::BigInt::pow(util::BigInt{2}, 96)},
      std::vector<MaxCandidate>* all_candidates = nullptr) const;

 private:
  std::vector<Piece> pieces_;
};

}  // namespace ddm::poly
