// polynomial.hpp — dense univariate polynomials over a field.
//
// The optimality analysis of Sections 4 and 5 reduces to univariate
// polynomial algebra: the winning probability of a symmetric single-threshold
// protocol is a piecewise polynomial in the common threshold β, its critical
// points are roots of the derivative, and the paper's optimality conditions
// (e.g. β² − 2β + 6/7 = 0 for n = 3, t = 1) are exactly those derivatives.
// We instantiate the template with util::Rational for exact derivations and
// with double for fast plotting sweeps.
//
// Coefficients are stored low-degree first; the zero polynomial has an empty
// coefficient vector and degree() == -1.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/interval.hpp"
#include "util/rational.hpp"

namespace ddm::poly {

/// Dense univariate polynomial over field F (needs +, -, *, /, ==, F{0}, F{1}).
template <typename F>
class Polynomial {
 public:
  /// Zero polynomial.
  Polynomial() = default;
  /// Constant polynomial.
  explicit Polynomial(F constant) {
    coeffs_.push_back(std::move(constant));
    trim();
  }
  /// From coefficients, low-degree first.
  explicit Polynomial(std::vector<F> coefficients) : coeffs_(std::move(coefficients)) { trim(); }

  /// The monomial x.
  [[nodiscard]] static Polynomial x() { return Polynomial{std::vector<F>{F{}, F{1}}}; }
  /// The monomial c * x^k.
  [[nodiscard]] static Polynomial monomial(F coefficient, std::size_t k) {
    std::vector<F> coeffs(k + 1, F{});
    coeffs[k] = std::move(coefficient);
    return Polynomial{std::move(coeffs)};
  }

  /// Degree; -1 for the zero polynomial.
  [[nodiscard]] int degree() const noexcept { return static_cast<int>(coeffs_.size()) - 1; }
  [[nodiscard]] bool is_zero() const noexcept { return coeffs_.empty(); }
  /// Coefficient of x^k (F{} beyond the degree).
  [[nodiscard]] F coefficient(std::size_t k) const {
    return k < coeffs_.size() ? coeffs_[k] : F{};
  }
  [[nodiscard]] const std::vector<F>& coefficients() const noexcept { return coeffs_; }
  /// Leading coefficient; throws std::logic_error on the zero polynomial.
  [[nodiscard]] const F& leading_coefficient() const {
    if (is_zero()) throw std::logic_error("Polynomial: zero polynomial has no leading coefficient");
    return coeffs_.back();
  }

  /// Horner evaluation.
  [[nodiscard]] F operator()(const F& x) const {
    F result{};
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
      result = result * x + coeffs_[i];
    }
    return result;
  }

  Polynomial& operator+=(const Polynomial& rhs) {
    if (coeffs_.size() < rhs.coeffs_.size()) coeffs_.resize(rhs.coeffs_.size(), F{});
    for (std::size_t i = 0; i < rhs.coeffs_.size(); ++i) coeffs_[i] += rhs.coeffs_[i];
    trim();
    return *this;
  }
  Polynomial& operator-=(const Polynomial& rhs) {
    if (coeffs_.size() < rhs.coeffs_.size()) coeffs_.resize(rhs.coeffs_.size(), F{});
    for (std::size_t i = 0; i < rhs.coeffs_.size(); ++i) coeffs_[i] -= rhs.coeffs_[i];
    trim();
    return *this;
  }
  Polynomial& operator*=(const Polynomial& rhs) {
    *this = *this * rhs;
    return *this;
  }

  friend Polynomial operator+(Polynomial lhs, const Polynomial& rhs) { return lhs += rhs; }
  friend Polynomial operator-(Polynomial lhs, const Polynomial& rhs) { return lhs -= rhs; }
  friend Polynomial operator*(const Polynomial& lhs, const Polynomial& rhs) {
    if (lhs.is_zero() || rhs.is_zero()) return Polynomial{};
    std::vector<F> out(lhs.coeffs_.size() + rhs.coeffs_.size() - 1, F{});
    for (std::size_t i = 0; i < lhs.coeffs_.size(); ++i) {
      for (std::size_t j = 0; j < rhs.coeffs_.size(); ++j) {
        out[i + j] += lhs.coeffs_[i] * rhs.coeffs_[j];
      }
    }
    return Polynomial{std::move(out)};
  }

  [[nodiscard]] Polynomial operator-() const {
    Polynomial result = *this;
    for (F& c : result.coeffs_) c = -c;
    return result;
  }

  /// Scale by a field element.
  Polynomial& operator*=(const F& scalar) {
    for (F& c : coeffs_) c *= scalar;
    trim();
    return *this;
  }
  friend Polynomial operator*(Polynomial lhs, const F& scalar) { return lhs *= scalar; }
  friend Polynomial operator*(const F& scalar, Polynomial rhs) { return rhs *= scalar; }
  Polynomial& operator/=(const F& scalar) {
    for (F& c : coeffs_) c /= scalar;
    trim();
    return *this;
  }

  friend bool operator==(const Polynomial& a, const Polynomial& b) = default;

  /// Formal derivative.
  [[nodiscard]] Polynomial derivative() const {
    if (coeffs_.size() <= 1) return Polynomial{};
    std::vector<F> out(coeffs_.size() - 1);
    for (std::size_t i = 1; i < coeffs_.size(); ++i) {
      out[i - 1] = coeffs_[i] * F(static_cast<std::int64_t>(i));
    }
    return Polynomial{std::move(out)};
  }

  /// Antiderivative with zero constant term (exact over a field of
  /// characteristic zero).
  [[nodiscard]] Polynomial antiderivative() const {
    if (is_zero()) return Polynomial{};
    std::vector<F> out(coeffs_.size() + 1, F{});
    for (std::size_t i = 0; i < coeffs_.size(); ++i) {
      out[i + 1] = coeffs_[i] / F(static_cast<std::int64_t>(i + 1));
    }
    return Polynomial{std::move(out)};
  }

  /// Composition: this(inner(x)).
  [[nodiscard]] Polynomial compose(const Polynomial& inner) const {
    Polynomial result;
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
      result = result * inner + Polynomial{coeffs_[i]};
    }
    return result;
  }

  /// this^exponent by repeated squaring.
  [[nodiscard]] Polynomial pow(std::uint32_t exponent) const {
    Polynomial result{F{1}};
    Polynomial acc = *this;
    while (exponent != 0) {
      if (exponent & 1u) result = result * acc;
      exponent >>= 1u;
      if (exponent != 0) acc = acc * acc;
    }
    return result;
  }

  /// Euclidean division: returns {quotient, remainder} with
  /// deg(remainder) < deg(divisor). Throws std::domain_error if divisor is 0.
  [[nodiscard]] static std::pair<Polynomial, Polynomial> div_mod(Polynomial dividend,
                                                                 const Polynomial& divisor) {
    if (divisor.is_zero()) throw std::domain_error("Polynomial: division by zero polynomial");
    Polynomial quotient;
    const F& lead = divisor.leading_coefficient();
    while (!dividend.is_zero() && dividend.degree() >= divisor.degree()) {
      const std::size_t shift =
          static_cast<std::size_t>(dividend.degree() - divisor.degree());
      const F factor = dividend.leading_coefficient() / lead;
      quotient += monomial(factor, shift);
      dividend -= divisor * monomial(factor, shift);
    }
    return {std::move(quotient), std::move(dividend)};
  }

  /// Monic greatest common divisor (gcd of zero polynomials is zero).
  [[nodiscard]] static Polynomial gcd(Polynomial a, Polynomial b) {
    while (!b.is_zero()) {
      Polynomial r = div_mod(a, b).second;
      a = std::move(b);
      b = std::move(r);
    }
    if (!a.is_zero()) a /= a.leading_coefficient();
    return a;
  }

  /// Square-free part: this / gcd(this, this'). Root set is preserved,
  /// multiplicities collapse to one — the required input shape for Sturm
  /// root counting.
  [[nodiscard]] Polynomial square_free_part() const {
    if (is_zero() || degree() == 0) return *this;
    const Polynomial g = gcd(*this, derivative());
    if (g.degree() <= 0) return *this;
    return div_mod(*this, g).first;
  }

  /// Human-readable form, highest degree first, e.g. "7/2*x^3 - 21/2*x^2 + 9*x - 11/6".
  [[nodiscard]] std::string to_string(const std::string& var = "x") const;

 private:
  void trim() {
    while (!coeffs_.empty() && coeffs_.back() == F{}) coeffs_.pop_back();
  }

  std::vector<F> coeffs_;
};

using QPoly = Polynomial<util::Rational>;
using DPoly = Polynomial<double>;

/// Convert an exact polynomial to its double-precision shadow.
[[nodiscard]] DPoly to_double(const QPoly& p);

/// Expand (a + b*x)^k exactly — the building block of every inclusion-
/// exclusion term like (t - lβ)^m in Theorems 4.1/5.1.
[[nodiscard]] QPoly binomial_power(const util::Rational& a, const util::Rational& b,
                                   std::uint32_t k);

/// Interval extension of Horner evaluation: an enclosure of
/// { p(x) : x ∈ interval }, exact rational endpoints. (Horner's interval
/// form may overestimate, but never misses values — the basis for the
/// certified comparisons in PiecewisePolynomial::maximize.)
[[nodiscard]] util::RationalInterval evaluate_interval(const QPoly& p,
                                                       const util::RationalInterval& x);

extern template class Polynomial<util::Rational>;
extern template class Polynomial<double>;

}  // namespace ddm::poly
