#include "poly/piecewise.hpp"

#include <algorithm>
#include <stdexcept>

namespace ddm::poly {

using util::Rational;

PiecewisePolynomial::PiecewisePolynomial(std::vector<Piece> pieces) : pieces_(std::move(pieces)) {
  if (pieces_.empty()) throw std::invalid_argument("PiecewisePolynomial: no pieces");
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (pieces_[i].lo >= pieces_[i].hi) {
      throw std::invalid_argument("PiecewisePolynomial: empty or inverted piece interval");
    }
    if (i > 0 && pieces_[i].lo != pieces_[i - 1].hi) {
      throw std::invalid_argument("PiecewisePolynomial: pieces are not contiguous");
    }
  }
}

Rational PiecewisePolynomial::operator()(const Rational& x) const {
  if (x < domain_lo() || x > domain_hi()) {
    throw std::out_of_range("PiecewisePolynomial: point outside domain");
  }
  for (const Piece& piece : pieces_) {
    if (x <= piece.hi) return piece.poly(x);
  }
  return pieces_.back().poly(x);  // unreachable; keeps the compiler satisfied
}

double PiecewisePolynomial::eval_double(double x) const {
  // Double path mirrors the exact rule using double breakpoints.
  for (const Piece& piece : pieces_) {
    if (x <= piece.hi.to_double()) return to_double(piece.poly)(x);
  }
  return to_double(pieces_.back().poly)(x);
}

bool PiecewisePolynomial::is_continuous() const {
  for (std::size_t i = 1; i < pieces_.size(); ++i) {
    const Rational& boundary = pieces_[i].lo;
    if (pieces_[i - 1].poly(boundary) != pieces_[i].poly(boundary)) return false;
  }
  return true;
}

PiecewisePolynomial PiecewisePolynomial::derivative() const {
  std::vector<Piece> out;
  out.reserve(pieces_.size());
  for (const Piece& piece : pieces_) {
    out.push_back(Piece{piece.lo, piece.hi, piece.poly.derivative()});
  }
  return PiecewisePolynomial{std::move(out)};
}

Rational PiecewisePolynomial::integral(const Rational& a, const Rational& b) const {
  if (a > b) throw std::out_of_range("PiecewisePolynomial::integral: a > b");
  if (a < domain_lo() || b > domain_hi()) {
    throw std::out_of_range("PiecewisePolynomial::integral: range outside domain");
  }
  Rational total{0};
  for (const Piece& piece : pieces_) {
    const Rational lo = std::max(piece.lo, a);
    const Rational hi = std::min(piece.hi, b);
    if (lo >= hi) continue;
    const QPoly anti = piece.poly.antiderivative();
    total += anti(hi) - anti(lo);
  }
  return total;
}

MaxCandidate PiecewisePolynomial::maximize(const Rational& refine_width,
                                           std::vector<MaxCandidate>* all_candidates) const {
  using util::RationalInterval;

  std::vector<MaxCandidate> candidates;
  const auto refresh_bounds = [this](MaxCandidate& candidate) {
    const QPoly& poly = pieces_[candidate.piece_index].poly;
    if (candidate.location.is_exact()) {
      candidate.value = poly(candidate.location.lo);
      candidate.value_bounds = RationalInterval{candidate.value};
    } else {
      candidate.value = poly(candidate.location.midpoint());
      candidate.value_bounds =
          evaluate_interval(poly, RationalInterval{candidate.location.lo,
                                                   candidate.location.hi});
    }
  };

  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    const Piece& piece = pieces_[i];
    // Endpoints of the piece (the left endpoint of piece 0 plus every hi).
    if (i == 0) {
      candidates.push_back(
          MaxCandidate{RootInterval{piece.lo, piece.lo}, Rational{0}, i, false});
    }
    candidates.push_back(MaxCandidate{RootInterval{piece.hi, piece.hi}, Rational{0}, i, false});
    // Interior critical points: roots of the derivative strictly inside.
    const QPoly deriv = piece.poly.derivative();
    if (deriv.is_zero() || deriv.degree() < 1) continue;
    for (RootInterval root : isolate_roots(deriv, piece.lo, piece.hi)) {
      root = refine_root(deriv, root, refine_width);
      const Rational point = root.midpoint();
      if (point <= piece.lo || point >= piece.hi) continue;  // endpoint, already covered
      candidates.push_back(MaxCandidate{root, Rational{0}, i, true});
    }
  }
  for (MaxCandidate& candidate : candidates) refresh_bounds(candidate);

  // Certification loop: pick the champion by upper bound; any other candidate
  // whose enclosure reaches the champion's lower bound blocks the proof,
  // unless it is an exact tie of point values. Refine the blockers (and the
  // champion) and retry. Distinct algebraic values separate after finitely
  // many rounds; the cap only bites for genuinely tied interior maxima.
  std::size_t champion_index = 0;
  bool certified = false;
  constexpr int kMaxRounds = 128;
  for (int round = 0; round < kMaxRounds; ++round) {
    champion_index = 0;
    for (std::size_t c = 1; c < candidates.size(); ++c) {
      if (candidates[c].value_bounds.hi() > candidates[champion_index].value_bounds.hi()) {
        champion_index = c;
      }
    }
    const RationalInterval& champ = candidates[champion_index].value_bounds;
    std::vector<std::size_t> blockers;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (c == champion_index) continue;
      const RationalInterval& other = candidates[c].value_bounds;
      if (!other.overlaps(champ)) continue;
      if (other.is_point() && champ.is_point()) continue;  // exact tie is fine
      blockers.push_back(c);
    }
    if (blockers.empty()) {
      certified = true;
      break;
    }
    // Halve the isolating intervals of every refinable participant.
    bool refined_any = false;
    blockers.push_back(champion_index);
    for (const std::size_t c : blockers) {
      MaxCandidate& candidate = candidates[c];
      if (candidate.location.is_exact()) continue;
      const QPoly deriv = pieces_[candidate.piece_index].poly.derivative();
      candidate.location =
          refine_root(deriv, candidate.location, candidate.location.width() * Rational{1, 2});
      refresh_bounds(candidate);
      refined_any = true;
    }
    if (!refined_any) {
      // Only exact points remain and they tie with the champion: certified.
      certified = true;
      break;
    }
  }
  candidates[champion_index].certified = certified;

  MaxCandidate result = candidates[champion_index];
  if (all_candidates != nullptr) {
    std::sort(candidates.begin(), candidates.end(),
              [](const MaxCandidate& a, const MaxCandidate& b) {
                return a.location.midpoint() < b.location.midpoint();
              });
    *all_candidates = std::move(candidates);
  }
  return result;
}

}  // namespace ddm::poly
