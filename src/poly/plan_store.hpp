// plan_store.hpp — persistent, checksummed store of compiled Horner plans.
//
// Lowering the exact Theorem 5.1 piecewise polynomial to a compiled plan
// costs O(#breakpoints · n²) exact rational algebra per (n, t). The LRU plan
// cache (engine/plan_cache.hpp) amortizes that within one process; a fleet
// of ddm_serve daemons or sharded sweep workers still pays it once per
// PROCESS. The plan store makes compiled plans first-class on-disk
// artifacts: one versioned, checksummed file per (n, t) that carries the
// full plan — breakpoints, pieces, flat and lane-replicated coefficient
// arrays — TOGETHER with its exact rational max-error certificates, so a
// warm start can answer its first query without ever touching the lowering
// path (`ddm_cli plans precompile`, docs/performance.md).
//
// Trust model: a loaded plan is only served after validate-on-load passes —
// magic, format version, header and payload checksums, strictly increasing
// breakpoints, contiguous coefficient windows, and the certificate chain:
// for every piece, certificate_round_up(parse(rational cert)) must equal the
// stored double error bound, the stored max_error must be their maximum, and
// max_error must still clear the tolerance recorded at save time. Any
// violation raises ddm::PlanStoreError naming the offending (n, t); a wrong
// plan is never served. Version skew is the one soft failure
// (PlanStoreError::stale()): the cache counts it and re-lowers.
//
// File layout (native-endian, doubles at 64-byte-aligned offsets):
//   [header]   magic "DDMPLAN\n", u32 version, u32 n, u64 piece_count,
//              u64 coeff_total, u64 t_len, u64 cert_len, f64 max_error,
//              f64 tolerance, u64 payload_bytes, u64 payload_checksum,
//              u64 header_checksum            (FNV-1a 64 over the bytes
//              preceding each checksum field)
//   [payload]  t string · certificate lines ("a/b\n" per piece) · pad ·
//              breaks f64[piece_count+1] · piece table · pad ·
//              coeffs f64[coeff_total] · pad · lane_coeffs
// On POSIX the payload is memory-mapped read-only and the reconstituted
// CompiledPiecewise borrows the coefficient arrays straight from the mapping
// (CompiledPiecewise::from_stored keeps it alive); elsewhere the file is
// read into an owned buffer with identical semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "poly/compiled.hpp"
#include "util/rational.hpp"

namespace ddm::poly {

/// FNV-1a 64-bit over a byte range — the store's integrity checksum. Public
/// so corruption tests can forge a header/payload and confirm the *semantic*
/// validators (certificate chain, monotonicity, tolerance) catch what a
/// correct checksum no longer does.
[[nodiscard]] std::uint64_t plan_store_checksum(const void* data, std::size_t size) noexcept;

/// Current on-disk format version; files stamped with any other version are
/// rejected as stale (PlanStoreError::stale() == true).
inline constexpr std::uint32_t kPlanStoreFormatVersion = 1;

/// A fully validated plan loaded from the store.
struct LoadedPlan {
  std::uint32_t n = 0;
  std::string t;           ///< canonical "a/b" string
  double tolerance = 0.0;  ///< bound the plan cleared at save time
  std::shared_ptr<const CompiledPiecewise> plan;
};

/// Directory-backed plan store: one `n<k>_t<a>_<b>.plan` file per (n, t).
/// Stateless apart from the directory path; safe to share across threads.
class PlanStore {
 public:
  /// Wraps `directory` without touching the filesystem (load() simply finds
  /// no files under a directory that does not exist).
  explicit PlanStore(std::string directory);

  /// Opens an EXISTING directory for reading; throws ddm::Error naming
  /// `what` (e.g. "DDM_PLAN_STORE" or "--store") when it is absent or not a
  /// directory — a mistyped store path must fail loudly, not run cold.
  [[nodiscard]] static std::shared_ptr<PlanStore> open_directory(const std::string& directory,
                                                                 const std::string& what);

  /// Creates the directory (and parents) if needed and wraps it; throws
  /// ddm::Error on filesystem failure. The write-side entry point
  /// (`ddm_cli plans precompile`).
  [[nodiscard]] static std::shared_ptr<PlanStore> create_directory(const std::string& directory);

  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }

  /// The store file that does/would hold the plan for (n, t).
  [[nodiscard]] std::string path_for(std::uint32_t n, const util::Rational& t) const;

  /// Loads and validates the plan for (n, t). Returns nullptr when the store
  /// has no file for the pair; throws ddm::PlanStoreError when a file exists
  /// but fails validate-on-load (never serves an unvalidated plan).
  [[nodiscard]] std::shared_ptr<const CompiledPiecewise> load(std::uint32_t n,
                                                              const util::Rational& t) const;

  /// Loads and validates an arbitrary store file (the `plans validate` /
  /// `plans list` path). Throws ddm::PlanStoreError on any failure.
  [[nodiscard]] LoadedPlan load_path(const std::string& path) const;

  /// Serializes the plan for (n, t) atomically (temp file + rename), with
  /// `tolerance` recorded as the bound the plan clears. Throws
  /// ddm::PlanStoreError when plan.max_error_bound() > tolerance (a plan
  /// that cannot honor its own advertisement is refused) or on I/O failure.
  void save(std::uint32_t n, const util::Rational& t, const CompiledPiecewise& plan,
            double tolerance) const;

  /// Every `*.plan` path under the directory, sorted (empty when the
  /// directory does not exist).
  [[nodiscard]] std::vector<std::string> list_paths() const;

  /// The process-wide store consulted by PlanCache::get_or_lower, lazily
  /// initialized from DDM_PLAN_STORE on first call (throws ddm::Error naming
  /// the variable when it points at a missing directory). nullptr when
  /// unconfigured.
  [[nodiscard]] static std::shared_ptr<PlanStore> configured();

  /// Overrides the process-wide store (tests, ddm_serve --plan-store).
  /// nullptr disables store consultation.
  static void set_configured(std::shared_ptr<PlanStore> store);

 private:
  std::string directory_;
};

}  // namespace ddm::poly
