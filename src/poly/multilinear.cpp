#include "poly/multilinear.hpp"

#include <sstream>
#include <stdexcept>

namespace ddm::poly {

using util::Rational;

MultilinearPolynomial::MultilinearPolynomial(std::size_t variables) : variables_(variables) {
  if (variables > 20) {
    throw std::invalid_argument("MultilinearPolynomial: too many variables (> 20)");
  }
}

MultilinearPolynomial MultilinearPolynomial::constant(std::size_t variables, Rational c) {
  MultilinearPolynomial result{variables};
  result.set(0, std::move(c));
  return result;
}

MultilinearPolynomial MultilinearPolynomial::variable(std::size_t variables, std::size_t i) {
  if (i >= variables) throw std::out_of_range("MultilinearPolynomial::variable: bad index");
  MultilinearPolynomial result{variables};
  result.set(std::uint32_t{1} << i, Rational{1});
  return result;
}

MultilinearPolynomial MultilinearPolynomial::one_minus_variable(std::size_t variables,
                                                                std::size_t i) {
  if (i >= variables) {
    throw std::out_of_range("MultilinearPolynomial::one_minus_variable: bad index");
  }
  MultilinearPolynomial result{variables};
  result.set(0, Rational{1});
  result.set(std::uint32_t{1} << i, Rational{-1});
  return result;
}

void MultilinearPolynomial::set(std::uint32_t mask, Rational value) {
  if (value.is_zero()) {
    terms_.erase(mask);
  } else {
    terms_[mask] = std::move(value);
  }
}

Rational MultilinearPolynomial::coefficient(std::uint32_t mask) const {
  const auto it = terms_.find(mask);
  return it == terms_.end() ? Rational{0} : it->second;
}

std::uint32_t MultilinearPolynomial::support() const noexcept {
  std::uint32_t mask = 0;
  for (const auto& [term_mask, coefficient] : terms_) mask |= term_mask;
  return mask;
}

MultilinearPolynomial& MultilinearPolynomial::operator+=(const MultilinearPolynomial& rhs) {
  if (variables_ != rhs.variables_) {
    throw std::invalid_argument("MultilinearPolynomial: variable-count mismatch");
  }
  for (const auto& [mask, coefficient] : rhs.terms_) {
    set(mask, this->coefficient(mask) + coefficient);
  }
  return *this;
}

MultilinearPolynomial& MultilinearPolynomial::operator-=(const MultilinearPolynomial& rhs) {
  if (variables_ != rhs.variables_) {
    throw std::invalid_argument("MultilinearPolynomial: variable-count mismatch");
  }
  for (const auto& [mask, coefficient] : rhs.terms_) {
    set(mask, this->coefficient(mask) - coefficient);
  }
  return *this;
}

MultilinearPolynomial& MultilinearPolynomial::operator*=(const Rational& scalar) {
  if (scalar.is_zero()) {
    terms_.clear();
    return *this;
  }
  for (auto& [mask, coefficient] : terms_) coefficient *= scalar;
  return *this;
}

MultilinearPolynomial MultilinearPolynomial::disjoint_product(
    const MultilinearPolynomial& rhs) const {
  if (variables_ != rhs.variables_) {
    throw std::invalid_argument("MultilinearPolynomial: variable-count mismatch");
  }
  if ((support() & rhs.support()) != 0) {
    throw std::domain_error(
        "MultilinearPolynomial::disjoint_product: overlapping variable supports");
  }
  MultilinearPolynomial result{variables_};
  for (const auto& [mask_a, coeff_a] : terms_) {
    for (const auto& [mask_b, coeff_b] : rhs.terms_) {
      result.set(mask_a | mask_b, result.coefficient(mask_a | mask_b) + coeff_a * coeff_b);
    }
  }
  return result;
}

Rational MultilinearPolynomial::operator()(std::span<const Rational> point) const {
  if (point.size() != variables_) {
    throw std::invalid_argument("MultilinearPolynomial: evaluation point size mismatch");
  }
  Rational total{0};
  for (const auto& [mask, coefficient] : terms_) {
    Rational term = coefficient;
    for (std::size_t i = 0; i < variables_; ++i) {
      if (mask & (std::uint32_t{1} << i)) term *= point[i];
    }
    total += term;
  }
  return total;
}

MultilinearPolynomial MultilinearPolynomial::partial_derivative(std::size_t i) const {
  if (i >= variables_) {
    throw std::out_of_range("MultilinearPolynomial::partial_derivative: bad index");
  }
  const std::uint32_t bit = std::uint32_t{1} << i;
  MultilinearPolynomial result{variables_};
  for (const auto& [mask, coefficient] : terms_) {
    if (mask & bit) result.set(mask & ~bit, result.coefficient(mask & ~bit) + coefficient);
  }
  return result;
}

MultilinearPolynomial MultilinearPolynomial::substitute(std::size_t i,
                                                        const Rational& value) const {
  if (i >= variables_) throw std::out_of_range("MultilinearPolynomial::substitute: bad index");
  const std::uint32_t bit = std::uint32_t{1} << i;
  MultilinearPolynomial result{variables_};
  for (const auto& [mask, coefficient] : terms_) {
    if (mask & bit) {
      result.set(mask & ~bit, result.coefficient(mask & ~bit) + coefficient * value);
    } else {
      result.set(mask, result.coefficient(mask) + coefficient);
    }
  }
  return result;
}

std::string MultilinearPolynomial::to_string(const std::string& var_prefix) const {
  if (terms_.empty()) return "0";
  std::ostringstream oss;
  bool first = true;
  for (const auto& [mask, coefficient] : terms_) {
    const bool negative = coefficient.signum() < 0;
    if (first) {
      if (negative) oss << "-";
      first = false;
    } else {
      oss << (negative ? " - " : " + ");
    }
    const Rational magnitude = coefficient.abs();
    const bool unit = magnitude == Rational{1};
    if (mask == 0) {
      oss << magnitude;
      continue;
    }
    if (!unit) oss << magnitude << "*";
    bool first_var = true;
    for (std::size_t i = 0; i < variables_; ++i) {
      if (mask & (std::uint32_t{1} << i)) {
        if (!first_var) oss << "*";
        first_var = false;
        oss << var_prefix << i;
      }
    }
  }
  return oss.str();
}

}  // namespace ddm::poly
