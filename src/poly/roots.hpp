// roots.hpp — exact isolation and refinement of real polynomial roots.
//
// Used to solve the paper's optimality conditions: e.g. for n = 3, t = 1 the
// condition is β² − 2β + 6/7 = 0 whose root in (1/2, 1] is 1 − √(1/7) ≈ 0.622
// (Section 5.2.1), and for n = 4, t = 4/3 a cubic with root ≈ 0.678
// (Section 5.2.2). Roots are returned as exact isolating intervals that can
// be refined to any requested width, plus a double approximation.
#pragma once

#include <vector>

#include "poly/polynomial.hpp"
#include "poly/sturm.hpp"
#include "util/rational.hpp"

namespace ddm::poly {

/// An interval (lo, hi] certified to contain exactly one distinct real root.
/// When lo == hi the root is the rational point itself.
struct RootInterval {
  util::Rational lo;
  util::Rational hi;

  [[nodiscard]] util::Rational midpoint() const {
    return (lo + hi) * util::Rational{1, 2};
  }
  [[nodiscard]] util::Rational width() const { return hi - lo; }
  [[nodiscard]] double approx() const { return midpoint().to_double(); }
  [[nodiscard]] bool is_exact() const { return lo == hi; }
};

/// Isolate all distinct real roots of p inside (lo, hi]. Multiple roots are
/// reported once. Throws std::invalid_argument for the zero polynomial or
/// lo > hi. Results are sorted ascending and pairwise disjoint.
[[nodiscard]] std::vector<RootInterval> isolate_roots(const QPoly& p, const util::Rational& lo,
                                                      const util::Rational& hi);

/// Isolate all distinct real roots of p (bounds from cauchy_root_bound).
[[nodiscard]] std::vector<RootInterval> isolate_all_roots(const QPoly& p);

/// Shrink an isolating interval by exact bisection until its width is at most
/// `width`. `p` must be the polynomial that produced the interval.
[[nodiscard]] RootInterval refine_root(const QPoly& p, RootInterval interval,
                                       const util::Rational& width);

/// Convenience: the unique root of p in (lo, hi], refined to `width`.
/// Throws std::logic_error if the root count in the interval is not one.
[[nodiscard]] RootInterval unique_root(const QPoly& p, const util::Rational& lo,
                                       const util::Rational& hi, const util::Rational& width);

}  // namespace ddm::poly
