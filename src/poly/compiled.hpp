// compiled.hpp — double-precision Horner plans lowered from exact piecewise
// polynomials, with certified per-piece error bounds.
//
// The symbolic pipeline (core/symmetric_threshold → poly/piecewise) derives
// the winning probability P(β) of Theorem 5.1 exactly, but exact rational
// evaluation is far too slow for dense sweeps, and the O(3^n) double kernel
// re-derives the same polynomial values from scratch at every grid point.
// Lowering the exact pieces ONCE to flat double coefficient arrays turns each
// subsequent evaluation into a binary-search piece lookup plus one Horner
// pass — O(log #pieces + deg) instead of O(3^n) — while a rigorously derived
// per-piece bound on |compiled(x) − exact(x)| (computed in exact rational
// arithmetic at lowering time, see docs/performance.md) makes every compiled
// answer a certificate, in the spirit of the certified escalation ladder
// (util/certify.hpp): consumers such as `ddm_cli sweep --engine=auto` compare
// the bound against their tolerance and fall back to the kernel when the
// lowering is not accurate enough.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "poly/piecewise.hpp"
#include "util/resilience.hpp"

namespace ddm::poly {

/// Smallest double that provably dominates the exact rational value — the
/// directed rounding every certificate bound goes through when it is lowered
/// to double. Shared with the plan store, which re-applies it to a persisted
/// rational certificate to confirm the stored double bound is exactly the
/// round-up of the stored exact bound.
[[nodiscard]] double certificate_round_up(const util::Rational& value);

/// One lowered piece: [lo, hi] in double, a window into the shared flat
/// coefficient array (low-degree first), and the certified bound on
/// |Horner(coeffs, x) − exact_piecewise(x)| for any double x the compiled
/// piece-selection rule maps to this piece.
struct CompiledPiece {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t coeff_begin = 0;
  std::size_t coeff_count = 0;
  double error_bound = 0.0;
};

/// A PiecewisePolynomial lowered to a flat double Horner plan.
///
/// The per-piece `error_bound` is derived from the EXACT rational
/// coefficients and accounts for all three ways the compiled answer can
/// differ from the exact function at the exact value of the double x:
///   1. coefficient rounding:  Σ_i |c_i − double(c_i)| · M^i,
///   2. Horner roundoff:       γ_{2d} · Σ_i |double(c_i)| · M^i
///      (γ_k = k·u / (1 − k·u), u = 2^-53, d = degree),
///   3. breakpoint rounding:   near a breakpoint b whose double image b̂
///      differs from b, the compiled lookup may select the neighbouring
///      piece; the resulting defect is bounded by the neighbours' jump at b
///      plus (L_left + L_right)·|b − b̂| with L a derivative sup bound,
/// where M = max(|lo|, |hi|) over the piece. All three terms are evaluated
/// in exact rational arithmetic and rounded UP to double, so the certificate
/// never understates the error.
class CompiledPiecewise {
 public:
  /// Lower an exact piecewise polynomial. Emits a `compiled.lower` tracing
  /// span. Cost is O(Σ deg²) exact rational arithmetic — pay it once, then
  /// evaluate in pure double.
  [[nodiscard]] static CompiledPiecewise lower(const PiecewisePolynomial& source);

  /// Horner evaluation at x: binary-search the piece (the left piece wins at
  /// a shared breakpoint, mirroring PiecewisePolynomial), then one Horner
  /// pass. Throws std::out_of_range outside [domain_lo(), domain_hi()].
  [[nodiscard]] double eval(double x) const;

  /// Batch evaluation over the shared thread pool (util::parallel_for);
  /// out[i] is bitwise equal to eval(xs[i]) for any thread count AND any
  /// SIMD dispatch width. Each chunk is decomposed into piece-runs (maximal
  /// stretches of consecutive points the selection rule maps to one piece —
  /// one binary search per run, not per point; a sorted sweep grid crosses
  /// each piece once) and every run goes through a gather-free vector
  /// Horner over the transposed replicated-coefficient layout, W grid
  /// points per lane with a pinned scalar tail (poly/compiled_detail.hpp).
  /// The per-lane op sequence is exactly scalar Horner's, so the γ_{2d}
  /// roundoff term of the certificate covers the vector evaluation order
  /// verbatim and `error_bound` needs no widening. The dispatch width
  /// follows DDM_SIMD (util/simd.hpp; a malformed value throws ddm::Error
  /// before any chunk runs). Cooperates with fault injection exactly like
  /// the batch kernel: a nan directive poisons the chunk's first output and
  /// the finiteness validate hook makes the engine recompute it. Emits a
  /// `compiled.eval_grid` span, counts `compiled.points`, and reports the
  /// dispatched width through the `engine.simd_width` gauge. Requires
  /// out.size() == xs.size().
  /// `control` (util/resilience.hpp) is polled at grid-chunk boundaries: a
  /// fired deadline or cancellation skips the unclaimed chunks and surfaces
  /// as ddm::DeadlineExceeded / ddm::Cancelled with the completed-chunk
  /// count. The default runs to completion.
  void eval_grid(std::span<const double> xs, std::span<double> out,
                 const util::RunControl& control = {}) const;
  [[nodiscard]] std::vector<double> eval_grid(std::span<const double> xs,
                                              const util::RunControl& control = {}) const;

  /// Certified |compiled − exact| bound for the piece that eval(x) selects
  /// (throws std::out_of_range outside the domain).
  [[nodiscard]] double error_bound(double x) const;
  /// Max of error_bound over all pieces — the domain-wide certificate.
  [[nodiscard]] double max_error_bound() const noexcept { return max_error_; }

  [[nodiscard]] std::size_t piece_count() const noexcept { return pieces_.size(); }
  [[nodiscard]] const std::vector<CompiledPiece>& pieces() const noexcept { return pieces_; }
  [[nodiscard]] double domain_lo() const noexcept { return breaks_.front(); }
  [[nodiscard]] double domain_hi() const noexcept { return breaks_.back(); }

  /// Exact rational certificates, one "a/b" string per piece: the EXACT value
  /// of the three-term bound whose round-up produced `error_bound`. lower()
  /// keeps them so the plan store can persist and re-verify the certificate
  /// chain (round_up(parse(cert)) == error_bound) on every load.
  [[nodiscard]] const std::vector<std::string>& piece_certificates() const noexcept {
    return piece_certs_;
  }

  /// The double breakpoint table (size piece_count() + 1).
  [[nodiscard]] const std::vector<double>& breakpoints() const noexcept { return breaks_; }
  /// All pieces' Horner coefficients, flattened low-degree-first.
  [[nodiscard]] std::span<const double> coefficients() const noexcept {
    return {coeff_data(), coeff_total()};
  }
  /// The replicated lane layout (coefficients() × util::simd::kCoeffLanes).
  [[nodiscard]] std::span<const double> lane_coefficients() const noexcept;

  /// Reconstitution from persisted parts (poly/plan_store.cpp). The
  /// coefficient arrays stay BORROWED — typically views into a read-only
  /// file mapping kept alive by `storage` — so a warm start never copies
  /// them. Checks structural invariants only (sizes, windows, strictly
  /// increasing breakpoints, max_error consistency) and throws
  /// std::invalid_argument on violation; the store's cryptographic-free
  /// integrity story (checksum + certificate re-check) runs before this.
  struct StoredParts {
    std::vector<double> breaks;
    std::vector<CompiledPiece> pieces;
    std::vector<std::string> piece_certs;
    const double* coeffs = nullptr;       // flattened, coeff_total doubles
    const double* lane_coeffs = nullptr;  // coeff_total × kCoeffLanes doubles
    std::size_t coeff_total = 0;
    double max_error = 0.0;
    std::shared_ptr<const void> storage;  // keeps the borrowed arrays alive
  };
  [[nodiscard]] static CompiledPiecewise from_stored(StoredParts parts);

 private:
  CompiledPiecewise() = default;

  [[nodiscard]] std::size_t piece_index(double x) const;
  /// Owned-vector data or the borrowed mapping, whichever this plan carries.
  [[nodiscard]] const double* coeff_data() const noexcept {
    return ext_coeffs_ != nullptr ? ext_coeffs_ : coeffs_.data();
  }
  [[nodiscard]] const double* lane_data() const noexcept {
    return ext_lane_coeffs_ != nullptr ? ext_lane_coeffs_ : lane_coeffs_.data();
  }
  [[nodiscard]] std::size_t coeff_total() const noexcept {
    return pieces_.empty() ? 0 : pieces_.back().coeff_begin + pieces_.back().coeff_count;
  }

  std::vector<double> breaks_;        // piece boundaries, size piece_count() + 1
  std::vector<CompiledPiece> pieces_;
  std::vector<std::string> piece_certs_;  // exact rational bounds, one per piece
  std::vector<double> coeffs_;        // all pieces' coefficients, flattened
  // Transposed vector-Horner layout: coefficient i of a piece replicated
  // across util::simd::kCoeffLanes consecutive slots starting at
  // (coeff_begin + i) · kCoeffLanes, so any pack width broadcasts it with
  // one unaligned row load (poly/compiled_detail.hpp).
  std::vector<double> lane_coeffs_;
  // Borrowed coefficient storage for plans reconstituted by from_stored():
  // non-null pointers win over the owned vectors (raw pointers, not spans,
  // so the default copy/move of the owned-vector case stays correct), and
  // `storage_` pins the mapping they point into.
  const double* ext_coeffs_ = nullptr;
  const double* ext_lane_coeffs_ = nullptr;
  std::shared_ptr<const void> storage_;
  double max_error_ = 0.0;
};

}  // namespace ddm::poly
