#include "poly/roots.hpp"

#include <stdexcept>
#include <utility>

namespace ddm::poly {

namespace {

using util::Rational;

// Recursive Sturm bisection on (lo, hi]; appends isolating intervals.
void isolate_recursive(const SturmSequence& sturm, const QPoly& p, const Rational& lo,
                       const Rational& hi, int roots_inside, std::vector<RootInterval>& out) {
  if (roots_inside == 0) return;
  if (roots_inside == 1) {
    out.push_back(RootInterval{lo, hi});
    return;
  }
  const Rational mid = (lo + hi) * Rational{1, 2};
  const bool mid_is_root = p(mid).is_zero();
  const int left = sturm.count_roots(lo, mid);
  const int right = roots_inside - left;
  if (mid_is_root) {
    // Report the exact root at mid, and recurse left of a gap (lo, mid - d]
    // that provably excludes it — otherwise the left interval could end at a
    // root and stop being isolating.
    Rational delta = (hi - lo) * Rational{1, 4};
    while (sturm.count_roots(mid - delta, mid) > 1) delta = delta * Rational{1, 2};
    const Rational left_hi = mid - delta;
    isolate_recursive(sturm, p, lo, left_hi, sturm.count_roots(lo, left_hi), out);
    out.push_back(RootInterval{mid, mid});
    isolate_recursive(sturm, p, mid, hi, right, out);
  } else {
    isolate_recursive(sturm, p, lo, mid, left, out);
    isolate_recursive(sturm, p, mid, hi, right, out);
  }
}

}  // namespace

std::vector<RootInterval> isolate_roots(const QPoly& p, const Rational& lo, const Rational& hi) {
  if (p.is_zero()) throw std::invalid_argument("isolate_roots: zero polynomial");
  if (lo > hi) throw std::invalid_argument("isolate_roots: lo > hi");
  const QPoly square_free = p.square_free_part();
  const SturmSequence sturm{square_free};
  const int count = sturm.count_roots(lo, hi);
  std::vector<RootInterval> out;
  out.reserve(static_cast<std::size_t>(count));
  isolate_recursive(sturm, square_free, lo, hi, count, out);
  return out;
}

std::vector<RootInterval> isolate_all_roots(const QPoly& p) {
  if (p.is_zero()) throw std::invalid_argument("isolate_all_roots: zero polynomial");
  if (p.degree() == 0) return {};
  const Rational bound = cauchy_root_bound(p);
  return isolate_roots(p, -bound, bound);
}

RootInterval refine_root(const QPoly& p, RootInterval interval, const Rational& width) {
  if (interval.is_exact()) return interval;
  const QPoly square_free = p.square_free_part();
  // Sign-based bisection requires a sign change across the open-left interval;
  // since (lo, hi] holds exactly one simple root of the square-free part,
  // sign(lo) * sign(hi) <= 0 and sign(hi) == 0 only if hi is the root.
  const util::Rational value_hi = square_free(interval.hi);
  if (value_hi.is_zero()) return RootInterval{interval.hi, interval.hi};
  int sign_hi = value_hi.signum();
  while (interval.width() > width) {
    const Rational mid = interval.midpoint();
    const util::Rational value_mid = square_free(mid);
    if (value_mid.is_zero()) return RootInterval{mid, mid};
    if (value_mid.signum() == sign_hi) {
      interval.hi = mid;
    } else {
      interval.lo = mid;
    }
  }
  return interval;
}

RootInterval unique_root(const QPoly& p, const Rational& lo, const Rational& hi,
                         const Rational& width) {
  std::vector<RootInterval> roots = isolate_roots(p, lo, hi);
  if (roots.size() != 1) {
    throw std::logic_error("unique_root: interval does not contain exactly one root");
  }
  return refine_root(p, roots[0], width);
}

}  // namespace ddm::poly
