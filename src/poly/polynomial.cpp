#include "poly/polynomial.hpp"

#include <sstream>

#include "combinat/binomial.hpp"

namespace ddm::poly {

namespace {

// Render one coefficient for to_string; handles Rational and double.
std::string coeff_to_text(const util::Rational& c) { return c.to_string(); }
std::string coeff_to_text(double c) {
  std::ostringstream oss;
  oss << c;
  return oss.str();
}

bool coeff_is_negative(const util::Rational& c) { return c.signum() < 0; }
bool coeff_is_negative(double c) { return c < 0.0; }

template <typename F>
F coeff_abs(const F& c) {
  return coeff_is_negative(c) ? -c : c;
}

bool coeff_is_one(const util::Rational& c) { return c == util::Rational{1}; }
bool coeff_is_one(double c) { return c == 1.0; }

}  // namespace

template <typename F>
std::string Polynomial<F>::to_string(const std::string& var) const {
  if (is_zero()) return "0";
  std::ostringstream oss;
  bool first = true;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    const F& c = coeffs_[i];
    if (c == F{}) continue;
    const bool negative = coeff_is_negative(c);
    if (first) {
      if (negative) oss << "-";
      first = false;
    } else {
      oss << (negative ? " - " : " + ");
    }
    const F magnitude = coeff_abs(c);
    const bool unit = coeff_is_one(magnitude);
    if (i == 0) {
      oss << coeff_to_text(magnitude);
    } else {
      if (!unit) oss << coeff_to_text(magnitude) << "*";
      oss << var;
      if (i > 1) oss << "^" << i;
    }
  }
  return oss.str();
}

DPoly to_double(const QPoly& p) {
  std::vector<double> coeffs;
  coeffs.reserve(p.coefficients().size());
  for (const auto& c : p.coefficients()) coeffs.push_back(c.to_double());
  return DPoly{std::move(coeffs)};
}

QPoly binomial_power(const util::Rational& a, const util::Rational& b, std::uint32_t k) {
  // (a + b x)^k = sum_j C(k, j) a^(k-j) b^j x^j
  std::vector<util::Rational> coeffs(k + 1);
  for (std::uint32_t j = 0; j <= k; ++j) {
    const util::Rational binom{combinat::binomial(k, j), util::BigInt{1}};
    coeffs[j] = binom * a.pow(static_cast<std::int64_t>(k - j)) *
                b.pow(static_cast<std::int64_t>(j));
  }
  return QPoly{std::move(coeffs)};
}

util::RationalInterval evaluate_interval(const QPoly& p, const util::RationalInterval& x) {
  util::RationalInterval result{util::Rational{0}};
  const auto& coeffs = p.coefficients();
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    result = result * x + util::RationalInterval{coeffs[i]};
  }
  return result;
}

template class Polynomial<util::Rational>;
template class Polynomial<double>;

}  // namespace ddm::poly
