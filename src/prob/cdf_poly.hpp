// cdf_poly.hpp — the CDF of a sum of uniforms as an exact piecewise
// polynomial (the symbolic form of Lemma 2.4), plus the expected excess
// E[(X − t)^+] derived from it by exact integration.
//
// Lemma 2.4's inclusion–exclusion formula changes its active subset family
// exactly at the subset sums of the ranges, so F is a polynomial between
// consecutive subset sums. With F in hand, the expected overflow mass above
// a capacity t is E[(X − t)^+] = ∫_t^sup (1 − F(x)) dx — an exact rational.
// This powers the expected-overflow metric (core/metrics.hpp): the paper
// ranks protocols by P(no overflow); ranking by E[overflow] is a natural
// companion attribute for the load-balancing motivation.
#pragma once

#include <span>

#include "poly/piecewise.hpp"
#include "util/rational.hpp"

namespace ddm::prob {

/// The CDF of Σ x_i, x_i ~ U[0, π_i], as an exact piecewise polynomial on
/// [0, Σ π_i]. Requires 1 <= m <= 10 and all π_i > 0 (throws otherwise).
/// Breakpoints are the distinct subset sums of the ranges.
[[nodiscard]] poly::PiecewisePolynomial sum_uniform_cdf_poly(
    std::span<const util::Rational> pi);

/// E[(Σ x_i − t)^+]: expected amount by which the sum exceeds t. Exact; zero
/// for t >= Σ π_i, and E[Σ x_i] − t for t <= 0.
[[nodiscard]] util::Rational expected_excess(std::span<const util::Rational> pi,
                                             const util::Rational& t);

}  // namespace ddm::prob
