// empirical.hpp — empirical CDFs and Kolmogorov–Smirnov distance.
//
// Validation tooling: the closed-form CDFs of Section 2.2 are checked against
// sampled sums of uniforms by bounding the one-sample KS statistic. Not part
// of the paper itself, but the reproduction's evidence that the formulas are
// implemented correctly.
#pragma once

#include <functional>
#include <vector>

namespace ddm::prob {

/// Empirical CDF of a sample (sorted internally on construction).
class EmpiricalCdf {
 public:
  /// Throws std::invalid_argument on an empty sample.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return samples_; }

  /// One-sample Kolmogorov–Smirnov statistic sup_x |F_n(x) − F(x)| against a
  /// reference CDF, evaluated at the jump points (exact for right-continuous
  /// monotone F).
  [[nodiscard]] double ks_distance(const std::function<double(double)>& reference_cdf) const;

  /// Critical value c(alpha)/sqrt(n) of the one-sample KS test at
  /// significance alpha in {0.05, 0.01, 0.001} (asymptotic formula).
  [[nodiscard]] double ks_critical_value(double alpha) const;

 private:
  std::vector<double> samples_;
};

}  // namespace ddm::prob
