#include "prob/uniform_sum.hpp"

#include <algorithm>
#include <string>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "combinat/binomial.hpp"

namespace ddm::prob {

using util::Rational;

namespace {

constexpr std::size_t kMaxExactDimension = 30;

void check_pi_positive(std::span<const Rational> pi, const char* what) {
  for (const Rational& p : pi) {
    if (p.signum() <= 0) throw std::invalid_argument(std::string(what) + ": ranges must be > 0");
  }
  if (pi.size() > kMaxExactDimension) {
    throw std::invalid_argument(std::string(what) + ": too many variables for subset masks");
  }
}

}  // namespace

Rational sum_uniform_cdf(std::span<const Rational> pi, const Rational& t) {
  check_pi_positive(pi, "sum_uniform_cdf");
  if (t.signum() < 0) return Rational{0};
  const std::size_t m = pi.size();
  if (m == 0) return Rational{1};

  Rational sum{0};
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Rational subset_sum{0};
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) subset_sum += pi[l];
    }
    if (subset_sum >= t) continue;  // guard Σ_{l∈I} π_l < t  (Lemma 2.4)
    const Rational term = (t - subset_sum).pow(static_cast<std::int64_t>(m));
    if (__builtin_popcountll(mask) % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  Rational denominator{1};
  for (const Rational& p : pi) denominator *= p;
  Rational result =
      sum * combinat::inverse_factorial(static_cast<std::uint32_t>(m)) / denominator;
  // The formula already saturates at 1 for t >= Σ π_l; clamp defensively for
  // exactness of the declared contract under rounding-free arithmetic.
  if (result > Rational{1}) result = Rational{1};
  return result;
}

Rational sum_uniform_pdf(std::span<const Rational> pi, const Rational& t) {
  check_pi_positive(pi, "sum_uniform_pdf");
  const std::size_t m = pi.size();
  if (m == 0) return Rational{0};
  if (t.signum() < 0) return Rational{0};

  // Lemma 2.5: same alternating sum with exponent m-1 and 1/(m-1)!.
  Rational sum{0};
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Rational subset_sum{0};
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) subset_sum += pi[l];
    }
    if (subset_sum >= t) continue;
    const Rational term = (t - subset_sum).pow(static_cast<std::int64_t>(m - 1));
    if (__builtin_popcountll(mask) % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  Rational denominator{1};
  for (const Rational& p : pi) denominator *= p;
  return sum * combinat::inverse_factorial(static_cast<std::uint32_t>(m - 1)) / denominator;
}

Rational irwin_hall_cdf(std::uint32_t m, const Rational& t) {
  if (t.signum() < 0) return Rational{0};
  if (m == 0) return Rational{1};
  if (t >= Rational{static_cast<std::int64_t>(m)}) return Rational{1};

  // Corollary 2.6: (1/m!) Σ_{0<=i<=m, i<t} (-1)^i C(m,i) (t-i)^m.
  Rational sum{0};
  for (std::uint32_t i = 0; i <= m; ++i) {
    const Rational shift{static_cast<std::int64_t>(i)};
    if (shift >= t) break;  // i < t guard; later i only grow
    const Rational binom{combinat::binomial(m, i), util::BigInt{1}};
    const Rational term = binom * (t - shift).pow(static_cast<std::int64_t>(m));
    if (i % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  return sum * combinat::inverse_factorial(m);
}

Rational sum_shifted_uniform_cdf(std::span<const Rational> pi, const Rational& t) {
  const std::size_t m = pi.size();
  for (const Rational& p : pi) {
    if (p.signum() < 0 || p >= Rational{1}) {
      throw std::invalid_argument("sum_shifted_uniform_cdf: need 0 <= pi < 1");
    }
  }
  if (m > kMaxExactDimension) {
    throw std::invalid_argument("sum_shifted_uniform_cdf: too many variables");
  }
  if (m == 0) return t.signum() >= 0 ? Rational{1} : Rational{0};

  // Lemma 2.7:
  //   F(t) = 1 - (1/(m! Π(1-π_l))) Σ_I (-1)^{|I|} (m - t - |I| + Σ_{l∈I} π_l)^m
  // over subsets I with |I| < m - t + Σ_{l∈I} π_l.
  const Rational mm{static_cast<std::int64_t>(m)};
  Rational sum{0};
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Rational subset_sum{0};
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) subset_sum += pi[l];
    }
    const int i = __builtin_popcountll(mask);
    const Rational base = mm - t - Rational{i} + subset_sum;
    if (base.signum() <= 0) continue;  // guard |I| < m - t + Σ π_l
    const Rational term = base.pow(static_cast<std::int64_t>(m));
    if (i % 2 == 0) {
      sum += term;
    } else {
      sum -= term;
    }
  }
  Rational denominator{1};
  for (const Rational& p : pi) denominator *= (Rational{1} - p);
  Rational result = Rational{1} -
                    sum * combinat::inverse_factorial(static_cast<std::uint32_t>(m)) / denominator;
  if (result < Rational{0}) result = Rational{0};
  if (result > Rational{1}) result = Rational{1};
  return result;
}

// -- double versions ----------------------------------------------------------

double sum_uniform_cdf(std::span<const double> pi, double t) {
  const std::size_t m = pi.size();
  if (m > 26) throw std::invalid_argument("sum_uniform_cdf: too many variables");
  if (t < 0.0) return 0.0;
  if (m == 0) return 1.0;
  double sum = 0.0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    double subset_sum = 0.0;
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) subset_sum += pi[l];
    }
    if (subset_sum >= t) continue;
    const double term = std::pow(t - subset_sum, static_cast<double>(m));
    sum += (__builtin_popcountll(mask) % 2 == 0) ? term : -term;
  }
  double denominator = 1.0;
  for (const double p : pi) denominator *= p;
  const double result =
      sum * combinat::inverse_factorial_double(static_cast<std::uint32_t>(m)) / denominator;
  return std::clamp(result, 0.0, 1.0);
}

double sum_uniform_pdf(std::span<const double> pi, double t) {
  const std::size_t m = pi.size();
  if (m > 26) throw std::invalid_argument("sum_uniform_pdf: too many variables");
  if (m == 0 || t < 0.0) return 0.0;
  double sum = 0.0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    double subset_sum = 0.0;
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) subset_sum += pi[l];
    }
    if (subset_sum >= t) continue;
    const double term = std::pow(t - subset_sum, static_cast<double>(m - 1));
    sum += (__builtin_popcountll(mask) % 2 == 0) ? term : -term;
  }
  double denominator = 1.0;
  for (const double p : pi) denominator *= p;
  return sum * combinat::inverse_factorial_double(static_cast<std::uint32_t>(m - 1)) /
         denominator;
}

double irwin_hall_cdf(std::uint32_t m, double t) {
  if (t < 0.0) return 0.0;
  if (m == 0) return 1.0;
  if (t >= static_cast<double>(m)) return 1.0;
  double sum = 0.0;
  for (std::uint32_t i = 0; i <= m && static_cast<double>(i) < t; ++i) {
    const double term =
        combinat::binomial_double(m, i) * std::pow(t - static_cast<double>(i), m);
    sum += (i % 2 == 0) ? term : -term;
  }
  return std::clamp(sum * combinat::inverse_factorial_double(m), 0.0, 1.0);
}

double sum_shifted_uniform_cdf(std::span<const double> pi, double t) {
  const std::size_t m = pi.size();
  if (m > 26) throw std::invalid_argument("sum_shifted_uniform_cdf: too many variables");
  if (m == 0) return t >= 0.0 ? 1.0 : 0.0;
  double sum = 0.0;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    double subset_sum = 0.0;
    for (std::size_t l = 0; l < m; ++l) {
      if (mask & (std::uint64_t{1} << l)) subset_sum += pi[l];
    }
    const int i = __builtin_popcountll(mask);
    const double base = static_cast<double>(m) - t - static_cast<double>(i) + subset_sum;
    if (base <= 0.0) continue;
    const double term = std::pow(base, static_cast<double>(m));
    sum += (i % 2 == 0) ? term : -term;
  }
  double denominator = 1.0;
  for (const double p : pi) denominator *= (1.0 - p);
  const double result =
      1.0 - sum * combinat::inverse_factorial_double(static_cast<std::uint32_t>(m)) / denominator;
  return std::clamp(result, 0.0, 1.0);
}

}  // namespace ddm::prob
