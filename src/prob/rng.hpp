// rng.hpp — deterministic pseudo-random number generation.
//
// All Monte Carlo cross-checks (simulated winning probabilities, volume
// estimates) must be reproducible run-to-run, so every consumer takes an
// explicit seeded generator. The engine is xoshiro256++ (Blackman & Vigna):
// fast, tiny state, excellent statistical quality, and — unlike
// std::mt19937_64 — identical output across standard library
// implementations. Streams for parallel workers are derived with SplitMix64
// jumps so they never overlap in practice.
#pragma once

#include <array>
#include <cstdint>

namespace ddm::prob {

/// xoshiro256++ engine; satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion (any 64-bit seed is fine, including 0).
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept;
  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// A statistically independent child generator (for worker i, derive with
  /// `split(i)`); the parent is unaffected.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace ddm::prob
