// uniform_sum.hpp — distributions of sums of independent uniform variables.
//
// Section 2.2 of the paper: inclusion-exclusion formulas, derived from the
// polytope volume of Proposition 2.2, for
//   Lemma 2.4     F(t) of  Σ x_i,  x_i ~ U[0, π_i]      (heterogeneous ranges)
//   Lemma 2.5     the density of that sum (answers Rota's research problem)
//   Corollary 2.6 the Irwin–Hall special case π_i = 1
//   Lemma 2.7     F(t) of  Σ x_i,  x_i ~ U[π_i, 1]      (shifted uniforms)
// These are the conditional no-overflow probabilities of a single bin given
// which players chose it. Exact Rational and fast double versions provided;
// the double versions use the same summation (numerically stable for the
// small m of interest, m <= ~40).
#pragma once

#include <span>

#include "util/rational.hpp"

namespace ddm::prob {

// -- exact ------------------------------------------------------------------

/// Lemma 2.4: P(Σ x_i <= t) with x_i ~ U[0, π_i], all π_i > 0.
/// An empty collection sums to 0, so the CDF is 1 for t >= 0 and 0 otherwise.
[[nodiscard]] util::Rational sum_uniform_cdf(std::span<const util::Rational> pi,
                                             const util::Rational& t);

/// Lemma 2.5: density of Σ x_i with x_i ~ U[0, π_i] at t (0 for m == 0).
[[nodiscard]] util::Rational sum_uniform_pdf(std::span<const util::Rational> pi,
                                             const util::Rational& t);

/// Corollary 2.6: P(Σ_{i=1..m} x_i <= t) with x_i ~ U[0, 1] (Irwin–Hall CDF).
[[nodiscard]] util::Rational irwin_hall_cdf(std::uint32_t m, const util::Rational& t);

/// Lemma 2.7: P(Σ x_i <= t) with x_i ~ U[π_i, 1], all 0 <= π_i < 1.
[[nodiscard]] util::Rational sum_shifted_uniform_cdf(std::span<const util::Rational> pi,
                                                     const util::Rational& t);

// -- double -----------------------------------------------------------------

[[nodiscard]] double sum_uniform_cdf(std::span<const double> pi, double t);
[[nodiscard]] double sum_uniform_pdf(std::span<const double> pi, double t);
[[nodiscard]] double irwin_hall_cdf(std::uint32_t m, double t);
[[nodiscard]] double sum_shifted_uniform_cdf(std::span<const double> pi, double t);

}  // namespace ddm::prob
