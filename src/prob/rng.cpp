#include "prob/rng.hpp"

namespace ddm::prob {

namespace {

// SplitMix64: seed expander recommended by the xoshiro authors.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // Top 53 bits scaled by 2^-53: uniform on [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (~bound + 1) % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Derive a child seed from the current state and the stream index through
  // SplitMix64; children with distinct stream ids get unrelated states.
  std::uint64_t sm = state_[0] ^ (state_[1] + 0x9e3779b97f4a7c15ull * (stream + 1));
  Rng child{splitmix64(sm)};
  return child;
}

}  // namespace ddm::prob
